//! Dense row-major matrices and borrowed strided block views.
//!
//! The blocked Floyd-Warshall algorithms operate on sub-blocks of a large
//! distance matrix. [`View`]/[`ViewMut`] are strided windows into a parent
//! allocation, so every kernel (GEMM, closure, panel update) can run on a
//! block in place with no copies — mirroring how the paper's GPU kernels
//! address tiles of device memory.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Owned dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy> Matrix<T> {
    /// A `rows × cols` matrix with every entry set to `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Build from a function of the (row, col) index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from row slices; all rows must have equal length.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Take ownership of a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Immutable view of the whole matrix.
    pub fn view(&self) -> View<'_, T> {
        View {
            ptr: self.data.as_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            _marker: std::marker::PhantomData,
        }
    }

    /// Mutable view of the whole matrix.
    pub fn view_mut(&mut self) -> ViewMut<'_, T> {
        ViewMut {
            ptr: self.data.as_mut_ptr(),
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            _marker: std::marker::PhantomData,
        }
    }

    /// Immutable view of the block starting at `(r0, c0)` of shape `rows × cols`.
    pub fn subview(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> View<'_, T> {
        self.view().subview(r0, c0, rows, cols)
    }

    /// Mutable view of the block starting at `(r0, c0)` of shape `rows × cols`.
    pub fn subview_mut(&mut self, r0: usize, c0: usize, rows: usize, cols: usize) -> ViewMut<'_, T> {
        self.view_mut().into_subview(r0, c0, rows, cols)
    }

    /// Copy out a block as an owned matrix.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix<T> {
        self.subview(r0, c0, rows, cols).to_matrix()
    }

    /// Overwrite the block at `(r0, c0)` with `src`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &View<'_, T>) {
        self.subview_mut(r0, c0, src.rows(), src.cols()).copy_from(src);
    }

    /// Elementwise equality (exact, no tolerance).
    pub fn eq_exact(&self, other: &Matrix<T>) -> bool
    where
        T: PartialEq,
    {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl<T: Copy> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Copy> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(i)[..self.cols.min(8)])?;
        }
        if self.rows > 8 || self.cols > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Immutable strided window into a matrix.
#[derive(Clone, Copy)]
pub struct View<'a, T> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: std::marker::PhantomData<&'a T>,
}

// SAFETY: a View is a shared borrow of plain data; sharing it across threads
// is as safe as sharing `&[T]`.
unsafe impl<T: Sync> Send for View<'_, T> {}
unsafe impl<T: Sync> Sync for View<'_, T> {}

impl<'a, T: Copy> View<'a, T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between consecutive rows of the parent buffer.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `i` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [T] {
        debug_assert!(i < self.rows);
        // SAFETY: the view was constructed over a live allocation covering
        // rows*stride elements; row i spans [i*stride, i*stride+cols).
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        self.row(i)[j]
    }

    /// Sub-window at offset `(r0, c0)` with shape `rows × cols`.
    ///
    /// # Panics
    /// Panics if the window exceeds the view bounds.
    pub fn subview(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> View<'a, T> {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "subview out of bounds");
        View {
            // SAFETY: in bounds per the assertion above.
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows,
            cols,
            stride: self.stride,
            _marker: std::marker::PhantomData,
        }
    }

    /// Copy into an owned `Matrix`.
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Flatten to a contiguous row-major `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.to_matrix().data
    }
}

/// Mutable strided window into a matrix.
pub struct ViewMut<'a, T> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: std::marker::PhantomData<&'a mut T>,
}

// SAFETY: ViewMut is an exclusive borrow; moving it to another thread is as
// safe as moving `&mut [T]`.
unsafe impl<T: Send> Send for ViewMut<'_, T> {}
unsafe impl<T: Sync> Sync for ViewMut<'_, T> {}

impl<'a, T: Copy> ViewMut<'a, T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between consecutive rows of the parent buffer.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        // SAFETY: same bounds argument as `View::row`.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        // SAFETY: exclusive borrow of the view guarantees no aliasing.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        self.row(i)[j]
    }

    /// Write element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        self.row_mut(i)[j] = v;
    }

    /// Reborrow as an immutable view.
    pub fn as_view(&self) -> View<'_, T> {
        View {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _marker: std::marker::PhantomData,
        }
    }

    /// Reborrow a mutable sub-window (shorter lifetime, keeps `self` borrowed).
    pub fn subview_mut(&mut self, r0: usize, c0: usize, rows: usize, cols: usize) -> ViewMut<'_, T> {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "subview out of bounds");
        ViewMut {
            // SAFETY: in bounds per assertion; exclusive via &mut self.
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows,
            cols,
            stride: self.stride,
            _marker: std::marker::PhantomData,
        }
    }

    /// Consume the view, producing a sub-window with the original lifetime.
    pub fn into_subview(self, r0: usize, c0: usize, rows: usize, cols: usize) -> ViewMut<'a, T> {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "subview out of bounds");
        ViewMut {
            // SAFETY: in bounds per assertion; `self` is consumed so the new
            // view is the only live borrow.
            ptr: unsafe { self.ptr.add(r0 * self.stride + c0) },
            rows,
            cols,
            stride: self.stride,
            _marker: std::marker::PhantomData,
        }
    }

    /// Split into left (`..mid`) and right (`mid..`) disjoint mutable views.
    pub fn split_cols_mut(self, mid: usize) -> (ViewMut<'a, T>, ViewMut<'a, T>) {
        assert!(mid <= self.cols, "split point out of bounds");
        let left = ViewMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: mid,
            stride: self.stride,
            _marker: std::marker::PhantomData,
        };
        let right = ViewMut {
            // SAFETY: columns mid.. never alias columns ..mid within a row,
            // and both views share the parent's stride
            ptr: unsafe { self.ptr.add(mid) },
            rows: self.rows,
            cols: self.cols - mid,
            stride: self.stride,
            _marker: std::marker::PhantomData,
        };
        (left, right)
    }

    /// Split into top (`..mid`) and bottom (`mid..`) disjoint mutable views.
    pub fn split_rows_mut(self, mid: usize) -> (ViewMut<'a, T>, ViewMut<'a, T>) {
        assert!(mid <= self.rows, "split point out of bounds");
        let top = ViewMut {
            ptr: self.ptr,
            rows: mid,
            cols: self.cols,
            stride: self.stride,
            _marker: std::marker::PhantomData,
        };
        let bottom = ViewMut {
            // SAFETY: rows mid.. are disjoint from rows ..mid.
            ptr: unsafe { self.ptr.add(mid * self.stride) },
            rows: self.rows - mid,
            cols: self.cols,
            stride: self.stride,
            _marker: std::marker::PhantomData,
        };
        (top, bottom)
    }

    /// Partition into disjoint mutable row-chunks of at most `chunk` rows.
    /// Used to hand independent slabs of `C` to rayon workers.
    pub fn chunk_rows_mut(self, chunk: usize) -> Vec<ViewMut<'a, T>> {
        assert!(chunk > 0, "chunk must be positive");
        let mut out = Vec::with_capacity(self.rows.div_ceil(chunk));
        let mut rest = self;
        while rest.rows > chunk {
            let (head, tail) = rest.split_rows_mut(chunk);
            out.push(head);
            rest = tail;
        }
        if rest.rows > 0 {
            out.push(rest);
        }
        out
    }

    /// Copy every element from `src` (shapes must match).
    pub fn copy_from(&mut self, src: &View<'_, T>) {
        assert_eq!((self.rows, self.cols), (src.rows(), src.cols()), "shape mismatch");
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(src.row(i));
        }
    }

    /// Set every element to `v`.
    pub fn fill(&mut self, v: T) {
        for i in 0..self.rows {
            self.row_mut(i).fill(v);
        }
    }

    /// Copy into an owned matrix.
    pub fn to_matrix(&self) -> Matrix<T> {
        self.as_view().to_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(rows: usize, cols: usize) -> Matrix<i64> {
        Matrix::from_fn(rows, cols, |i, j| (i * cols + j) as i64)
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6);
        assert_eq!(m.row(0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1, 2][..], &[3][..]]);
    }

    #[test]
    fn subview_addresses_parent_block() {
        let m = iota(6, 5);
        let v = m.subview(2, 1, 3, 2);
        assert_eq!(v.at(0, 0), m[(2, 1)]);
        assert_eq!(v.at(2, 1), m[(4, 2)]);
        assert_eq!(v.stride(), 5);
    }

    #[test]
    fn nested_subview_composes_offsets() {
        let m = iota(8, 8);
        let outer = m.subview(2, 2, 5, 5);
        let inner = outer.subview(1, 3, 2, 2);
        assert_eq!(inner.at(0, 0), m[(3, 5)]);
        assert_eq!(inner.at(1, 1), m[(4, 6)]);
    }

    #[test]
    fn subview_mut_writes_through() {
        let mut m = iota(4, 4);
        {
            let mut v = m.subview_mut(1, 1, 2, 2);
            v.set(0, 0, -1);
            v.set(1, 1, -2);
        }
        assert_eq!(m[(1, 1)], -1);
        assert_eq!(m[(2, 2)], -2);
        assert_eq!(m[(0, 0)], 0); // untouched
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subview_rejects_overflow() {
        let m = iota(4, 4);
        let _ = m.subview(2, 2, 3, 1);
    }

    #[test]
    fn split_rows_gives_disjoint_halves() {
        let mut m = iota(6, 3);
        let (mut top, mut bot) = m.view_mut().split_rows_mut(2);
        assert_eq!(top.rows(), 2);
        assert_eq!(bot.rows(), 4);
        top.set(0, 0, 100);
        bot.set(0, 0, 200);
        assert_eq!(m[(0, 0)], 100);
        assert_eq!(m[(2, 0)], 200);
    }

    #[test]
    fn chunk_rows_covers_everything_once() {
        let mut m = iota(7, 2);
        let chunks = m.view_mut().chunk_rows_mut(3);
        assert_eq!(chunks.iter().map(|c| c.rows()).collect::<Vec<_>>(), vec![3, 3, 1]);
        // write a sentinel through each chunk; all 7 rows reachable
        let mut chunks = chunks;
        for c in chunks.iter_mut() {
            for i in 0..c.rows() {
                c.set(i, 0, -7);
            }
        }
        for i in 0..7 {
            assert_eq!(m[(i, 0)], -7);
        }
    }

    #[test]
    fn copy_from_and_set_block_round_trip() {
        let src = iota(3, 3);
        let mut dst = Matrix::filled(5, 5, 0i64);
        dst.set_block(1, 2, &src.view());
        assert_eq!(dst[(1, 2)], 0);
        assert_eq!(dst[(3, 4)], 8);
        let back = dst.block(1, 2, 3, 3);
        assert!(back.eq_exact(&src));
    }

    #[test]
    fn to_matrix_from_strided_view() {
        let m = iota(5, 5);
        let v = m.subview(1, 1, 3, 3).to_matrix();
        assert_eq!(v[(0, 0)], 6);
        assert_eq!(v[(2, 2)], 18);
        assert_eq!(v.rows(), 3);
    }

    #[test]
    fn empty_matrix_is_empty() {
        let m = Matrix::<f32>::filled(0, 3, 0.0);
        assert!(m.is_empty());
        assert_eq!(m.view().rows(), 0);
    }
}
