#![warn(missing_docs)]

//! # cluster-sim — a discrete-event cluster model
//!
//! The paper's headline results (Figs. 3–4 and 7–9) are timings on up to 256
//! Summit nodes. Without that machine, we *simulate* it: each algorithm
//! variant is lowered to a **task DAG** — compute tasks on per-node GPU
//! resources, transfer tasks on per-node NIC resources, host-memory tasks —
//! and a deterministic list-scheduling discrete-event engine executes the
//! DAG on resource timelines. Communication/computation overlap, pipeline
//! depth, and ring-broadcast asynchrony all *emerge* from the schedule, so
//! the figure shapes (who wins, where the crossovers sit) are reproduced
//! rather than asserted.
//!
//! * [`task`] — DAG construction ([`task::TaskGraph`]).
//! * [`engine`] — the event-driven scheduler ([`engine::run`]): a task
//!   starts at `max(deps' finish, resource free)`, each resource runs one
//!   task at a time, ready tasks are picked FIFO with priority tie-break.
//! * [`machine`] — calibrated machine constants
//!   ([`machine::MachineSpec::summit`]) and the [`machine::Cluster`] facade
//!   that maps (node, engine-kind) to resources and durations.

pub mod engine;
pub mod machine;
pub mod task;
pub mod trace;

pub use engine::{run, try_run, try_run_with_faults, EngineError, ResourceFault, Schedule};
pub use trace::{chrome_trace, gantt};
pub use machine::{Cluster, MachineSpec};
pub use task::{ResourceId, TaskGraph, TaskId};
