//! `apsp route` — shortest route between two vertices, with the full
//! vertex sequence (predecessor-tracking Floyd-Warshall).

use apsp_core::fw_seq::{fw_seq_with_paths, reconstruct_path};
use apsp_graph::paths::validate_path;

use crate::args::Args;

/// Entry point.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!(
            "apsp route --input <FILE> --from <V> --to <V>
  --format <dimacs|edges>
Prints the shortest route and its length (all-pairs solve under the hood,
so repeated queries on the same graph should use 'solve --out' instead)."
        );
        return Ok(());
    }
    let args = Args::parse(tokens)?;
    let input: String = args.req("input")?;
    let from: usize = args.req("from")?;
    let to: usize = args.req("to")?;

    let g = super::load_graph(&input, args.opt_str("format"))?;
    if from >= g.n() || to >= g.n() {
        return Err(format!("vertices must be < {}", g.n()));
    }

    let mut dist = g.to_dense();
    let pred = fw_seq_with_paths(&mut dist);
    let d = dist[(from, to)];
    if !d.is_finite() {
        println!("{from} → {to}: unreachable");
        return Ok(());
    }
    let path = reconstruct_path(&pred, from, to).ok_or("internal: missing path")?;
    debug_assert!(validate_path(&g, &path, from, to, d, 1e-3));
    println!("{from} → {to}: distance {d}, {} hop(s)", path.len() - 1);
    for win in path.windows(2) {
        println!("  {:>6} → {:<6} ({})", win[0], win[1], g.weight(win[0], win[1]));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn routes_on_a_line_graph() {
        let dir = std::env::temp_dir().join(format!("apsp-route-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("line.edges");
        std::fs::write(&input, "0 1 1.0\n1 2 2.0\n2 3 3.0\n").unwrap();
        let cmd = format!("--input {} --from 0 --to 3", input.display());
        run(&toks(&cmd)).unwrap();
        // out-of-range vertex
        let bad = format!("--input {} --from 0 --to 9", input.display());
        assert!(run(&toks(&bad)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
