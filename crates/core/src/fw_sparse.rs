//! Block-sparse Floyd-Warshall — the §7 "structured sparse graphs"
//! direction (supernodal APSP, the paper's reference \[31\]).
//!
//! Same three-phase structure as Algorithm 2, but each phase touches only
//! *materialized* blocks:
//!
//! * DiagUpdate closes `A(k,k)` (materializing it — the diagonal always
//!   fills);
//! * PanelUpdate runs over the present blocks of block row/column `k`;
//! * the outer product runs over the cross product of present panel blocks:
//!   `A(i,j) ⊕= A(i,k) ⊗ A(k,j)` only when **both** `A(i,k)` and `A(k,j)`
//!   exist — an absent operand is all-∞ and annihilates. The output block
//!   is materialized on demand (fill-in), exactly like the numerical
//!   fill-in of a sparse factorization.
//!
//! On banded or clustered graphs this does asymptotically less work than
//! dense FW; on strongly connected graphs everything fills and it converges
//! to the dense cost plus bookkeeping (the crossover the supernodal paper
//! studies). `FillStats` reports how much structure survived.

use srgemm::block_sparse::{bsp_gemm_block, BlockSparseMatrix};
use srgemm::closure::fw_closure;
use srgemm::panel::{panel_update_left, panel_update_right};
use srgemm::semiring::Semiring;

/// Fill statistics of a sparse run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FillStats {
    /// Blocks materialized in the input.
    pub input_blocks: usize,
    /// Blocks materialized at completion (≥ input).
    pub output_blocks: usize,
    /// Total block-level GEMM calls performed.
    pub block_gemms: usize,
    /// Block-GEMMs a dense run of the same shape would perform.
    pub dense_block_gemms: usize,
}

impl FillStats {
    /// Fraction of dense work actually performed (≤ 1).
    pub fn work_ratio(&self) -> f64 {
        if self.dense_block_gemms == 0 {
            return 0.0;
        }
        self.block_gemms as f64 / self.dense_block_gemms as f64
    }
}

/// In-place block-sparse Floyd-Warshall.
///
/// # Panics
/// Panics for non-idempotent semirings (same contract as the dense solver).
pub fn fw_block_sparse<S: Semiring>(a: &mut BlockSparseMatrix<S::Elem>) -> FillStats {
    assert!(
        S::IDEMPOTENT_ADD,
        "blocked FW relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    let nb = a.nb();
    let mut stats = FillStats {
        input_blocks: a.nnz_blocks(),
        output_blocks: 0,
        block_gemms: 0,
        dense_block_gemms: nb * nb * nb,
    };

    for k in 0..nb {
        // ----- DiagUpdate (always materializes the diagonal) -----
        {
            let diag = a.block_mut(k, k);
            fw_closure::<S>(&mut diag.view_mut());
        }
        let diag = a.block(k, k).expect("diagonal materialized").clone();

        // ----- PanelUpdate over present panel blocks -----
        for j in a.blocks_in_row(k) {
            if j != k {
                let blk = a.block_mut(k, j);
                panel_update_left::<S>(&mut blk.view_mut(), &diag.view());
            }
        }
        for i in a.blocks_in_col(k) {
            if i != k {
                let blk = a.block_mut(i, k);
                panel_update_right::<S>(&mut blk.view_mut(), &diag.view());
            }
        }

        // ----- MinPlus outer product over present (i,k) × (k,j) pairs -----
        let rows: Vec<usize> = a.blocks_in_col(k);
        let cols: Vec<usize> = a.blocks_in_row(k);
        for &i in &rows {
            if i == k {
                continue;
            }
            let aik = a.block(i, k).expect("present").clone();
            for &j in &cols {
                if j == k {
                    continue;
                }
                let akj = a.block(k, j).expect("present").clone();
                bsp_gemm_block::<S>(a, i, j, &aik, &akj);
                stats.block_gemms += 1;
            }
        }
    }

    stats.output_blocks = a.nnz_blocks();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fw_seq::fw_seq;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::graph::GraphBuilder;
    use srgemm::MinPlusF32;

    const INF: f32 = f32::INFINITY;

    fn sparse_of(dense: &srgemm::Matrix<f32>, b: usize) -> BlockSparseMatrix<f32> {
        BlockSparseMatrix::from_dense(dense, b, INF)
    }

    #[test]
    fn matches_dense_fw_on_random_sparse_graph() {
        let g = generators::erdos_renyi(30, 0.1, WeightKind::small_ints(), 44);
        let mut want = g.to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        let mut sp = sparse_of(&g.to_dense(), 6);
        fw_block_sparse::<MinPlusF32>(&mut sp);
        assert!(sp.to_dense().eq_exact(&want));
    }

    #[test]
    fn matches_dense_fw_on_dense_graph() {
        let g = generators::uniform_dense(24, WeightKind::small_ints(), 45);
        let mut want = g.to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        let mut sp = sparse_of(&g.to_dense(), 5);
        let stats = fw_block_sparse::<MinPlusF32>(&mut sp);
        assert!(sp.to_dense().eq_exact(&want));
        // dense input ⇒ essentially the dense work
        assert!(stats.work_ratio() > 0.5);
    }

    #[test]
    fn banded_graph_skips_most_block_work() {
        // path graph (bandwidth 1): blocks fill only near the diagonal
        // *during early iterations*; overall work ≪ dense
        let n = 64;
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_undirected(i, i + 1, 1.0);
        }
        let g = b.build();
        let mut want = g.to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        let mut sp = sparse_of(&g.to_dense(), 8);
        let stats = fw_block_sparse::<MinPlusF32>(&mut sp);
        assert!(sp.to_dense().eq_exact(&want));
        // a path is connected: output fully fills...
        assert_eq!(stats.output_blocks, 8 * 8);
        // ...but early iterations operate on thin panels, so total block
        // GEMMs stay below the dense count
        assert!(
            stats.block_gemms < stats.dense_block_gemms,
            "{} !< {}",
            stats.block_gemms,
            stats.dense_block_gemms
        );
    }

    #[test]
    fn disconnected_clusters_never_fill_across() {
        let g = generators::multi_component(24, 3, WeightKind::small_ints(), 46);
        let mut want = g.to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        let mut sp = sparse_of(&g.to_dense(), 4); // blocks align with the 8-vertex clusters
        let stats = fw_block_sparse::<MinPlusF32>(&mut sp);
        assert!(sp.to_dense().eq_exact(&want));
        // cross-cluster blocks must never materialize (minus pruned zeros):
        // 3 clusters of 2 block-rows each → 3 · 4 = 12 intra blocks of 36
        sp.prune();
        assert_eq!(sp.nnz_blocks(), 12);
        assert!(stats.work_ratio() < 0.2, "ratio {}", stats.work_ratio());
    }

    #[test]
    fn fill_in_is_monotone() {
        let g = generators::erdos_renyi(20, 0.15, WeightKind::small_ints(), 47);
        let mut sp = sparse_of(&g.to_dense(), 4);
        let before = sp.nnz_blocks();
        let stats = fw_block_sparse::<MinPlusF32>(&mut sp);
        assert!(stats.output_blocks >= before);
        assert_eq!(stats.input_blocks, before);
    }

    #[test]
    fn ragged_blocks_and_tiny_sizes() {
        for (n, b) in [(7usize, 3usize), (5, 5), (9, 2), (1, 4)] {
            let g = generators::erdos_renyi(n, 0.4, WeightKind::small_ints(), (n * b) as u64);
            let mut want = g.to_dense();
            fw_seq::<MinPlusF32>(&mut want);
            let mut sp = sparse_of(&g.to_dense(), b);
            fw_block_sparse::<MinPlusF32>(&mut sp);
            assert!(sp.to_dense().eq_exact(&want), "n={n} b={b}");
        }
    }
}
