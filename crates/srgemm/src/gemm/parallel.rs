//! Rayon-parallel semiring GEMM with an explicit thread budget.
//!
//! `C` is partitioned into disjoint row slabs, each slab updated by the
//! serial packed kernel on its own worker. Row-slab partitioning means no
//! two workers ever touch the same element of `C`, so no synchronization is
//! needed inside the kernel — the rayon analogue of assigning threadblocks
//! to output tiles on the GPU.
//!
//! `B` is packed **once** before the slabs are spawned and shared by
//! reference ([`PackedB`] is immutable and `Sync`): every slab multiplies
//! against the same KC×NC-tiled copy instead of re-reading (or re-packing)
//! `B` per slab, which is the whole-matrix form of the panel reuse the FW
//! drivers exploit per `k`-iteration. Each worker keeps its own `A`
//! micro-panel buffer; only the read-only `B` copy is shared.
//!
//! The thread budget exists because this kernel also runs *inside* the
//! mpi-sim runtime, where every rank is already a thread: `p` ranks each
//! spawning `cores` workers oversubscribes the machine `p`-fold. Callers in
//! the distributed driver pass `threads = cores / active_ranks` (floor 1,
//! see [`budget_threads`]) so ranks × kernel threads ≤ cores; single-node
//! callers use [`gemm_parallel`], which budgets for one rank (all cores).
//!
//! Slab sizing is *balanced*, not ceil-divided: `nslabs` is capped at
//! `m / MIN_ROWS_PER_SLAB`, then rows are split into `nslabs` near-equal
//! parts (sizes differ by at most one). Since `nslabs ≤ m / MIN`, every
//! slab has `base = m / nslabs ≥ MIN` rows — the old `div_ceil` scheme
//! could strand a remainder slab of one row, paying a spawn for no work.

use crate::gemm::pack::{gemm_packed_with_b, PackedB};
use crate::matrix::{View, ViewMut};
use crate::semiring::Semiring;

/// Minimum rows per parallel slab; below this the serial kernel is used
/// outright (spawn overhead would dominate).
pub(crate) const MIN_ROWS_PER_SLAB: usize = 16;

/// Kernel threads a single rank may use when `active_ranks` ranks share the
/// machine: `available_parallelism / active_ranks`, floor 1. This is the
/// budget rule that keeps `ranks × kernel threads ≤ cores` (DESIGN.md §10).
pub fn budget_threads(active_ranks: usize) -> usize {
    (rayon::current_num_threads() / active_ranks.max(1)).max(1)
}

/// `C ← C ⊕ A ⊗ B`, parallel over row slabs of `C`, using all cores
/// (budget for a single active rank).
pub fn gemm_parallel<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) {
    gemm_parallel_threads::<S>(c, a, b, rayon::current_num_threads())
}

/// `C ← C ⊕ A ⊗ B`, parallel over row slabs of `C`, capped at `threads`
/// workers (`threads = 0` is treated as 1). Each slab gets at least
/// `MIN_ROWS_PER_SLAB` (16) rows unless `C` itself has fewer, in which case
/// the serial kernel runs on the calling thread.
pub fn gemm_parallel_threads<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
    threads: usize,
) {
    super::check_shapes(c, a, b);
    let pb = PackedB::pack::<S>(b);
    gemm_parallel_threads_with_b::<S>(c, a, &pb, threads);
}

/// Row-slab parallel GEMM against an already packed `B`: the caller packs
/// once (e.g. per FW `k`-iteration) and every slab — and every *call* —
/// streams the same copy. Falls back to the serial packed kernel when the
/// slab floor leaves a single slab.
pub fn gemm_parallel_threads_with_b<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    pb: &PackedB<S::Elem>,
    threads: usize,
) {
    assert_eq!(a.cols(), pb.rows(), "gemm: inner dimensions disagree");
    assert_eq!(c.rows(), a.rows(), "gemm: C rows != A rows");
    assert_eq!(c.cols(), pb.cols(), "gemm: C cols != B cols");
    let m = c.rows();
    let nslabs = threads.min(m / MIN_ROWS_PER_SLAB).max(1);
    if nslabs == 1 {
        gemm_packed_with_b::<S>(c, a, pb);
        return;
    }

    // Balanced partition: `extra` slabs of `base + 1` rows, then `base`.
    // nslabs ≤ m / MIN ⇒ base = m / nslabs ≥ MIN: no slab under the floor.
    let base = m / nslabs;
    let extra = m % nslabs;

    // Reborrow to a local lifetime, then split into disjoint slabs paired
    // with the matching row offset into `A`.
    let mut rest = c.subview_mut(0, 0, m, c.cols());
    let mut jobs: Vec<(usize, ViewMut<'_, S::Elem>)> = Vec::with_capacity(nslabs);
    let mut off = 0;
    for s in 0..nslabs {
        let here = base + usize::from(s < extra);
        let (slab, tail) = rest.split_rows_mut(here);
        jobs.push((off, slab));
        off += here;
        rest = tail;
    }
    debug_assert_eq!(off, m);

    std::thread::scope(|scope| {
        for (row0, mut c_slab) in jobs {
            let a_slab = a.subview(row0, 0, c_slab.rows(), a.cols());
            scope.spawn(move || {
                gemm_packed_with_b::<S>(&mut c_slab, &a_slab, pb);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use crate::matrix::Matrix;
    use crate::semiring::{MinPlus, RealArith};

    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 35) % 512) as f32
        })
    }

    #[test]
    fn parallel_matches_naive_minplus() {
        let (m, n, k) = (97, 63, 41);
        let a = lcg_matrix(m, k, 1);
        let b = lcg_matrix(k, n, 2);
        let mut c1 = Matrix::filled(m, n, f32::INFINITY);
        let mut c2 = c1.clone();
        gemm_naive::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_parallel::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn parallel_matches_naive_small_fallback() {
        // m below MIN_ROWS_PER_SLAB exercises the serial fallback
        let a = lcg_matrix(4, 9, 3);
        let b = lcg_matrix(9, 5, 4);
        let mut c1 = Matrix::filled(4, 5, f32::INFINITY);
        let mut c2 = c1.clone();
        gemm_naive::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_parallel::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn parallel_real_arith_exact_on_integers() {
        // integer-valued f32s: + and * are exact, so thread order is irrelevant
        let a = lcg_matrix(64, 32, 5);
        let b = lcg_matrix(32, 48, 6);
        let mut c1 = Matrix::filled(64, 48, 0.0f32);
        let mut c2 = c1.clone();
        gemm_naive::<RealArith<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_parallel::<RealArith<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
        // values can exceed f32 integer range? max 512*512*32 ≈ 8.4e6 < 2^24, exact.
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn explicit_thread_counts_all_agree() {
        let (m, n, k) = (130, 40, 30);
        let a = lcg_matrix(m, k, 7);
        let b = lcg_matrix(k, n, 8);
        let mut oracle = Matrix::filled(m, n, f32::INFINITY);
        gemm_naive::<MinPlus<f32>>(&mut oracle.view_mut(), &a.view(), &b.view());
        for threads in [0, 1, 2, 3, 4, 7, 8, 64] {
            let mut c = Matrix::filled(m, n, f32::INFINITY);
            gemm_parallel_threads::<MinPlus<f32>>(&mut c.view_mut(), &a.view(), &b.view(), threads);
            assert!(oracle.eq_exact(&c), "mismatch at threads={threads}");
        }
    }

    // Regression: the old ceil-divide slab sizing could produce a final slab
    // far below MIN_ROWS_PER_SLAB (e.g. m=33, 2 threads → slabs of 17+16 is
    // fine, but m=49, 3 threads gave 17+17+15, and m=65, 4 → 17×3+14; worst
    // cases stranded a 1-row slab). The balanced partition must never go
    // below the floor unless m itself is below it.
    #[test]
    fn no_slab_below_floor() {
        // mirror of the partition arithmetic in gemm_parallel_threads
        for m in 1..200 {
            for threads in 1..10 {
                let nslabs = threads.min(m / MIN_ROWS_PER_SLAB).max(1);
                let base = m / nslabs;
                let extra = m % nslabs;
                let sizes: Vec<usize> =
                    (0..nslabs).map(|s| base + usize::from(s < extra)).collect();
                assert_eq!(sizes.iter().sum::<usize>(), m);
                if nslabs > 1 {
                    assert!(
                        sizes.iter().all(|&s| s >= MIN_ROWS_PER_SLAB),
                        "m={m} threads={threads} sizes={sizes:?}"
                    );
                }
                // near-equal: max - min ≤ 1
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "unbalanced m={m} threads={threads}");
            }
        }
    }

    #[test]
    fn budget_floor_is_one() {
        assert!(budget_threads(usize::MAX) >= 1);
        assert!(budget_threads(0) >= 1);
        assert!(budget_threads(1) >= 1);
    }
}
