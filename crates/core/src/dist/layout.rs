//! Block-cyclic distributed distance matrix (paper §2.5.1).
//!
//! Block `(i, j)` of the `n×n` matrix (blocks of `b×b`, the last block row
//! and column possibly ragged) lives on the rank with grid coordinates
//! `(i mod P_r, j mod P_c)`. Each rank stores its blocks packed into one
//! contiguous local matrix, so the k-th panel strips and the whole-matrix
//! outer product are plain sub-views — the same reason the GPU
//! implementation packs local blocks into single device allocations.

use mpi_sim::{CommError, ProcessGrid};
use srgemm::matrix::{Matrix, View, ViewMut};

/// Tag used by [`DistMatrix::gather`].
const GATHER_TAG: u64 = 0x5157;

/// One rank's share of a block-cyclic distributed square matrix.
#[derive(Clone)]
pub struct DistMatrix<T> {
    /// Global matrix order.
    pub n: usize,
    /// Block size.
    pub b: usize,
    /// Number of block rows/cols (`⌈n/b⌉`).
    pub nb: usize,
    /// Process-grid dims.
    pub pr: usize,
    /// Process-grid dims.
    pub pc: usize,
    /// This rank's grid coordinates.
    pub my_r: usize,
    /// This rank's grid coordinates.
    pub my_c: usize,
    /// Packed local data: my block rows × my block cols.
    pub local: Matrix<T>,
}

impl<T: Copy> DistMatrix<T> {
    /// Slice this rank's blocks out of a replicated global matrix.
    /// (Test- and example-scale construction; a production scatter would
    /// stream blocks, but ownership math is identical.)
    pub fn from_global(global: &Matrix<T>, b: usize, pr: usize, pc: usize, my_r: usize, my_c: usize) -> Self {
        let n = global.rows();
        assert_eq!(n, global.cols(), "matrix must be square");
        assert!(b > 0, "block size must be positive");
        let nb = n.div_ceil(b);
        let my_rows: Vec<usize> = (my_r..nb).step_by(pr).collect();
        let my_cols: Vec<usize> = (my_c..nb).step_by(pc).collect();
        let dim = |k: usize| b.min(n - k * b);
        let lrows: usize = my_rows.iter().map(|&k| dim(k)).sum();
        let lcols: usize = my_cols.iter().map(|&k| dim(k)).sum();
        if n == 0 {
            let local = Matrix::from_vec(0, 0, Vec::new());
            return DistMatrix { n, b, nb, pr, pc, my_r, my_c, local };
        }
        let mut local = Matrix::filled(lrows, lcols, global[(0, 0)]);
        let mut ro = 0;
        for &i in &my_rows {
            let bi = dim(i);
            let mut co = 0;
            for &j in &my_cols {
                let bj = dim(j);
                let src = global.subview(i * b, j * b, bi, bj);
                local.subview_mut(ro, co, bi, bj).copy_from(&src);
                co += bj;
            }
            ro += bi;
        }
        DistMatrix { n, b, nb, pr, pc, my_r, my_c, local }
    }

    /// Rows/cols of global block `k` (`b`, or the ragged remainder).
    #[inline]
    pub fn block_dim(&self, k: usize) -> usize {
        self.b.min(self.n - k * self.b)
    }

    /// Does this rank's process row own block row `k`?
    #[inline]
    pub fn owns_row(&self, k: usize) -> bool {
        k % self.pr == self.my_r
    }

    /// Does this rank's process column own block column `k`?
    #[inline]
    pub fn owns_col(&self, k: usize) -> bool {
        k % self.pc == self.my_c
    }

    /// Local row offset of owned block row `k`. Only the last global block
    /// is ragged, so owned block `k` starts at `(k / P_r) · b`.
    #[inline]
    pub fn local_row_start(&self, k: usize) -> usize {
        debug_assert!(self.owns_row(k));
        (k / self.pr) * self.b
    }

    /// Local column offset of owned block column `k`.
    #[inline]
    pub fn local_col_start(&self, k: usize) -> usize {
        debug_assert!(self.owns_col(k));
        (k / self.pc) * self.b
    }

    /// The k-th block-row strip (all my columns), immutable.
    pub fn row_strip(&self, k: usize) -> View<'_, T> {
        let r0 = self.local_row_start(k);
        self.local.subview(r0, 0, self.block_dim(k), self.local.cols())
    }

    /// The k-th block-row strip, mutable.
    pub fn row_strip_mut(&mut self, k: usize) -> ViewMut<'_, T> {
        let r0 = self.local_row_start(k);
        let bk = self.block_dim(k);
        let w = self.local.cols();
        self.local.subview_mut(r0, 0, bk, w)
    }

    /// The k-th block-column strip (all my rows), immutable.
    pub fn col_strip(&self, k: usize) -> View<'_, T> {
        let c0 = self.local_col_start(k);
        self.local.subview(0, c0, self.local.rows(), self.block_dim(k))
    }

    /// The k-th block-column strip, mutable.
    pub fn col_strip_mut(&mut self, k: usize) -> ViewMut<'_, T> {
        let c0 = self.local_col_start(k);
        let bk = self.block_dim(k);
        let h = self.local.rows();
        self.local.subview_mut(0, c0, h, bk)
    }

    /// Owned diagonal block `(k, k)`, mutable.
    pub fn diag_block_mut(&mut self, k: usize) -> ViewMut<'_, T> {
        let r0 = self.local_row_start(k);
        let c0 = self.local_col_start(k);
        let bk = self.block_dim(k);
        self.local.subview_mut(r0, c0, bk, bk)
    }

    /// Owned diagonal block, copied out.
    pub fn diag_block(&self, k: usize) -> Matrix<T> {
        let r0 = self.local_row_start(k);
        let c0 = self.local_col_start(k);
        let bk = self.block_dim(k);
        self.local.block(r0, c0, bk, bk)
    }
}

impl<T: Copy + Send + Sync + 'static> DistMatrix<T> {
    /// Collect the full matrix on grid rank 0 (`Ok(Some)` there, `Ok(None)`
    /// elsewhere). Collective over `grid.grid`; a lost or failed peer
    /// surfaces as the typed [`CommError`].
    pub fn gather(&self, grid: &ProcessGrid) -> Result<Option<Matrix<T>>, CommError> {
        let comm = &grid.grid;
        if comm.rank() != 0 {
            comm.send(0, GATHER_TAG, self.local.as_slice().to_vec())?;
            return Ok(None);
        }
        if self.n == 0 {
            for src in 1..comm.size() {
                let _: Vec<T> = comm.recv(src, GATHER_TAG)?;
            }
            return Ok(Some(Matrix::from_vec(0, 0, Vec::new())));
        }
        // rank 0 always owns block (0,0), so its local matrix is non-empty here
        let fill = self.local.as_slice()[0];
        let mut out = Matrix::filled(self.n, self.n, fill);
        let dim = |k: usize| self.b.min(self.n - k * self.b);
        // local matrices per rank, rank 0's own first
        for r in 0..self.pr {
            for c in 0..self.pc {
                let rank = r * self.pc + c;
                let lrows: usize = (r..self.nb).step_by(self.pr).map(dim).sum();
                let lcols: usize = (c..self.nb).step_by(self.pc).map(dim).sum();
                let data: Vec<T> = if rank == 0 {
                    self.local.as_slice().to_vec()
                } else {
                    comm.recv(rank, GATHER_TAG)?
                };
                assert_eq!(data.len(), lrows * lcols, "gather size mismatch from rank {rank}");
                if lrows == 0 || lcols == 0 {
                    continue;
                }
                let lm = Matrix::from_vec(lrows, lcols, data);
                for (li, i) in (r..self.nb).step_by(self.pr).enumerate() {
                    for (lj, j) in (c..self.nb).step_by(self.pc).enumerate() {
                        let src = lm.subview(li * self.b, lj * self.b, dim(i), dim(j));
                        out.set_block(i * self.b, j * self.b, &src);
                    }
                }
            }
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::Runtime;

    fn iota(n: usize) -> Matrix<i64> {
        Matrix::from_fn(n, n, |i, j| (i * n + j) as i64)
    }

    #[test]
    fn from_global_slices_block_cyclically() {
        let g = iota(10);
        // 2x2 grid, b=3: rank (0,0) owns block rows {0,2}, cols {0,2}
        let d = DistMatrix::from_global(&g, 3, 2, 2, 0, 0);
        assert_eq!(d.nb, 4);
        // local rows: blocks 0 (3) + 2 (3) = 6; block 3 ragged (1) belongs to row 1
        assert_eq!(d.local.rows(), 6);
        assert_eq!(d.local.cols(), 6);
        assert_eq!(d.local[(0, 0)], g[(0, 0)]);
        // local (3,3) = block (2,2) origin = global (6,6)
        assert_eq!(d.local[(3, 3)], g[(6, 6)]);
    }

    #[test]
    fn ragged_tail_blocks_land_correctly() {
        let g = iota(7);
        let d = DistMatrix::from_global(&g, 3, 2, 2, 1, 1); // owns block rows {1}, cols {1}
        assert_eq!(d.block_dim(2), 1);
        assert_eq!(d.local.rows(), 3); // block row 1 of size 3
        assert_eq!(d.local[(0, 0)], g[(3, 3)]);
    }

    #[test]
    fn strips_address_the_kth_panels() {
        let g = iota(12);
        let d = DistMatrix::from_global(&g, 3, 2, 2, 0, 1); // rows {0,2}, cols {1,3}
        let rs = d.row_strip(2); // block row 2, local row offset = 3
        assert_eq!(rs.rows(), 3);
        assert_eq!(rs.cols(), 6);
        assert_eq!(rs.at(0, 0), g[(6, 3)]); // local col 0 = block col 1
        let cs = d.col_strip(3); // block col 3, local col offset = 3
        assert_eq!(cs.cols(), 3);
        assert_eq!(cs.at(0, 0), g[(0, 9)]);
    }

    #[test]
    fn gather_round_trips_for_several_grids_and_sizes() {
        for (pr, pc, n, b) in [(1, 1, 5, 2), (2, 2, 10, 3), (2, 3, 13, 4), (3, 2, 9, 3)] {
            let g = iota(n);
            let got = Runtime::new(pr * pc).run(|comm| {
                let grid = ProcessGrid::new(comm, pr, pc).unwrap();
                let (r, c) = grid.coords();
                let d = DistMatrix::from_global(&g, b, pr, pc, r, c);
                d.gather(&grid).unwrap()
            });
            let root = got[0].clone().expect("root gathers");
            assert!(root.eq_exact(&g), "grid {pr}x{pc} n={n} b={b}");
            assert!(got[1..].iter().all(|o| o.is_none()));
        }
    }
}
