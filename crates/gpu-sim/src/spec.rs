//! Device specifications (calibration constants).

/// Performance/capacity constants of one GPU plus its host link.
///
/// [`GpuSpec::summit_v100`] is calibrated from the paper:
/// §5.1.1 (16 GB HBM2, NVLink-2, V100 peaks) and §4.1 (measured 6.8 TF/s
/// SRGEMM, 7.8 TF/s no-FMA ceiling). The host-memory bandwidth is chosen so
/// Eq. 5 reproduces the paper's minimum-block-size estimate of 624
/// (`3·t_m/2·t_f = 624` ⇒ ≈75 GB/s effective DRAM bandwidth per GPU's host
/// share).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Sustained SRGEMM rate, flop/s (the paper's measured 6.8 TF/s).
    pub srgemm_flops: f64,
    /// Theoretical no-FMA peak, flop/s (used for "percent of peak" labels).
    pub peak_flops: f64,
    /// Host→device bandwidth, bytes/s (one NVLink direction).
    pub h2d_bw: f64,
    /// Device→host bandwidth, bytes/s.
    pub d2h_bw: f64,
    /// Host CPU↔DRAM bandwidth available to this GPU's hostUpdate, bytes/s.
    pub host_mem_bw: f64,
    /// Fixed overhead per kernel launch or transfer, seconds.
    pub op_latency: f64,
}

impl GpuSpec {
    /// One NVIDIA V100 of a Summit node, per the paper's calibration.
    pub fn summit_v100() -> Self {
        GpuSpec {
            mem_bytes: 16 * (1 << 30),
            srgemm_flops: 6.8e12,
            peak_flops: 7.8e12,
            h2d_bw: 50e9,
            d2h_bw: 50e9,
            host_mem_bw: 75e9,
            op_latency: 10e-6,
        }
    }

    /// A deliberately tiny device for unit tests: 1 MB of memory, round
    /// numbers for the rates so analytic expectations are simple.
    pub fn test_tiny() -> Self {
        GpuSpec {
            mem_bytes: 1 << 20,
            srgemm_flops: 1e9,
            peak_flops: 1e9,
            h2d_bw: 1e9,
            d2h_bw: 1e9,
            host_mem_bw: 1e9,
            op_latency: 0.0,
        }
    }

    /// Seconds to run `flops` on the SRGEMM engine.
    pub fn gemm_time(&self, flops: f64) -> f64 {
        self.op_latency + flops / self.srgemm_flops
    }

    /// Sustained SRGEMM rate for an `elem_bytes`-wide datapath, flop/s.
    ///
    /// The tensor-like low-precision model: the vector/tensor datapath
    /// retires a fixed number of *bytes* per cycle, so the semiring flop
    /// rate scales inversely with element width relative to the measured
    /// `f32` calibration — `u16` doubles it, `f64` halves it. This is the
    /// `t_f` variant the quantized (`MinPlusSatU16`/`MinPlusSatI32`)
    /// kernels feed, and what the lane-width ablation sweeps.
    pub fn srgemm_flops_for(&self, elem_bytes: usize) -> f64 {
        self.srgemm_flops * 4.0 / (elem_bytes.max(1) as f64)
    }

    /// Seconds to move `bytes` host→device.
    pub fn h2d_time(&self, bytes: f64) -> f64 {
        self.op_latency + bytes / self.h2d_bw
    }

    /// Seconds to move `bytes` device→host.
    pub fn d2h_time(&self, bytes: f64) -> f64 {
        self.op_latency + bytes / self.d2h_bw
    }

    /// Seconds for the host to ⊕-accumulate an `elems`-element tile:
    /// 2 reads + 1 write per element (paper §4.5's `3mn·t_m`).
    pub fn host_update_time(&self, elems: f64, elem_bytes: f64) -> f64 {
        3.0 * elems * elem_bytes / self.host_mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_spec_matches_paper_numbers() {
        let s = GpuSpec::summit_v100();
        assert_eq!(s.mem_bytes, 17_179_869_184);
        assert_eq!(s.srgemm_flops, 6.8e12);
        // Eq. 5 check lives in cost.rs; here just sanity on time helpers.
        let t = s.gemm_time(6.8e12);
        assert!((t - 1.0).abs() < 1e-3);
    }

    #[test]
    fn time_helpers_scale_linearly() {
        let s = GpuSpec::test_tiny();
        assert_eq!(s.h2d_time(1e9), 1.0);
        assert_eq!(s.d2h_time(5e8), 0.5);
        // 3 touches × (1e9/12) elems × 4 B / 1e9 B/s = 1 s
        assert_eq!(s.host_update_time(1e9 / 12.0, 4.0), 1.0);
    }
}
