//! Property-based checks of the semiring laws and kernel equivalences.

use proptest::prelude::*;
use srgemm::prelude::*;
use srgemm::gemm::gemm_with;
use srgemm::GemmAlgo;

/// Finite tropical elements: moderate magnitudes so ⊗ (=+) never overflows,
/// with ∞ mixed in at ~20% rate.
fn tropical_elem() -> impl Strategy<Value = f64> {
    // Integer-valued doubles: ⊗ (= IEEE +) is exact on them, so the monoid
    // and distributivity laws hold bit-for-bit (they fail for general floats
    // only because of rounding, not because the algebra is wrong).
    prop_oneof![
        4 => (-1000i64..1000).prop_map(|i| i as f64),
        1 => Just(f64::INFINITY),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn minplus_add_commutative_associative(a in tropical_elem(), b in tropical_elem(), c in tropical_elem()) {
        type S = MinPlus<f64>;
        prop_assert_eq!(S::add(a, b), S::add(b, a));
        prop_assert_eq!(S::add(S::add(a, b), c), S::add(a, S::add(b, c)));
    }

    #[test]
    fn minplus_mul_associative_with_identity(a in tropical_elem(), b in tropical_elem(), c in tropical_elem()) {
        type S = MinPlus<f64>;
        prop_assert_eq!(S::mul(S::mul(a, b), c), S::mul(a, S::mul(b, c)));
        prop_assert_eq!(S::mul(S::one(), a), a);
        prop_assert_eq!(S::mul(a, S::one()), a);
    }

    #[test]
    fn minplus_distributes(a in tropical_elem(), b in tropical_elem(), c in tropical_elem()) {
        type S = MinPlus<f64>;
        // a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c): min(a+min(b,c)) vs min(a+b, a+c)
        prop_assert_eq!(S::mul(a, S::add(b, c)), S::add(S::mul(a, b), S::mul(a, c)));
        prop_assert_eq!(S::mul(S::add(b, c), a), S::add(S::mul(b, a), S::mul(c, a)));
    }

    #[test]
    fn minplus_zero_annihilates(a in tropical_elem()) {
        type S = MinPlus<f64>;
        prop_assert_eq!(S::mul(S::zero(), a), S::zero());
        prop_assert_eq!(S::mul(a, S::zero()), S::zero());
        prop_assert_eq!(S::add(S::zero(), a), a);
    }

    #[test]
    fn minplus_add_idempotent(a in tropical_elem()) {
        type S = MinPlus<f64>;
        prop_assert_eq!(S::add(a, a), a);
    }

    #[test]
    fn maxmin_laws(a in tropical_elem(), b in tropical_elem(), c in tropical_elem()) {
        type S = MaxMin<f64>;
        prop_assert_eq!(S::add(a, b), S::add(b, a));
        prop_assert_eq!(S::mul(a, S::add(b, c)), S::add(S::mul(a, b), S::mul(a, c)));
        prop_assert_eq!(S::mul(S::zero(), a), S::zero());
    }
}

/// Quantized tropical elements (u16): the full non-negative domain including
/// values near the saturation boundary, with the `u16::MAX` sentinel mixed in
/// at ~20% rate. Unlike the float strategy there is no "moderate magnitude"
/// cap — saturation is the point.
fn quant_u16_elem() -> impl Strategy<Value = u16> {
    prop_oneof![
        3 => 0u16..1001,
        1 => (u16::MAX - 64)..u16::MAX,
        1 => Just(u16::MAX),
    ]
}

/// Quantized tropical elements (i32), **non-negative** — the semiring's
/// domain. Negative values are excluded by the quantization layer's contract
/// (they would break the annihilator law), so the laws are asserted exactly
/// where the solver operates.
fn quant_i32_elem() -> impl Strategy<Value = i32> {
    prop_oneof![
        3 => 0i32..1_000_001,
        1 => (i32::MAX - 64)..i32::MAX,
        1 => Just(i32::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quant_u16_semiring_laws(a in quant_u16_elem(), b in quant_u16_elem(), c in quant_u16_elem()) {
        type S = MinPlusSatU16;
        // (S, ⊕, 0̄) commutative monoid; ⊕ idempotent
        prop_assert_eq!(S::add(a, b), S::add(b, a));
        prop_assert_eq!(S::add(S::add(a, b), c), S::add(a, S::add(b, c)));
        prop_assert_eq!(S::add(S::zero(), a), a);
        prop_assert_eq!(S::add(a, a), a);
        // (S, ⊗, 1̄) monoid — saturating add stays associative
        prop_assert_eq!(S::mul(S::mul(a, b), c), S::mul(a, S::mul(b, c)));
        prop_assert_eq!(S::mul(S::one(), a), a);
        prop_assert_eq!(S::mul(a, S::one()), a);
        // distributivity (both sides) and annihilation — exact, not approximate
        prop_assert_eq!(S::mul(a, S::add(b, c)), S::add(S::mul(a, b), S::mul(a, c)));
        prop_assert_eq!(S::mul(S::add(b, c), a), S::add(S::mul(b, a), S::mul(c, a)));
        prop_assert_eq!(S::mul(S::zero(), a), S::zero());
        prop_assert_eq!(S::mul(a, S::zero()), S::zero());
    }

    #[test]
    fn quant_u16_saturating_add_never_wraps(a in quant_u16_elem(), b in quant_u16_elem()) {
        type S = MinPlusSatU16;
        // ⊗ is min(a + b, MAX) over ℕ: monotone in both operands, ≥ each
        // finite operand, and never wraps past the sentinel
        let sum = a as u32 + b as u32;
        prop_assert_eq!(S::mul(a, b) as u32, sum.min(u16::MAX as u32));
        prop_assert!(S::mul(a, b) >= a.min(b));
    }

    #[test]
    fn quant_i32_semiring_laws(a in quant_i32_elem(), b in quant_i32_elem(), c in quant_i32_elem()) {
        type S = MinPlusSatI32;
        prop_assert_eq!(S::add(a, b), S::add(b, a));
        prop_assert_eq!(S::add(S::add(a, b), c), S::add(a, S::add(b, c)));
        prop_assert_eq!(S::add(S::zero(), a), a);
        prop_assert_eq!(S::add(a, a), a);
        prop_assert_eq!(S::mul(S::mul(a, b), c), S::mul(a, S::mul(b, c)));
        prop_assert_eq!(S::mul(S::one(), a), a);
        prop_assert_eq!(S::mul(a, S::one()), a);
        prop_assert_eq!(S::mul(a, S::add(b, c)), S::add(S::mul(a, b), S::mul(a, c)));
        prop_assert_eq!(S::mul(S::add(b, c), a), S::add(S::mul(b, a), S::mul(c, a)));
        prop_assert_eq!(S::mul(S::zero(), a), S::zero());
        prop_assert_eq!(S::mul(a, S::zero()), S::zero());
    }

    #[test]
    fn quant_i32_saturating_add_never_wraps(a in quant_i32_elem(), b in quant_i32_elem()) {
        type S = MinPlusSatI32;
        let sum = a as i64 + b as i64;
        prop_assert_eq!(S::mul(a, b) as i64, sum.min(i32::MAX as i64));
        prop_assert!(S::mul(a, b) >= a.min(b));
    }

    #[test]
    fn quant_i32_fma_override_equals_the_composed_form(
        a in quant_i32_elem(), b in quant_i32_elem(), c in quant_i32_elem(),
    ) {
        // the kernel-facing fma uses a widened unsigned add + unsigned min
        // instead of saturating_add; on the non-negative domain the two
        // must be indistinguishable, element for element
        type S = MinPlusSatI32;
        prop_assert_eq!(S::fma(c, a, b), S::add(c, S::mul(a, b)));
    }

    #[test]
    fn quant_packed_kernel_matches_naive(
        (m, n, k) in (1usize..20, 1usize..70, 1usize..20),
        seed in any::<u64>(),
    ) {
        // the widened-lane packed kernel agrees with naive for the quantized
        // semirings on shapes straddling the u16 NR=64 boundary, sentinel
        // values included
        use srgemm::gemm::{gemm_naive, gemm_packed};
        let mk = |s: u64, rows: usize, cols: usize| {
            let mut state = s | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (state >> 61) == 0 { u16::MAX } else { ((state >> 33) % 5000) as u16 }
            })
        };
        let a = mk(seed, m, k);
        let b = mk(seed.wrapping_add(1), k, n);
        let c0 = mk(seed.wrapping_add(2), m, n);
        let mut want = c0.clone();
        gemm_naive::<MinPlusSatU16>(&mut want.view_mut(), &a.view(), &b.view());
        let mut got = c0.clone();
        gemm_packed::<MinPlusSatU16>(&mut got.view_mut(), &a.view(), &b.view());
        prop_assert!(want.eq_exact(&got), "u16 packed diverged on {}x{}x{}", m, n, k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_and_parallel_match_naive(
        (m, n, k) in (1usize..24, 1usize..24, 1usize..24),
        seed in any::<u64>(),
    ) {
        let mk = |s: u64, rows: usize, cols: usize| {
            let mut state = s | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (state >> 60) == 0 { f64::INFINITY } else { ((state >> 33) % 2048) as f64 }
            })
        };
        let a = mk(seed, m, k);
        let b = mk(seed.wrapping_add(1), k, n);
        let c0 = mk(seed.wrapping_add(2), m, n);

        let mut want = c0.clone();
        gemm_with::<MinPlus<f64>>(GemmAlgo::Naive, &mut want.view_mut(), &a.view(), &b.view());
        for algo in [GemmAlgo::Blocked, GemmAlgo::Parallel] {
            let mut got = c0.clone();
            gemm_with::<MinPlus<f64>>(algo, &mut got.view_mut(), &a.view(), &b.view());
            prop_assert!(want.eq_exact(&got), "algo {:?} diverged", algo);
        }
    }

    #[test]
    fn thread_budgeted_parallel_is_bit_equal_to_serial(
        (m, n, k) in (1usize..96, 1usize..40, 1usize..40),
        threads in 0usize..9,
        seed in any::<u64>(),
    ) {
        // The thread budget must never change the answer: row slabs are
        // disjoint and min-plus has no rounding, so every thread count —
        // including the degenerate 0 (treated as 1) and counts far above
        // m / MIN_ROWS_PER_SLAB — must be bit-identical to the serial kernel.
        use srgemm::gemm::{gemm_blocked, gemm_parallel_threads};
        let mk = |s: u64, rows: usize, cols: usize| {
            let mut state = s | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (state >> 60) == 0 { f64::INFINITY } else { ((state >> 33) % 2048) as f64 }
            })
        };
        let a = mk(seed, m, k);
        let b = mk(seed.wrapping_add(1), k, n);
        let c0 = mk(seed.wrapping_add(2), m, n);

        let mut want = c0.clone();
        gemm_blocked::<MinPlus<f64>>(&mut want.view_mut(), &a.view(), &b.view());
        let mut got = c0.clone();
        gemm_parallel_threads::<MinPlus<f64>>(&mut got.view_mut(), &a.view(), &b.view(), threads);
        prop_assert!(want.eq_exact(&got), "threads={} diverged on {}x{}x{}", threads, m, n, k);
    }

    #[test]
    fn gemm_monotone_in_c(n in 1usize..12, seed in any::<u64>()) {
        // min-plus gemm can only lower entries of C
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 512) as f64
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let b = Matrix::from_fn(n, n, |_, _| next());
        let c0 = Matrix::from_fn(n, n, |_, _| next());
        let mut c = c0.clone();
        gemm::<MinPlus<f64>>(&mut c.view_mut(), &a.view(), &b.view());
        for i in 0..n {
            for j in 0..n {
                prop_assert!(c[(i, j)] <= c0[(i, j)]);
            }
        }
    }

    #[test]
    fn closure_matches_squaring(n in 1usize..20, seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let base = Matrix::from_fn(n, n, |i, j| {
            let r = next();
            if i == j { 0.0 }
            else if r % 3 == 0 { f64::INFINITY }
            else { ((r >> 33) % 100) as f64 + 1.0 }
        });
        let mut fw = base.clone();
        let mut sq = base.clone();
        fw_closure::<MinPlus<f64>>(&mut fw.view_mut());
        fw_closure_squaring::<MinPlus<f64>>(&mut sq.view_mut(), false);
        prop_assert!(fw.eq_exact(&sq));
    }

    #[test]
    fn closure_triangle_inequality(n in 2usize..16, seed in any::<u64>()) {
        // after closure: d(i,j) ≤ d(i,k) + d(k,j) for all i,j,k
        let mut state = seed | 1;
        let base = Matrix::from_fn(n, n, |i, j| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if i == j { 0.0 } else { ((state >> 33) % 1000) as f64 }
        });
        let mut d = base;
        fw_closure::<MinPlus<f64>>(&mut d.view_mut());
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(d[(i, j)] <= d[(i, k)] + d[(k, j)] + 1e-9);
                }
            }
        }
    }
}
