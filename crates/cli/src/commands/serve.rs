//! `apsp serve` — stand up the epoch-snapshot query engine over a graph
//! and speak the line protocol on stdin or TCP.
//!
//! The graph is solved once at startup (witness-annotated closure, so
//! `path` queries work); after that every line is a batched request
//! answered against a consistent epoch. Malformed input gets a typed
//! `err …` line, never a crash — CI's `serve-smoke` job feeds this
//! command garbage on purpose.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use apsp_core::serve::{handle_line, Engine};

use crate::args::Args;

const HELP: &str = "apsp serve — serve APSP queries over a solved graph

USAGE:
    apsp serve --input FILE [--format dimacs|edges] [--block N] [--listen ADDR]

OPTIONS:
    --input FILE     graph file to solve and serve (required)
    --format FMT     file format override (default: by extension)
    --block N        blocked-FW tile size for the startup solve [default: 64]
    --listen ADDR    serve TCP on ADDR (e.g. 127.0.0.1:4711) instead of stdin

PROTOCOL (one request per line; '#' starts a comment):
    dist s t [s t ...]      batched point-to-point distances
    many s t1 t2 ...        one source to many targets
    path s t                distance plus the reconstructed route
    update u v w [u v w..]  decrease-only edge batch; publishes a new epoch
    epoch | info            current epoch / matrix size
    quit                    close this connection (or stdin session)
    shutdown                stop the whole server

Replies are 'ok <epoch> …' or 'err <kind>: …'; rejected updates come back
in-line as 'reject@<i>=<kind>' tokens. Bad input never kills the server.";

/// Entry point for `apsp serve`.
pub fn run(argv: &[String]) -> Result<(), String> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(argv)?;
    let input: String = args.req("input")?;
    let block: usize = args.opt("block", 64)?;
    if block == 0 {
        return Err("--block must be positive".into());
    }

    let g = super::load_graph(&input, args.opt_str("format"))?;
    let t0 = Instant::now();
    let engine = Arc::new(Engine::solve_from_graph(&g, block));
    eprintln!(
        "serve: solved {} (n = {}, m = {}) in {:.3} s; epoch 0 published",
        input,
        g.n(),
        g.m(),
        t0.elapsed().as_secs_f64()
    );

    match args.opt_str("listen") {
        Some(addr) => serve_tcp(engine, addr),
        None => serve_stdin(&engine),
    }
}

/// One request/response session over stdin/stdout. Returns whether the
/// peer asked for a full shutdown (irrelevant here — both end the loop).
fn serve_stdin(engine: &Engine) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let Some(reply) = handle_line(engine, &line) else { continue };
        writeln!(out, "{}", reply.text).and_then(|_| out.flush()).map_err(|e| format!("stdout: {e}"))?;
        if reply.close || reply.shutdown {
            break;
        }
    }
    eprintln!("serve: session closed");
    Ok(())
}

fn serve_tcp(engine: Arc<Engine>, addr: &str) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    eprintln!("serve: listening on {local}");
    let stop = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: accept: {e}");
                continue;
            }
        };
        let engine = Arc::clone(&engine);
        let conn_stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            if let Err(e) = serve_conn(&engine, stream, &conn_stop, local) {
                eprintln!("serve: connection: {e}");
            }
        }));
        // a shutdown handled on the connection we just spawned may have
        // raced past the top-of-loop check; re-check before blocking in
        // accept again (the handler wakes us with a dummy connection)
        if stop.load(Ordering::Acquire) {
            break;
        }
    }
    for w in workers {
        w.join().ok();
    }
    eprintln!("serve: shut down");
    Ok(())
}

fn serve_conn(
    engine: &Engine,
    stream: TcpStream,
    stop: &AtomicBool,
    local: std::net::SocketAddr,
) -> Result<(), String> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("recv: {e}"))?;
        let Some(reply) = handle_line(engine, &line) else { continue };
        writer
            .write_all(reply.text.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        if reply.shutdown {
            stop.store(true, Ordering::Release);
            // wake the accept loop so it can observe the stop flag
            TcpStream::connect(local).ok();
            return Ok(());
        }
        if reply.close {
            return Ok(());
        }
    }
    Ok(())
}
