//! Runtime: run an SPMD closure with one cooperatively-scheduled task per
//! rank, multiplexed over a bounded worker pool (see [`crate::exec`]).
//!
//! Each rank task owns a dedicated call stack, but only `workers` tasks
//! *execute* at any instant: a rank that blocks in `recv`/`split` or a
//! collective parks its task and hands its worker slot to the next runnable
//! rank, and message delivery re-enqueues the waiter. That is what lets one
//! development box simulate 1024+ ranks — concurrency is bounded by the
//! pool, not by `p`. Receive timeouts are deadlines on the scheduler's
//! timer wheel, serviced by a single runtime-scoped timekeeper thread that
//! also performs fault-delayed deliveries (no fire-and-forget helper
//! threads anywhere in the stack).
//!
//! Failure is a first-class outcome: the `try_run*` entry points return a
//! typed [`RunError`] with per-rank failures in the order they happened
//! (first entry = first failure), and the moment any rank fails — returns
//! an error *or* panics — the runtime poisons every mailbox so blocked
//! peers wake immediately with [`crate::CommError::PeerFailed`] instead of
//! burning the full receive timeout. The panic-flavoured `run*` wrappers
//! keep the old ergonomics for tests.

use std::any::Any;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::comm::{Comm, Shared};
use crate::counters::TrafficReport;
use crate::error::CommError;
use crate::exec::ExecStats;
use crate::fault::{FaultPlan, FaultState};
use crate::placement::Placement;
use crate::trace::{RunTrace, TraceState};

/// Why one rank failed.
#[derive(Clone, PartialEq, Eq)]
pub enum FailureKind<E> {
    /// The rank's closure returned this error.
    App(E),
    /// The rank's closure panicked; the payload rendered as a string.
    Panic(String),
}

impl<E: fmt::Display> fmt::Display for FailureKind<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::App(e) => fmt::Display::fmt(e, f),
            FailureKind::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

impl<E: fmt::Display> fmt::Debug for FailureKind<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// One rank's failure.
#[derive(Clone, PartialEq, Eq)]
pub struct RankFailure<E> {
    /// World rank that failed.
    pub rank: usize,
    /// What went wrong on it.
    pub error: FailureKind<E>,
}

/// A failed SPMD run: every rank that failed, in the order the failures
/// were observed — `failures[0]` is the *first* failure, the one that
/// (via mailbox poisoning) usually caused the rest.
#[derive(Clone, PartialEq, Eq)]
pub struct RunError<E> {
    /// Per-rank failures in observation order (never empty).
    pub failures: Vec<RankFailure<E>>,
}

impl<E> RunError<E> {
    /// The first failure — the root cause under first-failure attribution.
    pub fn first(&self) -> &RankFailure<E> {
        &self.failures[0]
    }
}

impl<E: fmt::Display> fmt::Display for RunError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self.first();
        write!(f, "rank {} failed: {}", first.rank, first.error)?;
        if self.failures.len() > 1 {
            write!(f, " ({} more rank(s) failed after it)", self.failures.len() - 1)?;
        }
        Ok(())
    }
}

impl<E: fmt::Display> fmt::Debug for RunError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl<E: fmt::Display> std::error::Error for RunError<E> {}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// Everything one run produces; the public `run*`/`try_run*` wrappers each
/// expose the slice of this tuple they promise.
type RunOutcome<R, E> = (Result<Vec<R>, RunError<E>>, TrafficReport, Option<RunTrace>, ExecStats);

/// Configures and launches an SPMD job. Each rank runs the user closure as
/// a cooperatively-scheduled task with a [`Comm`] world communicator;
/// [`Runtime::with_workers`] bounds how many execute concurrently.
pub struct Runtime {
    p: usize,
    placement: Placement,
    recv_timeout: Duration,
    faults: FaultPlan,
    workers: Option<usize>,
    stack_bytes: Option<usize>,
}

impl Runtime {
    /// A runtime with `p` ranks, one rank per node (every message is
    /// inter-node), a 30 s deadlock-detection timeout, and a worker pool
    /// sized to the host's available parallelism (capped at `p`).
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        Runtime {
            p,
            placement: Placement::one_rank_per_node(p),
            recv_timeout: Duration::from_secs(30),
            faults: FaultPlan::none(),
            workers: None,
            stack_bytes: None,
        }
    }

    /// Use an explicit rank→node placement (paper §3.4).
    ///
    /// # Panics
    /// Panics if the placement's rank count differs from the runtime's.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        assert_eq!(placement.num_ranks(), self.p, "placement rank count mismatch");
        self.placement = placement;
        self
    }

    /// Override the receive timeout (tests of deadlock behaviour shorten it).
    pub fn with_recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// Attach a deterministic fault-injection plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Bound the worker pool: at most `workers` rank tasks execute
    /// concurrently, regardless of `p`. The default is the host's available
    /// parallelism capped at `p`. Any `workers >= 1` is deadlock-free —
    /// blocked ranks park and release their slot.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "the worker pool needs at least one slot");
        self.workers = Some(workers);
        self
    }

    /// Override the per-rank stack size in bytes (default: the platform
    /// thread default, ≈2 MiB of lazily-committed address space). Large-`p`
    /// smoke tests with shallow closures can shrink this substantially.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_bytes = Some(bytes);
        self
    }

    fn worker_count(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(self.p)
                .max(1)
        })
    }

    /// Run the SPMD closure; returns per-rank results in rank order.
    ///
    /// # Panics
    /// Panics with the [`RunError`] report if any rank fails (deadlock
    /// timeout, injected fault, or a panic inside the closure).
    pub fn run<R: Send>(&self, f: impl Fn(Comm) -> R + Send + Sync) -> Vec<R> {
        self.run_traced(f).0
    }

    /// Like [`Runtime::run`] but also returns the traffic report.
    pub fn run_traced<R: Send>(
        &self,
        f: impl Fn(Comm) -> R + Send + Sync,
    ) -> (Vec<R>, TrafficReport) {
        let (out, traffic, _, _) =
            self.try_run_inner(move |comm| Ok::<R, CommError>(f(comm)), None);
        match out {
            Ok(v) => (v, traffic),
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Runtime::run_traced`] but additionally records a full
    /// [`RunTrace`]: per-rank phase spans (opened via [`Comm::phase`]) and
    /// per-message events, on a shared monotonic clock. Export it with
    /// [`RunTrace::to_chrome_json`] / [`RunTrace::phase_summary`].
    pub fn run_with_trace<R: Send>(
        &self,
        f: impl Fn(Comm) -> R + Send + Sync,
    ) -> (Vec<R>, TrafficReport, RunTrace) {
        let state = Arc::new(TraceState::new(self.p));
        let (out, traffic, trace, _) =
            self.try_run_inner(move |comm| Ok::<R, CommError>(f(comm)), Some(state));
        match out {
            Ok(v) => (v, traffic, trace.expect("trace state was attached")),
            Err(e) => panic!("{e}"),
        }
    }

    /// Run a fallible SPMD closure; returns per-rank results in rank order,
    /// or a [`RunError`] naming every failed rank (first failure first).
    /// The instant any rank fails, all mailboxes are poisoned so the other
    /// ranks fail fast with [`CommError::PeerFailed`] rather than waiting
    /// out their receive timeouts.
    pub fn try_run<R: Send, E: Send>(
        &self,
        f: impl Fn(Comm) -> Result<R, E> + Send + Sync,
    ) -> Result<Vec<R>, RunError<E>> {
        self.try_run_inner(f, None).0
    }

    /// Like [`Runtime::try_run`] but also returns the traffic report
    /// (counted even for a failed run — the bytes were sent).
    pub fn try_run_traced<R: Send, E: Send>(
        &self,
        f: impl Fn(Comm) -> Result<R, E> + Send + Sync,
    ) -> (Result<Vec<R>, RunError<E>>, TrafficReport) {
        let (out, traffic, _, _) = self.try_run_inner(f, None);
        (out, traffic)
    }

    /// Like [`Runtime::try_run_traced`] but additionally returns the
    /// executor's scheduling counters ([`ExecStats`]) — in particular
    /// `peak_running`, which the scale suite asserts never exceeds the
    /// worker-pool size.
    pub fn try_run_with_stats<R: Send, E: Send>(
        &self,
        f: impl Fn(Comm) -> Result<R, E> + Send + Sync,
    ) -> (Result<Vec<R>, RunError<E>>, TrafficReport, ExecStats) {
        let (out, traffic, _, stats) = self.try_run_inner(f, None);
        (out, traffic, stats)
    }

    /// Like [`Runtime::try_run_traced`] but additionally records a full
    /// [`RunTrace`] (also returned for failed runs, where it shows how far
    /// each rank got).
    pub fn try_run_with_trace<R: Send, E: Send>(
        &self,
        f: impl Fn(Comm) -> Result<R, E> + Send + Sync,
    ) -> (Result<Vec<R>, RunError<E>>, TrafficReport, RunTrace) {
        let state = Arc::new(TraceState::new(self.p));
        let (out, traffic, trace, _) = self.try_run_inner(f, Some(state));
        (out, traffic, trace.expect("trace state was attached"))
    }

    fn try_run_inner<R: Send, E: Send>(
        &self,
        f: impl Fn(Comm) -> Result<R, E> + Send + Sync,
        trace: Option<Arc<TraceState>>,
    ) -> RunOutcome<R, E> {
        let faults = (!self.faults.is_empty())
            .then(|| FaultState::new(self.faults.clone(), self.p));
        let shared = Arc::new(Shared::new(
            self.p,
            self.worker_count(),
            self.placement.clone(),
            self.recv_timeout,
            trace.clone(),
            faults,
        ));
        let results: Vec<Mutex<Option<R>>> = (0..self.p).map(|_| Mutex::new(None)).collect();
        let failures: Mutex<Vec<RankFailure<E>>> = Mutex::new(Vec::new());
        let f = &f;
        let failures_ref = &failures;

        std::thread::scope(|scope| {
            // The timekeeper services the deadline wheel (recv/split
            // timeouts) and performs fault-delayed deliveries. It is scoped
            // to this run: shutdown() below ends it, and any still-pending
            // delayed deliveries are cancelled with it — nothing outlives
            // the runtime.
            let tk_shared = shared.clone();
            std::thread::Builder::new()
                .name("mpi-sim-timer".to_string())
                .spawn_scoped(scope, move || {
                    let deliver_shared = tk_shared.clone();
                    tk_shared.sched.timekeeper_loop(move |dst, key, payload| {
                        deliver_shared.mailboxes[dst].deliver(key, payload);
                        deliver_shared.sched.wake(dst);
                    });
                })
                .expect("spawn timekeeper thread");

            let mut handles = Vec::with_capacity(self.p);
            for (rank, slot) in results.iter().enumerate() {
                let shared = shared.clone();
                let mut builder =
                    std::thread::Builder::new().name(format!("rank-{rank}"));
                if let Some(bytes) = self.stack_bytes {
                    builder = builder.stack_size(bytes);
                }
                handles.push(
                    builder
                        .spawn_scoped(scope, move || {
                            // wait for a worker slot before touching user code
                            shared.sched.register_current(rank);
                            let comm = Comm::world(shared.clone(), rank);
                            // catch_unwind keeps one rank's panic from
                            // unwinding through the scope while peers are
                            // still blocked (the old double-panic abort).
                            match std::panic::catch_unwind(AssertUnwindSafe(|| f(comm))) {
                                Ok(Ok(r)) => *slot.lock() = Some(r),
                                Ok(Err(e)) => {
                                    // record before poisoning so the root
                                    // cause always precedes the PeerFailed
                                    // wakeups it triggers
                                    failures_ref
                                        .lock()
                                        .push(RankFailure { rank, error: FailureKind::App(e) });
                                    shared.poison(rank);
                                }
                                Err(payload) => {
                                    let msg = panic_message(payload.as_ref());
                                    failures_ref
                                        .lock()
                                        .push(RankFailure { rank, error: FailureKind::Panic(msg) });
                                    shared.poison(rank);
                                }
                            }
                            // release the worker slot to the next runnable rank
                            shared.sched.finish(rank);
                        })
                        .expect("spawn rank thread"),
                );
            }
            for h in handles {
                // rank panics are caught above; a join error here would be
                // a bug in the harness itself
                h.join().expect("rank thread infrastructure panicked");
            }
            // all ranks are done — stop the timekeeper (joined by the scope)
            shared.sched.shutdown();
        });

        let failures = failures.into_inner();
        let traffic = shared.counters.snapshot();
        let stats = shared.sched.stats();
        let trace = trace.map(|t| t.finish());
        let out = if failures.is_empty() {
            Ok(results
                .into_iter()
                .map(|m| m.into_inner().expect("rank finished without a result"))
                .collect())
        } else {
            Err(RunError { failures })
        };
        (out, traffic, trace, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::time::Instant;

    #[test]
    fn ranks_see_their_ids() {
        let out = Runtime::new(5).run(|comm| (comm.rank(), comm.size()));
        for (i, &(r, s)) in out.iter().enumerate() {
            assert_eq!(r, i);
            assert_eq!(s, 5);
        }
    }

    #[test]
    fn traced_run_counts_internode_bytes() {
        let rt = Runtime::new(2);
        let (_, report) = rt.run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 128]).unwrap();
            } else {
                let _: Vec<u8> = comm.recv(0, 0).unwrap();
            }
        });
        assert_eq!(report.total_nic_bytes(), 128);
        assert_eq!(report.total_msgs, 1);
    }

    #[test]
    fn single_node_placement_reports_zero_nic_traffic() {
        let rt = Runtime::new(2).with_placement(Placement::single_node(2));
        let (_, report) = rt.run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 128]).unwrap();
            } else {
                let _: Vec<u8> = comm.recv(0, 0).unwrap();
            }
        });
        assert_eq!(report.total_nic_bytes(), 0);
        assert_eq!(report.total_intra_bytes(), 128);
    }

    #[test]
    fn traced_run_records_spans_and_messages() {
        let rt = Runtime::new(2);
        let (_, report, trace) = rt.run_with_trace(|comm| {
            let _p = comm.phase("DiagBcast");
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 64]).unwrap();
            } else {
                let _: Vec<u8> = comm.recv(0, 0).unwrap();
            }
        });
        assert_eq!(trace.num_ranks(), 2);
        for tl in &trace.per_rank {
            assert_eq!(tl.spans.len(), 1);
            assert_eq!(tl.spans[0].name, "DiagBcast");
        }
        // only rank 0 sent anything
        assert_eq!(trace.per_rank[0].events.len(), 1);
        let e = trace.per_rank[0].events[0];
        assert_eq!((e.dst_world, e.bytes, e.nic, e.phase), (1, 64, true, Some("DiagBcast")));
        assert!(trace.per_rank[1].events.is_empty());
        assert_eq!(report.phase_nic_bytes("DiagBcast"), 64);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn deadlock_is_converted_to_panic() {
        Runtime::new(1)
            .with_recv_timeout(Duration::from_millis(20))
            .run(|comm| {
                let _: u8 = comm.recv(0, 9).unwrap(); // nobody ever sends
            });
    }

    #[test]
    fn try_run_returns_typed_timeout_instead_of_panicking() {
        let err = Runtime::new(1)
            .with_recv_timeout(Duration::from_millis(20))
            .try_run(|comm| comm.recv::<u8>(0, 9))
            .expect_err("nobody ever sends");
        assert!(matches!(
            err.first().error,
            FailureKind::App(CommError::RecvTimeout(_))
        ));
    }

    #[test]
    fn rank_panic_is_caught_and_peers_fail_fast() {
        // Under the old runtime this was the double-panic scenario: rank 0
        // panics while rank 1 blocks; now rank 1 is woken immediately with
        // PeerFailed and the whole job reports a typed RunError.
        let rt = Runtime::new(2).with_recv_timeout(Duration::from_secs(30));
        let start = Instant::now();
        let err = rt
            .try_run(|comm| -> Result<(), CommError> {
                if comm.rank() == 0 {
                    panic!("rank 0 exploded");
                }
                let _: u8 = comm.recv(0, 1)?;
                Ok(())
            })
            .expect_err("rank 0 panics");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "peers must not burn the 30s recv timeout"
        );
        let first = err.first();
        assert_eq!(first.rank, 0);
        assert!(matches!(&first.error, FailureKind::Panic(m) if m.contains("rank 0 exploded")));
        assert!(err
            .failures
            .iter()
            .any(|f| f.rank == 1
                && matches!(f.error, FailureKind::App(CommError::PeerFailed { rank: 0 }))));
    }

    #[test]
    fn app_error_poisons_blocked_peers() {
        let rt = Runtime::new(3).with_recv_timeout(Duration::from_secs(30));
        let start = Instant::now();
        let err = rt
            .try_run(|comm| -> Result<u8, String> {
                if comm.rank() == 2 {
                    return Err("disk on rank 2 caught fire".to_string());
                }
                comm.recv::<u8>(2, 1).map_err(|e| e.to_string())
            })
            .expect_err("rank 2 fails");
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(err.first().rank, 2);
        assert!(matches!(&err.first().error, FailureKind::App(m) if m.contains("caught fire")));
        // both peers were woken with PeerFailed{2}, stringified by the map_err
        let woken = err
            .failures
            .iter()
            .filter(|f| matches!(&f.error, FailureKind::App(m) if m.contains("peer failure")))
            .count();
        assert_eq!(woken, 2);
        assert!(format!("{err}").contains("2 more rank(s)"), "{err}");
    }

    /// The ordering claim the comment in `try_run_inner` makes — "record
    /// before poisoning so the root cause always precedes the PeerFailed
    /// wakeups" — exercised at high p on a tiny pool, where the poison
    /// fan-out wakes hundreds of parked ranks nearly simultaneously.
    #[test]
    fn root_cause_app_error_precedes_peer_failed_cascade_at_high_p() {
        let p = 256;
        let rt = Runtime::new(p)
            .with_workers(4)
            .with_stack_size(256 * 1024)
            .with_recv_timeout(Duration::from_secs(60));
        let err = rt
            .try_run(move |comm| -> Result<(), CommError> {
                if comm.rank() == 17 {
                    // park long enough for most peers to block in recv
                    comm.yield_now();
                    return Err(CommError::Killed { rank: 17 });
                }
                let _: u8 = comm.recv(17, 1)?;
                Ok(())
            })
            .expect_err("rank 17 fails");
        assert_eq!(err.first().rank, 17, "root cause must be the first failure recorded");
        assert!(matches!(err.first().error, FailureKind::App(CommError::Killed { rank: 17 })));
        assert_eq!(err.failures.len(), p, "every peer reports the cascade");
        for f in &err.failures[1..] {
            assert!(
                matches!(f.error, FailureKind::App(CommError::PeerFailed { rank: 17 })),
                "rank {} must blame the root cause, got {:?}",
                f.rank,
                f.error
            );
        }
    }

    #[test]
    fn root_cause_panic_precedes_peer_failed_cascade_at_high_p() {
        let p = 256;
        let rt = Runtime::new(p)
            .with_workers(4)
            .with_stack_size(256 * 1024)
            .with_recv_timeout(Duration::from_secs(60));
        let err = rt
            .try_run(move |comm| -> Result<(), CommError> {
                if comm.rank() == 99 {
                    comm.yield_now();
                    panic!("rank 99 exploded at scale");
                }
                let _: u8 = comm.recv(99, 1)?;
                Ok(())
            })
            .expect_err("rank 99 panics");
        assert_eq!(err.first().rank, 99);
        assert!(matches!(&err.first().error, FailureKind::Panic(m) if m.contains("exploded")));
        for f in &err.failures[1..] {
            assert!(matches!(f.error, FailureKind::App(CommError::PeerFailed { rank: 99 })));
        }
    }

    /// Regression for the helper-thread escape hatch: pairwise exchanges
    /// used to be written with raw `std::thread::spawn`, so a panic inside
    /// one aborted the process instead of producing a typed failure. The
    /// whole [`Comm::sendrecv`] exchange now runs on the rank's scheduled
    /// task, inside `catch_unwind` and the failure accounting.
    #[test]
    fn panic_during_sendrecv_exchange_is_a_typed_failure() {
        let p = 3;
        let err = Runtime::new(p)
            .try_run(move |comm| -> Result<(), CommError> {
                let right = (comm.rank() + 1) % p;
                let left = (comm.rank() + p - 1) % p;
                let _: u64 = comm.sendrecv(right, 1, comm.rank() as u64, left, 1)?;
                if comm.rank() == 1 {
                    panic!("boom mid-exchange");
                }
                // second exchange blocks the survivors until poisoned
                let _: u64 = comm.sendrecv(right, 2, comm.rank() as u64, left, 2)?;
                Ok(())
            })
            .expect_err("rank 1 panics");
        assert_eq!(err.first().rank, 1);
        assert!(matches!(&err.first().error, FailureKind::Panic(m) if m.contains("boom")));
        for f in &err.failures[1..] {
            assert!(matches!(f.error, FailureKind::App(CommError::PeerFailed { rank: 1 })));
        }
    }

    #[test]
    fn stats_report_pool_bounds_and_scheduling_activity() {
        let (out, _, stats) = Runtime::new(16).with_workers(2).try_run_with_stats(
            |comm| -> Result<u64, CommError> { comm.allreduce(comm.rank() as u64, |a, b| a + b) },
        );
        assert_eq!(out.unwrap(), vec![120; 16]);
        assert_eq!((stats.ranks, stats.workers), (16, 2));
        assert!(stats.peak_running <= 2, "pool of 2 ran {} tasks at once", stats.peak_running);
        assert!(stats.parks > 0, "an allreduce over 16 ranks must park someone");
        assert!(stats.wakes > 0);
    }

    #[test]
    fn kill_fault_terminates_every_rank_quickly() {
        // kill rank 1 before its very first send: the ring broadcast can
        // never complete, and every rank must come back with a typed error
        // long before the 30 s timeout.
        let rt = Runtime::new(4).with_faults(FaultPlan::kill(1, 0));
        let start = Instant::now();
        let err = rt
            .try_run(|comm| {
                let data = (comm.rank() == 0).then(|| vec![1u8; 64]);
                comm.ring_bcast(0, data, 4)
            })
            .expect_err("the killed rank breaks the ring");
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(err.first().rank, 1);
        assert!(matches!(
            err.first().error,
            FailureKind::App(CommError::Killed { rank: 1 })
        ));
        for f in &err.failures[1..] {
            assert!(
                matches!(f.error, FailureKind::App(CommError::PeerFailed { rank: 1 })),
                "rank {} should fail fast with PeerFailed, got {:?}",
                f.rank,
                f.error
            );
        }
    }

    #[test]
    fn drop_fault_surfaces_as_recv_timeout() {
        // drop rank 0's first send: rank 1 times out with the typed report.
        let rt = Runtime::new(2)
            .with_recv_timeout(Duration::from_millis(50))
            .with_faults(FaultPlan::drop_nth(0, 0));
        let err = rt
            .try_run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, 42u64)?;
                    Ok(0)
                } else {
                    comm.recv::<u64>(0, 7)
                }
            })
            .expect_err("the dropped message never arrives");
        assert_eq!(err.first().rank, 1);
        assert!(matches!(
            err.first().error,
            FailureKind::App(CommError::RecvTimeout(_))
        ));
    }

    #[test]
    fn delay_fault_holds_delivery_but_preserves_the_result() {
        let rt = Runtime::new(2).with_faults(FaultPlan::delay_nth(
            0,
            0,
            Duration::from_millis(50),
        ));
        let start = Instant::now();
        let (out, _, stats) = rt.try_run_with_stats(|comm| -> Result<u64, CommError> {
            if comm.rank() == 0 {
                comm.send(1, 7, 42u64)?;
                Ok(0)
            } else {
                comm.recv::<u64>(0, 7)
            }
        });
        assert_eq!(out.unwrap()[1], 42);
        assert!(start.elapsed() >= Duration::from_millis(45));
        // the delayed message went through the timekeeper's wheel, not a
        // fire-and-forget helper thread
        assert_eq!(stats.timer_deliveries, 1);
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        let base = Runtime::new(3).run(|comm| comm.allreduce(comm.rank() as u64, |a, b| a + b).unwrap());
        let with_plan = Runtime::new(3)
            .with_faults(FaultPlan::none())
            .run(|comm| comm.allreduce(comm.rank() as u64, |a, b| a + b).unwrap());
        assert_eq!(base, with_plan);
    }
}
