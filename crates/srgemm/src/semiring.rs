//! Semiring abstraction and the instances used across the workspace.
//!
//! All-pairs shortest paths is matrix closure over the **tropical semiring**
//! (ℝ ∪ {∞}, min, +): the paper's §2.3 defines `x ⊕ y = min(x, y)` and
//! `x ⊗ y = x + y`. The kernels in this crate are generic over any semiring
//! so the same code also computes transitive closure (Boolean semiring),
//! widest paths (max-min), longest paths on DAG-like inputs (max-plus), and
//! plain numeric products (used as a sanity oracle in tests).

use std::fmt::Debug;
use std::marker::PhantomData;

/// An algebraic semiring `(S, ⊕, ⊗, 0̄, 1̄)`.
///
/// Laws (checked by property tests in `tests/semiring_axioms.rs`):
///
/// * `(S, ⊕, 0̄)` is a commutative monoid,
/// * `(S, ⊗, 1̄)` is a monoid,
/// * `⊗` distributes over `⊕`,
/// * `0̄` annihilates: `0̄ ⊗ x = x ⊗ 0̄ = 0̄`.
///
/// Implementations are zero-sized marker types; the element type is the
/// associated [`Semiring::Elem`]. All kernels take the semiring as a type
/// parameter, so the operation choice is monomorphized into the inner loops
/// exactly as cuASR instantiates Cutlass templates per semiring.
pub trait Semiring: Copy + Send + Sync + 'static {
    /// Scalar element type flowing through the kernels.
    type Elem: Copy + Send + Sync + PartialEq + Debug + 'static;

    /// Human-readable name (used in bench labels and error messages).
    const NAME: &'static str;

    /// Whether `x ⊕ x = x` for all `x`. True for min/max semirings; it makes
    /// repeated accumulation idempotent, which the blocked algorithms exploit.
    const IDEMPOTENT_ADD: bool;

    /// Additive identity `0̄` (`+∞` for min-plus).
    fn zero() -> Self::Elem;

    /// Multiplicative identity `1̄` (`0.0` for min-plus).
    fn one() -> Self::Elem;

    /// `⊕` — the "add" (min for min-plus).
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// `⊗` — the "multiply" (+ for min-plus).
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Fused accumulate `c ← c ⊕ (a ⊗ b)`, the semiring analogue of FMA.
    /// Kernels call this in their innermost loop; instances may override it
    /// with a cheaper form.
    #[inline(always)]
    fn fma(c: Self::Elem, a: Self::Elem, b: Self::Elem) -> Self::Elem {
        Self::add(c, Self::mul(a, b))
    }
}

/// Floating-point scalars usable by [`MinPlus`]/[`MaxMin`]/[`MaxPlus`]/[`RealArith`].
pub trait Scalar: Copy + Send + Sync + PartialEq + PartialOrd + Debug + 'static {
    /// `+∞`.
    fn infinity() -> Self;
    /// `-∞`.
    fn neg_infinity() -> Self;
    /// Additive zero.
    fn zero() -> Self;
    /// Multiplicative one.
    fn one() -> Self;
    /// IEEE addition.
    fn plus(self, other: Self) -> Self;
    /// IEEE multiplication.
    fn times(self, other: Self) -> Self;
    /// `min` (NaN-free inputs assumed; ties keep either operand).
    fn min_(self, other: Self) -> Self;
    /// `max`.
    fn max_(self, other: Self) -> Self;
}

macro_rules! impl_scalar_float {
    ($t:ty) => {
        impl Scalar for $t {
            #[inline(always)]
            fn infinity() -> Self {
                <$t>::INFINITY
            }
            #[inline(always)]
            fn neg_infinity() -> Self {
                <$t>::NEG_INFINITY
            }
            #[inline(always)]
            fn zero() -> Self {
                0.0
            }
            #[inline(always)]
            fn one() -> Self {
                1.0
            }
            #[inline(always)]
            fn plus(self, other: Self) -> Self {
                self + other
            }
            #[inline(always)]
            fn times(self, other: Self) -> Self {
                self * other
            }
            #[inline(always)]
            fn min_(self, other: Self) -> Self {
                if other < self {
                    other
                } else {
                    self
                }
            }
            #[inline(always)]
            fn max_(self, other: Self) -> Self {
                if other > self {
                    other
                } else {
                    self
                }
            }
        }
    };
}

impl_scalar_float!(f32);
impl_scalar_float!(f64);

/// Tropical semiring `(ℝ ∪ {+∞}, min, +)` — shortest paths. The paper's
/// semiring (§2.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinPlus<T>(PhantomData<T>);

impl<T: Scalar> Semiring for MinPlus<T> {
    type Elem = T;
    const NAME: &'static str = "min-plus";
    const IDEMPOTENT_ADD: bool = true;

    #[inline(always)]
    fn zero() -> T {
        T::infinity()
    }
    #[inline(always)]
    fn one() -> T {
        T::zero()
    }
    #[inline(always)]
    fn add(a: T, b: T) -> T {
        a.min_(b)
    }
    #[inline(always)]
    fn mul(a: T, b: T) -> T {
        a.plus(b)
    }
}

/// `(ℝ ∪ {±∞}, max, min)` — widest path / bottleneck capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxMin<T>(PhantomData<T>);

impl<T: Scalar> Semiring for MaxMin<T> {
    type Elem = T;
    const NAME: &'static str = "max-min";
    const IDEMPOTENT_ADD: bool = true;

    #[inline(always)]
    fn zero() -> T {
        T::neg_infinity()
    }
    #[inline(always)]
    fn one() -> T {
        T::infinity()
    }
    #[inline(always)]
    fn add(a: T, b: T) -> T {
        a.max_(b)
    }
    #[inline(always)]
    fn mul(a: T, b: T) -> T {
        a.min_(b)
    }
}

/// `(ℝ ∪ {-∞}, max, +)` — longest (critical) path semiring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxPlus<T>(PhantomData<T>);

impl<T: Scalar> Semiring for MaxPlus<T> {
    type Elem = T;
    const NAME: &'static str = "max-plus";
    const IDEMPOTENT_ADD: bool = true;

    #[inline(always)]
    fn zero() -> T {
        T::neg_infinity()
    }
    #[inline(always)]
    fn one() -> T {
        T::zero()
    }
    #[inline(always)]
    fn add(a: T, b: T) -> T {
        a.max_(b)
    }
    #[inline(always)]
    fn mul(a: T, b: T) -> T {
        a.plus(b)
    }
}

/// Boolean semiring `({false, true}, ∨, ∧)` — reachability / transitive closure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoolOr;

impl Semiring for BoolOr {
    type Elem = bool;
    const NAME: &'static str = "bool-or-and";
    const IDEMPOTENT_ADD: bool = true;

    #[inline(always)]
    fn zero() -> bool {
        false
    }
    #[inline(always)]
    fn one() -> bool {
        true
    }
    #[inline(always)]
    fn add(a: bool, b: bool) -> bool {
        a | b
    }
    #[inline(always)]
    fn mul(a: bool, b: bool) -> bool {
        a & b
    }
}

/// Quantized tropical semiring over `u16`: `(u16, min, saturating +)` with
/// `u16::MAX` as the `∞` sentinel / additive identity.
///
/// Because every `u16` is non-negative, `a.saturating_add(b)` equals
/// `min(a + b, u16::MAX)` computed in ℕ, which makes the axioms hold
/// **exactly**: saturating add is associative and monotone (so `⊗`
/// distributes over `min`), and the sentinel absorbs
/// (`MAX.saturating_add(x) = MAX`) — so the annihilator law is not an
/// approximation, and zero-padded [`crate::gemm::PackedB`] tails stay exact
/// no-ops. On AVX-512 this runs 32 lanes per vector (`vpminuw` +
/// `vpaddusw`), 4× the f32 width.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinPlusSatU16;

impl Semiring for MinPlusSatU16 {
    type Elem = u16;
    const NAME: &'static str = "min-plus-sat-u16";
    const IDEMPOTENT_ADD: bool = true;

    #[inline(always)]
    fn zero() -> u16 {
        u16::MAX
    }
    #[inline(always)]
    fn one() -> u16 {
        0
    }
    #[inline(always)]
    fn add(a: u16, b: u16) -> u16 {
        a.min(b)
    }
    #[inline(always)]
    fn mul(a: u16, b: u16) -> u16 {
        a.saturating_add(b)
    }
}

/// Quantized tropical semiring over **non-negative** `i32`:
/// `(i32 ∩ [0, MAX], min, saturating +)` with `i32::MAX` as the `∞`
/// sentinel.
///
/// The semiring laws hold exactly on the non-negative domain (where
/// saturating add is `min(a + b, i32::MAX)` over ℕ, hence associative,
/// monotone, and sentinel-absorbing). Negative elements are **outside the
/// domain**: `i32::MAX.saturating_add(-5)` un-absorbs the sentinel, which
/// is why the `apsp_core` quantization layer rejects negative weights
/// before ever building a matrix over this semiring. AVX-512 runs 16 lanes
/// per vector (`vpminsd`; the saturating add is synthesized from add + min
/// against the sentinel), 2× the f64 width and lock-step with f32 —
/// trading nothing on width but giving exact integer arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinPlusSatI32;

impl Semiring for MinPlusSatI32 {
    type Elem = i32;
    const NAME: &'static str = "min-plus-sat-i32";
    const IDEMPOTENT_ADD: bool = true;

    #[inline(always)]
    fn zero() -> i32 {
        i32::MAX
    }
    #[inline(always)]
    fn one() -> i32 {
        0
    }
    #[inline(always)]
    fn add(a: i32, b: i32) -> i32 {
        a.min(b)
    }
    #[inline(always)]
    fn mul(a: i32, b: i32) -> i32 {
        a.saturating_add(b)
    }

    /// `c ⊕ (a ⊗ b)` without the multi-instruction `sadd.sat` lowering.
    ///
    /// On the non-negative domain the wrapping sum of `a, b ≤ 2³¹−1` lands in
    /// `[−2³¹, −2]` exactly when the true sum exceeds `i32::MAX` — a sum of
    /// two non-negatives wraps iff the `i32` result is negative. A negative
    /// `s` therefore means "saturated past the sentinel", and
    /// `min(c, saturating_add(a, b))` would keep `c`; otherwise `s` is the
    /// exact sum and the ordinary signed min applies. This compiles to
    /// `vpaddd` + `vpcmpd` + masked `vpminsd` per vector — three ops, versus
    /// the five-op `sadd.sat` fixup chain the composed form lowers to.
    ///
    /// The formulation is deliberate: spelling the same function as an
    /// *unsigned* min (`umin(c, a +ᵤ b)` over `u32`) makes LLVM's
    /// loop-vectorizer pick the strided row dimension and emit
    /// gather/scatter (observed 12× slower than f32); the signed
    /// select keeps it on the contiguous lane dimension.
    #[inline(always)]
    fn fma(c: i32, a: i32, b: i32) -> i32 {
        let s = a.wrapping_add(b);
        if s >= 0 { c.min(s) } else { c }
    }
}

/// Ordinary real arithmetic `(ℝ, +, ×)` — used as a GEMM sanity oracle in
/// tests (it is a semiring too, just not an idempotent one).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RealArith<T>(PhantomData<T>);

impl<T: Scalar> Semiring for RealArith<T> {
    type Elem = T;
    const NAME: &'static str = "real-arith";
    const IDEMPOTENT_ADD: bool = false;

    #[inline(always)]
    fn zero() -> T {
        T::zero()
    }
    #[inline(always)]
    fn one() -> T {
        T::one()
    }
    #[inline(always)]
    fn add(a: T, b: T) -> T {
        a.plus(b)
    }
    #[inline(always)]
    fn mul(a: T, b: T) -> T {
        a.times(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_plus_identities() {
        type S = MinPlus<f32>;
        assert_eq!(S::zero(), f32::INFINITY);
        assert_eq!(S::one(), 0.0);
        // 0̄ is additive identity.
        assert_eq!(S::add(S::zero(), 3.5), 3.5);
        // 1̄ is multiplicative identity.
        assert_eq!(S::mul(S::one(), 3.5), 3.5);
        // 0̄ annihilates under ⊗.
        assert_eq!(S::mul(S::zero(), 3.5), f32::INFINITY);
    }

    #[test]
    fn min_plus_fma_is_relaxation() {
        type S = MinPlus<f32>;
        // dist[i][j] = min(dist[i][j], dist[i][k] + dist[k][j])
        assert_eq!(S::fma(10.0, 3.0, 4.0), 7.0);
        assert_eq!(S::fma(5.0, 3.0, 4.0), 5.0);
        assert_eq!(S::fma(5.0, f32::INFINITY, 4.0), 5.0);
    }

    #[test]
    fn max_min_is_bottleneck() {
        type S = MaxMin<f64>;
        // widest path: the width through an edge pair is the narrower one.
        assert_eq!(S::mul(3.0, 7.0), 3.0);
        // among alternatives take the widest.
        assert_eq!(S::add(3.0, 7.0), 7.0);
        assert_eq!(S::zero(), f64::NEG_INFINITY);
        assert_eq!(S::one(), f64::INFINITY);
    }

    #[test]
    fn bool_or_is_reachability() {
        type S = BoolOr;
        assert!(S::fma(false, true, true));
        assert!(!S::fma(false, true, false));
        assert!(S::fma(true, false, false));
    }

    #[test]
    fn max_plus_longest_path() {
        type S = MaxPlus<f32>;
        assert_eq!(S::fma(5.0, 3.0, 4.0), 7.0);
        assert_eq!(S::add(S::zero(), 2.0), 2.0);
    }

    #[test]
    fn quantized_u16_identities_and_saturation() {
        type S = MinPlusSatU16;
        assert_eq!(S::zero(), u16::MAX);
        assert_eq!(S::one(), 0);
        // 0̄ is additive identity, 1̄ multiplicative identity.
        assert_eq!(S::add(S::zero(), 17), 17);
        assert_eq!(S::mul(S::one(), 17), 17);
        // sentinel absorbs under ⊗ — exactly, not approximately.
        assert_eq!(S::mul(S::zero(), 17), u16::MAX);
        assert_eq!(S::mul(17, S::zero()), u16::MAX);
        // finite sums that would wrap saturate to the sentinel instead.
        assert_eq!(S::mul(u16::MAX - 1, 10), u16::MAX);
        // relaxation semantics.
        assert_eq!(S::fma(10, 3, 4), 7);
        assert_eq!(S::fma(5, u16::MAX, 4), 5);
    }

    #[test]
    fn quantized_i32_identities_and_saturation() {
        type S = MinPlusSatI32;
        assert_eq!(S::zero(), i32::MAX);
        assert_eq!(S::one(), 0);
        assert_eq!(S::add(S::zero(), 40), 40);
        assert_eq!(S::mul(S::one(), 40), 40);
        assert_eq!(S::mul(S::zero(), 40), i32::MAX);
        assert_eq!(S::mul(40, S::zero()), i32::MAX);
        assert_eq!(S::mul(i32::MAX - 1, 10), i32::MAX);
        assert_eq!(S::fma(10, 3, 4), 7);
        assert_eq!(S::fma(5, i32::MAX, 4), 5);
    }

    #[test]
    fn real_arith_matches_ieee() {
        type S = RealArith<f64>;
        assert_eq!(S::fma(1.0, 2.0, 3.0), 7.0);
        const { assert!(!S::IDEMPOTENT_ADD) };
    }
}
