//! Baseline `ParallelFw` (paper Algorithm 3).
//!
//! Bulk-synchronous: each iteration runs DiagUpdate → DiagBcast →
//! PanelUpdate → PanelBcast → OuterUpdate to completion before the next
//! starts. The outer product is one GEMM over the whole local matrix —
//! re-touching the freshly-updated k-th strips is a no-op (see
//! `fw_blocked`'s module docs).

use mpi_sim::ProcessGrid;
use srgemm::gemm::gemm_blocked;
use srgemm::semiring::Semiring;

use super::{diag_and_panels, DistMatrix, FwConfig};

/// Run Algorithm 3 on this rank's share. Collective over `grid`.
pub fn run<S: Semiring>(grid: &ProcessGrid, a: &mut DistMatrix<S::Elem>, cfg: &FwConfig) {
    assert!(
        S::IDEMPOTENT_ADD,
        "distributed FW relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    for k in 0..a.nb {
        let panels = diag_and_panels::<S>(grid, a, k, cfg.diag, cfg.panel_bcast());
        // OuterUpdate(k): whole local matrix
        let _p = grid.grid.phase("OuterUpdate");
        gemm_blocked::<S>(
            &mut a.local.view_mut(),
            &panels.col_panel.view(),
            &panels.row_panel.view(),
        );
        // implicit bulk-synchronous barrier: the next iteration's broadcasts
        // cannot complete until every rank reaches them
    }
}
