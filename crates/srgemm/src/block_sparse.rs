//! Block-sparse matrices over a semiring.
//!
//! Support for the paper's §7 direction "add support of structured sparse
//! graphs, where exploiting sparsity becomes paramount" (the supernodal
//! APSP of Sao et al., PPoPP'20, reference \[31\]). The distance matrix is
//! tiled into `b × b` blocks and only blocks containing at least one
//! non-`0̄` entry are materialized; an absent block is semantically the
//! all-`0̄` (all-∞ for min-plus) block, which annihilates under ⊗ and is
//! the identity under ⊕ — so block-sparse kernels simply skip it.
//!
//! Floyd-Warshall creates *fill-in* (blocks that become finite during the
//! elimination); [`BlockSparseMatrix`] materializes fill blocks lazily, the
//! same way sparse direct solvers grow their supernodal structure.

use std::collections::BTreeMap;

use crate::matrix::Matrix;
use crate::semiring::Semiring;

/// A square block-sparse matrix with `b × b` tiles (the trailing block row
/// and column may be ragged). Blocks are keyed `(block_row, block_col)` in
/// a BTreeMap for deterministic iteration.
#[derive(Clone)]
pub struct BlockSparseMatrix<T> {
    n: usize,
    b: usize,
    nb: usize,
    zero: T,
    blocks: BTreeMap<(u32, u32), Matrix<T>>,
}

impl<T: Copy + PartialEq> BlockSparseMatrix<T> {
    /// Empty (all-`0̄`) matrix of order `n` with block size `b`.
    pub fn new(n: usize, b: usize, zero: T) -> Self {
        assert!(b > 0, "block size must be positive");
        BlockSparseMatrix {
            n,
            b,
            nb: n.div_ceil(b),
            zero,
            blocks: BTreeMap::new(),
        }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block size.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Number of block rows/cols.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of materialized blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Fraction of blocks materialized (1.0 = fully dense).
    pub fn block_density(&self) -> f64 {
        if self.nb == 0 {
            return 0.0;
        }
        self.blocks.len() as f64 / (self.nb * self.nb) as f64
    }

    /// Rows/cols of block index `k`.
    pub fn block_dim(&self, k: usize) -> usize {
        self.b.min(self.n - k * self.b)
    }

    /// Read one element.
    pub fn get(&self, i: usize, j: usize) -> T {
        let (bi, bj) = (i / self.b, j / self.b);
        match self.blocks.get(&(bi as u32, bj as u32)) {
            Some(blk) => blk[(i % self.b, j % self.b)],
            None => self.zero,
        }
    }

    /// Write one element, materializing its block if needed.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        let (bi, bj) = (i / self.b, j / self.b);
        let (ri, rj) = (self.block_dim(bi), self.block_dim(bj));
        let zero = self.zero;
        let blk = self
            .blocks
            .entry((bi as u32, bj as u32))
            .or_insert_with(|| Matrix::filled(ri, rj, zero));
        blk[(i % self.b, j % self.b)] = v;
    }

    /// Borrow block `(bi, bj)` if materialized.
    pub fn block(&self, bi: usize, bj: usize) -> Option<&Matrix<T>> {
        self.blocks.get(&(bi as u32, bj as u32))
    }

    /// Mutably borrow block `(bi, bj)`, materializing an all-`0̄` block if
    /// absent.
    pub fn block_mut(&mut self, bi: usize, bj: usize) -> &mut Matrix<T> {
        let (ri, rj) = (self.block_dim(bi), self.block_dim(bj));
        let zero = self.zero;
        self.blocks
            .entry((bi as u32, bj as u32))
            .or_insert_with(|| Matrix::filled(ri, rj, zero))
    }

    /// Materialized block coordinates in block row `k`.
    pub fn blocks_in_row(&self, k: usize) -> Vec<usize> {
        self.blocks
            .range((k as u32, 0)..=(k as u32, u32::MAX))
            .map(|(&(_, j), _)| j as usize)
            .collect()
    }

    /// Materialized block coordinates in block column `k`.
    pub fn blocks_in_col(&self, k: usize) -> Vec<usize> {
        // column scan: BTreeMap is row-major, so filter (O(blocks))
        self.blocks
            .keys()
            .filter(|&&(_, j)| j as usize == k)
            .map(|&(i, _)| i as usize)
            .collect()
    }

    /// Drop blocks that are entirely `0̄` (post-pass hygiene).
    pub fn prune(&mut self) {
        let zero = self.zero;
        self.blocks.retain(|_, blk| blk.as_slice().iter().any(|&v| v != zero));
    }

    /// Densify.
    pub fn to_dense(&self) -> Matrix<T> {
        let mut out = Matrix::filled(self.n, self.n, self.zero);
        for (&(bi, bj), blk) in &self.blocks {
            out.set_block(bi as usize * self.b, bj as usize * self.b, &blk.view());
        }
        out
    }

    /// Build from a coordinate entry list, seeding the whole diagonal with
    /// `diag` first (materializing every diagonal block). Duplicate
    /// coordinates keep the last write, except that a diagonal entry never
    /// rises above its seed — the same `D[i][i] = min(diag, w(i,i))`
    /// semantics as a dense distance matrix. This is the direct
    /// graph-to-block-sparse path: no `O(n²)` dense detour, and callers no
    /// longer hand-seed zero diagonals after `from_dense`.
    pub fn from_entries<I>(n: usize, b: usize, zero: T, diag: T, entries: I) -> Self
    where
        T: PartialOrd,
        I: IntoIterator<Item = (usize, usize, T)>,
    {
        let mut out = BlockSparseMatrix::new(n, b, zero);
        for i in 0..n {
            out.set(i, i, diag);
        }
        for (i, j, v) in entries {
            if i == j {
                let cur = out.get(i, i);
                if v < cur {
                    out.set(i, i, v);
                }
            } else {
                out.set(i, j, v);
            }
        }
        out
    }

    /// Build from a dense matrix, materializing only blocks with at least
    /// one non-`0̄` entry.
    pub fn from_dense(dense: &Matrix<T>, b: usize, zero: T) -> Self {
        assert_eq!(dense.rows(), dense.cols(), "matrix must be square");
        let n = dense.rows();
        let mut out = BlockSparseMatrix::new(n, b, zero);
        for bi in 0..out.nb {
            for bj in 0..out.nb {
                let (ri, rj) = (out.block_dim(bi), out.block_dim(bj));
                let view = dense.subview(bi * b, bj * b, ri, rj);
                let has_data = (0..ri).any(|r| view.row(r).iter().any(|&v| v != zero));
                if has_data {
                    out.blocks.insert((bi as u32, bj as u32), view.to_matrix());
                }
            }
        }
        out
    }
}

/// Block-level `C(bi,bj) ← C(bi,bj) ⊕ A ⊗ B` where the output block is
/// materialized on demand (fill-in).
pub fn bsp_gemm_block<S: Semiring>(
    c: &mut BlockSparseMatrix<S::Elem>,
    bi: usize,
    bj: usize,
    a: &Matrix<S::Elem>,
    b: &Matrix<S::Elem>,
) {
    let blk = c.block_mut(bi, bj);
    crate::gemm::gemm_blocked::<S>(&mut blk.view_mut(), &a.view(), &b.view());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlus, Semiring};

    type MP = MinPlus<f32>;
    const INF: f32 = f32::INFINITY;

    #[test]
    fn empty_matrix_reads_zero_everywhere() {
        let m = BlockSparseMatrix::new(10, 3, INF);
        assert_eq!(m.nnz_blocks(), 0);
        assert_eq!(m.get(7, 2), INF);
        assert_eq!(m.block_density(), 0.0);
    }

    #[test]
    fn set_materializes_one_block() {
        let mut m = BlockSparseMatrix::new(10, 3, INF);
        m.set(4, 7, 2.5);
        assert_eq!(m.nnz_blocks(), 1);
        assert_eq!(m.get(4, 7), 2.5);
        assert_eq!(m.get(4, 6), INF); // same block, untouched
        assert_eq!(m.get(0, 0), INF); // other block, absent
    }

    #[test]
    fn dense_round_trip_preserves_data_and_sparsity() {
        let mut dense = Matrix::filled(9, 9, INF);
        dense[(0, 0)] = 0.0;
        dense[(8, 8)] = 0.0;
        dense[(2, 7)] = 5.0;
        let sp = BlockSparseMatrix::from_dense(&dense, 3, INF);
        // blocks (0,0), (2,2), (0,2) → 3 of 9
        assert_eq!(sp.nnz_blocks(), 3);
        assert!(sp.to_dense().eq_exact(&dense));
    }

    #[test]
    fn ragged_tail_blocks() {
        let mut m = BlockSparseMatrix::new(7, 3, INF);
        assert_eq!(m.nb(), 3);
        assert_eq!(m.block_dim(2), 1);
        m.set(6, 6, 1.0);
        assert_eq!(m.block(2, 2).expect("materialized").rows(), 1);
        assert!(m.to_dense().eq_exact(&{
            let mut d = Matrix::filled(7, 7, INF);
            d[(6, 6)] = 1.0;
            d
        }));
    }

    #[test]
    fn row_and_col_scans() {
        let mut m = BlockSparseMatrix::new(12, 3, INF);
        m.set(0, 0, 1.0); // block (0,0)
        m.set(0, 9, 1.0); // block (0,3)
        m.set(9, 0, 1.0); // block (3,0)
        assert_eq!(m.blocks_in_row(0), vec![0, 3]);
        assert_eq!(m.blocks_in_col(0), vec![0, 3]);
        assert!(m.blocks_in_row(1).is_empty());
    }

    #[test]
    fn prune_drops_all_zero_blocks() {
        let mut m = BlockSparseMatrix::new(6, 3, INF);
        let _ = m.block_mut(0, 0); // materialize all-∞
        m.set(3, 3, 1.0);
        assert_eq!(m.nnz_blocks(), 2);
        m.prune();
        assert_eq!(m.nnz_blocks(), 1);
        assert_eq!(m.get(3, 3), 1.0);
    }

    #[test]
    fn bsp_gemm_creates_fill_in() {
        let mut c = BlockSparseMatrix::new(4, 2, INF);
        let a = Matrix::from_rows(&[&[1.0f32, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0f32, 1.0], &[1.0, 0.0]]);
        assert_eq!(c.nnz_blocks(), 0);
        bsp_gemm_block::<MP>(&mut c, 1, 1, &a, &b);
        assert_eq!(c.nnz_blocks(), 1);
        assert_eq!(c.get(2, 2), 1.0); // min(1+0, 2+1)
    }

    #[test]
    fn get_set_agree_with_zero_identity() {
        let mut m = BlockSparseMatrix::new(5, 2, MP::zero());
        m.set(1, 3, 7.0);
        assert_eq!(m.get(1, 3), 7.0);
        m.set(1, 3, MP::zero());
        m.prune();
        assert_eq!(m.nnz_blocks(), 0);
    }

    #[test]
    fn from_entries_seeds_every_diagonal_entry() {
        let m = BlockSparseMatrix::from_entries(7, 3, INF, 0.0, std::iter::empty());
        for i in 0..7 {
            assert_eq!(m.get(i, i), 0.0);
        }
        // all 3 (ragged) diagonal blocks materialized, nothing else
        assert_eq!(m.nnz_blocks(), 3);
        assert_eq!(m.get(0, 6), INF);
    }

    #[test]
    fn from_entries_diagonal_takes_min_with_seed() {
        // positive self-loop never beats the zero seed; negative one wins —
        // the same semantics as Graph::to_dense
        let entries = vec![(0usize, 0usize, 5.0f32), (1, 1, -2.0), (0, 2, 1.5)];
        let m = BlockSparseMatrix::from_entries(3, 2, INF, 0.0, entries);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 1), -2.0);
        assert_eq!(m.get(0, 2), 1.5);
    }

    #[test]
    fn from_entries_matches_seeded_from_dense() {
        // the constructor replaces from_dense + manual zero-diagonal
        // seeding; both routes must agree element-for-element
        let entries = [(0usize, 4usize, 2.0f32), (4, 0, 3.0), (2, 3, 1.0)];
        let mut dense = Matrix::filled(5, 5, INF);
        for i in 0..5 {
            dense[(i, i)] = 0.0;
        }
        for &(i, j, v) in &entries {
            dense[(i, j)] = v;
        }
        let direct = BlockSparseMatrix::from_entries(5, 2, INF, 0.0, entries.iter().copied());
        let mut via_dense = BlockSparseMatrix::from_dense(&dense, 2, INF);
        for i in 0..5 {
            via_dense.set(i, i, 0.0);
        }
        assert!(direct.to_dense().eq_exact(&via_dense.to_dense()));
    }
}
