//! Pipelined `ParallelFw` (paper Algorithm 4) and its `+Async` ring flavor.
//!
//! The bulk-sequential dependency of Algorithm 3 is broken by *look-ahead*
//! (§3.1–3.2): once the k-th panels are everywhere, the (k+1)-th panels are
//! brought fully up to date first — OuterUpdate(k) restricted to them, then
//! DiagUpdate(k+1), DiagBcast(k+1), PanelUpdate(k+1) and PanelBcast(k+1) —
//! and only then is the big OuterUpdate(k) applied to the rest of the local
//! matrix. In the real system the broadcast of the next panels is in flight
//! *while* the GPU grinds the outer product; functionally the result is
//! identical, and the `cluster-sim` schedule generator turns exactly this
//! reordering into hidden communication time.
//!
//! With `Variant::AsyncRing`, `PanelBcast` uses the pipelined ring broadcast
//! (§3.3); the nearer successors of the root receive panels early, which in
//! the schedule model lets iterations drift more than one step apart.

use mpi_sim::ProcessGrid;
use srgemm::gemm::gemm_blocked;
use srgemm::semiring::Semiring;

use super::{diag_and_panels, DistMatrix, FwConfig, PanelSet};

/// Run Algorithm 4 (or its ring flavor) on this rank's share.
pub fn run<S: Semiring>(grid: &ProcessGrid, a: &mut DistMatrix<S::Elem>, cfg: &FwConfig) {
    assert!(
        S::IDEMPOTENT_ADD,
        "distributed FW relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    if a.nb == 0 {
        return;
    }
    // Prime the pipeline: diag/panel work for k = 0.
    let mut panels = diag_and_panels::<S>(grid, a, 0, cfg.diag, cfg.panel_bcast());

    for k in 0..a.nb {
        let next = if k + 1 < a.nb {
            // ---- look-ahead: apply OuterUpdate(k) to the (k+1)-th strips only ----
            {
                let _p = grid.grid.phase("OuterUpdate");
                lookahead_update::<S>(a, k + 1, &panels);
            }
            // ---- then the full (k+1) diag/panel phase, overlapping the big
            //      OuterUpdate(k) in the schedule model ----
            Some(diag_and_panels::<S>(grid, a, k + 1, cfg.diag, cfg.panel_bcast()))
        } else {
            None
        };

        // ---- OuterUpdate(k) over the whole local matrix ----
        // (the k+1 strips were already relaxed with these same panels, and
        // min-plus relaxation is monotone, so re-touching them is a no-op)
        let _p = grid.grid.phase("OuterUpdate");
        gemm_blocked::<S>(
            &mut a.local.view_mut(),
            &panels.col_panel.view(),
            &panels.row_panel.view(),
        );

        if let Some(p) = next {
            panels = p;
        }
    }
}

/// OuterUpdate(k-panels only): relax the (k+1)-th block row and column with
/// the k-th panels, so DiagUpdate(k+1)/PanelUpdate(k+1) can run before the
/// bulk OuterUpdate(k) finishes.
fn lookahead_update<S: Semiring>(a: &mut DistMatrix<S::Elem>, next: usize, panels: &PanelSet<S::Elem>) {
    // row strip `next`: A(next, :) ⊕= A(next, k) ⊗ A(k, :)
    if a.owns_row(next) {
        let r0 = a.local_row_start(next);
        let bk1 = a.block_dim(next);
        let col_slice = panels.col_panel.subview(r0, 0, bk1, panels.col_panel.cols());
        let mut strip = a.row_strip_mut(next);
        gemm_blocked::<S>(&mut strip, &col_slice, &panels.row_panel.view());
    }
    // column strip `next`: A(:, next) ⊕= A(:, k) ⊗ A(k, next)
    if a.owns_col(next) {
        let c0 = a.local_col_start(next);
        let bk1 = a.block_dim(next);
        let row_slice = panels.row_panel.subview(0, c0, panels.row_panel.rows(), bk1);
        let mut strip = a.col_strip_mut(next);
        gemm_blocked::<S>(&mut strip, &panels.col_panel.view(), &row_slice);
    }
}
