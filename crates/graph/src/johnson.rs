//! Johnson's all-pairs shortest paths — the sparse-graph comparator from the
//! paper's related work (§6).
//!
//! Bellman-Ford from a virtual super-source computes a potential `h`, edges
//! are reweighted to `w'(u,v) = w(u,v) + h(u) − h(v) ≥ 0`, then one Dijkstra
//! per source recovers the true distances. `O(mn + n² log n)` — beats dense
//! Floyd-Warshall when `m = O(n)`.

use crate::bellman_ford::{bellman_ford, BellmanFord};
use crate::dijkstra::dijkstra;
use crate::graph::{Graph, GraphBuilder, INF};
use srgemm::Matrix;

/// Error surface for [`johnson_apsp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JohnsonError {
    /// A negative cycle makes shortest paths undefined.
    NegativeCycle,
}

/// All-pairs distance matrix by Johnson's algorithm (serial).
pub fn johnson_apsp(g: &Graph) -> Result<Matrix<f32>, JohnsonError> {
    johnson_apsp_threads(g, 1)
}

/// [`johnson_apsp`] with the Dijkstra sweep parallelized over sources via
/// the rayon shim, capped at `threads` workers (`0` → all cores; this is
/// the `budget_threads` convention, so callers sharing the machine can pass
/// their budget straight through). Every source's row is produced by the
/// same code path in the same float-op order as the serial sweep, so the
/// result is bit-identical for any thread count.
pub fn johnson_apsp_threads(g: &Graph, threads: usize) -> Result<Matrix<f32>, JohnsonError> {
    let n = g.n();
    if n == 0 {
        return Ok(Matrix::filled(0, 0, INF));
    }

    // augmented graph: super-source n with zero edges to everyone
    let mut aug = GraphBuilder::new(n + 1);
    for (u, v, w) in g.edges() {
        aug.add_edge(u, v, w);
    }
    for v in 0..n {
        aug.add_edge(n, v, 0.0);
    }
    let h = match bellman_ford(&aug.build(), n) {
        BellmanFord::Distances(h) => h,
        BellmanFord::NegativeCycle => return Err(JohnsonError::NegativeCycle),
    };

    // reweight: w' = w + h[u] - h[v] (≥ 0 by the shortest-path property)
    let mut rw = GraphBuilder::new(n);
    for (u, v, w) in g.edges() {
        let w2 = w + h[u] - h[v];
        debug_assert!(w2 >= -1e-4, "reweighted edge must be non-negative");
        rw.add_edge(u, v, w2.max(0.0));
    }
    let rw = rw.build();

    let rows = crate::par_rows(n, threads, |s| johnson_row(&rw, &h, s));
    let mut out = Matrix::filled(n, n, INF);
    for (s, row) in rows.into_iter().enumerate() {
        out.row_mut(s).copy_from_slice(&row);
    }
    Ok(out)
}

/// One source's distance row: Dijkstra on the reweighted graph, shifted
/// back through the potentials. Shared verbatim by the serial and parallel
/// sweeps (that is what makes them bit-identical).
fn johnson_row(rw: &Graph, h: &[f32], s: usize) -> Vec<f32> {
    let n = rw.n();
    let d = dijkstra(rw, s);
    let mut row = vec![INF; n];
    for t in 0..n {
        if d[t] < INF {
            row[t] = d[t] - h[s] + h[t];
        }
    }
    row[s] = row[s].min(0.0);
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::apsp_by_dijkstra;
    use crate::generators::{self, WeightKind};
    use crate::graph::GraphBuilder;

    #[test]
    fn matches_dijkstra_apsp_on_nonnegative_graphs() {
        let g = generators::erdos_renyi(25, 0.25, WeightKind::small_ints(), 11);
        let want = apsp_by_dijkstra(&g);
        let got = johnson_apsp(&g).unwrap();
        assert!(want.eq_exact(&got));
    }

    #[test]
    fn handles_negative_edges() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2.0)
            .add_edge(1, 2, -1.0)
            .add_edge(2, 3, 2.0)
            .add_edge(0, 3, 10.0);
        let got = johnson_apsp(&b.build()).unwrap();
        assert_eq!(got[(0, 3)], 3.0); // 2 - 1 + 2
        assert_eq!(got[(0, 2)], 1.0);
        assert_eq!(got[(3, 0)], INF);
    }

    #[test]
    fn rejects_negative_cycles() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, -1.0).add_edge(1, 0, -1.0);
        assert_eq!(johnson_apsp(&b.build()), Err(JohnsonError::NegativeCycle));
    }

    #[test]
    fn multi_component_graphs_keep_infinities() {
        let g = generators::multi_component(12, 3, WeightKind::small_ints(), 2);
        let got = johnson_apsp(&g).unwrap();
        assert_eq!(got[(0, 11)], INF);
        assert!(got[(0, 1)] < INF);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let got = johnson_apsp(&g).unwrap();
        assert_eq!(got.rows(), 0);
    }

    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit() {
        // negative edges included: the potential shift h[s]/h[t] is live
        let mut b = GraphBuilder::new(30);
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for i in 0..29 {
            b.add_edge(i, i + 1, ((next() % 100) as f32) / 7.0 - 1.0);
        }
        for _ in 0..60 {
            let (u, v) = ((next() % 30) as usize, (next() % 30) as usize);
            if u < v {
                b.add_edge(u, v, ((next() % 100) as f32) / 7.0 - 1.0);
            }
        }
        let g = b.build();
        let serial = johnson_apsp(&g).unwrap();
        for threads in [0, 2, 3, 7] {
            let par = johnson_apsp_threads(&g, threads).unwrap();
            assert!(serial.eq_exact(&par), "threads={threads}");
        }
    }

    #[test]
    fn parallel_sweep_propagates_negative_cycle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).add_edge(1, 2, -3.0).add_edge(2, 1, 1.0);
        assert_eq!(johnson_apsp_threads(&b.build(), 4), Err(JohnsonError::NegativeCycle));
    }
}
