//! Sequential Floyd-Warshall (paper Algorithm 1).
//!
//! This is the correctness anchor of the whole workspace: §5.1 of the paper
//! states that every optimized implementation was checked against the
//! sequential baseline, and our test suites do the same.

use srgemm::closure::fw_closure;
use srgemm::matrix::Matrix;
use srgemm::semiring::Semiring;

/// Sentinel in predecessor matrices: "no path".
pub const NO_PRED: u32 = u32::MAX;

/// In-place sequential Floyd-Warshall over any idempotent semiring:
/// `d[i][j] ← ⊕_k d[i][k] ⊗ d[k][j]`, with the diagonal seeded with `1̄`.
///
/// # Panics
/// Panics if `d` is not square.
pub fn fw_seq<S: Semiring>(d: &mut Matrix<S::Elem>) {
    fw_closure::<S>(&mut d.view_mut());
}

/// Sequential min-plus Floyd-Warshall with predecessor tracking.
///
/// Returns the predecessor matrix: `pred[(i, j)]` is the vertex preceding
/// `j` on a shortest `i → j` path, or [`NO_PRED`] when `j` is unreachable
/// from `i` (or `i == j`). Distributed shortest-path *generation* is the
/// paper's declared future work (§7); this provides it at single-node scale.
pub fn fw_seq_with_paths(d: &mut Matrix<f32>) -> Matrix<u32> {
    let n = d.rows();
    assert_eq!(n, d.cols(), "distance matrix must be square");
    let mut pred = Matrix::from_fn(n, n, |i, j| {
        if i != j && d[(i, j)] < f32::INFINITY {
            i as u32
        } else {
            NO_PRED
        }
    });
    for i in 0..n {
        let v = d[(i, i)].min(0.0);
        d[(i, i)] = v;
    }
    for k in 0..n {
        for i in 0..n {
            let d_ik = d[(i, k)];
            if d_ik == f32::INFINITY {
                continue;
            }
            for j in 0..n {
                let cand = d_ik + d[(k, j)];
                if cand < d[(i, j)] {
                    d[(i, j)] = cand;
                    pred[(i, j)] = pred[(k, j)];
                }
            }
        }
    }
    pred
}

/// Walk `pred` back from `dst` to produce the vertex sequence `src … dst`,
/// or `None` if unreachable.
pub fn reconstruct_path(pred: &Matrix<u32>, src: usize, dst: usize) -> Option<Vec<usize>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while pred[(src, cur)] != NO_PRED {
        cur = pred[(src, cur)] as usize;
        path.push(cur);
        if cur == src {
            path.reverse();
            return Some(path);
        }
        if path.len() > pred.rows() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::dijkstra::apsp_by_dijkstra;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::paths::validate_path;
    use srgemm::MinPlusF32;

    #[test]
    fn matches_dijkstra_on_dense_random() {
        let g = generators::uniform_dense(40, WeightKind::small_ints(), 3);
        let want = apsp_by_dijkstra(&g);
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        assert!(want.eq_exact(&d));
    }

    #[test]
    fn matches_dijkstra_on_sparse_and_disconnected() {
        for (kind, seed) in [
            (generators::GraphKind::ErdosRenyi { p: 0.1 }, 5),
            (generators::GraphKind::MultiComponent { components: 3 }, 6),
            (generators::GraphKind::Ring, 7),
        ] {
            let g = generators::generate(kind, 30, WeightKind::small_ints(), seed);
            let want = apsp_by_dijkstra(&g);
            let mut d = g.to_dense();
            fw_seq::<MinPlusF32>(&mut d);
            assert!(want.eq_exact(&d), "kind {kind:?}");
        }
    }

    #[test]
    fn with_paths_distances_match_plain_fw() {
        let g = generators::erdos_renyi(25, 0.3, WeightKind::small_ints(), 11);
        let mut d1 = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d1);
        let mut d2 = g.to_dense();
        let _ = fw_seq_with_paths(&mut d2);
        assert!(d1.eq_exact(&d2));
    }

    #[test]
    fn reconstructed_paths_realize_distances() {
        let g = generators::erdos_renyi(20, 0.25, WeightKind::small_ints(), 13);
        let mut d = g.to_dense();
        let pred = fw_seq_with_paths(&mut d);
        for s in 0..20 {
            for t in 0..20 {
                if s != t && d[(s, t)] < f32::INFINITY {
                    let p = reconstruct_path(&pred, s, t).expect("reachable path");
                    assert!(validate_path(&g, &p, s, t, d[(s, t)], 1e-3), "{s}->{t}");
                } else if s != t {
                    assert_eq!(reconstruct_path(&pred, s, t), None);
                }
            }
        }
    }

    #[test]
    fn unreachable_pairs_stay_infinite() {
        let g = generators::multi_component(12, 2, WeightKind::small_ints(), 17);
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        assert_eq!(d[(0, 11)], f32::INFINITY);
        assert!(d[(0, 3)] < f32::INFINITY);
    }
}
