//! ASCII Gantt rendering of a finished [`crate::engine::Schedule`] — the
//! debugging view used when tuning the variant schedules (which task
//! blocked which resource, where the pipeline bubbles are) — plus the
//! Chrome trace_events export sharing `mpi-sim`'s schema.

use crate::engine::Schedule;
use crate::task::{TaskGraph, TaskId};

/// Render up to `max_resources` resource timelines as `width`-column ASCII
/// bars. Each `#` is busy time, `.` idle; the header shows the makespan.
pub fn gantt(graph: &TaskGraph, sched: &Schedule, width: usize, max_resources: usize) -> String {
    let width = width.max(10);
    let mut out = String::new();
    let span = sched.makespan.max(1e-12);
    out.push_str(&format!("makespan: {:.6e} s\n", sched.makespan));

    let nres = graph.num_resources() as usize;
    for r in 0..nres.min(max_resources) {
        let mut cols = vec!['.'; width];
        for (i, t) in graph.tasks().enumerate() {
            if t == r {
                let (s, f) = (sched.start[i], sched.finish[i]);
                let lo = ((s / span) * width as f64).floor() as usize;
                let hi = (((f / span) * width as f64).ceil() as usize).min(width);
                for c in cols.iter_mut().take(hi).skip(lo.min(width)) {
                    *c = '#';
                }
            }
        }
        let busy = sched.busy[r];
        out.push_str(&format!(
            "r{r:<3} |{}| {:5.1}%\n",
            cols.iter().collect::<String>(),
            100.0 * busy / span
        ));
    }
    if nres > max_resources {
        out.push_str(&format!("… {} more resources\n", nres - max_resources));
    }
    out
}

impl TaskGraph {
    /// Resource index of each task, in task order (for trace rendering).
    pub fn tasks(&self) -> impl Iterator<Item = usize> + '_ {
        self.tasks.iter().map(|t| t.resource.0 as usize)
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> u32 {
        self.num_resources
    }
}

/// Export a finished schedule as Chrome trace_events JSON — the same schema
/// `mpi_sim::RunTrace::to_chrome_json` emits, so simulated schedules and
/// real (mpi-sim) runs open side by side in `chrome://tracing` / Perfetto.
///
/// Each resource becomes one timeline (`tid` = [`crate::task::ResourceId::index`],
/// named from `names` when provided, `r{i}` otherwise); each task becomes a
/// complete `"X"` event named by its phase label. Schedule times are seconds;
/// the export converts to the trace format's microseconds.
pub fn chrome_trace(graph: &TaskGraph, sched: &Schedule, names: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&ev);
    };
    for r in 0..graph.num_resources() as usize {
        let name = names
            .get(r)
            .filter(|n| !n.is_empty())
            .cloned()
            .unwrap_or_else(|| format!("r{r}"));
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{r},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(&name)
            ),
        );
    }
    for (i, t) in graph.tasks.iter().enumerate() {
        let label = graph.label_of(TaskId(i as u32));
        let ts = sched.start[i] * 1e6;
        let dur = (sched.finish[i] - sched.start[i]) * 1e6;
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":0,\"tid\":{},\
                 \"ts\":{ts:.3},\"dur\":{dur:.3}}}",
                escape_json(label),
                t.resource.index()
            ),
        );
    }
    out.push_str("]}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;

    #[test]
    fn gantt_shows_busy_and_idle() {
        let mut g = TaskGraph::new();
        let r1 = g.resource();
        let r2 = g.resource();
        let a = g.task(r1, 1.0, 0, &[]);
        g.task(r2, 1.0, 0, &[a]); // r2 idles the first half
        let s = run(&g);
        let txt = gantt(&g, &s, 20, 8);
        assert!(txt.contains("makespan"));
        assert!(txt.contains("r0"));
        assert!(txt.contains("r1"));
        // r1 is ~50% busy, r0 ~50% too (each one of two seconds)
        assert!(txt.matches('#').count() >= 20);
        assert!(txt.contains('.'));
    }

    #[test]
    fn chrome_trace_labels_tasks_and_resources() {
        let mut g = TaskGraph::new();
        let r1 = g.resource();
        let r2 = g.resource();
        g.set_phase("DiagUpdate");
        let a = g.task(r1, 1.0, 0, &[]);
        g.set_phase("PanelBcast");
        g.task(r2, 0.5, 0, &[a]);
        let s = run(&g);
        let json = chrome_trace(&g, &s, &["gpu0".into()]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"DiagUpdate\""));
        assert!(json.contains("\"PanelBcast\""));
        assert!(json.contains("\"gpu0\"")); // named resource
        assert!(json.contains("\"r1\"")); // fallback name
        // second task starts after the first: ts = 1.0 s = 1e6 µs
        assert!(json.contains("\"ts\":1000000.000"));
    }

    #[test]
    fn gantt_truncates_resource_list() {
        let mut g = TaskGraph::new();
        for _ in 0..5 {
            let r = g.resource();
            g.task(r, 1.0, 0, &[]);
        }
        let s = run(&g);
        let txt = gantt(&g, &s, 10, 2);
        assert!(txt.contains("3 more resources"));
    }
}
