//! Concurrent-reader property test for the serve engine: reader threads
//! resolve batched queries while the single writer publishes epochs.
//!
//! Asserted invariants (the epoch-snapshot contract):
//! * every reader batch is internally consistent — all answers come from
//!   one epoch's matrix (querying a pair twice in the same batch agrees,
//!   and the whole batch re-checks against the snapshot it was answered
//!   from);
//! * epochs observed by a reader are monotonically non-decreasing;
//! * for a fixed (s, t) pair, distances are monotonically non-increasing
//!   across epochs (decrease-only updates);
//! * a reader's epoch never runs ahead of the writer's published epoch;
//! * after the writer finishes, the final snapshot matches a from-scratch
//!   re-solve of the graph with every accepted edge added.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use apsp_core::fw_seq::fw_seq;
use apsp_core::serve::Engine;
use apsp_graph::generators::{self, WeightKind};
use apsp_graph::graph::GraphBuilder;
use rand::prelude::*;
use rand::rngs::StdRng;
use srgemm::MinPlusF32;

const N: usize = 80;
const READERS: usize = 4;
const EPOCH_BATCHES: usize = 40;
const BATCH: usize = 16;

#[test]
fn readers_see_consistent_monotone_epochs_under_update_pressure() {
    let g = generators::erdos_renyi(N, 0.08, WeightKind::small_ints(), 42);
    let engine = Arc::new(Engine::solve_from_graph(&g, 16));
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + r as u64);
                let mut last_epoch = 0u64;
                // per-pair history: (epoch, dist) of the last observation
                let mut seen: std::collections::HashMap<(usize, usize), (u64, f32)> =
                    std::collections::HashMap::new();
                let mut batches = 0usize;
                while !done.load(Ordering::Acquire) || batches < 5 {
                    // build a batch; duplicate the first pair at the end so
                    // in-batch agreement is directly observable
                    let mut pairs: Vec<(usize, usize)> = (0..BATCH)
                        .map(|_| (rng.random_range(0..N), rng.random_range(0..N)))
                        .collect();
                    pairs.push(pairs[0]);

                    let published_before = engine.latest_epoch();
                    let snap = engine.snapshot();
                    let answers = snap.dist_batch(&pairs).expect("in-range queries");

                    // the snapshot can't be older than what was already
                    // published before we took it (`latest` is stored after
                    // the pointer swap, so the reverse direction may lag by
                    // one publish and is not asserted)
                    assert!(snap.epoch() >= published_before);

                    // batch-internal consistency: duplicated pair agrees,
                    // and every answer equals the snapshot's own matrix
                    assert_eq!(answers[0].to_bits(), answers[BATCH].to_bits());
                    for (&(s, t), &d) in pairs.iter().zip(&answers) {
                        assert_eq!(d.to_bits(), snap.data()[(s, t)].d.to_bits());
                    }

                    // epochs move forward only
                    assert!(
                        snap.epoch() >= last_epoch,
                        "reader {r}: epoch went backwards ({} -> {})",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();

                    // decrease-only service: distances never grow over epochs
                    for (&(s, t), &d) in pairs.iter().zip(&answers) {
                        if let Some(&(e0, d0)) = seen.get(&(s, t)) {
                            assert!(
                                d <= d0 || snap.epoch() == e0,
                                "reader {r}: dist({s},{t}) grew {d0} -> {d} \
                                 across epochs {e0} -> {}",
                                snap.epoch()
                            );
                        }
                        seen.insert((s, t), (snap.epoch(), d));
                    }
                    batches += 1;
                }
                batches
            })
        })
        .collect();

    // the writer: streams decrease batches, remembering what was accepted
    let mut rng = StdRng::seed_from_u64(7);
    let mut accepted: Vec<(usize, usize, f32)> = Vec::new();
    for _ in 0..EPOCH_BATCHES {
        let batch: Vec<(usize, usize, f32)> = (0..4)
            .map(|_| {
                (
                    rng.random_range(0..N + 2), // occasionally out of range on purpose
                    rng.random_range(0..N),
                    rng.random_range(1..6) as f32 * 0.5,
                )
            })
            .collect();
        let out = engine.apply(&batch);
        for (i, &(u, v, w)) in batch.iter().enumerate() {
            if out.report.outcomes[i].is_ok() {
                accepted.push((u, v, w));
            }
        }
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);

    for (r, h) in readers.into_iter().enumerate() {
        let batches = h.join().unwrap_or_else(|_| panic!("reader {r} panicked"));
        assert!(batches >= 5, "reader {r} resolved only {batches} batches");
    }

    // final state equals a from-scratch re-solve with the accepted edges
    let mut b = GraphBuilder::new(N);
    for (x, y, w) in g.edges() {
        b.add_edge(x, y, w);
    }
    for &(u, v, w) in &accepted {
        b.add_edge(u, v, w);
    }
    let mut want = b.build().to_dense();
    fw_seq::<MinPlusF32>(&mut want);
    let (got, _) = engine.snapshot().split();
    assert!(want.eq_exact(&got), "final epoch must equal oracle recompute");
    assert_eq!(engine.snapshot().epoch(), engine.latest_epoch());
}
