//! The simulated device: capacity-limited memory and engine clocks.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::spec::GpuSpec;

/// Allocation failure: the device is out of memory. Carries the request and
/// the headroom at the time of the attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Oom {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes that were still free.
    pub available: u64,
}

impl std::fmt::Display for Oom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for Oom {}

pub(crate) struct Engines {
    /// SRGEMM compute engine clock (seconds).
    pub gemm: f64,
    /// Host→device copy engine clock.
    pub h2d: f64,
    /// Device→host copy engine clock.
    pub d2h: f64,
    /// Host-memory (hostUpdate) engine clock.
    pub host: f64,
}

pub(crate) struct GpuState {
    pub used: u64,
    pub engines: Engines,
}

/// A simulated GPU: allocator + engine clocks. Cheap to clone (shared state).
#[derive(Clone)]
pub struct SimGpu {
    pub(crate) spec: GpuSpec,
    pub(crate) state: Arc<Mutex<GpuState>>,
}

impl SimGpu {
    /// A device with the given spec, all engines at time zero.
    pub fn new(spec: GpuSpec) -> Self {
        SimGpu {
            spec,
            state: Arc::new(Mutex::new(GpuState {
                used: 0,
                engines: Engines { gemm: 0.0, h2d: 0.0, d2h: 0.0, host: 0.0 },
            })),
        }
    }

    /// The device's spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.state.lock().used
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.spec.mem_bytes - self.used_bytes()
    }

    /// Allocate an `len`-element device buffer of `T`, zero-initialized with
    /// `fill`. Fails with [`Oom`] when the device is full — the condition
    /// that forces the offload algorithm.
    pub fn alloc<T: Copy>(&self, len: usize, fill: T) -> Result<DeviceBuffer<T>, Oom> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        {
            let mut st = self.state.lock();
            let available = self.spec.mem_bytes - st.used;
            if bytes > available {
                return Err(Oom { requested: bytes, available });
            }
            st.used += bytes;
        }
        Ok(DeviceBuffer {
            data: Mutex::new(vec![fill; len]),
            bytes,
            gpu: self.state.clone(),
        })
    }

    /// Simulated wall-clock so far: the furthest-ahead engine.
    pub fn now(&self) -> f64 {
        let st = self.state.lock();
        st.engines
            .gemm
            .max(st.engines.h2d)
            .max(st.engines.d2h)
            .max(st.engines.host)
    }

    /// Reset all engine clocks (memory stays allocated). Benches reuse one
    /// device across measurements.
    pub fn reset_clocks(&self) {
        let mut st = self.state.lock();
        st.engines = Engines { gemm: 0.0, h2d: 0.0, d2h: 0.0, host: 0.0 };
    }

    /// Advance the host engine to at least `t` and charge `dur` seconds of
    /// host-memory work; returns the completion time. Used by the offload
    /// engine's `hostUpdate`.
    pub(crate) fn host_work(&self, ready_at: f64, dur: f64) -> f64 {
        let mut st = self.state.lock();
        let start = st.engines.host.max(ready_at);
        st.engines.host = start + dur;
        st.engines.host
    }
}

/// Memory on the simulated device. The backing store is host RAM (there is
/// no real GPU), but its size is charged against the device's capacity and
/// the data is only reachable through stream operations — the same contract
/// CUDA device pointers give you.
pub struct DeviceBuffer<T> {
    pub(crate) data: Mutex<Vec<T>>,
    bytes: u64,
    gpu: Arc<Mutex<GpuState>>,
}

impl<T> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer").field("bytes", &self.bytes).finish()
    }
}

impl<T: Copy> DeviceBuffer<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocated bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.gpu.lock().used -= self.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_charges_and_drop_releases() {
        let gpu = SimGpu::new(GpuSpec::test_tiny()); // 1 MiB
        assert_eq!(gpu.used_bytes(), 0);
        let buf = gpu.alloc::<f32>(1024, 0.0).unwrap();
        assert_eq!(gpu.used_bytes(), 4096);
        assert_eq!(buf.size_bytes(), 4096);
        drop(buf);
        assert_eq!(gpu.used_bytes(), 0);
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let gpu = SimGpu::new(GpuSpec::test_tiny());
        let _keep = gpu.alloc::<u8>(1 << 20, 0).unwrap(); // fills the device
        let err = gpu.alloc::<u8>(1, 0).unwrap_err();
        assert_eq!(err, Oom { requested: 1, available: 0 });
    }

    #[test]
    fn oom_reports_partial_headroom() {
        let gpu = SimGpu::new(GpuSpec::test_tiny());
        let _half = gpu.alloc::<u8>(1 << 19, 0).unwrap();
        let err = gpu.alloc::<u8>(1 << 20, 0).unwrap_err();
        assert_eq!(err.available, 1 << 19);
    }

    #[test]
    fn clocks_start_at_zero() {
        let gpu = SimGpu::new(GpuSpec::test_tiny());
        assert_eq!(gpu.now(), 0.0);
    }
}
