//! Tag-matched point-to-point mailboxes.
//!
//! Sends are buffered (never block), like MPI eager-protocol sends of the
//! message sizes the FW algorithms use between pipeline stages. The mailbox
//! itself is **poll-based**: `Mailbox::poll` answers instantly with
//! `Polled::Ready` or `Polled::Pending`, and the *scheduler* — not a
//! per-mailbox condvar — decides what a pending receiver does next (park its
//! task and yield its worker slot; see [`crate::exec`]). Deadlock timeouts
//! therefore live on the scheduler's deadline wheel, and the *poison* path
//! marks the mailbox so every parked receiver that gets woken by the fail-fast
//! fan-out observes the peer failure immediately instead of burning its full
//! receive timeout.

use std::any::Any;

use parking_lot::Mutex;

/// Matching key: (communicator context, source rank in that communicator, tag).
pub type MatchKey = (u64, usize, u64);

struct Envelope {
    key: MatchKey,
    payload: Box<dyn Any + Send>,
}

#[derive(Default)]
struct QueueState {
    queue: Vec<Envelope>,
    /// World rank of the first failed rank, once the runtime poisons us.
    poisoned: Option<usize>,
}

/// Outcome of one non-blocking [`Mailbox::poll`].
#[derive(Debug)]
pub(crate) enum Polled<T> {
    /// A matching message was dequeued.
    Ready(T),
    /// Nothing matching is queued (and the mailbox is healthy) — the caller
    /// should park and re-poll when woken.
    Pending,
    /// The runtime poisoned this mailbox because `rank` (world) failed.
    Poisoned {
        rank: usize,
    },
    /// A matching message arrived but its payload was not a `T` — a program
    /// bug, not a deadlock. The mismatched message is consumed.
    TypeMismatch {
        /// `std::any::type_name` of the expected payload type.
        expected: &'static str,
    },
}

/// One rank's incoming-message queue.
#[derive(Default)]
pub(crate) struct Mailbox {
    state: Mutex<QueueState>,
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Deposit a message (called by the *sender's* task, or by the runtime's
    /// timekeeper for fault-delayed deliveries). The caller is responsible
    /// for waking the destination task afterwards — the mailbox holds no
    /// thread handles.
    pub(crate) fn deliver(&self, key: MatchKey, payload: Box<dyn Any + Send>) {
        let mut q = self.state.lock();
        q.queue.push(Envelope { key, payload });
    }

    /// Mark the mailbox as poisoned by the failure of world rank `rank`.
    /// The first poisoner wins (first-failure attribution); queued messages
    /// still drain before the poison is observed, so ranks that already have
    /// their data can finish. The runtime wakes all parked tasks separately.
    pub(crate) fn poison(&self, rank: usize) {
        let mut q = self.state.lock();
        if q.poisoned.is_none() {
            q.poisoned = Some(rank);
        }
    }

    /// Non-blocking receive attempt for the first message matching `key`.
    /// Matching queued messages are always drained first ([`Polled::Ready`]);
    /// otherwise a poisoned mailbox answers [`Polled::Poisoned`]; otherwise
    /// [`Polled::Pending`] and the caller parks on the scheduler.
    pub(crate) fn poll<T: Send + 'static>(&self, key: MatchKey) -> Polled<T> {
        let mut q = self.state.lock();
        if let Some(pos) = q.queue.iter().position(|e| e.key == key) {
            let env = q.queue.remove(pos);
            return match env.payload.downcast::<T>() {
                Ok(payload) => Polled::Ready(*payload),
                Err(_) => Polled::TypeMismatch { expected: std::any::type_name::<T>() },
            };
        }
        if let Some(rank) = q.poisoned {
            return Polled::Poisoned { rank };
        }
        Polled::Pending
    }

    /// Match keys of every queued message — the deadlock report's "what did
    /// arrive while the expected message never did" listing.
    pub(crate) fn pending_keys(&self) -> Vec<MatchKey> {
        self.state.lock().queue.iter().map(|e| e.key).collect()
    }

    /// Non-blocking probe: is a matching message queued?
    pub(crate) fn probe(&self, key: MatchKey) -> bool {
        self.state.lock().queue.iter().any(|e| e.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready<T: Send + 'static + std::fmt::Debug>(mb: &Mailbox, key: MatchKey) -> T {
        match mb.poll::<T>(key) {
            Polled::Ready(v) => v,
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn delivers_in_fifo_order_per_key() {
        let mb = Mailbox::new();
        let key = (0, 1, 7);
        mb.deliver(key, Box::new(10u32));
        mb.deliver(key, Box::new(20u32));
        let a = ready::<u32>(&mb, key);
        let b = ready::<u32>(&mb, key);
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn matches_only_requested_key() {
        let mb = Mailbox::new();
        mb.deliver((0, 2, 1), Box::new(99u32));
        mb.deliver((0, 1, 1), Box::new(42u32));
        let got = ready::<u32>(&mb, (0, 1, 1));
        assert_eq!(got, 42);
        assert!(mb.probe((0, 2, 1)));
    }

    #[test]
    fn poll_is_pending_until_delivery() {
        let mb = Mailbox::new();
        assert!(matches!(mb.poll::<u64>((1, 0, 0)), Polled::Pending));
        mb.deliver((1, 0, 0), Box::new(7u64));
        let got = ready::<u64>(&mb, (1, 0, 0));
        assert_eq!(got, 7);
    }

    #[test]
    fn pending_keys_name_what_did_arrive() {
        let mb = Mailbox::new();
        mb.deliver((0, 3, 9), Box::new(1u32)); // unrelated message
        assert!(matches!(mb.poll::<u32>((0, 0, 0)), Polled::Pending));
        assert_eq!(mb.pending_keys(), vec![(0, 3, 9)]);
    }

    #[test]
    fn type_mismatch_is_a_typed_error() {
        let mb = Mailbox::new();
        mb.deliver((0, 0, 0), Box::new(1u32));
        match mb.poll::<f32>((0, 0, 0)) {
            Polled::TypeMismatch { expected } => assert_eq!(expected, "f32"),
            other => panic!("expected type mismatch, got {other:?}"),
        }
    }

    #[test]
    fn poison_is_observed_by_the_next_poll() {
        let mb = Mailbox::new();
        assert!(matches!(mb.poll::<u64>((0, 0, 0)), Polled::Pending));
        mb.poison(5);
        match mb.poll::<u64>((0, 0, 0)) {
            Polled::Poisoned { rank } => assert_eq!(rank, 5),
            other => panic!("expected peer failure, got {other:?}"),
        }
    }

    #[test]
    fn queued_messages_drain_before_poison_is_seen() {
        let mb = Mailbox::new();
        mb.deliver((0, 0, 0), Box::new(11u32));
        mb.poison(2);
        let got = ready::<u32>(&mb, (0, 0, 0));
        assert_eq!(got, 11);
        assert!(matches!(mb.poll::<u32>((0, 0, 0)), Polled::Poisoned { rank: 2 }));
    }

    #[test]
    fn first_poisoner_wins() {
        let mb = Mailbox::new();
        mb.poison(1);
        mb.poison(3);
        assert!(matches!(mb.poll::<u32>((0, 0, 0)), Polled::Poisoned { rank: 1 }));
    }
}
