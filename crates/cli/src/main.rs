//! `apsp` — command-line front end for the APSP-FW workspace.
//!
//! ```text
//! apsp generate --kind dense --n 512 --seed 7 --out g.gr
//! apsp solve    --input g.gr --algo auto --block 64 --out dist.tsv
//! apsp plan     --input g.gr
//! apsp route    --input g.gr --from 0 --to 99
//! apsp serve    --input g.gr --listen 127.0.0.1:4711
//! apsp simulate --nodes 64 --n 300000 --variant async
//! apsp info     --input g.gr
//! apsp bench    run --quick --out bench.json
//! apsp bench    serve-load --n 256 --readers 4 --out serve.json
//! ```
//!
//! Run `apsp help` (or any subcommand with `--help`) for details.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let cmd = argv.first().map(String::as_str).unwrap_or("help");
    let rest = &argv[1.min(argv.len())..];
    match cmd {
        "generate" => commands::generate::run(rest),
        "solve" => commands::solve::run(rest),
        "plan" => commands::plan::run(rest),
        "route" => commands::route::run(rest),
        "serve" => commands::serve::run(rest),
        "simulate" => commands::simulate::run(rest),
        "info" => commands::info::run(rest),
        "bench" => commands::bench::run(rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'apsp help')")),
    }
}

fn print_help() {
    println!(
        "apsp — all-pairs shortest paths (HPDC'21 Floyd-Warshall reproduction)

USAGE:
    apsp <COMMAND> [OPTIONS]

COMMANDS:
    generate   create a graph (dense/er/grid/ring/geometric) and write it to a file
    solve      compute APSP distances with a chosen algorithm (or --algo auto)
    plan       profile a graph and explain which solver 'auto' would pick
    route      print the shortest route between two vertices
    serve      serve distance/path queries with streaming updates (stdin/TCP)
    simulate   predict a run on the calibrated Summit model
    info       print statistics of a graph file
    bench      run the wall-clock perf suite / diff two suite JSON files
    help       this message

Graph files: DIMACS .gr ('--format dimacs', default for *.gr) or
0-based edge lists ('--format edges'). See 'apsp <cmd> --help'."
    );
}
