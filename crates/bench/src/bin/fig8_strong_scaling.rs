//! Fig. 8 — strong scaling at n = 300,000 vertices, 16 → 256 nodes.
//!
//! Expected shape (paper §5.5.1): Co-ParallelFw (+Async on the reordered
//! grid) is ~1.6× over Baseline at 16 nodes growing to ~4.6× at 256, where
//! it reaches 8.1 PF/s ≈ 70% of theoretical peak / ~80% parallel
//! efficiency; Offload tracks the Baseline.

use apsp_bench::{arg, arg_str, execute_functional_scale, Csv, Table};
use apsp_core::dist::Variant;
use apsp_core::schedule::{default_node_grid, optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;

fn main() {
    // `--execute-p 1024` swaps the analytic Summit model for a *functional*
    // run: the real pipeline on the event-driven simulator at paper-scale
    // rank counts, NIC bytes checked against §3.4.1 (`--execute-n` sizes it)
    if let Some(p) = arg_str("--execute-p") {
        let p: usize = p.parse().expect("--execute-p takes a rank count");
        execute_functional_scale(p, arg("--execute-n", 64));
        return;
    }
    let n: usize = arg("--n", 300_000);
    println!("== Fig. 8: strong scaling, n = {n} ==\n");
    let table = Table::new(&[
        ("nodes", 6),
        ("Offload", 8),
        ("Baseline", 9),
        ("Pipelined", 10),
        ("+Reorder", 9),
        ("+Async", 8),
        ("Co+Me", 8),
        ("perfect", 8),
        ("speedup", 8),
        ("par.eff", 8),
    ]);

    let mut csv = Csv::from_args(&[
        "nodes", "offload", "baseline", "pipelined", "reorder", "async", "come", "perfect", "speedup",
        "pareff",
    ]);
    let mut async16 = None;
    for nodes in [16usize, 32, 64, 128, 256] {
        let spec = MachineSpec::summit(nodes);
        let (dkr, dkc) = default_node_grid(nodes);
        let (okr, okc) = optimal_node_grid(nodes);
        let run = |variant, kr, kc| -> Option<f64> {
            simulate(&spec, &ScheduleConfig::new(n, variant, kr, kc))
                .ok()
                .map(|o| o.pflops)
        };
        let fmt = |v: Option<f64>| v.map_or("—".into(), |p| format!("{p:.2}"));
        let base = run(Variant::Baseline, dkr, dkc);
        let asyn = run(Variant::AsyncRing, okr, okc);
        if nodes == 16 {
            async16 = asyn;
        }
        // perfect scaling from the 16-node Co-ParallelFw point
        let perfect = async16.map(|p| p * nodes as f64 / 16.0);
        let speedup = match (base, asyn) {
            (Some(b), Some(a)) => format!("{:.1}x", a / b),
            _ => "—".into(),
        };
        let pareff = match (asyn, perfect) {
            (Some(a), Some(p)) => format!("{:.0}%", 100.0 * a / p),
            _ => "—".into(),
        };
        let row = vec![
            nodes.to_string(),
            fmt(run(Variant::Offload, okr, okc)),
            fmt(base),
            fmt(run(Variant::Pipelined, dkr, dkc)),
            fmt(run(Variant::Pipelined, okr, okc)),
            fmt(asyn),
            fmt(run(Variant::CoMe, okr, okc)),
            fmt(perfect),
            speedup,
            pareff,
        ];
        csv.row(&row);
        table.row(&row);
    }
    println!("\npaper: 1.6x over Baseline at 16 nodes → 4.6x at 256; 8.1 PF/s at 256 nodes");
}
