//! Breadth-first search — the unit-weight SSSP oracle, used to validate
//! Seidel's algorithm and the unweighted corners of the solvers.

use std::collections::VecDeque;

use crate::graph::Graph;

/// Hop counts from `src` (`u32::MAX` = unreachable). Edge weights are
/// ignored; every edge counts 1.
pub fn bfs(g: &Graph, src: usize) -> Vec<u32> {
    let n = g.n();
    assert!(src < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src as u32);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        let (ts, _) = g.out_edges(u as usize);
        for &v in ts {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// All-pairs hop counts by repeated BFS.
pub fn apsp_by_bfs(g: &Graph) -> srgemm::Matrix<f32> {
    let n = g.n();
    let mut out = srgemm::Matrix::filled(n, n, f32::INFINITY);
    for s in 0..n {
        for (t, &d) in bfs(g, s).iter().enumerate() {
            if d != u32::MAX {
                out[(s, t)] = d as f32;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};
    use crate::graph::GraphBuilder;

    #[test]
    fn line_graph_hops() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 9.0).add_edge(1, 2, 9.0).add_edge(2, 3, 9.0);
        assert_eq!(bfs(&b.build(), 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn weights_are_ignored() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 100.0).add_edge(1, 2, 100.0).add_edge(0, 2, 1.0);
        let d = bfs(&b.build(), 0);
        assert_eq!(d[2], 1); // direct edge = 1 hop regardless of weight
    }

    #[test]
    fn unreachable_vertices() {
        let g = generators::multi_component(10, 2, WeightKind::small_ints(), 1);
        let d = bfs(&g, 0);
        assert_eq!(d[9], u32::MAX);
        assert_eq!(d[0], 0);
    }

    #[test]
    fn bfs_matches_dijkstra_on_unit_weights() {
        let g = generators::erdos_renyi(30, 0.15, WeightKind::Integer { lo: 1, hi: 1 }, 8);
        let dij = crate::dijkstra::apsp_by_dijkstra(&g);
        let hops = apsp_by_bfs(&g);
        assert!(dij.eq_exact(&hops));
    }
}
