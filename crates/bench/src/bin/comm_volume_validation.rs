//! §5.2.2 functional validation: run the *real* distributed algorithms on
//! the thread-backed runtime with byte counters and compare the measured
//! per-node NIC volume against the §3.4.1 lower bound, across placements.
//!
//! Unlike the figure harnesses this moves actual data — every number below
//! is counted, not modeled.

use apsp_bench::{arg, Table};
use apsp_core::dist::{distributed_apsp, FwConfig, Variant};
use apsp_core::fw_seq::fw_seq;
use apsp_core::model::comm_lower_bound_bytes;
use apsp_core::verify::assert_matrices_equal;
use apsp_graph::generators::{uniform_dense, WeightKind};
use mpi_sim::Placement;
use srgemm::MinPlusF32;

fn main() {
    let n: usize = arg("--n", 96);
    let (pr, pc) = (8usize, 8usize);
    println!("== §3.4.1 volume validation: n = {n}, {pr}×{pc} ranks, 16 nodes ==\n");

    let input = uniform_dense(n, WeightKind::small_ints(), 3).to_dense();
    let mut want = input.clone();
    fw_seq::<MinPlusF32>(&mut want);

    let table = Table::new(&[
        ("Kr", 4),
        ("Kc", 4),
        ("bound B", 10),
        ("measured B", 11),
        ("ratio", 7),
    ]);

    // all intranode tilings of the 8×8 grid with Q = 4 ranks/node
    for (qr, qc) in [(1usize, 4usize), (2, 2), (4, 1)] {
        let (kr, kc) = (pr / qr, pc / qc);
        let cfg = FwConfig::new(n.div_ceil(8).max(4), Variant::AsyncRing);
        let placement = Placement::tiled(pr, pc, qr, qc);
        let (got, traffic) = distributed_apsp::<MinPlusF32>(pr, pc, &cfg, &input, Some(placement))
            .expect("in-core run cannot hit the device wall");
        assert_matrices_equal(&want, &got, "distributed result");
        let bound = comm_lower_bound_bytes(n, kr, kc, 4);
        let measured = traffic.max_node_nic_bytes() as f64;
        table.row(&[
            kr.to_string(),
            kc.to_string(),
            format!("{bound:.0}"),
            format!("{measured:.0}"),
            format!("{:.2}", measured / bound),
        ]);
    }
    println!("\nevery run's output matched sequential Floyd-Warshall;");
    println!("measured busiest-NIC volume sits above the §3.4.1 bound (ratio ≥ 1 up to broadcast overheads),");
    println!("and the square node grid minimizes it — the paper's rank-reordering rule.");
}
