//! Distributed Floyd-Warshall over the `mpi-sim` runtime.
//!
//! The distributed algorithm space is spanned by **three orthogonal policy
//! axes** rather than a closed list of variants:
//!
//! * [`Schedule`] — how iterations are ordered: bulk-synchronous
//!   (Algorithm 3) or look-ahead pipelined (Algorithm 4, §3.1–3.2).
//! * [`PanelBcastAlgo`] — how the k-th panels travel: binomial tree or the
//!   bandwidth-optimal pipelined ring (§3.3).
//! * [`Exec`] / the [`OuterExec`] trait — where the OuterUpdate runs:
//!   in-core GEMM ([`InCoreGemm`]) or staged through a capacity-limited
//!   simulated GPU by `ooGSrGemm` ([`GpuOffload`], §4.3).
//!
//! One generic driver loop ([`driver::run`]) consumes the triple; the paper's
//! named systems are thin presets over it:
//!
//! | Preset | Schedule | PanelBcast | OuterExec |
//! |---|---|---|---|
//! | [`Variant::Baseline`] | BulkSync (Alg. 3) | Tree | InCoreGemm |
//! | [`Variant::Pipelined`] | LookAhead (Alg. 4) | Tree | InCoreGemm |
//! | [`Variant::AsyncRing`] | LookAhead | Ring (§3.3) | InCoreGemm |
//! | [`Variant::Offload`] | BulkSync | Tree | GpuOffload (§4.3) |
//! | [`Variant::CoMe`] | LookAhead | Ring | GpuOffload |
//!
//! `CoMe` is the paper's full composed system — `Me-ParallelFw` inheriting
//! `Co-ParallelFw`'s pipelined schedule and ring PanelBcast — the
//! configuration behind the Fig. 7 run at n = 1.66M. The remaining corners
//! of the 2×2×2 cube (e.g. BulkSync+Ring) are unnamed but fully supported;
//! the cross-variant property tests sweep all eight.
//!
//! Every point of the cube produces bit-identical results to sequential
//! Floyd-Warshall; the axes only change communication structure and memory
//! residency, which the `cluster-sim` schedules turn into time.

pub mod driver;
pub mod incremental_dist;
pub mod layout;
pub mod oned;

pub use driver::{GpuOffload, InCoreGemm, OffloadStats, OuterExec};
pub use incremental_dist::{decrease_edge_dist, DistUpdateError};
pub use layout::DistMatrix;

use std::time::Duration;

use gpu_sim::{GpuSpec, OogConfig};
use mpi_sim::{
    Comm, CommError, FailureKind, FaultPlan, Placement, ProcessGrid, RunError, RunTrace, Runtime,
    TrafficReport,
};
use srgemm::matrix::Matrix;
use srgemm::semiring::Semiring;

use crate::fw_blocked::DiagMethod;

/// Iteration-ordering axis: how OuterUpdate(k) relates to the (k+1)-th
/// diag/panel phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Algorithm 3: each iteration runs its five phases to completion
    /// before the next starts.
    BulkSync,
    /// Algorithm 4: the (k+1)-th panels are brought up to date and
    /// broadcast *before* the bulk OuterUpdate(k), so the broadcast is in
    /// flight while the outer product grinds (§3.1–3.2).
    LookAhead,
}

impl Schedule {
    /// Both schedules, bulk-synchronous first.
    pub fn all() -> [Schedule; 2] {
        [Schedule::BulkSync, Schedule::LookAhead]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::BulkSync => "BulkSync",
            Schedule::LookAhead => "LookAhead",
        }
    }
}

/// Panel-broadcast axis: how the k-th panels travel along the process
/// rows/columns. The latency-critical DiagBcast always uses the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanelBcastAlgo {
    /// Binomial tree (the library broadcast of Algorithm 3).
    Tree,
    /// Pipelined ring split into `chunks` pieces (§3.3) — bandwidth-optimal
    /// for the large panels, and lets iterations drift apart.
    Ring {
        /// Number of chunks each panel is split into.
        chunks: usize,
    },
}

impl PanelBcastAlgo {
    /// Short display name (chunk count elided).
    pub fn name(&self) -> &'static str {
        match self {
            PanelBcastAlgo::Tree => "Tree",
            PanelBcastAlgo::Ring { .. } => "Ring",
        }
    }
}

/// Outer-product execution axis: selects which [`OuterExec`] implementation
/// the driver instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exec {
    /// [`InCoreGemm`]: the local matrix stays in (simulated GPU) core and
    /// the OuterUpdate is one in-memory GEMM.
    InCoreGemm,
    /// [`GpuOffload`]: the local matrix is host-resident and the
    /// OuterUpdate is staged through the capacity-limited device by
    /// `ooGSrGemm` (§4.3) — `Me-ParallelFw`'s memory model.
    GpuOffload,
}

impl Exec {
    /// Both execution policies, in-core first.
    pub fn all() -> [Exec; 2] {
        [Exec::InCoreGemm, Exec::GpuOffload]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Exec::InCoreGemm => "InCore",
            Exec::GpuOffload => "GpuOffload",
        }
    }
}

/// Why a distributed run could not complete. Returned (never panicked)
/// through [`distributed_apsp_on`] and the convenience drivers so callers —
/// the CLI in particular — can report the failure and exit cleanly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DistError {
    /// The offload executor's panels plus tile buffers exceed simulated
    /// device memory — the hard wall `Me-ParallelFw` hits when the block
    /// size is chosen absurdly large (shrink `b` or the oog tile buffers).
    DeviceOom {
        /// Bytes the device would need to hold.
        requested: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A communication primitive failed on some rank: a structured deadlock
    /// report, a peer-failure notification, a split timeout, or an injected
    /// fault (see [`mpi_sim::CommError`]).
    Comm(CommError),
    /// The offload configuration itself is invalid (zero tile dims or
    /// stream count reaching the executor via literal construction).
    BadConfig {
        /// Human-readable description of the offending knob.
        detail: String,
    },
    /// A rank's closure panicked; the runtime caught the unwind and peers
    /// were failed fast, so the panic surfaces as data instead of an abort.
    RankPanicked {
        /// World rank whose closure panicked.
        rank: usize,
        /// The panic payload, rendered as a string.
        message: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::DeviceOom { requested, available } => write!(
                f,
                "offload panels do not fit on the device: need {requested} B, \
                 have {available} B (shrink the block size or the oog tile buffers)"
            ),
            DistError::BadConfig { detail } => write!(f, "bad offload config: {detail}"),
            DistError::Comm(e) => write!(f, "communication failed: {e}"),
            DistError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
        }
    }
}

impl From<CommError> for DistError {
    fn from(e: CommError) -> Self {
        DistError::Comm(e)
    }
}

impl std::error::Error for DistError {}

/// Runtime knobs for the convenience drivers ([`distributed_apsp_opts`] and
/// friends): the deadlock-detection deadline, an optional deterministic
/// fault-injection plan, and the executor's worker-pool / stack sizing for
/// paper-scale rank counts.
#[derive(Clone, Debug, Default)]
pub struct DistRunOpts {
    /// Override the receive timeout used for deadlock detection
    /// (`None` → the runtime's 30 s default). Large-`p` simulations on few
    /// cores should *lengthen* this: ranks spend most of their wall-clock
    /// parked waiting for a worker slot, not deadlocked.
    pub recv_timeout: Option<Duration>,
    /// Deterministic fault-injection plan (empty = no faults).
    pub faults: FaultPlan,
    /// Bound on concurrently-executing rank tasks
    /// ([`mpi_sim::Runtime::with_workers`]; `None` → host parallelism).
    pub workers: Option<usize>,
    /// Per-rank stack size in bytes ([`mpi_sim::Runtime::with_stack_size`];
    /// `None` → platform default). 1024-rank smokes shrink this.
    pub stack_bytes: Option<usize>,
}

/// Collapse a failed SPMD run into the single error the caller reports:
/// first-failure attribution picks the root cause, app errors pass through
/// typed (a deterministic [`DistError::DeviceOom`] stays a `DeviceOom`), and
/// a caught panic becomes [`DistError::RankPanicked`].
fn flatten_failure(err: RunError<DistError>) -> DistError {
    let first = err.failures.into_iter().next().expect("RunError is never empty");
    match first.error {
        FailureKind::App(e) => e,
        FailureKind::Panic(message) => DistError::RankPanicked { rank: first.rank, message },
    }
}

/// Default ring chunk count for the functional (test-scale) runs; the
/// Summit-scale schedules use deeper pipelining (see
/// [`crate::schedule::ScheduleConfig`]).
pub const DEFAULT_RING_CHUNKS: usize = 4;

/// Named presets over the policy cube, in the paper's legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Algorithm 3: BulkSync + Tree + InCoreGemm.
    Baseline,
    /// Algorithm 4: LookAhead + Tree + InCoreGemm.
    Pipelined,
    /// `Co-ParallelFw`'s `+Async` legend: LookAhead + Ring + InCoreGemm.
    AsyncRing,
    /// `Me-ParallelFw` as published standalone: BulkSync + Tree + GpuOffload.
    Offload,
    /// The composed Co+Me system: LookAhead + Ring + GpuOffload — the
    /// configuration that reaches n = 1.66M at ~50% of peak in Fig. 7.
    CoMe,
}

impl Variant {
    /// All presets, in the paper's legend order.
    pub fn all() -> [Variant; 5] {
        [Variant::Baseline, Variant::Pipelined, Variant::AsyncRing, Variant::Offload, Variant::CoMe]
    }

    /// Legend string used in the figure harnesses.
    pub fn legend(&self) -> &'static str {
        match self {
            Variant::Baseline => "Baseline",
            Variant::Pipelined => "Pipelined",
            Variant::AsyncRing => "+Async",
            Variant::Offload => "Offload",
            Variant::CoMe => "Co+Me",
        }
    }

    /// The (schedule, bcast, exec) triple this preset names. Ring presets
    /// get [`DEFAULT_RING_CHUNKS`]; override the chunk count on the config.
    pub fn axes(&self) -> (Schedule, PanelBcastAlgo, Exec) {
        let ring = PanelBcastAlgo::Ring { chunks: DEFAULT_RING_CHUNKS };
        match self {
            Variant::Baseline => (Schedule::BulkSync, PanelBcastAlgo::Tree, Exec::InCoreGemm),
            Variant::Pipelined => (Schedule::LookAhead, PanelBcastAlgo::Tree, Exec::InCoreGemm),
            Variant::AsyncRing => (Schedule::LookAhead, ring, Exec::InCoreGemm),
            Variant::Offload => (Schedule::BulkSync, PanelBcastAlgo::Tree, Exec::GpuOffload),
            Variant::CoMe => (Schedule::LookAhead, ring, Exec::GpuOffload),
        }
    }

    /// The preset naming an axis triple, if any (chunk counts are ignored).
    /// Three corners of the 2×2×2 cube are unnamed and return `None`.
    pub fn from_axes(schedule: Schedule, bcast: PanelBcastAlgo, exec: Exec) -> Option<Variant> {
        let ring = matches!(bcast, PanelBcastAlgo::Ring { .. });
        match (schedule, ring, exec) {
            (Schedule::BulkSync, false, Exec::InCoreGemm) => Some(Variant::Baseline),
            (Schedule::LookAhead, false, Exec::InCoreGemm) => Some(Variant::Pipelined),
            (Schedule::LookAhead, true, Exec::InCoreGemm) => Some(Variant::AsyncRing),
            (Schedule::BulkSync, false, Exec::GpuOffload) => Some(Variant::Offload),
            (Schedule::LookAhead, true, Exec::GpuOffload) => Some(Variant::CoMe),
            _ => None,
        }
    }

    /// Legend for an arbitrary axis triple: the preset legend when one
    /// exists, otherwise the composed `Schedule+Bcast+Exec` form.
    pub fn legend_for(schedule: Schedule, bcast: PanelBcastAlgo, exec: Exec) -> String {
        match Variant::from_axes(schedule, bcast, exec) {
            Some(v) => v.legend().to_string(),
            None => format!("{}+{}+{}", schedule.name(), bcast.name(), exec.name()),
        }
    }
}

/// Configuration for a distributed APSP run: the three policy axes plus the
/// layout/kernel knobs they parameterize.
#[derive(Clone, Copy, Debug)]
pub struct FwConfig {
    /// Block size `b` of the block-cyclic distribution.
    pub block: usize,
    /// Iteration-ordering axis.
    pub schedule: Schedule,
    /// Panel-broadcast axis.
    pub bcast: PanelBcastAlgo,
    /// Outer-product execution axis.
    pub exec: Exec,
    /// How diagonal blocks are closed.
    pub diag: DiagMethod,
    /// Kernel threads each rank's [`InCoreGemm`] OuterUpdate may use.
    /// `None` → budgeted automatically as `available_parallelism / (pr·pc)`,
    /// floor 1, so ranks × kernel threads never exceeds the machine
    /// (DESIGN.md §10). `Some(1)` forces the serial pre-budget behavior.
    pub kernel_threads: Option<usize>,
    /// Device spec for the GpuOffload executor (each rank gets one GPU).
    pub gpu_spec: GpuSpec,
    /// ooGSrGemm tiling for the GpuOffload executor.
    pub oog: OogConfig,
}

impl FwConfig {
    /// Preset constructor. Defaults: 4-chunk ring (where the preset uses
    /// one), FW-closure diagonals, and a tiny test GPU with 64×64 tile
    /// buffers on 3 streams (sized to fit [`GpuSpec::test_tiny`]; production
    /// harnesses override both).
    pub fn new(block: usize, variant: Variant) -> Self {
        let (schedule, bcast, exec) = variant.axes();
        FwConfig::from_axes(block, schedule, bcast, exec)
    }

    /// Construct directly from an axis triple (any corner of the cube,
    /// named or not).
    pub fn from_axes(block: usize, schedule: Schedule, bcast: PanelBcastAlgo, exec: Exec) -> Self {
        FwConfig {
            block,
            schedule,
            bcast,
            exec,
            diag: DiagMethod::FwClosure,
            kernel_threads: None,
            gpu_spec: GpuSpec::test_tiny(),
            oog: OogConfig::new(64, 64, 3),
        }
    }

    /// Legend string for this configuration's axis triple.
    pub fn legend(&self) -> String {
        Variant::legend_for(self.schedule, self.bcast, self.exec)
    }
}

/// Broadcast a matrix (flattened) over `comm` from `root`; `mine` is
/// `Some(matrix)` at the root. Returns the matrix on every rank, or the
/// communication error that broke the collective.
pub(crate) fn bcast_matrix<S: Semiring>(
    comm: &Comm,
    root: usize,
    mine: Option<Matrix<S::Elem>>,
    rows: usize,
    cols: usize,
    how: PanelBcastAlgo,
) -> Result<Matrix<S::Elem>, CommError> {
    let payload = mine.map(|m| {
        debug_assert_eq!((m.rows(), m.cols()), (rows, cols));
        m.as_slice().to_vec()
    });
    let data = match how {
        PanelBcastAlgo::Tree => comm.bcast(root, payload)?,
        PanelBcastAlgo::Ring { chunks } => comm.ring_bcast(root, payload, chunks)?,
    };
    assert_eq!(data.len(), rows * cols, "broadcast panel size mismatch");
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Per-iteration context shared by the driver loops: the closed diagonal
/// broadcast to the k-th process row/column, then the panels to everyone —
/// plus, when the executor consumes it, the row panel pre-packed into the
/// micro-kernel's tiled layout.
///
/// Packing happens **once per iteration** (in the driver, right after the
/// broadcast lands) and the same [`PackedB`] then feeds both the look-ahead
/// row-strip update and the bulk OuterUpdate — the panel is the `B` operand
/// of every GEMM of the iteration, so one pack amortizes over all of them.
/// The column panel is the `A` operand (packed per-slab inside the kernel)
/// and the look-ahead *column* strip multiplies against a `b_k`-column
/// sub-slice of the row panel, whose packed tiles would not line up; both
/// therefore stay unpacked (see `lookahead_update`).
pub(crate) struct PackedPanels<T> {
    /// `local_rows × b_k` column panel (`A(:,k)` restricted to my rows).
    pub col_panel: Matrix<T>,
    /// `b_k × local_cols` row panel (`A(k,:)` restricted to my cols).
    pub row_panel: Matrix<T>,
    /// `row_panel` in packed-tile layout; `Some` only when the executor
    /// reports [`OuterExec::wants_packed`].
    pub packed_row: Option<srgemm::gemm::PackedB<T>>,
}

impl<T: Copy> PackedPanels<T> {
    /// Pack the row panel (idempotent; a no-op if already packed).
    pub fn pack_row<S: Semiring<Elem = T>>(&mut self) {
        if self.packed_row.is_none() {
            self.packed_row = Some(srgemm::gemm::PackedB::pack::<S>(&self.row_panel.view()));
        }
    }
}

/// DiagUpdate + DiagBcast + PanelUpdate + PanelBcast for iteration `k` —
/// identical at every point of the policy cube (only the panel broadcast
/// algorithm differs). On success the k-th strips of `a` are updated in
/// place and every rank holds the broadcast panels; a broken broadcast
/// surfaces as [`DistError::Comm`] on every participating rank.
pub(crate) fn diag_and_panels<S: Semiring>(
    grid: &ProcessGrid,
    a: &mut DistMatrix<S::Elem>,
    k: usize,
    diag_method: DiagMethod,
    how: PanelBcastAlgo,
) -> Result<PackedPanels<S::Elem>, DistError> {
    use srgemm::closure::{fw_closure, fw_closure_squaring};
    use srgemm::panel::{panel_update_left, panel_update_right};

    let bk = a.block_dim(k);
    let kr = k % a.pr;
    let kc = k % a.pc;

    // Phase guards open unconditionally on every rank (even ranks with no
    // work in the phase), so every rank's timeline shows the full five-phase
    // iteration structure and idle time is visible as near-zero spans.

    // DiagUpdate at the owner
    {
        let _p = grid.grid.phase("DiagUpdate");
        if a.owns_row(k) && a.owns_col(k) {
            let mut d = a.diag_block_mut(k);
            match diag_method {
                DiagMethod::FwClosure => fw_closure::<S>(&mut d),
                DiagMethod::Squaring => fw_closure_squaring::<S>(&mut d, false),
            }
        }
    }

    // DiagBcast along the k-th process row and column (tree: small, latency-
    // critical — the paper keeps the library broadcast here even in +Async)
    let mut diag_row: Option<Matrix<S::Elem>> = None;
    let mut diag_col: Option<Matrix<S::Elem>> = None;
    {
        let _p = grid.grid.phase("DiagBcast");
        if a.owns_row(k) {
            let mine = a.owns_col(k).then(|| a.diag_block(k));
            diag_row = Some(bcast_matrix::<S>(&grid.row, kc, mine, bk, bk, PanelBcastAlgo::Tree)?);
        }
        if a.owns_col(k) {
            let mine = a.owns_row(k).then(|| a.diag_block(k));
            diag_col = Some(bcast_matrix::<S>(&grid.col, kr, mine, bk, bk, PanelBcastAlgo::Tree)?);
        }
    }

    // PanelUpdate on the owning strips (includes the diagonal block itself,
    // where D ⊕ D⊗D = D is a no-op)
    {
        let _p = grid.grid.phase("PanelUpdate");
        if let Some(d) = &diag_row {
            let mut strip = a.row_strip_mut(k);
            panel_update_left::<S>(&mut strip, &d.view());
        }
        if let Some(d) = &diag_col {
            let mut strip = a.col_strip_mut(k);
            panel_update_right::<S>(&mut strip, &d.view());
        }
    }

    // PanelBcast: row panel down each process column, column panel across
    // each process row
    let _p = grid.grid.phase("PanelBcast");
    let lcols = a.local.cols();
    let lrows = a.local.rows();
    let row_panel = bcast_matrix::<S>(
        &grid.col,
        kr,
        a.owns_row(k).then(|| a.row_strip(k).to_matrix()),
        bk,
        lcols,
        how,
    )?;
    let col_panel = bcast_matrix::<S>(
        &grid.row,
        kc,
        a.owns_col(k).then(|| a.col_strip(k).to_matrix()),
        lrows,
        bk,
        how,
    )?;
    Ok(PackedPanels { col_panel, row_panel, packed_row: None })
}

/// Run the configured policy triple on this rank's share of an existing
/// distributed matrix. Collective over `grid`. Returns the offload
/// statistics when `cfg.exec` is [`Exec::GpuOffload`], `None` otherwise.
pub fn run_on_grid<S: Semiring>(
    grid: &ProcessGrid,
    a: &mut DistMatrix<S::Elem>,
    cfg: &FwConfig,
) -> Result<Option<OffloadStats>, DistError> {
    match cfg.exec {
        Exec::InCoreGemm => {
            // Thread-budgeted OuterUpdate: every rank of this grid is a
            // thread on the same machine, so each one's kernel gets
            // cores / (pr·pc) workers unless the config pins a count.
            let mut exec = match cfg.kernel_threads {
                Some(t) => InCoreGemm::with_threads(t),
                None => InCoreGemm::budgeted(grid.grid.size()),
            };
            driver::run::<S, _>(grid, a, cfg, &mut exec)?;
            Ok(None)
        }
        Exec::GpuOffload => {
            // The preflight is deterministic in (n, b, pr, pc), so every
            // rank of the grid agrees on feasibility and the error path
            // never strands a peer inside a collective.
            let mut exec = GpuOffload::preflight::<S>(cfg, a.n, a.pr, a.pc)?;
            driver::run::<S, _>(grid, a, cfg, &mut exec)?;
            Ok(Some(exec.stats()))
        }
    }
}

/// Run distributed APSP on an existing communicator (one call per rank,
/// SPMD). `global` must be identical on every rank; each rank slices its
/// own share. The result is gathered to grid rank 0 (`Ok(Some)` there,
/// `Ok(None)` elsewhere).
pub fn distributed_apsp_on<S: Semiring>(
    comm: Comm,
    pr: usize,
    pc: usize,
    cfg: &FwConfig,
    global: &Matrix<S::Elem>,
) -> Result<Option<Matrix<S::Elem>>, DistError> {
    let grid = ProcessGrid::new(comm, pr, pc)?;
    let (my_r, my_c) = grid.coords();
    let mut a = DistMatrix::from_global(global, cfg.block, pr, pc, my_r, my_c);
    run_on_grid::<S>(&grid, &mut a, cfg)?;
    Ok(a.gather(&grid)?)
}

/// Fold the per-rank results of a successful SPMD run into the root's
/// matrix; a run in which no rank gathered anything (possible only for
/// degenerate inputs) yields the empty matrix instead of aborting.
fn collect_root<S: Semiring>(results: Vec<Option<Matrix<S::Elem>>>) -> Matrix<S::Elem> {
    results
        .into_iter()
        .flatten()
        .next()
        .unwrap_or_else(|| Matrix::from_vec(0, 0, Vec::new()))
}

/// Build the runtime for a convenience driver from placement + run options.
fn build_runtime(p: usize, placement: Option<Placement>, opts: &DistRunOpts) -> Runtime {
    let mut rt = Runtime::new(p);
    if let Some(pl) = placement {
        rt = rt.with_placement(pl);
    }
    if let Some(t) = opts.recv_timeout {
        rt = rt.with_recv_timeout(t);
    }
    if !opts.faults.is_empty() {
        rt = rt.with_faults(opts.faults.clone());
    }
    if let Some(w) = opts.workers {
        rt = rt.with_workers(w);
    }
    if let Some(bytes) = opts.stack_bytes {
        rt = rt.with_stack_size(bytes);
    }
    rt
}

/// Convenience driver: spin up `pr·pc` ranks, run
/// [`distributed_apsp_on`], and return the gathered matrix plus the traffic
/// report (for the §5.1.3 effective-bandwidth metric).
///
/// Any rank failure — deadlock timeout, injected fault, device OOM, or a
/// caught panic — comes back as a typed [`DistError`] (first failure wins);
/// nothing in this path panics the caller.
pub fn distributed_apsp<S: Semiring>(
    pr: usize,
    pc: usize,
    cfg: &FwConfig,
    global: &Matrix<S::Elem>,
    placement: Option<Placement>,
) -> Result<(Matrix<S::Elem>, TrafficReport), DistError> {
    distributed_apsp_opts::<S>(pr, pc, cfg, global, placement, &DistRunOpts::default())
}

/// [`distributed_apsp`] with explicit [`DistRunOpts`] (receive timeout,
/// fault injection).
pub fn distributed_apsp_opts<S: Semiring>(
    pr: usize,
    pc: usize,
    cfg: &FwConfig,
    global: &Matrix<S::Elem>,
    placement: Option<Placement>,
    opts: &DistRunOpts,
) -> Result<(Matrix<S::Elem>, TrafficReport), DistError> {
    let rt = build_runtime(pr * pc, placement, opts);
    let cfg = *cfg;
    let (out, traffic) =
        rt.try_run_traced(move |comm| distributed_apsp_on::<S>(comm, pr, pc, &cfg, global));
    match out {
        Ok(results) => Ok((collect_root::<S>(results), traffic)),
        Err(e) => Err(flatten_failure(e)),
    }
}

/// Like [`distributed_apsp`] but additionally records the per-rank,
/// per-phase [`RunTrace`] (Chrome-exportable; see
/// [`mpi_sim::Runtime::run_with_trace`]). The five paper phase names appear
/// on every rank's timeline, one set per iteration.
pub fn distributed_apsp_traced<S: Semiring>(
    pr: usize,
    pc: usize,
    cfg: &FwConfig,
    global: &Matrix<S::Elem>,
    placement: Option<Placement>,
) -> Result<(Matrix<S::Elem>, TrafficReport, RunTrace), DistError> {
    distributed_apsp_traced_opts::<S>(pr, pc, cfg, global, placement, &DistRunOpts::default())
}

/// [`distributed_apsp_traced`] with explicit [`DistRunOpts`].
pub fn distributed_apsp_traced_opts<S: Semiring>(
    pr: usize,
    pc: usize,
    cfg: &FwConfig,
    global: &Matrix<S::Elem>,
    placement: Option<Placement>,
    opts: &DistRunOpts,
) -> Result<(Matrix<S::Elem>, TrafficReport, RunTrace), DistError> {
    let rt = build_runtime(pr * pc, placement, opts);
    let cfg = *cfg;
    let (out, traffic, trace) =
        rt.try_run_with_trace(move |comm| distributed_apsp_on::<S>(comm, pr, pc, &cfg, global));
    match out {
        Ok(results) => Ok((collect_root::<S>(results), traffic, trace)),
        Err(e) => Err(flatten_failure(e)),
    }
}
