#![warn(missing_docs)]

//! # apsp-bench — paper-figure regeneration harnesses and kernel benches
//!
//! One binary per data figure of the paper (see DESIGN.md §4 for the full
//! index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig3_rank_placement` | Fig. 3 — effective bandwidth vs (K_r, K_c) per node count |
//! | `fig4_comm_strategies` | Fig. 4 — Baseline/Pipelined/+Reordering/+Async vs n, 64 nodes |
//! | `fig5_oog_blocksize` | Fig. 5 — ooGSrGemm Gflop/s vs block size per buffer size |
//! | `fig6_oog_buffer` | Fig. 6 — ooGSrGemm Gflop/s heatmap, vertices × buffer |
//! | `fig7_64node_perf` | Fig. 7 — end-to-end PF/s vs n on 64 nodes, all variants |
//! | `fig8_strong_scaling` | Fig. 8 — strong scaling 16…256 nodes at n = 300k |
//! | `fig9_weak_scaling` | Fig. 9 — weak scaling, n³/p constant |
//! | `headline_claims` | §1/§5 headline numbers, paper vs simulated |
//! | `comm_volume_validation` | §5.2.2 — functional byte-count validation of §3.4.1 |
//!
//! The Criterion benches (`benches/`) measure the *real* CPU kernels of
//! this reproduction (SRGEMM, closures, blocked FW, the offload engine, the
//! collectives, and the distributed variants) — wall-clock numbers for this
//! machine, complementing the simulated Summit numbers above.

pub mod json;
pub mod perf;

/// Simple fixed-width table printer shared by the figure binaries.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table and print its header row.
    pub fn new(headers: &[(&str, usize)]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.1).collect();
        let row: Vec<String> = headers.iter().map(|(h, w)| format!("{h:>w$}")).collect();
        println!("{}", row.join("  "));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        Table { widths }
    }

    /// Print one row of already-formatted cells.
    pub fn row(&self, cells: &[String]) {
        let row: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", row.join("  "));
    }
}

/// The paper's Fig. 4/7 vertex sweep: 16,384 → 1,664,511 in ×1.26 steps
/// (every point in the published x-axes).
pub fn paper_vertex_sweep() -> Vec<usize> {
    vec![
        16_384, 20_643, 26_008, 32_768, 41_285, 52_016, 65_536, 82_570, 104_032, 131_072,
        165_140, 208_064, 262_144, 330_281, 416_128, 524_288, 660_562, 832_255, 1_048_576,
        1_321_124, 1_664_511,
    ]
}

/// Optional CSV sink: when `--csv <path>` is on the command line, every
/// table row is mirrored to the file (comma-separated, one header row).
pub struct Csv {
    file: Option<std::io::BufWriter<std::fs::File>>,
}

impl Csv {
    /// Open the sink if `--csv` was given; write the header.
    pub fn from_args(headers: &[&str]) -> Csv {
        use std::io::Write;
        let path: String = arg("--csv", String::new());
        if path.is_empty() {
            return Csv { file: None };
        }
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("create {path}: {e}")),
        );
        writeln!(f, "{}", headers.join(",")).expect("write csv header");
        Csv { file: Some(f) }
    }

    /// Append one row.
    pub fn row(&mut self, cells: &[String]) {
        use std::io::Write;
        if let Some(f) = &mut self.file {
            writeln!(f, "{}", cells.join(",")).expect("write csv row");
        }
    }
}

/// Parse `--flag value` style overrides from argv.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A `--flag value` string option with no default (`None` when absent).
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Shared `--trace <prefix>` handling for the figure binaries: write one
/// Chrome trace_events JSON per legend entry at the `--trace-n` vertex count
/// (default 65,536 — a bandwidth-bound sweep point), named
/// `<prefix>_<legend>.json`.
pub fn write_schedule_traces(
    spec: &cluster_sim::MachineSpec,
    legends: &[(&str, apsp_core::dist::Variant, usize, usize)],
) {
    let Some(prefix) = arg_str("--trace") else { return };
    let tn: usize = arg("--trace-n", 65_536);
    for &(legend, variant, kr, kc) in legends {
        let cfg = apsp_core::schedule::ScheduleConfig::new(tn, variant, kr, kc);
        match apsp_core::schedule::simulate_with_trace(spec, &cfg) {
            Ok((_, json)) => {
                let path = format!("{prefix}_{legend}.json");
                std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
                println!("wrote {legend} schedule trace (n = {tn}) to {path}");
            }
            Err(e) => println!("trace {legend}: infeasible at n = {tn} ({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_covers_the_paper_range() {
        let s = paper_vertex_sweep();
        assert_eq!(*s.first().unwrap(), 16_384);
        assert_eq!(*s.last().unwrap(), 1_664_511);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.contains(&524_288)); // the Fig. 7 memory wall
        assert!(s.contains(&208_064)); // the Fig. 7 compute-bound knee
    }
}
