//! Shape checks on the Summit-scale schedules: the qualitative claims of
//! the paper's evaluation must emerge from the simulated task DAGs.

use apsp_core::dist::Variant;
use apsp_core::schedule::{default_node_grid, optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;

fn sim(n: usize, variant: Variant, nodes: usize, kr: usize, kc: usize) -> apsp_core::schedule::SimOutcome {
    let spec = MachineSpec::summit(nodes);
    simulate(&spec, &ScheduleConfig::new(n, variant, kr, kc)).expect("feasible")
}

#[test]
fn pipelined_beats_baseline_in_the_bandwidth_bound_regime() {
    // Fig. 4's core claim at small n on many nodes
    let (kr, kc) = default_node_grid(64);
    let base = sim(65_536, Variant::Baseline, 64, kr, kc);
    let pipe = sim(65_536, Variant::Pipelined, 64, kr, kc);
    assert!(
        pipe.seconds < base.seconds,
        "pipelined {} should beat baseline {}",
        pipe.seconds,
        base.seconds
    );
}

#[test]
fn reordering_and_ring_add_further_gains() {
    // deep in the bandwidth-bound regime (Fig. 4's left half), where each
    // optimization is separable
    let (dkr, dkc) = default_node_grid(64);
    let (okr, okc) = optimal_node_grid(64);
    let n = 32_768;
    let pipe = sim(n, Variant::Pipelined, 64, dkr, dkc);
    let reorder = sim(n, Variant::Pipelined, 64, okr, okc);
    let async_ring = sim(n, Variant::AsyncRing, 64, okr, okc);
    assert!(reorder.seconds < pipe.seconds, "reordering should help");
    assert!(
        async_ring.seconds < reorder.seconds,
        "ring bcast should help further: {} vs {}",
        async_ring.seconds,
        reorder.seconds
    );
}

#[test]
fn optimizations_wash_out_when_compute_bound() {
    // Fig. 7: past ~208k vertices on 64 nodes everything converges
    let (okr, okc) = optimal_node_grid(64);
    let (dkr, dkc) = default_node_grid(64);
    let n = 400_000;
    let base = sim(n, Variant::Baseline, 64, dkr, dkc);
    let best = sim(n, Variant::AsyncRing, 64, okr, okc);
    let ratio = base.seconds / best.seconds;
    assert!(
        ratio < 1.6,
        "compute-bound regime: variants should converge (ratio {ratio})"
    );
    // and both should run at a healthy fraction of peak
    assert!(best.pflops > 0.5 * MachineSpec::summit(64).total_flops() / 1e15);
}

#[test]
fn gpu_memory_wall_matches_figure_7() {
    let spec = MachineSpec::summit(64);
    let ok = ScheduleConfig::new(524_288, Variant::Baseline, 8, 8);
    assert!(simulate(&spec, &ok).is_ok(), "524k must fit on 64 nodes");
    let too_big = ScheduleConfig::new(660_562, Variant::Baseline, 8, 8);
    let err = simulate(&spec, &too_big).unwrap_err();
    assert!(err.reason.contains("beyond GPU memory"), "{}", err.reason);
    // offload sails past the wall (paper: up to 1.66M)
    let offload = ScheduleConfig::new(1_664_511, Variant::Offload, 8, 8);
    assert!(simulate(&spec, &offload).is_ok(), "offload must handle 1.66M vertices");
}

#[test]
fn strong_scaling_co_parallelfw_gains_grow_with_node_count() {
    // Fig. 8: 1.6× at 16 nodes growing to ~4.6× at 256
    let n = 300_000;
    let ratio_at = |nodes: usize| {
        let (dkr, dkc) = default_node_grid(nodes);
        let (okr, okc) = optimal_node_grid(nodes);
        let base = sim(n, Variant::Baseline, nodes, dkr, dkc);
        let best = sim(n, Variant::AsyncRing, nodes, okr, okc);
        base.seconds / best.seconds
    };
    let r16 = ratio_at(16);
    let r256 = ratio_at(256);
    assert!(r16 > 1.05, "some gain already at 16 nodes (got {r16})");
    assert!(r256 > r16, "gain must grow with node count ({r16} → {r256})");
    assert!(r256 > 1.8, "large gain at 256 nodes (got {r256})");
}

#[test]
fn weak_scaling_async_is_flatter_than_baseline() {
    // Fig. 9: n³/p constant, from n=300k at 16 nodes
    let runtime_growth = |variant: Variant, reorder: bool| {
        let t = |nodes: usize| {
            let n = (300_000.0f64 * (nodes as f64 / 16.0).cbrt()) as usize;
            let (kr, kc) = if reorder { optimal_node_grid(nodes) } else { default_node_grid(nodes) };
            sim(n, variant, nodes, kr, kc).seconds
        };
        t(256) / t(16)
    };
    let base_growth = runtime_growth(Variant::Baseline, false);
    let async_growth = runtime_growth(Variant::AsyncRing, true);
    assert!(
        async_growth < base_growth,
        "Co-ParallelFw must weak-scale better: {async_growth} vs {base_growth}"
    );
    assert!(async_growth < 1.6, "near-flat weak scaling (got {async_growth})");
}

#[test]
fn offload_overhead_is_modest_at_large_n() {
    // headline: "2.5× larger graphs with a 20% increase in overall running
    // time" → at the same (large, feasible) n the offload penalty is small
    let (okr, okc) = optimal_node_grid(64);
    let n = 400_000;
    let incore = sim(n, Variant::Baseline, 64, okr, okc);
    let offload = sim(n, Variant::Offload, 64, okr, okc);
    let penalty = offload.seconds / incore.seconds;
    assert!(
        (1.0..1.6).contains(&penalty),
        "offload penalty should be modest, got {penalty}"
    );
}

#[test]
fn blocked_2d_dominates_the_1d_comparator() {
    // related-work shape: the unblocked 1-D formulation pays n broadcasts
    // and memory-bound rank-1 updates; blocked 2-D Co-ParallelFw crushes it
    use apsp_core::schedule::simulate_oned;
    let spec = MachineSpec::summit(16);
    let n = 65_536;
    let oned = simulate_oned(&spec, n, 4);
    let (kr, kc) = optimal_node_grid(16);
    let twod = sim(n, Variant::AsyncRing, 16, kr, kc);
    assert!(
        twod.seconds * 3.0 < oned.seconds,
        "2-D ({}) should be ≫ faster than 1-D ({})",
        twod.seconds,
        oned.seconds
    );
}

#[test]
fn node_grid_helpers_factor_correctly() {
    assert_eq!(optimal_node_grid(64), (8, 8));
    let (r, c) = default_node_grid(64);
    assert_eq!(r * c, 64);
    assert!(r > c, "default grid is skewed");
    let (r1, c1) = default_node_grid(16);
    assert_eq!(r1 * c1, 16);
}
