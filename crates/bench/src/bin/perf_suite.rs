//! Wall-clock perf suite runner + regression comparator.
//!
//! ```text
//! perf_suite run [--quick] [--reps N] [--out FILE]
//! perf_suite compare OLD.json NEW.json [--threshold PCT] [--report-only]
//! ```
//!
//! `run` measures the GEMM kernels (incl. the headline packed-vs-blocked
//! entry and the quantized u16/i32 packed lanes), blocked FW, the 2×2×2
//! distributed policy cube, the headline baseline-vs-budgeted distributed
//! run, and the quantized end-to-end solve, and writes the
//! `apsp-bench-perf/1` JSON to `--out` (default `BENCH_PR10.json`; `-` for
//! stdout). Progress goes to stderr.
//!
//! `compare` diffs two suite files by entry name and exits non-zero when
//! any benchmark regressed by more than the threshold (default 15%), unless
//! `--report-only` is given (CI smoke uses that to validate the artifact
//! without gating on a noisy runner).

use std::process::ExitCode;

use apsp_bench::json::Json;
use apsp_bench::perf::{self, Mode, Report};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  perf_suite run [--quick] [--reps N] [--out FILE]\n  \
         perf_suite compare OLD.json NEW.json [--threshold PCT] [--report-only]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("compare") => compare(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut mode = Mode::Full;
    let mut reps = 3usize;
    let mut out = "BENCH_PR10.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => mode = Mode::Quick,
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => reps = v,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let report = perf::run_suite(mode, reps);
    let text = report.to_json().pretty();
    if out == "-" {
        print!("{text}");
    } else if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("perf_suite: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    } else {
        eprintln!("[perf] wrote {} entries to {out}", report.entries.len());
    }
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Report::from_json(&doc).map_err(|e| format!("{path}: {e}"))
}

fn compare(args: &[String]) -> ExitCode {
    let mut threshold = perf::DEFAULT_THRESHOLD;
    let mut report_only = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) => threshold = pct / 100.0,
                None => return usage(),
            },
            "--report-only" => report_only = true,
            other if !other.starts_with('-') => files.push(other.to_string()),
            _ => return usage(),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return usage();
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perf_suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cmp = match perf::compare(&old, &new, threshold) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perf_suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", cmp.render());
    if cmp.has_regressions() {
        eprintln!(
            "perf_suite: regressions beyond {:.0}% detected{}",
            threshold * 100.0,
            if report_only { " (report-only: not failing)" } else { "" }
        );
        if !report_only {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
