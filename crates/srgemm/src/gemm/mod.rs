//! Semiring GEMM kernels: `C ← C ⊕ A ⊗ B`.
//!
//! Four implementations share one contract:
//!
//! * [`gemm_naive`] — triple loop, the correctness oracle;
//! * [`gemm_blocked`] — cache-tiled i-k-j kernel over strided views;
//! * [`gemm_packed`] — BLIS-style packed operands + register-tiled
//!   micro-kernel (see [`pack`]), the serial workhorse;
//! * [`gemm_parallel`] — row-slab threads over the packed kernel, sharing
//!   one packed `B` across all slabs, standing in for the GPU SRGEMM of the
//!   paper's §2.6/§4.1.
//!
//! The accumulate-into-C contract matches the paper's *MinPlus outer product*
//! (`A(i,j) ← A(i,j) ⊕ A(i,k) ⊗ A(k,j)`) and cuASR's epilogue semantics.
//! Every kernel folds the reduction in ascending `k` per output element, so
//! all four are bit-identical on every semiring.

mod blocked;
mod naive;
pub mod pack;
mod parallel;

pub use blocked::{gemm_blocked, gemm_blocked_tiled, KC, MC, NC};
pub use naive::gemm_naive;
pub use pack::{
    dtype_name, gemm_packed, gemm_packed_with_b, pad_quantum, pad_quantum_for, Isa,
    PackDecodeError, PackElem, PackedA, PackedB,
};
pub use parallel::{
    budget_threads, gemm_parallel, gemm_parallel_threads, gemm_parallel_threads_with_b,
};

use crate::matrix::{View, ViewMut};
use crate::semiring::Semiring;

/// Kernel selector, used by benches and the ablation harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmAlgo {
    /// Triple-loop reference kernel.
    Naive,
    /// Cache-blocked serial kernel over strided views.
    Blocked,
    /// BLIS-style packed, register-tiled serial kernel.
    Packed,
    /// Row-slab parallel kernel (packed, shared `B`).
    Parallel,
}

/// Dispatch on a [`GemmAlgo`].
pub fn gemm_with<S: Semiring>(
    algo: GemmAlgo,
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) {
    match algo {
        GemmAlgo::Naive => gemm_naive::<S>(c, a, b),
        GemmAlgo::Blocked => gemm_blocked::<S>(c, a, b),
        GemmAlgo::Packed => gemm_packed::<S>(c, a, b),
        GemmAlgo::Parallel => gemm_parallel::<S>(c, a, b),
    }
}

/// Default serial kernel: the packed, register-tiled implementation.
/// Distributed algorithms that already parallelize across ranks use this to
/// avoid nested thread pools; single-node code calls [`gemm_parallel`]
/// directly.
pub fn gemm<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) {
    gemm_packed::<S>(c, a, b)
}

/// Validate `C ← C ⊕ A ⊗ B` operand shapes; every kernel calls this first.
#[inline]
pub(crate) fn check_shapes<T: Copy>(c: &ViewMut<'_, T>, a: &View<'_, T>, b: &View<'_, T>) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dimensions disagree");
    assert_eq!(c.rows(), a.rows(), "gemm: C rows != A rows");
    assert_eq!(c.cols(), b.cols(), "gemm: C cols != B cols");
}

/// Flop count convention used throughout the workspace and by the paper:
/// one ⊕ and one ⊗ per inner-loop step, i.e. `2·m·n·k` for an `m×k · k×n`
/// product.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::semiring::{MinPlus, RealArith};

    type MP = MinPlus<f32>;

    fn dist(vals: &[&[f32]]) -> Matrix<f32> {
        Matrix::from_rows(vals)
    }

    #[test]
    fn min_plus_product_small() {
        // C(i,j) = min_k A(i,k) + B(k,j), accumulated into C.
        let a = dist(&[&[1.0, 2.0], &[4.0, 1.0]]);
        let b = dist(&[&[0.0, 5.0], &[1.0, 0.0]]);
        let mut c = Matrix::filled(2, 2, f32::INFINITY);
        gemm::<MP>(&mut c.view_mut(), &a.view(), &b.view());
        assert_eq!(c[(0, 0)], 1.0); // min(1+0, 2+1) = 1
        assert_eq!(c[(0, 1)], 2.0); // min(1+5, 2+0) = 2
        assert_eq!(c[(1, 0)], 2.0); // min(4+0, 1+1) = 2
        assert_eq!(c[(1, 1)], 1.0); // min(4+5, 1+0) = 1
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = dist(&[&[10.0]]);
        let b = dist(&[&[10.0]]);
        let mut c = dist(&[&[5.0]]);
        gemm::<MP>(&mut c.view_mut(), &a.view(), &b.view());
        // existing 5.0 beats 10+10
        assert_eq!(c[(0, 0)], 5.0);
    }

    #[test]
    fn infinity_edges_do_not_contaminate() {
        let inf = f32::INFINITY;
        let a = dist(&[&[inf, 3.0]]);
        let b = dist(&[&[1.0], &[inf]]);
        let mut c = Matrix::filled(1, 1, inf);
        gemm::<MP>(&mut c.view_mut(), &a.view(), &b.view());
        assert_eq!(c[(0, 0)], inf); // no finite path
    }

    #[test]
    fn real_arith_matches_manual_matmul() {
        type RA = RealArith<f64>;
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = Matrix::filled(2, 2, 0.0f64);
        gemm::<RA>(&mut c.view_mut(), &a.view(), &b.view());
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::from_fn(3, 5, |i, j| (i + j) as f32);
        let b = Matrix::from_fn(5, 2, |i, j| (i * 2 + j) as f32);
        let mut c1 = Matrix::filled(3, 2, f32::INFINITY);
        let mut c2 = c1.clone();
        gemm_naive::<MP>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_blocked::<MP>(&mut c2.view_mut(), &a.view(), &b.view());
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Matrix::filled(2, 3, 0.0f32);
        let b = Matrix::filled(2, 2, 0.0f32);
        let mut c = Matrix::filled(2, 2, 0.0f32);
        gemm::<MP>(&mut c.view_mut(), &a.view(), &b.view());
    }

    #[test]
    fn zero_sized_k_is_identity_on_c() {
        let a = Matrix::filled(2, 0, 0.0f32);
        let b = Matrix::filled(0, 2, 0.0f32);
        let mut c = dist(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let before = c.clone();
        gemm::<MP>(&mut c.view_mut(), &a.view(), &b.view());
        assert!(c.eq_exact(&before));
    }

    #[test]
    fn flop_count_convention() {
        assert_eq!(gemm_flops(10, 20, 30), 2.0 * 10.0 * 20.0 * 30.0);
    }
}
