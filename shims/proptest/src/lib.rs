//! Std-only shim for the `proptest` API subset used by this workspace.
//!
//! The build environment cannot reach crates.io, so this provides the
//! pieces the property tests rely on — the [`proptest!`] macro,
//! [`prop_assert!`]-family macros, [`Strategy`](strategy::Strategy) with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`prop_oneof!`],
//! `collection::vec`, and `bool::weighted` — backed by a deterministic,
//! seeded random sampler. Differences from real proptest: no shrinking and
//! no persisted regression files; failures print the failing case's seed
//! and iteration so the run can be reproduced (sampling is deterministic
//! per test).

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// `proptest::collection` — sized collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A vector of exactly `len` elements drawn from `element`.
    ///
    /// (Real proptest accepts size *ranges* here; the workspace only uses
    /// exact sizes, which is all the shim supports.)
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use crate::strategy::Weighted;

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }
}

/// The test macro: runs each case body over `Config::cases` sampled inputs.
///
/// Supported grammar (the subset the workspace uses):
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy, (a, b) in other_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let seed = $crate::test_runner::env_seed();
                let mut rng = $crate::test_runner::TestRng::new(seed);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(64);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let case: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match case {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed (seed {seed}, attempt {attempts}): {msg}\n\
                                 reproduce with PROPTEST_SHIM_SEED={seed}"
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discard the current case (it is re-drawn, not failed) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted choice between strategies producing the same value type:
/// `prop_oneof![3 => a, 1 => b]` (weights optional).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}
