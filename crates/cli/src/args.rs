//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--key value` pairs plus bare flags.
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse argv-style tokens. `--key value` pairs; a `--key` followed by
    /// another `--…` (or nothing) is a bare flag.
    pub fn parse(tokens: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got '{tok}'"))?;
            if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                values.insert(key.to_string(), tokens[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Args { values, flags })
    }

    /// Required typed option.
    pub fn req<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self
            .values
            .get(key)
            .ok_or_else(|| format!("missing required option --{key}"))?;
        raw.parse()
            .map_err(|_| format!("could not parse --{key} value '{raw}'"))
    }

    /// Optional typed option with default.
    pub fn opt<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("could not parse --{key} value '{raw}'")),
        }
    }

    /// Optional string.
    pub fn opt_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Bare flag present?
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&toks("--n 10 --verbose --out file.gr")).unwrap();
        assert_eq!(a.req::<usize>("n").unwrap(), 10);
        assert!(a.has_flag("verbose"));
        assert_eq!(a.opt_str("out"), Some("file.gr"));
    }

    #[test]
    fn defaults_and_missing() {
        let a = Args::parse(&toks("--n 5")).unwrap();
        assert_eq!(a.opt::<u64>("seed", 42).unwrap(), 42);
        assert!(a.req::<usize>("missing").is_err());
    }

    #[test]
    fn rejects_positional_tokens() {
        assert!(Args::parse(&toks("stray --n 1")).is_err());
    }

    #[test]
    fn bad_value_type_is_an_error() {
        let a = Args::parse(&toks("--n abc")).unwrap();
        assert!(a.req::<usize>("n").is_err());
    }
}
