#![warn(missing_docs)]

//! # apsp-graph — weighted digraphs, workload generators, and oracles
//!
//! Support crate for the APSP-FW workspace:
//!
//! * [`graph`] — a compact CSR weighted digraph and conversions to/from the
//!   dense distance matrices consumed by the Floyd-Warshall kernels.
//! * [`generators`] — seeded workload generators. The paper evaluates on
//!   *dense uniform random* matrices (§5.1.4); we add sparse, structured and
//!   multi-component families for correctness tests and the example apps.
//! * [`dijkstra`], [`bellman_ford`], [`johnson`], [`delta_stepping`] —
//!   reference single-source/all-pairs algorithms from the paper's related
//!   work (§6), used as correctness oracles and single-node comparators.
//! * [`paths`] — parent-pointer path extraction and path validation.

pub mod bellman_ford;
pub mod bfs;
pub mod components;
pub mod delta_stepping;
pub mod dijkstra;
pub mod generators;
pub mod graph;
pub mod io;
pub mod johnson;
pub mod paths;
pub mod seidel;

pub use graph::{Graph, GraphBuilder, INF};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bellman_ford::bellman_ford;
    pub use crate::bfs::{apsp_by_bfs, bfs};
    pub use crate::components::{componentwise_apsp, weak_components};
    pub use crate::delta_stepping::delta_stepping;
    pub use crate::dijkstra::{dijkstra, dijkstra_with_parents};
    pub use crate::generators::{self, GraphKind};
    pub use crate::graph::{Graph, GraphBuilder, INF};
    pub use crate::johnson::johnson_apsp;
    pub use crate::paths::{extract_path, path_length, validate_path};
    pub use crate::seidel::seidel_apsp;
}
