//! Blocked Floyd-Warshall (paper Algorithm 2), single node.
//!
//! Per block-iteration `k`: DiagUpdate closes `A(k,k)`, PanelUpdate fixes the
//! k-th block row and column, and the MinPlus outer product updates the rest
//! of the matrix. The outer product here is one big
//! `A ← A ⊕ A(:,k) ⊗ A(k,:)` GEMM over the *whole* matrix: re-touching the
//! already-updated k-th row/column with a closed diagonal is an exact no-op
//! in any idempotent semiring (see `outer_product_is_idempotent_on_panels`),
//! so correctness is unchanged while the update becomes a single
//! rayon-friendly GEMM — the same trade the GPU implementation makes by
//! launching one large SRGEMM instead of one kernel per block.
//!
//! The outer product consumes the row panel through a [`PackedB`]: the
//! panel is packed into the micro-kernel's tiled layout **once per
//! iteration** (reusing one allocation across all `nb` iterations via
//! [`PackedB::repack`]) and streamed by every row slab of the GEMM, serial
//! or parallel — the single-node form of the per-`k` panel reuse the
//! distributed driver performs on its broadcast panels.

use srgemm::closure::{fw_closure, fw_closure_squaring};
use srgemm::gemm::{budget_threads, gemm_packed_with_b, gemm_parallel_threads_with_b, PackedB};
use srgemm::matrix::Matrix;
use srgemm::panel::{panel_update_left, panel_update_right};
use srgemm::semiring::Semiring;

/// How DiagUpdate closes the diagonal block (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagMethod {
    /// Classic `O(b³)` Floyd-Warshall on the block — the CPU form.
    FwClosure,
    /// Repeated squaring (`⌈log₂ b⌉` SRGEMMs, Eq. 4) — the GPU-friendly
    /// form; more flops, all of them GEMM flops.
    Squaring,
}

/// In-place blocked Floyd-Warshall with block size `b`.
/// `parallel` selects the rayon GEMM for panel/outer updates.
///
/// # Panics
/// Panics if `d` is not square or `b == 0`.
pub fn fw_blocked<S: Semiring>(d: &mut Matrix<S::Elem>, b: usize, diag: DiagMethod, parallel: bool) {
    let n = d.rows();
    assert_eq!(n, d.cols(), "distance matrix must be square");
    assert!(b > 0, "block size must be positive");
    assert!(
        S::IDEMPOTENT_ADD,
        "blocked FW relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    if n == 0 {
        return;
    }
    let nb = n.div_ceil(b);
    // One packed-B buffer for the whole run: repacked (allocation reused)
    // with each iteration's row panel, shared by every slab of the GEMM.
    let mut packed_row: Option<PackedB<S::Elem>> = None;

    for k in 0..nb {
        let k0 = k * b;
        let bk = b.min(n - k0);

        // ----- DiagUpdate -----
        {
            let mut dblk = d.subview_mut(k0, k0, bk, bk);
            match diag {
                DiagMethod::FwClosure => fw_closure::<S>(&mut dblk),
                DiagMethod::Squaring => fw_closure_squaring::<S>(&mut dblk, parallel),
            }
        }
        let diag_snapshot = d.block(k0, k0, bk, bk);

        // ----- PanelUpdate -----
        // row panel A(k, :) — everything left and right of the diagonal block
        if k0 > 0 {
            let mut left = d.subview_mut(k0, 0, bk, k0);
            panel_update_left::<S>(&mut left, &diag_snapshot.view());
        }
        if k0 + bk < n {
            let mut right = d.subview_mut(k0, k0 + bk, bk, n - k0 - bk);
            panel_update_left::<S>(&mut right, &diag_snapshot.view());
        }
        // column panel A(:, k)
        if k0 > 0 {
            let mut top = d.subview_mut(0, k0, k0, bk);
            panel_update_right::<S>(&mut top, &diag_snapshot.view());
        }
        if k0 + bk < n {
            let mut bottom = d.subview_mut(k0 + bk, k0, n - k0 - bk, bk);
            panel_update_right::<S>(&mut bottom, &diag_snapshot.view());
        }

        // ----- MinPlus outer product -----
        // snapshot the k-th block column and row, then one full-matrix GEMM
        let col_panel = d.block(0, k0, n, bk);
        let row_panel = d.block(k0, 0, bk, n);
        let pb = match packed_row.as_mut() {
            Some(pb) => {
                pb.repack::<S>(&row_panel.view());
                pb
            }
            None => packed_row.insert(PackedB::pack::<S>(&row_panel.view())),
        };
        if parallel {
            gemm_parallel_threads_with_b::<S>(
                &mut d.view_mut(),
                &col_panel.view(),
                pb,
                budget_threads(1),
            );
        } else {
            gemm_packed_with_b::<S>(&mut d.view_mut(), &col_panel.view(), pb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fw_seq::fw_seq;
    use apsp_graph::generators::{self, WeightKind};
    use srgemm::gemm::gemm_blocked;
    use srgemm::semiring::{MaxMin, MinPlus};
    use srgemm::MinPlusF32;

    fn dense(n: usize, seed: u64) -> Matrix<f32> {
        generators::uniform_dense(n, WeightKind::small_ints(), seed).to_dense()
    }

    #[test]
    fn blocked_matches_sequential_for_many_block_sizes() {
        let base = dense(48, 1);
        let mut want = base.clone();
        fw_seq::<MinPlusF32>(&mut want);
        // block sizes that divide, don't divide, exceed, and equal n
        for b in [1, 3, 7, 16, 17, 48, 64] {
            let mut got = base.clone();
            fw_blocked::<MinPlusF32>(&mut got, b, DiagMethod::FwClosure, false);
            assert!(want.eq_exact(&got), "b={b}");
        }
    }

    #[test]
    fn squaring_diag_matches_fw_diag() {
        let base = dense(40, 2);
        let mut a = base.clone();
        let mut b = base.clone();
        fw_blocked::<MinPlusF32>(&mut a, 8, DiagMethod::FwClosure, false);
        fw_blocked::<MinPlusF32>(&mut b, 8, DiagMethod::Squaring, false);
        assert!(a.eq_exact(&b));
    }

    #[test]
    fn parallel_matches_serial() {
        let base = dense(64, 3);
        let mut a = base.clone();
        let mut b = base.clone();
        fw_blocked::<MinPlusF32>(&mut a, 16, DiagMethod::FwClosure, false);
        fw_blocked::<MinPlusF32>(&mut b, 16, DiagMethod::FwClosure, true);
        assert!(a.eq_exact(&b));
    }

    #[test]
    fn sparse_graph_with_infinities() {
        let g = generators::erdos_renyi(33, 0.15, WeightKind::small_ints(), 4);
        let mut want = g.to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        let mut got = g.to_dense();
        fw_blocked::<MinPlusF32>(&mut got, 8, DiagMethod::FwClosure, false);
        assert!(want.eq_exact(&got));
    }

    #[test]
    fn works_for_max_min_widest_path() {
        type WP = MaxMin<f32>;
        let mut m = Matrix::filled(20, 20, f32::NEG_INFINITY);
        // random capacities
        let mut state = 99u64;
        for i in 0..20 {
            for j in 0..20 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if i != j && state.is_multiple_of(3) {
                    m[(i, j)] = ((state >> 33) % 50) as f32;
                }
            }
        }
        let mut want = m.clone();
        fw_seq::<WP>(&mut want);
        let mut got = m.clone();
        fw_blocked::<WP>(&mut got, 6, DiagMethod::FwClosure, false);
        assert!(want.eq_exact(&got));
    }

    #[test]
    fn outer_product_is_idempotent_on_panels() {
        // the doc-comment claim: re-applying the outer product to the k-th
        // row/col after PanelUpdate changes nothing
        let base = dense(24, 7);
        let mut d = base.clone();
        let b = 8;
        // run one manual iteration k=0 with the full-matrix outer product
        {
            let mut blk = d.subview_mut(0, 0, b, b);
            fw_closure::<MinPlus<f32>>(&mut blk);
        }
        let diag = d.block(0, 0, b, b);
        {
            let mut right = d.subview_mut(0, b, b, 24 - b);
            panel_update_left::<MinPlus<f32>>(&mut right, &diag.view());
            let mut bottom = d.subview_mut(b, 0, 24 - b, b);
            panel_update_right::<MinPlus<f32>>(&mut bottom, &diag.view());
        }
        let col = d.block(0, 0, 24, b);
        let row = d.block(0, 0, b, 24);
        let mut once = d.clone();
        gemm_blocked::<MinPlus<f32>>(&mut once.view_mut(), &col.view(), &row.view());
        // panels (row 0..b and col 0..b) must be unchanged by the product
        for i in 0..24 {
            for j in 0..b {
                assert_eq!(once[(i, j)], d[(i, j)], "col panel perturbed at {i},{j}");
            }
        }
        for i in 0..b {
            for j in 0..24 {
                assert_eq!(once[(i, j)], d[(i, j)], "row panel perturbed at {i},{j}");
            }
        }
    }

    #[test]
    fn single_vertex_and_empty_edge_cases() {
        let mut one = Matrix::filled(1, 1, f32::INFINITY);
        fw_blocked::<MinPlusF32>(&mut one, 4, DiagMethod::FwClosure, false);
        assert_eq!(one[(0, 0)], 0.0);
        let mut zero = Matrix::filled(0, 0, 0.0f32);
        fw_blocked::<MinPlusF32>(&mut zero, 4, DiagMethod::FwClosure, false);
    }
}
