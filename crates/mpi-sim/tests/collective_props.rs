//! Property tests for the collectives: any root, any payload size, any
//! chunking — every rank ends with the same data, and reductions match a
//! local fold.

use proptest::prelude::*;

use mpi_sim::Runtime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_and_ring_bcast_deliver_identically(
        p in 1usize..9,
        root_seed in any::<usize>(),
        len in 0usize..500,
        chunks in 1usize..20,
        seed in any::<u64>(),
    ) {
        let root = root_seed % p;
        let payload: Vec<u64> = (0..len).map(|i| seed.wrapping_add(i as u64)).collect();
        let expect = payload.clone();
        let out = Runtime::new(p).run(move |comm| {
            let t = comm.bcast(root, (comm.rank() == root).then(|| payload.clone())).unwrap();
            let r = comm.ring_bcast(root, (comm.rank() == root).then(|| payload.clone()), chunks).unwrap();
            (t, r)
        });
        for (t, r) in out {
            prop_assert_eq!(&t, &expect);
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn allreduce_matches_local_fold(p in 1usize..8, vals_seed in any::<u64>()) {
        let vals: Vec<u64> = (0..p).map(|i| vals_seed.rotate_left(i as u32) % 1000).collect();
        let expect_min = *vals.iter().min().expect("non-empty");
        let expect_sum: u64 = vals.iter().sum();
        let vals2 = vals.clone();
        let out = Runtime::new(p).run(move |comm| {
            let mine = vals2[comm.rank()];
            (comm.allreduce(mine, u64::min).unwrap(), comm.allreduce(mine, |a, b| a + b).unwrap())
        });
        for (mn, sm) in out {
            prop_assert_eq!(mn, expect_min);
            prop_assert_eq!(sm, expect_sum);
        }
    }

    #[test]
    fn allgather_is_rank_ordered(p in 1usize..8, base in any::<u32>()) {
        let out = Runtime::new(p).run(move |comm| {
            comm.allgather(base.wrapping_add(comm.rank() as u32)).unwrap()
        });
        let expect: Vec<u32> = (0..p).map(|r| base.wrapping_add(r as u32)).collect();
        for v in out {
            prop_assert_eq!(&v, &expect);
        }
    }

    #[test]
    fn split_partitions_exactly(p in 2usize..10, colors in 1usize..4) {
        let out = Runtime::new(p).run(move |comm| {
            let color = (comm.rank() % colors) as u64;
            let sub = comm.split(color, comm.rank() as u64).unwrap();
            (color, sub.rank(), sub.size())
        });
        for (rank, &(color, sub_rank, sub_size)) in out.iter().enumerate() {
            let members: Vec<usize> = (0..p).filter(|r| (r % colors) as u64 == color).collect();
            prop_assert_eq!(sub_size, members.len());
            prop_assert_eq!(members[sub_rank], rank);
        }
    }
}
