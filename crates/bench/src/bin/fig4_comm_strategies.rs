//! Fig. 4 — communication-optimization ablation on 64 nodes: effective
//! bandwidth of Baseline / Pipelined / +Rank Reordering / +Async across the
//! vertex sweep 26k…524k.
//!
//! Expected shape (paper §5.2.2): in the bandwidth-bound regime (n below
//! ~120k, the theoretical compute-bound boundary on 64 nodes) each
//! optimization adds effective bandwidth, up to ~4× over Baseline; past the
//! boundary the execution is compute-dominated and the gap closes.

use apsp_bench::{arg, paper_vertex_sweep, write_schedule_traces, Csv, Table};
use apsp_core::dist::Variant;
use apsp_core::schedule::{default_node_grid, optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;

fn main() {
    let nodes: usize = arg("--nodes", 64);
    let spec = MachineSpec::summit(nodes);
    let (dkr, dkc) = default_node_grid(nodes);
    let (okr, okc) = optimal_node_grid(nodes);

    println!("== Fig. 4: effective bandwidth (GB/s) of communication strategies, {nodes} nodes ==");
    println!("   legends: Baseline/Pipelined on the default K={dkr}x{dkc}; +Reordering/+Async on K={okr}x{okc}\n");

    let table = Table::new(&[
        ("vertices", 9),
        ("Baseline", 9),
        ("Pipelined", 10),
        ("+Reorder", 9),
        ("+Async", 9),
        ("Co+Me", 9),
        ("regime", 14),
    ]);
    let mut csv =
        Csv::from_args(&["vertices", "baseline", "pipelined", "reorder", "async", "come", "regime"]);

    // Fig. 4's x-axis: 26,008 … 524,288
    let sweep: Vec<usize> = paper_vertex_sweep()
        .into_iter()
        .filter(|&n| (26_008..=524_288).contains(&n))
        .collect();

    for n in sweep {
        let run = |variant, kr, kc| -> String {
            let cfg = ScheduleConfig::new(n, variant, kr, kc);
            match simulate(&spec, &cfg) {
                Ok(out) => format!("{:.2}", out.effective_bw / 1e9),
                Err(_) => "n/a".into(),
            }
        };
        // theoretical compute-bound boundary: comm time < compute time
        let comp = apsp_core::model::fw_flops(n) / spec.total_flops();
        let comm = apsp_core::model::comm_lower_bound_bytes(n, okr, okc, 4) / spec.nic_bw;
        let regime = if comp > comm { "compute-bound" } else { "bandwidth-bound" };
        let row = vec![
            n.to_string(),
            run(Variant::Baseline, dkr, dkc),
            run(Variant::Pipelined, dkr, dkc),
            run(Variant::Pipelined, okr, okc),
            run(Variant::AsyncRing, okr, okc),
            run(Variant::CoMe, okr, okc),
            regime.to_string(),
        ];
        csv.row(&row);
        table.row(&row);
    }
    println!("\npaper: ~4x effective-bandwidth gain from all optimizations in the bandwidth-bound regime;");
    println!("       the compute-bound boundary sits near 120k vertices on 64 nodes");

    // --trace <prefix>: per-legend schedule traces at --trace-n vertices
    write_schedule_traces(
        &spec,
        &[
            ("baseline", Variant::Baseline, dkr, dkc),
            ("pipelined", Variant::Pipelined, dkr, dkc),
            ("reorder", Variant::Pipelined, okr, okc),
            ("async", Variant::AsyncRing, okr, okc),
            ("come", Variant::CoMe, okr, okc),
        ],
    );
}
