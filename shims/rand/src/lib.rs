//! Std-only shim for the `rand` 0.10 API subset used by this workspace:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `random_range` / `random_bool`.
//!
//! The build environment cannot reach crates.io, so the real crate is
//! replaced by a splitmix64-seeded xorshift* generator. Statistical quality
//! is ample for workload generation and tests; it is NOT cryptographic.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic seeding interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an exclusive or inclusive range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map a `u64` to a uniform double in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Shim stand-in for `rand::rngs::StdRng`: xorshift64* over a
    /// splitmix64-expanded seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step so that nearby seeds give unrelated streams
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

/// Ranges that [`Rng::random_range`] can sample a `T` from. Generic over the
/// output type (like the real crate) so float literals infer from context.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1u32..=100);
            assert!((1..=100).contains(&w));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn values_spread_across_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 700), "{buckets:?}");
    }
}
