//! `apsp simulate` — predict a run on the calibrated Summit model.

use apsp_core::dist::Variant;
use apsp_core::schedule::{default_node_grid, optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;

use crate::args::Args;

/// Entry point.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!(
            "apsp simulate --nodes <N> --n <VERTICES>
  --variant <baseline|pipelined|async|offload>   (default async)
  --block <N>                                    (default 768)
  --reorder / --no-reorder                       node-grid placement
Prints predicted seconds, Pflop/s, effective bandwidth, GPU utilization."
        );
        return Ok(());
    }
    let args = Args::parse(tokens)?;
    let nodes: usize = args.req("nodes")?;
    let n: usize = args.req("n")?;
    let variant = match args.opt("variant", "async".to_string())?.as_str() {
        "baseline" => Variant::Baseline,
        "pipelined" => Variant::Pipelined,
        "async" => Variant::AsyncRing,
        "offload" => Variant::Offload,
        other => return Err(format!("unknown variant '{other}'")),
    };
    let (kr, kc) = if args.has_flag("no-reorder") {
        default_node_grid(nodes)
    } else {
        optimal_node_grid(nodes)
    };
    let spec = MachineSpec::summit(nodes);
    let mut cfg = ScheduleConfig::new(n, variant, kr, kc);
    cfg.block = args.opt("block", 768)?;

    match simulate(&spec, &cfg) {
        Ok(out) => {
            println!("{} on {nodes} Summit nodes (K = {kr}x{kc}), n = {n}, b = {}:", variant.legend(), cfg.block);
            println!("  time                {:>12.2} s", out.seconds);
            println!("  rate                {:>12.3} Pflop/s", out.pflops);
            println!(
                "  fraction of peak    {:>12.1} %",
                100.0 * out.pflops * 1e15 / spec.total_flops()
            );
            println!("  effective bandwidth {:>12.2} GB/s/node", out.effective_bw / 1e9);
            println!("  GPU utilization     {:>12.1} %", 100.0 * out.gpu_utilization);
            Ok(())
        }
        Err(e) => Err(format!("infeasible: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn simulates_a_feasible_config() {
        run(&toks("--nodes 16 --n 100000 --variant async")).unwrap();
    }

    #[test]
    fn reports_the_memory_wall() {
        let err = run(&toks("--nodes 64 --n 1664511 --variant baseline")).unwrap_err();
        assert!(err.contains("beyond GPU memory"));
        // …but offload gets through (the paper's 1.66M-vertex run)
        run(&toks("--nodes 64 --n 1664511 --variant offload")).unwrap();
    }

    #[test]
    fn rejects_unknown_variant() {
        assert!(run(&toks("--nodes 4 --n 1000 --variant warp")).is_err());
    }
}
