//! Quickstart: all-pairs shortest paths on a dense random graph.
//!
//! ```text
//! cargo run --release --example quickstart -- [n]
//! ```
//!
//! Builds the paper's workload (a dense uniform random digraph), solves APSP
//! three ways — sequential Floyd-Warshall, blocked Floyd-Warshall
//! (Algorithm 2, rayon-parallel), and Johnson's algorithm — checks they
//! agree, and prints throughput numbers.

use std::time::Instant;

use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
use apsp_core::fw_seq::fw_seq;
use apsp_core::model::fw_flops;
use apsp_core::verify::assert_matrices_equal;
use apsp_graph::generators::{uniform_dense, WeightKind};
use apsp_graph::johnson::johnson_apsp;
use srgemm::MinPlusF32;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    println!("== APSP quickstart: dense uniform random graph, n = {n} ==\n");

    let graph = uniform_dense(n, WeightKind::small_ints(), 42);
    println!("graph: {} vertices, {} edges", graph.n(), graph.m());

    // 1. sequential Floyd-Warshall (Algorithm 1) — the correctness anchor
    let mut d_seq = graph.to_dense();
    let t = Instant::now();
    fw_seq::<MinPlusF32>(&mut d_seq);
    let t_seq = t.elapsed().as_secs_f64();
    println!("sequential FW   : {:8.3} s  ({:6.2} Gflop/s)", t_seq, fw_flops(n) / t_seq / 1e9);

    // 2. blocked Floyd-Warshall (Algorithm 2), rayon-parallel
    let mut d_blk = graph.to_dense();
    let t = Instant::now();
    fw_blocked::<MinPlusF32>(&mut d_blk, 64, DiagMethod::FwClosure, true);
    let t_blk = t.elapsed().as_secs_f64();
    println!(
        "blocked FW (par): {:8.3} s  ({:6.2} Gflop/s, {:.1}x)",
        t_blk,
        fw_flops(n) / t_blk / 1e9,
        t_seq / t_blk
    );

    // 3. Johnson's algorithm — the related-work comparator (§6)
    let t = Instant::now();
    let d_johnson = johnson_apsp(&graph).expect("no negative cycles");
    let t_j = t.elapsed().as_secs_f64();
    println!("Johnson         : {:8.3} s", t_j);

    assert_matrices_equal(&d_seq, &d_blk, "blocked vs sequential");
    assert_matrices_equal(&d_seq, &d_johnson, "Johnson vs sequential");
    println!("\nall three agree bit-for-bit ✓");

    println!("\nsample distances:");
    for (s, t_) in [(0usize, 1usize), (0, n / 2), (n / 3, n - 1)] {
        println!("  dist({s:4} → {t_:4}) = {}", d_seq[(s, t_)]);
    }
}
