//! Closed-form offload cost model (paper §4.5).
//!
//! For `C ← C ⊕ A ⊗ B` with `A ∈ R^{m×k}`, `B ∈ R^{k×n}` staged through the
//! GPU in tiles:
//!
//! * `t0 = 2mnk · t_f` — SRGEMM flops,
//! * `t1 = (mn + nk + mk) · t_hd` — host↔device traffic,
//! * `t2 = 3mn · t_m` — hostUpdate DRAM traffic,
//!
//! and the achievable total depends on how many CUDA streams are available
//! to overlap the three: 1 stream ⇒ `t0+t1+t2`; 2 streams ⇒ best pairing;
//! ≥3 streams ⇒ `max(t0, t1, t2)`. Peak throughput requires
//! `t0 ≥ max(t1, t2)`, i.e. Eq. 5's minimum block size
//! `k ≥ max(t_hd/2t_f, 3t_m/2t_f)`.

use crate::spec::GpuSpec;

/// The three §4.5 cost terms, in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OffloadCosts {
    /// SRGEMM compute time.
    pub t0: f64,
    /// Host↔device transfer time.
    pub t1: f64,
    /// hostUpdate (DRAM) time.
    pub t2: f64,
}

impl OffloadCosts {
    /// Evaluate the model for an `m×n×k` product of `elem_bytes`-sized
    /// elements on `spec`.
    pub fn new(spec: &GpuSpec, m: usize, n: usize, k: usize, elem_bytes: usize) -> Self {
        let (m, n, k, eb) = (m as f64, n as f64, k as f64, elem_bytes as f64);
        let t_f = 1.0 / spec.srgemm_flops;
        let t_hd = eb / spec.h2d_bw;
        let t_m = eb / spec.host_mem_bw;
        OffloadCosts {
            t0: 2.0 * m * n * k * t_f,
            t1: (m * n + n * k + m * k) * t_hd,
            t2: 3.0 * m * n * t_m,
        }
    }

    /// Predicted wall time with `s` streams (paper §4.5's three regimes).
    pub fn predicted_time(&self, s: usize) -> f64 {
        let (t0, t1, t2) = (self.t0, self.t1, self.t2);
        match s {
            0 => f64::INFINITY,
            1 => t0 + t1 + t2,
            2 => {
                // one op overlaps with the serialized pair of the others
                let a = t0.max(t1 + t2);
                let b = t1.max(t0 + t2);
                let c = t2.max(t0 + t1);
                a.min(b).min(c)
            }
            _ => t0.max(t1).max(t2),
        }
    }

    /// Is the pipeline compute-bound (`t0 ≥ max(t1, t2)`) — the condition
    /// for running at the SRGEMM rate?
    pub fn compute_bound(&self) -> bool {
        self.t0 >= self.t1.max(self.t2)
    }
}

/// Eq. 5: the smallest inner (block) dimension `k` for which the offload
/// pipeline is compute-bound, `k ≥ max(t_hd/2t_f, 3t_m/2t_f)`, evaluated
/// with the theoretical peak flop rate as the paper does ("we estimate
/// minimum block size of 624").
pub fn min_block_size(spec: &GpuSpec, elem_bytes: usize) -> f64 {
    let eb = elem_bytes as f64;
    let t_f = 1.0 / spec.peak_flops;
    let t_hd = eb / spec.h2d_bw;
    let t_m = eb / spec.host_mem_bw;
    (t_hd / (2.0 * t_f)).max(3.0 * t_m / (2.0 * t_f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_min_block_size_reproduces_paper_estimate() {
        // paper §5.3.1: "we estimate minimum block size of 624"
        let k = min_block_size(&GpuSpec::summit_v100(), 4);
        assert!((k - 624.0).abs() < 1.0, "got {k}");
    }

    #[test]
    fn large_k_is_compute_bound_small_k_is_not() {
        let spec = GpuSpec::summit_v100();
        let big = OffloadCosts::new(&spec, 8192, 8192, 768, 4);
        assert!(big.compute_bound());
        let small = OffloadCosts::new(&spec, 8192, 8192, 128, 4);
        assert!(!small.compute_bound());
    }

    #[test]
    fn stream_count_regimes_are_ordered() {
        let spec = GpuSpec::summit_v100();
        let c = OffloadCosts::new(&spec, 4096, 4096, 512, 4);
        let s1 = c.predicted_time(1);
        let s2 = c.predicted_time(2);
        let s3 = c.predicted_time(3);
        let s4 = c.predicted_time(4);
        assert!(s1 > s2);
        assert!(s2 >= s3);
        assert_eq!(s3, s4);
        assert_eq!(s3, c.t0.max(c.t1).max(c.t2));
    }

    #[test]
    fn two_stream_pairing_picks_the_best() {
        let c = OffloadCosts { t0: 10.0, t1: 2.0, t2: 3.0 };
        // best: overlap t0 with (t1+t2)=5 → 10
        assert_eq!(c.predicted_time(2), 10.0);
        let c = OffloadCosts { t0: 4.0, t1: 5.0, t2: 6.0 };
        // pairings: max(4, 11)=11, max(5,10)=10, max(6,9)=9 → 9
        assert_eq!(c.predicted_time(2), 9.0);
    }
}
