//! Property tests on the Floyd-Warshall solvers: random graphs, random
//! block sizes, random grids — everything must match the oracles, including
//! the negative-edge cases Dijkstra cannot handle.

use proptest::prelude::*;

use apsp_core::dist::{
    distributed_apsp, Exec, FwConfig, PanelBcastAlgo, Schedule, Variant, DEFAULT_RING_CHUNKS,
};
use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
use apsp_core::fw_seq::fw_seq;
use apsp_core::incremental::decrease_edge;
use apsp_graph::dijkstra::apsp_by_dijkstra;
use apsp_graph::generators::{erdos_renyi, WeightKind};
use apsp_graph::graph::GraphBuilder;
use apsp_graph::johnson::johnson_apsp;
use srgemm::MinPlusF32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_fw_matches_dijkstra(
        n in 2usize..36,
        p in 0.05f64..0.7,
        b in 1usize..40,
        seed in any::<u64>(),
        squaring in any::<bool>(),
    ) {
        let g = erdos_renyi(n, p, WeightKind::small_ints(), seed);
        let want = apsp_by_dijkstra(&g);
        let mut got = g.to_dense();
        let diag = if squaring { DiagMethod::Squaring } else { DiagMethod::FwClosure };
        fw_blocked::<MinPlusF32>(&mut got, b, diag, false);
        prop_assert!(want.eq_exact(&got));
    }

    #[test]
    fn fw_handles_negative_edges_dijkstra_cannot(n in 2usize..20, seed in any::<u64>()) {
        // forward-only DAG with negative weights: FW vs Johnson
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if next() % 2 == 0 {
                    b.add_edge(i, j, ((next() % 64) as f32) - 8.0);
                }
            }
        }
        let g = b.build();
        let want = johnson_apsp(&g).expect("DAG");
        let mut got = g.to_dense();
        fw_seq::<MinPlusF32>(&mut got);
        for i in 0..n {
            for j in 0..n {
                let (w, x) = (want[(i, j)], got[(i, j)]);
                if w.is_infinite() || x.is_infinite() {
                    prop_assert_eq!(w, x);
                } else {
                    prop_assert!((w - x).abs() < 1e-3, "({i},{j}): {w} vs {x}");
                }
            }
        }
    }

    #[test]
    fn distributed_policy_cube_matches_on_random_configs(
        n in 4usize..28,
        b in 2usize..10,
        grid_pick in 0usize..4,
        schedule_pick in 0usize..2,
        bcast_pick in 0usize..2,
        exec_pick in 0usize..2,
        chunks in 1usize..9,
        seed in any::<u64>(),
    ) {
        // the full 2×2×2 policy cube — every (schedule, bcast, exec) triple,
        // named preset or not, must reproduce fw_seq bit-for-bit
        let (pr, pc) = [(1, 2), (2, 2), (2, 3), (3, 1)][grid_pick];
        let schedule = Schedule::all()[schedule_pick];
        let bcast = [PanelBcastAlgo::Tree, PanelBcastAlgo::Ring { chunks }][bcast_pick];
        let exec = Exec::all()[exec_pick];
        let g = erdos_renyi(n, 0.3, WeightKind::small_ints(), seed);
        let input = g.to_dense();
        let mut want = input.clone();
        fw_seq::<MinPlusF32>(&mut want);
        let cfg = FwConfig::from_axes(b, schedule, bcast, exec);
        let (got, _) = distributed_apsp::<MinPlusF32>(pr, pc, &cfg, &input, None)
            .expect("policy cube run");
        prop_assert!(
            want.eq_exact(&got),
            "{}/{}/{} on {}x{} b={}",
            schedule.name(), bcast.name(), exec.name(), pr, pc, b
        );
    }

    #[test]
    fn presets_round_trip_through_the_axes(variant_pick in 0usize..5, chunks in 1usize..64) {
        let variant = Variant::all()[variant_pick];
        let (schedule, bcast, exec) = variant.axes();
        prop_assert_eq!(Variant::from_axes(schedule, bcast, exec), Some(variant));
        // chunk count is a tuning knob, not part of the preset's identity
        if let PanelBcastAlgo::Ring { .. } = bcast {
            let retuned = PanelBcastAlgo::Ring { chunks };
            prop_assert_eq!(Variant::from_axes(schedule, retuned, exec), Some(variant));
        }
        // unnamed corners of the cube stay unnamed
        let ring = PanelBcastAlgo::Ring { chunks: DEFAULT_RING_CHUNKS };
        prop_assert_eq!(Variant::from_axes(Schedule::BulkSync, ring, Exec::InCoreGemm), None);
    }

    #[test]
    fn incremental_update_equals_recompute(
        n in 3usize..24,
        seed in any::<u64>(),
        u in 0usize..24,
        v in 0usize..24,
        w in 1u32..40,
    ) {
        let (u, v) = (u % n, v % n);
        prop_assume!(u != v);
        let g = erdos_renyi(n, 0.2, WeightKind::small_ints(), seed);
        let mut inc = g.to_dense();
        fw_seq::<MinPlusF32>(&mut inc);
        let _ = decrease_edge::<MinPlusF32>(&mut inc, u, v, w as f32);

        let mut b = GraphBuilder::new(n);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        b.add_edge(u, v, w as f32);
        let mut full = b.build().to_dense();
        fw_seq::<MinPlusF32>(&mut full);
        prop_assert!(full.eq_exact(&inc));
    }
}
