#![warn(missing_docs)]

//! # apsp-graph — weighted digraphs, workload generators, and oracles
//!
//! Support crate for the APSP-FW workspace:
//!
//! * [`graph`] — a compact CSR weighted digraph and conversions to/from the
//!   dense distance matrices consumed by the Floyd-Warshall kernels.
//! * [`generators`] — seeded workload generators. The paper evaluates on
//!   *dense uniform random* matrices (§5.1.4); we add sparse, structured and
//!   multi-component families for correctness tests and the example apps.
//! * [`dijkstra`], [`bellman_ford`], [`johnson`], [`delta_stepping`] —
//!   reference single-source/all-pairs algorithms from the paper's related
//!   work (§6), used as correctness oracles and single-node comparators.
//! * [`paths`] — parent-pointer path extraction and path validation.

pub mod bellman_ford;
pub mod bfs;
pub mod components;
pub mod delta_stepping;
pub mod dijkstra;
pub mod generators;
pub mod graph;
pub mod io;
pub mod johnson;
pub mod paths;
pub mod seidel;

pub use graph::{Graph, GraphBuilder, INF};

/// Map `0..n` to rows with at most `threads` workers (`0` → all cores),
/// preserving order. The single shared fan-out for every
/// one-task-per-source APSP sweep (Johnson, Dijkstra, Δ-stepping): `f` runs
/// identically whether the sweep is serial or parallel, so results are
/// bit-identical for any thread count.
pub(crate) fn par_rows<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    use rayon::prelude::*;
    let threads = if threads == 0 { rayon::current_num_threads() } else { threads };
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("shim pool");
    pool.install(|| (0..n).into_par_iter().map(f).collect())
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bellman_ford::bellman_ford;
    pub use crate::bfs::{apsp_by_bfs, bfs};
    pub use crate::components::{componentwise_apsp, weak_components};
    pub use crate::delta_stepping::{apsp_by_delta_stepping, delta_stepping};
    pub use crate::dijkstra::{
        apsp_by_dijkstra, apsp_by_dijkstra_parallel, apsp_by_dijkstra_threads, dijkstra,
        dijkstra_with_parents,
    };
    pub use crate::generators::{self, GraphKind};
    pub use crate::graph::{Graph, GraphBuilder, INF};
    pub use crate::johnson::{johnson_apsp, johnson_apsp_threads};
    pub use crate::paths::{extract_path, path_length, validate_path};
    pub use crate::seidel::seidel_apsp;
}
