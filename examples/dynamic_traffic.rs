//! Dynamic traffic served live: the epoch-snapshot query engine over a
//! road network under streaming updates.
//!
//! ```text
//! cargo run --release --example dynamic_traffic -- [n]
//! ```
//!
//! Builds a road-like grid, stands up [`apsp_core::serve::Engine`] over
//! it (one blocked-FW solve, witness-annotated), then runs the serving
//! scenario end to end: navigation clients query routes concurrently
//! while "traffic improved" events (new expressway segments) stream
//! through the `O(n²)` incremental updater (paper §7 future work) and
//! publish new epochs. Every route is validated edge-by-edge against the
//! *current* road network, and the final epoch is compared against a
//! from-scratch re-solve — the consistency story, not just the speedup.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use apsp_core::model::fw_flops;
use apsp_core::serve::Engine;
use apsp_core::verify::assert_matrices_equal;
use apsp_graph::generators::{grid, WeightKind};
use apsp_graph::graph::GraphBuilder;
use apsp_graph::paths::validate_path;
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let width = (n as f64).sqrt().ceil() as usize;
    println!("== dynamic traffic, served: {width}x{} road grid ==\n", n.div_ceil(width));

    let roads = grid(width, n.div_ceil(width), WeightKind::Integer { lo: 5, hi: 30 }, 11);
    let n = roads.n();

    // stand up the service: one annotated solve, epoch 0 published
    let t = Instant::now();
    let engine = Arc::new(Engine::solve_from_graph(&roads, 64));
    let t_solve = t.elapsed().as_secs_f64();
    println!(
        "initial APSP solve: {:.3} s ({:.2} Gflop/s); serving epoch 0",
        t_solve,
        fw_flops(n) / t_solve / 1e9
    );

    // the road network as the writer evolves it, for route validation —
    // keyed by epoch so a reader can validate against the matching roads
    let networks = Arc::new(Mutex::new(vec![roads.clone()]));
    let done = Arc::new(AtomicBool::new(false));

    // navigation clients: query random routes, validate each one
    // edge-by-edge against the epoch's own road network
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let networks = Arc::clone(&networks);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + c as u64);
                let mut routes = 0usize;
                while !done.load(Ordering::Acquire) || routes < 50 {
                    let (s, t) = (rng.random_range(0..n), rng.random_range(0..n));
                    let snap = engine.snapshot();
                    let Ok(Some((d, route))) = snap.path(s, t) else { continue };
                    // the writer records each epoch's road network right
                    // after publishing; in the tiny window before that,
                    // skip validation rather than check the wrong graph
                    let g = {
                        let nets = networks.lock().unwrap();
                        match nets.get(snap.epoch() as usize) {
                            Some(g) => g.clone(),
                            None => continue,
                        }
                    };
                    assert!(
                        validate_path(&g, &route, s, t, d, 1e-3),
                        "client {c}: route {s}->{t} at epoch {} does not realize {d}",
                        snap.epoch()
                    );
                    routes += 1;
                }
                routes
            })
        })
        .collect();

    // traffic control: stream expressway openings in batches
    let mut rng = StdRng::seed_from_u64(3);
    let mut accepted: Vec<(usize, usize, f32)> = Vec::new();
    let t = Instant::now();
    for wave in 0..5 {
        let batch: Vec<(usize, usize, f32)> = (0..2)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n), 1.0f32))
            .collect();
        let out = engine.apply(&batch);
        let wave_accepted: Vec<_> = batch
            .iter()
            .enumerate()
            .filter(|(i, _)| out.report.outcomes[*i].is_ok())
            .map(|(_, &u)| u)
            .collect();
        println!(
            "  wave {wave}: {} segments, {} accepted, {} pairs improved -> epoch {}",
            batch.len(),
            wave_accepted.len(),
            out.report.improved,
            out.epoch
        );
        if out.published {
            // record the road network this epoch corresponds to
            accepted.extend(&wave_accepted);
            let mut b = GraphBuilder::new(n);
            for (x, y, w) in roads.edges() {
                b.add_edge(x, y, w);
            }
            for &(u, v, w) in &accepted {
                b.add_edge(u, v, w);
            }
            let mut nets = networks.lock().unwrap();
            while nets.len() < out.epoch as usize {
                let prev = nets.last().unwrap().clone();
                nets.push(prev);
            }
            nets.push(b.build());
        }
        std::thread::yield_now();
    }
    let t_inc = t.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);

    let routes: usize = clients.into_iter().map(|h| h.join().expect("client")).sum();
    println!(
        "\n{} expressway segments absorbed in {:.4} s while {} routes were served \
         ({:.0}x faster than re-solving per wave)",
        accepted.len(),
        t_inc,
        routes,
        t_solve * 5.0 / t_inc.max(1e-9)
    );

    // the final epoch must equal a from-scratch re-solve with every
    // accepted segment added
    let mut b = GraphBuilder::new(n);
    for (x, y, w) in roads.edges() {
        b.add_edge(x, y, w);
    }
    for &(u, v, w) in &accepted {
        b.add_edge(u, v, w);
    }
    let mut want = b.build().to_dense();
    apsp_core::fw_blocked::fw_blocked::<srgemm::MinPlusF32>(
        &mut want,
        64,
        apsp_core::fw_blocked::DiagMethod::FwClosure,
        true,
    );
    let (got, _) = engine.snapshot().split();
    assert_matrices_equal(&want, &got, "served epoch vs re-solve");
    println!(
        "final epoch {} matches a from-scratch re-solve bit-for-bit; \
         every served route realized its distance ✓",
        engine.latest_epoch()
    );
}
