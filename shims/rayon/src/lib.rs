//! Std-only shim for the `rayon` API subset used by this workspace:
//! `into_par_iter()` on vectors and ranges with `map`/`for_each`/`collect`,
//! plus [`current_num_threads`].
//!
//! The build environment cannot reach crates.io, so this replaces rayon's
//! work-stealing pool with scoped threads over contiguous chunks — one chunk
//! per available core. For the workspace's workloads (row slabs of a GEMM,
//! one Dijkstra per source) the items are uniform enough that static
//! chunking keeps the cores busy.

use std::num::NonZeroUsize;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Entry point mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter { items: self.collect() }
    }
}

/// An eager "parallel iterator" over an owned item list.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Run `f` on every item, fanned out over the available cores.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        run_chunked(self.items, &|chunk| {
            for item in chunk {
                f(item);
            }
        });
    }

    /// Map every item (in parallel); order is preserved.
    pub fn map<R: Send, F>(self, f: F) -> ParIter<R>
    where
        F: Fn(T) -> R + Send + Sync,
    {
        let chunks = run_chunked_collect(self.items, &|chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        ParIter { items: chunks.into_iter().flatten().collect() }
    }

    /// Collect the items; `C` is typically `Vec<T>`.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// Split `items` into one contiguous chunk per worker and run `f` on each
/// chunk in its own scoped thread.
fn run_chunked<T: Send>(items: Vec<T>, f: &(impl Fn(Vec<T>) + Sync)) {
    run_chunked_collect(items, &|chunk| {
        f(chunk);
    });
}

fn run_chunked_collect<T: Send, R: Send>(
    items: Vec<T>,
    f: &(impl Fn(Vec<T>) -> R + Sync),
) -> Vec<R> {
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(items)];
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk_len.min(rest.len()));
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let sum = AtomicU64::new(0);
        (0..100u32).into_par_iter().for_each(|i| {
            sum.fetch_add(u64::from(i), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        Vec::<u32>::new().into_par_iter().for_each(|_| panic!("no items"));
    }
}
