//! Large-p invariant suite for the event-driven executor.
//!
//! The paper's headline runs use 1024–1536 ranks (Figs. 8/9); under the old
//! thread-per-rank runtime these tests could not even start on a small dev
//! box. Here they pin three things at paper scale: the collectives keep
//! their asymptotic message counts (allgather 2(p-1) total, barrier
//! ⌈log₂p⌉+1 ingress per rank), per-phase NIC accounting stays exact
//! (`phase_nic_bytes_sum == total_nic_bytes`), and the worker pool — not
//! the rank count — bounds concurrently-executing tasks.

use std::time::{Duration, Instant};

use mpi_sim::{CommError, Runtime};

/// Long timeout for large-p runs on small hosts: ranks spend most of their
/// wall-clock parked waiting for a worker slot, which must not be
/// misdiagnosed as a deadlock.
const SCALE_TIMEOUT: Duration = Duration::from_secs(120);

/// Small stacks keep 1024 rank tasks cheap; these closures are shallow.
const SMALL_STACK: usize = 256 * 1024;

#[test]
fn allgather_message_count_stays_linear_at_p512() {
    let p = 512usize;
    let rt = Runtime::new(p).with_recv_timeout(SCALE_TIMEOUT).with_stack_size(SMALL_STACK);
    let (out, report) = rt.run_traced(move |comm| comm.allgather(comm.rank() as u64).unwrap());
    let expect: Vec<u64> = (0..p as u64).collect();
    for v in &out {
        assert_eq!(v, &expect);
    }
    // gather-then-bcast: (p-1) + (p-1) messages — O(p), comfortably inside
    // the O(p log p) budget, and NOT the p(p-1) of naive all-to-all
    assert_eq!(
        report.total_msgs,
        2 * (p as u64 - 1),
        "allgather on {p} ranks must move exactly 2(p-1) messages"
    );
}

#[test]
fn barrier_fan_in_stays_logarithmic_at_p512() {
    let p = 512usize;
    let rt = Runtime::new(p).with_recv_timeout(SCALE_TIMEOUT).with_stack_size(SMALL_STACK);
    let (_, report, trace) = rt.run_with_trace(|comm| comm.barrier().unwrap());
    assert_eq!(
        report.total_msgs,
        2 * (p as u64 - 1),
        "barrier on {p} ranks must move exactly 2(p-1) messages"
    );
    let log2p = p.next_power_of_two().trailing_zeros() as usize;
    let mut ingress = vec![0usize; p];
    for tl in &trace.per_rank {
        for e in &tl.events {
            ingress[e.dst_world] += 1;
        }
    }
    for (r, n) in ingress.into_iter().enumerate() {
        assert!(
            n <= log2p + 1,
            "barrier on {p} ranks: rank {r} received {n} messages, \
             expected at most ⌈log₂ p⌉ + 1 = {}",
            log2p + 1
        );
    }
}

#[test]
fn smoke_1024_ranks_completes_under_wall_clock_cap() {
    let p = 1024usize;
    let workers = 8;
    let start = Instant::now();
    let rt = Runtime::new(p)
        .with_workers(workers)
        .with_stack_size(SMALL_STACK)
        .with_recv_timeout(SCALE_TIMEOUT);
    let (out, report, stats) = rt.try_run_with_stats(move |comm| -> Result<u64, CommError> {
        let got = {
            let _g = comm.phase("DiagBcast");
            let data = (comm.rank() == 0).then(|| vec![42u64; 16]);
            comm.bcast(0, data)?
        };
        comm.barrier()?;
        let sum = {
            let _g = comm.phase("OuterUpdate");
            comm.allreduce(comm.rank() as u64, |a, b| a + b)?
        };
        Ok(got[0] + sum)
    });
    let elapsed = start.elapsed();
    let expect_sum = (p as u64 - 1) * p as u64 / 2;
    assert_eq!(out.expect("1024-rank smoke must succeed"), vec![42 + expect_sum; p]);
    assert!(
        elapsed < Duration::from_secs(90),
        "1024-rank smoke took {elapsed:?} — the executor is not event-driven enough"
    );
    // per-phase NIC accounting must stay exact at scale
    assert_eq!(report.phase_nic_bytes_sum(), report.total_nic_bytes());
    assert!(report.phase_nic_bytes("DiagBcast") > 0);
    // the pool, not the rank count, bounds concurrent execution
    assert_eq!((stats.ranks, stats.workers), (p, workers));
    assert!(
        stats.peak_running <= workers,
        "pool of {workers} ran {} tasks at once",
        stats.peak_running
    );
    assert!(stats.parks > 0, "a 1024-rank collective must park blocked ranks");
}

#[test]
fn worker_pool_bounds_concurrent_execution() {
    // 256 ranks over 4 slots doing a split + sub-communicator broadcast:
    // heavy park/wake traffic through both the mailbox and split paths
    let p = 256usize;
    let workers = 4;
    let rt = Runtime::new(p)
        .with_workers(workers)
        .with_stack_size(SMALL_STACK)
        .with_recv_timeout(SCALE_TIMEOUT);
    let (out, _, stats) = rt.try_run_with_stats(move |comm| -> Result<u64, CommError> {
        let color = (comm.rank() % 16) as u64;
        let sub = comm.split(color, comm.rank() as u64)?;
        let data = (sub.rank() == 0).then(|| vec![color; 4]);
        let got = sub.bcast(0, data)?;
        Ok(got[0])
    });
    let out = out.expect("split + bcast at p=256");
    for (r, &v) in out.iter().enumerate() {
        assert_eq!(v, (r % 16) as u64);
    }
    assert!(
        stats.peak_running <= workers,
        "pool of {workers} ran {} tasks at once across {} parks",
        stats.peak_running,
        stats.parks
    );
    assert_eq!(stats.ranks, p);
}
