//! Collective benchmarks on the thread-backed runtime: binomial tree vs
//! pipelined ring broadcast, and the ring chunk-count ablation (§3.3,
//! DESIGN.md §7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpi_sim::Runtime;

fn bench_broadcasts(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast_8_ranks");
    g.sample_size(10);
    let elems = 262_144; // 1 MiB of f32
    g.throughput(Throughput::Bytes((elems * 4) as u64));

    g.bench_function("tree", |bch| {
        bch.iter(|| {
            Runtime::new(8).run(|comm| {
                let data = (comm.rank() == 0).then(|| vec![1.0f32; elems]);
                comm.bcast(0, data).unwrap().len()
            })
        })
    });
    for &chunks in &[1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::new("ring", chunks), &chunks, |bch, &chunks| {
            bch.iter(|| {
                Runtime::new(8).run(move |comm| {
                    let data = (comm.rank() == 0).then(|| vec![1.0f32; elems]);
                    comm.ring_bcast(0, data, chunks).unwrap().len()
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_broadcasts);
criterion_main!(benches);
