//! Rank-to-node placement — the paper's §3.4 (*Optimal Rank Ordering*).
//!
//! A `P_r × P_c` MPI grid runs on a `K_r × K_c` grid of *nodes*, each node
//! hosting a `Q_r × Q_c` sub-grid of ranks (`P_r = K_r·Q_r`,
//! `P_c = K_c·Q_c`). Where ranks land decides how much of each broadcast
//! crosses the NIC. Two layouts are provided:
//!
//! * [`Placement::contiguous`] — "typical" MPI default: consecutive world
//!   ranks fill a node (`1 × Q` or `Q × 1` intranode grids, paper §3.4.1);
//! * [`Placement::tiled`] — the paper's optimal layout (Fig. 1): each node
//!   owns a `Q_r × Q_c` *tile* of the process grid so that both its row and
//!   column footprints shrink.

/// Maps world ranks to node ids. Ranks are laid out on a `pr × pc` grid in
/// row-major order (`rank = r·pc + c`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    pr: usize,
    pc: usize,
    qr: usize,
    qc: usize,
    /// node id per world rank
    node_of: Vec<usize>,
}

impl Placement {
    /// Every rank on its own node (the degenerate `Q = 1` case); all traffic
    /// is inter-node. This is the default when no placement is given.
    pub fn one_rank_per_node(p: usize) -> Self {
        Placement {
            pr: 1,
            pc: p,
            qr: 1,
            qc: 1,
            node_of: (0..p).collect(),
        }
    }

    /// All ranks on a single node; no traffic crosses a NIC.
    pub fn single_node(p: usize) -> Self {
        Placement {
            pr: 1,
            pc: p,
            qr: 1,
            qc: p,
            node_of: vec![0; p],
        }
    }

    /// Consecutive world ranks share a node, `q` ranks per node. With a
    /// row-major `pr × pc` process grid this produces the `1 × Q` / `Q × 1`
    /// style intranode footprints the paper calls "typical".
    pub fn contiguous(pr: usize, pc: usize, q: usize) -> Self {
        assert!(q > 0 && (pr * pc).is_multiple_of(q), "q must divide P");
        Placement {
            pr,
            pc,
            qr: 1,
            qc: q, // footprint within a row-major layout
            node_of: (0..pr * pc).map(|r| r / q).collect(),
        }
    }

    /// Paper Fig. 1: node `(kr, kc)` owns the `qr × qc` tile of grid
    /// coordinates `[kr·qr .. (kr+1)·qr) × [kc·qc .. (kc+1)·qc)`.
    ///
    /// # Panics
    /// Panics unless `qr | pr` and `qc | pc`.
    pub fn tiled(pr: usize, pc: usize, qr: usize, qc: usize) -> Self {
        assert!(qr > 0 && qc > 0 && pr.is_multiple_of(qr) && pc.is_multiple_of(qc), "Q grid must tile P grid");
        let kc = pc / qc;
        let node_of = (0..pr * pc)
            .map(|rank| {
                let (r, c) = (rank / pc, rank % pc);
                (r / qr) * kc + (c / qc)
            })
            .collect();
        Placement { pr, pc, qr, qc, node_of }
    }

    /// Node hosting world rank `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// Total ranks.
    pub fn num_ranks(&self) -> usize {
        self.node_of.len()
    }

    /// Number of distinct nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_of.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// `(P_r, P_c)` process-grid dimensions this placement was built for.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.pr, self.pc)
    }

    /// `(Q_r, Q_c)` intranode grid dimensions.
    pub fn intranode_dims(&self) -> (usize, usize) {
        (self.qr, self.qc)
    }

    /// `(K_r, K_c)` node-grid dimensions.
    pub fn node_grid_dims(&self) -> (usize, usize) {
        (self.pr / self.qr, self.pc / self.qc)
    }

    /// The paper's §3.4.1 communication-volume lower bound per node for an
    /// `n × n` Floyd-Warshall, in *elements*:
    /// `n²·Q_r/P_r + n²·Q_c/P_c = n²/K_r + n²/K_c`.
    pub fn comm_volume_lower_bound(&self, n: usize) -> f64 {
        let (kr, kc) = self.node_grid_dims();
        let n2 = (n as f64) * (n as f64);
        n2 / kr as f64 + n2 / kc as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_packs_consecutive_ranks() {
        let p = Placement::contiguous(4, 6, 6);
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(5), 0);
        assert_eq!(p.node_of(6), 1);
        assert_eq!(p.node_of(23), 3);
    }

    #[test]
    fn tiled_matches_figure_1_shape() {
        // paper Fig. 1: K=4 nodes, Q=6 ranks/node, 24 ranks.
        // take P = 4x6 with Q = 2x3 → K = 2x2.
        let p = Placement::tiled(4, 6, 2, 3);
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.node_grid_dims(), (2, 2));
        // rank (0,0) and (1,2) share node 0; (0,3) is node 1; (2,0) is node 2.
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(6 + 2), 0); // grid (1,2)
        assert_eq!(p.node_of(3), 1); // grid (0,3)
        assert_eq!(p.node_of(2 * 6), 2); // grid (2,0)
    }

    #[test]
    fn tiled_every_node_hosts_q_ranks() {
        let p = Placement::tiled(8, 6, 2, 2);
        let mut per_node = vec![0usize; p.num_nodes()];
        for r in 0..p.num_ranks() {
            per_node[p.node_of(r)] += 1;
        }
        assert!(per_node.iter().all(|&c| c == 4));
        assert_eq!(p.num_nodes(), 12);
    }

    #[test]
    fn lower_bound_prefers_square_node_grids() {
        // same node count (16) and Q (4): square K=4x4 beats skinny K=16x1
        let square = Placement::tiled(8, 8, 2, 2); // K = 4x4
        let skinny = Placement::tiled(16, 4, 1, 4); // K = 16x1
        assert_eq!(square.num_nodes(), 16);
        assert_eq!(skinny.num_nodes(), 16);
        let n = 1000;
        assert!(square.comm_volume_lower_bound(n) < skinny.comm_volume_lower_bound(n));
    }

    #[test]
    fn single_node_has_no_nodes_to_cross() {
        let p = Placement::single_node(12);
        assert_eq!(p.num_nodes(), 1);
        assert!((0..12).all(|r| p.node_of(r) == 0));
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn tiled_requires_divisibility() {
        Placement::tiled(4, 6, 3, 2);
    }
}
