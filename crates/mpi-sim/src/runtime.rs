//! Runtime: spawn a thread per rank and run an SPMD closure.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::comm::{Comm, Shared};
use crate::counters::TrafficReport;
use crate::placement::Placement;

/// Configures and launches an SPMD job. Each rank runs the user closure on
/// its own OS thread with a [`Comm`] world communicator.
pub struct Runtime {
    p: usize,
    placement: Placement,
    recv_timeout: Duration,
}

impl Runtime {
    /// A runtime with `p` ranks, one rank per node (every message is
    /// inter-node), and a 30 s deadlock-detection timeout.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        Runtime {
            p,
            placement: Placement::one_rank_per_node(p),
            recv_timeout: Duration::from_secs(30),
        }
    }

    /// Use an explicit rank→node placement (paper §3.4).
    ///
    /// # Panics
    /// Panics if the placement's rank count differs from the runtime's.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        assert_eq!(placement.num_ranks(), self.p, "placement rank count mismatch");
        self.placement = placement;
        self
    }

    /// Override the receive timeout (tests of deadlock behaviour shorten it).
    pub fn with_recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// Run the SPMD closure; returns per-rank results in rank order.
    pub fn run<R: Send>(&self, f: impl Fn(Comm) -> R + Send + Sync) -> Vec<R> {
        self.run_traced(f).0
    }

    /// Like [`Runtime::run`] but also returns the traffic report.
    pub fn run_traced<R: Send>(
        &self,
        f: impl Fn(Comm) -> R + Send + Sync,
    ) -> (Vec<R>, TrafficReport) {
        let shared = Arc::new(Shared::new(self.p, self.placement.clone(), self.recv_timeout));
        let results: Vec<Mutex<Option<R>>> = (0..self.p).map(|_| Mutex::new(None)).collect();
        let f = &f;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.p);
            for rank in 0..self.p {
                let shared = shared.clone();
                let slot = &results[rank];
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            let comm = Comm::world(shared, rank);
                            *slot.lock() = Some(f(comm));
                        })
                        .expect("spawn rank thread"),
                );
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });

        let out = results
            .into_iter()
            .map(|m| m.into_inner().expect("rank finished without a result"))
            .collect();
        (out, shared.counters.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let out = Runtime::new(5).run(|comm| (comm.rank(), comm.size()));
        for (i, &(r, s)) in out.iter().enumerate() {
            assert_eq!(r, i);
            assert_eq!(s, 5);
        }
    }

    #[test]
    fn traced_run_counts_internode_bytes() {
        let rt = Runtime::new(2);
        let (_, report) = rt.run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 128]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
        });
        assert_eq!(report.total_nic_bytes(), 128);
        assert_eq!(report.total_msgs, 1);
    }

    #[test]
    fn single_node_placement_reports_zero_nic_traffic() {
        let rt = Runtime::new(2).with_placement(Placement::single_node(2));
        let (_, report) = rt.run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 128]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
        });
        assert_eq!(report.total_nic_bytes(), 0);
        assert_eq!(report.total_intra_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn deadlock_is_converted_to_panic() {
        Runtime::new(1)
            .with_recv_timeout(Duration::from_millis(20))
            .run(|comm| {
                let _: u8 = comm.recv(0, 9); // nobody ever sends
            });
    }
}
