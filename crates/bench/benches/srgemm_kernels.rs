//! SRGEMM kernel benchmarks: naive vs cache-blocked vs packed/register-tiled
//! vs rayon-parallel min-plus GEMM, plus the tile-size ablation called out
//! in DESIGN.md §7 and a packing ablation (packed-with-shared-B vs packing
//! per call) for the per-iteration panel reuse in the FW drivers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use srgemm::gemm::{
    gemm_blocked, gemm_blocked_tiled, gemm_flops, gemm_naive, gemm_packed, gemm_packed_with_b,
    gemm_parallel, PackedB,
};
use srgemm::{Matrix, MinPlusF32};

fn lcg(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % 1024) as f32
    })
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("srgemm");
    g.sample_size(10);
    for &n in &[128usize, 256] {
        let a = lcg(n, n, 1);
        let b = lcg(n, n, 2);
        let c0 = lcg(n, n, 3);
        g.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| {
                let mut c = c0.clone();
                gemm_naive::<MinPlusF32>(&mut c.view_mut(), &a.view(), &b.view());
                c
            })
        });
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| {
                let mut c = c0.clone();
                gemm_blocked::<MinPlusF32>(&mut c.view_mut(), &a.view(), &b.view());
                c
            })
        });
        g.bench_with_input(BenchmarkId::new("packed", n), &n, |bch, _| {
            bch.iter(|| {
                let mut c = c0.clone();
                gemm_packed::<MinPlusF32>(&mut c.view_mut(), &a.view(), &b.view());
                c
            })
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, _| {
            bch.iter(|| {
                let mut c = c0.clone();
                gemm_parallel::<MinPlusF32>(&mut c.view_mut(), &a.view(), &b.view());
                c
            })
        });
        // panel-reuse ablation: B packed once outside the timed loop, the
        // shape of the FW drivers' per-iteration reuse
        let pb = PackedB::pack::<MinPlusF32>(&b.view());
        g.bench_with_input(BenchmarkId::new("packed_shared_b", n), &n, |bch, _| {
            bch.iter(|| {
                let mut c = c0.clone();
                gemm_packed_with_b::<MinPlusF32>(&mut c.view_mut(), &a.view(), &pb);
                c
            })
        });
    }
    g.finish();
}

fn bench_tiling(c: &mut Criterion) {
    let mut g = c.benchmark_group("srgemm_tiling");
    g.sample_size(10);
    let n = 256;
    let a = lcg(n, n, 4);
    let b = lcg(n, n, 5);
    let c0 = lcg(n, n, 6);
    for &(mc, kc, nc) in &[(16usize, 64usize, 64usize), (64, 256, 512), (256, 256, 256)] {
        g.bench_with_input(
            BenchmarkId::new("tiles", format!("{mc}x{kc}x{nc}")),
            &(mc, kc, nc),
            |bch, &(mc, kc, nc)| {
                bch.iter(|| {
                    let mut c = c0.clone();
                    gemm_blocked_tiled::<MinPlusF32>(&mut c.view_mut(), &a.view(), &b.view(), mc, kc, nc);
                    c
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_tiling);
criterion_main!(benches);
