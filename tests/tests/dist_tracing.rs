//! Cross-variant equivalence and trace/traffic invariants for the
//! distributed FW variants (issue acceptance: every variant bit-identical
//! to sequential FW; phase-attributed NIC bytes sum exactly to the traffic
//! total; every rank's trace carries all five paper phase names).

use apsp_core::dist::{distributed_apsp, distributed_apsp_traced, FwConfig, Variant};
use apsp_core::fw_seq::fw_seq;
use apsp_graph::generators::{self, WeightKind};
use mpi_sim::PHASES;
use srgemm::MinPlusF32;

#[test]
fn all_variants_match_sequential_fw_across_grids_and_blocks() {
    let n = 23;
    let g = generators::erdos_renyi(n, 0.3, WeightKind::small_ints(), 11);
    let input = g.to_dense();
    let mut want = input.clone();
    fw_seq::<MinPlusF32>(&mut want);
    for (pr, pc) in [(1, 2), (2, 2), (2, 3), (3, 2)] {
        for block in [4usize, 7, 16] {
            for variant in Variant::all() {
                let cfg = FwConfig::new(block, variant);
                let (got, _) = distributed_apsp::<MinPlusF32>(pr, pc, &cfg, &input, None).expect("run");
                assert!(
                    want.eq_exact(&got),
                    "{variant:?} diverges from fw_seq at pr={pr} pc={pc} b={block}"
                );
            }
        }
    }
}

#[test]
fn phase_nic_bytes_sum_to_the_traffic_total_and_every_rank_sees_all_phases() {
    let n = 24;
    let input = generators::uniform_dense(n, WeightKind::small_ints(), 5).to_dense();
    for variant in Variant::all() {
        let cfg = FwConfig::new(6, variant);
        let (_, traffic, trace) =
            distributed_apsp_traced::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run");

        // every NIC byte lands in exactly one phase bucket (the end-of-run
        // gather is outside any guard and lands in the "(untraced)" bucket,
        // which the sum includes)
        assert!(traffic.total_nic_bytes() > 0, "{variant:?} sent nothing");
        assert_eq!(
            traffic.phase_nic_bytes_sum(),
            traffic.total_nic_bytes(),
            "{variant:?}: phase attribution lost bytes"
        );

        // every rank's timeline shows the full five-phase structure
        assert_eq!(trace.num_ranks(), 4);
        for (rank, tl) in trace.per_rank.iter().enumerate() {
            for phase in PHASES {
                assert!(
                    tl.spans.iter().any(|s| s.name == phase),
                    "{variant:?}: rank {rank} has no {phase} span"
                );
            }
        }

        // and the Chrome export carries all five names, well-formed
        let json = trace.to_chrome_json();
        for phase in PHASES {
            assert!(json.contains(&format!("\"name\":\"{phase}\"")), "{variant:?} json misses {phase}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
