//! Dijkstra single-source shortest paths — the workspace's primary oracle.
//!
//! Binary-heap implementation, `O((m + n) log n)`, valid for non-negative
//! weights. Cited in the paper's related work (§6) as the classic SSSP
//! building block of Johnson's algorithm.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Graph, INF};

/// Max-heap entry ordered so the *smallest* distance pops first.
#[derive(PartialEq)]
struct HeapItem {
    dist: f32,
    vertex: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want min-dist first
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Distances from `src` to every vertex (`∞` for unreachable).
///
/// # Panics
/// Panics if the graph has a negative edge.
pub fn dijkstra(g: &Graph, src: usize) -> Vec<f32> {
    dijkstra_with_parents(g, src).0
}

/// Distances plus parent pointers (`usize::MAX` = no parent).
pub fn dijkstra_with_parents(g: &Graph, src: usize) -> (Vec<f32>, Vec<usize>) {
    let n = g.n();
    assert!(src < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut parent = vec![usize::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapItem { dist: 0.0, vertex: src as u32 });

    while let Some(HeapItem { dist: d, vertex: u }) = heap.pop() {
        let u = u as usize;
        if settled[u] {
            continue;
        }
        settled[u] = true;
        let (ts, ws) = g.out_edges(u);
        for (&v, &w) in ts.iter().zip(ws) {
            assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let v = v as usize;
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = u;
                heap.push(HeapItem { dist: nd, vertex: v as u32 });
            }
        }
    }
    (dist, parent)
}

/// All-pairs by repeated Dijkstra; rows are sources. Quadratic memory —
/// test-scale only.
pub fn apsp_by_dijkstra(g: &Graph) -> srgemm::Matrix<f32> {
    let n = g.n();
    let mut out = srgemm::Matrix::filled(n, n, INF);
    for s in 0..n {
        let d = dijkstra(g, s);
        out.row_mut(s).copy_from_slice(&d);
    }
    out
}

/// [`apsp_by_dijkstra`] with one rayon task per source — the
/// embarrassingly parallel Johnson-style APSP the paper's related work (§6)
/// compares against. Requires non-negative weights.
pub fn apsp_by_dijkstra_parallel(g: &Graph) -> srgemm::Matrix<f32> {
    apsp_by_dijkstra_threads(g, 0)
}

/// [`apsp_by_dijkstra_parallel`] capped at `threads` workers (`0` → all
/// cores, the `budget_threads` convention). Rows are bit-identical to the
/// serial sweep for any thread count.
pub fn apsp_by_dijkstra_threads(g: &Graph, threads: usize) -> srgemm::Matrix<f32> {
    let n = g.n();
    let rows = crate::par_rows(n, threads, |s| dijkstra(g, s));
    let mut out = srgemm::Matrix::filled(n, n, INF);
    for (s, row) in rows.into_iter().enumerate() {
        out.row_mut(s).copy_from_slice(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};
    use crate::graph::GraphBuilder;

    #[test]
    fn line_graph_distances() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).add_edge(1, 2, 2.0).add_edge(2, 3, 3.0);
        let d = dijkstra(&b.build(), 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn prefers_cheaper_indirect_route() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 10.0).add_edge(0, 1, 1.0).add_edge(1, 2, 1.0);
        let (d, parent) = dijkstra_with_parents(&b.build(), 0);
        assert_eq!(d[2], 2.0);
        assert_eq!(parent[2], 1);
        assert_eq!(parent[1], 0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let d = dijkstra(&b.build(), 0);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn ring_distances_modular() {
        let g = generators::unit_ring(6);
        let d = dijkstra(&g, 2);
        for (j, &dj) in d.iter().enumerate() {
            assert_eq!(dj, ((j + 6 - 2) % 6) as f32);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, -1.0);
        dijkstra(&b.build(), 0);
    }

    #[test]
    fn zero_weight_edges_ok() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.0).add_edge(1, 2, 0.0);
        let d = dijkstra(&b.build(), 0);
        assert_eq!(d, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn parallel_apsp_matches_serial() {
        let g = generators::erdos_renyi(30, 0.2, WeightKind::small_ints(), 6);
        let serial = apsp_by_dijkstra(&g);
        let parallel = apsp_by_dijkstra_parallel(&g);
        assert!(serial.eq_exact(&parallel));
    }

    #[test]
    fn apsp_rows_are_per_source() {
        let g = generators::uniform_dense(12, WeightKind::small_ints(), 5);
        let apsp = apsp_by_dijkstra(&g);
        for s in 0..12 {
            assert_eq!(apsp.row(s), &dijkstra(&g, s)[..]);
            assert_eq!(apsp[(s, s)], 0.0);
        }
    }
}
