//! Distributed-variant correctness: every variant × grid shape × graph
//! family must reproduce sequential Floyd-Warshall bit-for-bit — the §5.1
//! validation methodology of the paper.

use apsp_core::dist::{distributed_apsp, DistError, FwConfig, PanelBcastAlgo, Variant};
use apsp_core::fw_seq::fw_seq;
use apsp_core::verify::assert_matrices_equal;
use apsp_graph::generators::{self, GraphKind, WeightKind};
use mpi_sim::Placement;
use srgemm::{Matrix, MinPlusF32};

fn reference(n: usize, kind: GraphKind, seed: u64) -> (Matrix<f32>, Matrix<f32>) {
    let g = generators::generate(kind, n, WeightKind::small_ints(), seed);
    let input = g.to_dense();
    let mut want = input.clone();
    fw_seq::<MinPlusF32>(&mut want);
    (input, want)
}

#[test]
fn all_variants_match_sequential_on_dense_graph() {
    let (input, want) = reference(36, GraphKind::UniformDense, 101);
    for variant in Variant::all() {
        let cfg = FwConfig::new(6, variant);
        let (got, _) = distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run");
        assert_matrices_equal(&want, &got, variant.legend());
    }
}

#[test]
fn all_variants_match_on_sparse_multi_component_graph() {
    let (input, want) = reference(30, GraphKind::MultiComponent { components: 3 }, 55);
    for variant in Variant::all() {
        let cfg = FwConfig::new(5, variant);
        let (got, _) = distributed_apsp::<MinPlusF32>(2, 3, &cfg, &input, None).expect("run");
        assert_matrices_equal(&want, &got, variant.legend());
    }
}

#[test]
fn rectangular_grids_and_ragged_blocks() {
    // n=29 with b=4 → ragged tail block; grids taller and wider than square
    let (input, want) = reference(29, GraphKind::ErdosRenyi { p: 0.2 }, 77);
    for (pr, pc) in [(1, 1), (1, 4), (4, 1), (2, 3), (3, 2)] {
        let cfg = FwConfig::new(4, Variant::Baseline);
        let (got, _) = distributed_apsp::<MinPlusF32>(pr, pc, &cfg, &input, None).expect("run");
        assert_matrices_equal(&want, &got, &format!("grid {pr}x{pc}"));
    }
}

#[test]
fn pipelined_handles_every_block_count_parity() {
    // nb ∈ {1, 2, 3, 5} exercises prologue/epilogue boundary cases
    for n in [6, 12, 18, 30] {
        let (input, want) = reference(n, GraphKind::UniformDense, n as u64);
        let cfg = FwConfig::new(6, Variant::Pipelined);
        let (got, _) = distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run");
        assert_matrices_equal(&want, &got, &format!("n={n}"));
    }
}

#[test]
fn async_ring_matches_with_various_chunk_counts() {
    let (input, want) = reference(32, GraphKind::UniformDense, 33);
    for chunks in [1, 2, 7, 64] {
        let mut cfg = FwConfig::new(4, Variant::AsyncRing);
        cfg.bcast = PanelBcastAlgo::Ring { chunks };
        let (got, _) = distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run");
        assert_matrices_equal(&want, &got, &format!("chunks={chunks}"));
    }
}

#[test]
fn squaring_diag_method_matches_in_distributed_runs() {
    use apsp_core::fw_blocked::DiagMethod;
    let (input, want) = reference(24, GraphKind::UniformDense, 9);
    let mut cfg = FwConfig::new(4, Variant::Pipelined);
    cfg.diag = DiagMethod::Squaring;
    let (got, _) = distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run");
    assert_matrices_equal(&want, &got, "squaring diag");
}

#[test]
fn offload_matches_with_tiny_tiles_and_single_stream() {
    use gpu_sim::OogConfig;
    let (input, want) = reference(24, GraphKind::UniformDense, 13);
    for streams in [1, 2, 3] {
        let mut cfg = FwConfig::new(4, Variant::Offload);
        cfg.oog = OogConfig::new(5, 3, streams);
        let (got, _) = distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run");
        assert_matrices_equal(&want, &got, &format!("offload s={streams}"));
    }
}

#[test]
fn single_rank_degenerate_grid_works() {
    let (input, want) = reference(20, GraphKind::UniformDense, 21);
    for variant in Variant::all() {
        let cfg = FwConfig::new(7, variant);
        let (got, _) = distributed_apsp::<MinPlusF32>(1, 1, &cfg, &input, None).expect("run");
        assert_matrices_equal(&want, &got, variant.legend());
    }
}

#[test]
fn more_ranks_than_blocks_leaves_idle_ranks_consistent() {
    // nb = 2 < pr·pc ranks: some ranks own nothing
    let (input, want) = reference(8, GraphKind::UniformDense, 3);
    let cfg = FwConfig::new(4, Variant::Baseline);
    let (got, _) = distributed_apsp::<MinPlusF32>(3, 3, &cfg, &input, None).expect("run");
    assert_matrices_equal(&want, &got, "idle ranks");
}

#[test]
fn square_node_grid_reduces_max_node_nic_volume() {
    // §3.4.1's claim is about the *per-node* NIC volume. The effect is
    // asymptotic in the node count (at 4 nodes square and skewed grids move
    // the same per-node volume), so test at 16 nodes: a 16×1 node grid makes
    // every node ingest the full row panel (≈ b·n per iteration) while the
    // 4×4 grid needs only 2·b·n/4. Ring PanelBcast is the bandwidth-optimal
    // collective the volume model assumes.
    let (input, want) = reference(64, GraphKind::UniformDense, 71);
    let cfg = FwConfig::new(4, Variant::AsyncRing);
    let run = |placement: Placement| {
        let (got, traffic) = distributed_apsp::<MinPlusF32>(16, 4, &cfg, &input, Some(placement)).expect("run");
        assert_matrices_equal(&want, &got, "placement");
        traffic.max_node_nic_bytes()
    };
    let skewed = run(Placement::tiled(16, 4, 1, 4)); // K = 16×1
    let square = run(Placement::tiled(16, 4, 4, 1)); // K = 4×4
    assert!(
        (square as f64) < 0.8 * skewed as f64,
        "square node grid must cut the busiest NIC's volume: {square} vs {skewed}"
    );
}

#[test]
fn measured_nic_volume_respects_the_section_341_lower_bound() {
    // §3.4.1: per-node egress ≥ eb·(n²/Kr + n²/Kc) is a *lower* bound; the
    // measured max-node volume must sit above it but within a small factor
    // (tree broadcasts and diag traffic add overhead).
    let n = 48;
    let (input, _) = reference(n, GraphKind::UniformDense, 5);
    let cfg = FwConfig::new(6, Variant::AsyncRing);
    let placement = Placement::tiled(4, 4, 2, 2); // Kr = Kc = 2
    let (_, traffic) = distributed_apsp::<MinPlusF32>(4, 4, &cfg, &input, Some(placement)).expect("run");
    let bound = apsp_core::model::comm_lower_bound_bytes(n, 2, 2, 4);
    let measured = traffic.max_node_nic_bytes() as f64;
    assert!(
        measured >= 0.9 * bound,
        "measured {measured} cannot beat the lower bound {bound}"
    );
    assert!(
        measured <= 6.0 * bound,
        "measured {measured} should be within a small factor of {bound}"
    );
}

#[test]
fn works_for_transitive_closure_semiring() {
    use srgemm::semiring::BoolOr;
    // reachability on a ring: everything reaches everything
    let n = 12;
    let mut input = Matrix::filled(n, n, false);
    for i in 0..n {
        input[(i, (i + 1) % n)] = true;
    }
    let mut want = input.clone();
    fw_seq::<BoolOr>(&mut want);
    let cfg = FwConfig::new(3, Variant::Pipelined);
    let (got, _) = distributed_apsp::<BoolOr>(2, 2, &cfg, &input, None).expect("run");
    for i in 0..n {
        for j in 0..n {
            assert_eq!(got[(i, j)], want[(i, j)]);
            assert!(got[(i, j)]);
        }
    }
}

#[test]
fn empty_graph_returns_empty_matrix_on_every_grid() {
    // regression: the gather path used to unwrap rank 0's result with an
    // `.expect`; n = 0 must come back as a clean 0×0 matrix instead
    let input = Matrix::from_vec(0, 0, Vec::<f32>::new());
    for (pr, pc) in [(1, 1), (2, 2), (2, 3)] {
        for variant in Variant::all() {
            let cfg = FwConfig::new(4, variant);
            let (got, traffic) = distributed_apsp::<MinPlusF32>(pr, pc, &cfg, &input, None)
                .unwrap_or_else(|e| panic!("{} on {pr}x{pc}: {e}", variant.legend()));
            assert_eq!((got.rows(), got.cols()), (0, 0), "{} on {pr}x{pc}", variant.legend());
            assert_eq!(traffic.total_nic_bytes(), 0);
        }
    }
}

#[test]
fn device_oom_surfaces_as_typed_error_not_panic() {
    // a device too small for even one panel pair: preflight must reject the
    // run on every rank and the driver must hand back DeviceOom, not abort
    let (input, _) = reference(24, GraphKind::UniformDense, 17);
    for variant in [Variant::Offload, Variant::CoMe] {
        let mut cfg = FwConfig::new(4, variant);
        cfg.gpu_spec.mem_bytes = 64;
        let err = distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None)
            .expect_err("64-byte device cannot fit the panels");
        let DistError::DeviceOom { requested, available } = err else {
            panic!("expected DeviceOom, got {err}");
        };
        assert_eq!(available, 64);
        assert!(requested > available, "requested {requested} must exceed {available}");
    }
}

#[test]
fn come_composes_offload_with_ring_and_lookahead() {
    use apsp_core::dist::{Exec, Schedule};
    let (schedule, bcast, exec) = Variant::CoMe.axes();
    assert_eq!(schedule, Schedule::LookAhead);
    assert!(matches!(bcast, PanelBcastAlgo::Ring { .. }));
    assert_eq!(exec, Exec::GpuOffload);

    let (input, want) = reference(30, GraphKind::UniformDense, 91);
    let cfg = FwConfig::new(4, Variant::CoMe);
    let (got, _) = distributed_apsp::<MinPlusF32>(2, 3, &cfg, &input, None).expect("run");
    assert_matrices_equal(&want, &got, "Co+Me");
}
