//! `Me-ParallelFw` — the memory-efficient offload variant (paper §4.3).
//!
//! Identical communication structure to the baseline, but the local matrix
//! is *host-resident* and the OuterUpdate is staged through a capacity-
//! limited simulated GPU by [`gpu_sim::oog_srgemm`]: only the k-th panels
//! plus `s` tile buffers ever live on the device, so the feasible problem
//! size is bounded by host memory instead of HBM — the paper's 2.5× head
//! room. Diagonal blocks are closed by repeated squaring when
//! `cfg.diag == DiagMethod::Squaring`, the §4.2 GPU-friendly form.
//!
//! # Panics
//! Panics (with the [`gpu_sim::Oom`] message) if even the *panels* exceed
//! device memory — the same hard wall the real implementation would hit
//! when `b` is chosen absurdly large.

use gpu_sim::{oog_srgemm, SimGpu};
use mpi_sim::ProcessGrid;
use srgemm::semiring::Semiring;

use super::{diag_and_panels, DistMatrix, FwConfig};

/// Run the offload variant on this rank's share. Collective over `grid`.
/// Returns per-rank offload statistics (simulated GPU seconds, flops).
pub fn run<S: Semiring>(grid: &ProcessGrid, a: &mut DistMatrix<S::Elem>, cfg: &FwConfig) -> OffloadStats {
    assert!(
        S::IDEMPOTENT_ADD,
        "distributed FW relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    let gpu = SimGpu::new(cfg.gpu_spec);
    let mut stats = OffloadStats::default();

    for k in 0..a.nb {
        let panels = diag_and_panels::<S>(grid, a, k, cfg.diag, cfg.panel_bcast());
        let _p = grid.grid.phase("OuterUpdate");
        if a.local.rows() == 0 || a.local.cols() == 0 {
            continue;
        }
        // OuterUpdate(k) through the device: C_local ← C_local ⊕ A(:,k) ⊗ A(k,:)
        let oog_stats = oog_srgemm::<S>(
            &gpu,
            &cfg.oog,
            &mut a.local.view_mut(),
            &panels.col_panel.view(),
            &panels.row_panel.view(),
        )
        .unwrap_or_else(|oom| {
            panic!(
                "Me-ParallelFw: panels do not fit on the device at k={k}: {oom} \
                 (shrink the block size or the oog tile buffers)"
            )
        });
        stats.gpu_seconds += oog_stats.sim_time;
        stats.flops += oog_stats.flops;
        stats.tiles += oog_stats.tiles;
        stats.peak_device_bytes = stats.peak_device_bytes.max(oog_stats.device_bytes);
    }
    stats
}

/// Aggregated per-rank offload statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OffloadStats {
    /// Simulated device+host pipeline seconds across all iterations.
    pub gpu_seconds: f64,
    /// Semiring flops pushed through `ooGSrGemm`.
    pub flops: f64,
    /// Output tiles processed.
    pub tiles: usize,
    /// High-water device memory, bytes.
    pub peak_device_bytes: u64,
}
