//! Chaos properties: random single-fault plans across the full policy cube
//! must terminate promptly on every rank with *typed* errors — never a hang,
//! never a panic cascade — and fault-free runs through the same options
//! plumbing must stay bit-identical to sequential Floyd-Warshall.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use apsp_core::dist::{
    distributed_apsp_opts, DistError, DistRunOpts, Exec, FwConfig, PanelBcastAlgo, Schedule,
};
use apsp_core::fw_seq::fw_seq;
use apsp_graph::generators::{erdos_renyi, WeightKind};
use mpi_sim::FaultPlan;
use srgemm::MinPlusF32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn single_fault_runs_terminate_with_typed_errors_or_finish_clean(
        n in 6usize..24,
        b in 2usize..8,
        grid_pick in 0usize..4,
        schedule_pick in 0usize..2,
        bcast_pick in 0usize..2,
        exec_pick in 0usize..2,
        graph_seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        // the full 2×2×2 policy cube on several grid shapes
        let (pr, pc) = [(1, 2), (2, 2), (2, 3), (3, 1)][grid_pick];
        let schedule = Schedule::all()[schedule_pick];
        let bcast = [PanelBcastAlgo::Tree, PanelBcastAlgo::Ring { chunks: 3 }][bcast_pick];
        let exec = Exec::all()[exec_pick];
        let cfg = FwConfig::from_axes(b, schedule, bcast, exec);

        let g = erdos_renyi(n, 0.3, WeightKind::small_ints(), graph_seed);
        let input = g.to_dense();
        let mut want = input.clone();
        fw_seq::<MinPlusF32>(&mut want);

        let recv_timeout = Duration::from_millis(300);

        // fault-free through the same options plumbing: exact answer
        let clean = DistRunOpts {
            recv_timeout: Some(recv_timeout * 10),
            faults: FaultPlan::none(),
            ..Default::default()
        };
        let (got, _) = distributed_apsp_opts::<MinPlusF32>(pr, pc, &cfg, &input, None, &clean)
            .expect("fault-free run");
        prop_assert!(want.eq_exact(&got));

        // one random kill-or-drop fault: every rank must terminate promptly
        // (a drop costs one recv_timeout for detection, then mailbox
        // poisoning fails the survivors fast); the outcome is either a typed
        // communication error or — when the fault's trigger point is never
        // reached — the exact answer
        let opts = DistRunOpts {
            recv_timeout: Some(recv_timeout),
            faults: FaultPlan::random_single(fault_seed, pr * pc),
            ..Default::default()
        };
        let t0 = Instant::now();
        let out = distributed_apsp_opts::<MinPlusF32>(pr, pc, &cfg, &input, None, &opts);
        let elapsed = t0.elapsed();
        prop_assert!(
            elapsed < Duration::from_secs(10),
            "run must not hang: took {:?} under plan {:?}", elapsed, opts.faults
        );
        match out {
            Ok((got, _)) => prop_assert!(want.eq_exact(&got), "plan {:?}", opts.faults),
            Err(e) => prop_assert!(
                matches!(e, DistError::Comm(_)),
                "fault must surface as a typed CommError, not a panic: {} ({:?})", e, opts.faults
            ),
        }
    }
}
