//! Out-of-core FW: oracle equivalence, budget enforcement, corruption
//! handling, and cost-model consistency.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
use apsp_core::fw_seq::fw_seq;
use apsp_core::ooc::{
    choose_tile, ingest, ooc_fw, solve_in_store, staged_budget_floor, FileStore, MemStore,
    OocConfig, OocError, StoreError,
};
use apsp_graph::generators::{self, WeightKind};
use gpu_sim::OffloadCosts;
use srgemm::matrix::Matrix;
use srgemm::MinPlusF32;

fn dense(n: usize, seed: u64) -> Matrix<f32> {
    generators::uniform_dense(n, WeightKind::small_ints(), seed).to_dense()
}

/// Unique temp file path, removed on drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut p = std::env::temp_dir();
        p.push(format!("apsp-ooc-test-{}-{tag}-{seq}.tiles", std::process::id()));
        TempPath(p)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A budget just big enough to run but far too small to hold the matrix:
/// forces eviction traffic through the store on every iteration.
fn tight_budget(tile: usize, depth: usize) -> u64 {
    staged_budget_floor::<f32>(tile, depth)
        + 3 * apsp_core::ooc::tile_blob_capacity::<f32>(tile) as u64
}

#[test]
fn staged_solve_is_bit_identical_to_fw_seq_across_ragged_shapes() {
    // n × tile combos where tiles divide, don't divide, and exceed n
    for &(n, t) in &[(24usize, 8usize), (29, 8), (48, 16), (33, 7), (40, 64)] {
        let base = dense(n, 0xA11CE + n as u64);
        let mut want = base.clone();
        fw_seq::<MinPlusF32>(&mut want);
        let mut blocked = base.clone();
        fw_blocked::<MinPlusF32>(&mut blocked, t, DiagMethod::FwClosure, false);
        assert!(want.eq_exact(&blocked), "fw_blocked oracle drifted at n={n} t={t}");

        let path = TempPath::new("oracle");
        let cfg = OocConfig { budget_bytes: tight_budget(t, 2), depth: 2, parallel: false };
        let mut store = FileStore::create::<f32>(&path.0, n, t, cfg.depth).unwrap();
        let mut got = base.clone();
        let stats = solve_in_store::<MinPlusF32>(&mut got, &mut store, &cfg).unwrap();
        assert!(want.eq_exact(&got), "staged solve diverged at n={n} t={t}");
        assert!(stats.staged, "file-backed store must report staged");
        if n > t {
            assert!(stats.tiles_written > 0, "a tight budget must spill (n={n} t={t})");
        }
    }
}

#[test]
fn in_memory_store_matches_staged_and_fw_blocked() {
    let n = 56;
    let base = dense(n, 7);
    let mut want = base.clone();
    fw_blocked::<MinPlusF32>(&mut want, 16, DiagMethod::FwClosure, false);

    let mut mem_store = MemStore::new::<f32>(n, 16);
    let mut via_mem = base.clone();
    let mem_stats =
        solve_in_store::<MinPlusF32>(&mut via_mem, &mut mem_store, &OocConfig::unbounded())
            .unwrap();
    assert!(want.eq_exact(&via_mem));
    assert!(!mem_stats.staged);

    let path = TempPath::new("memvsfile");
    let mut file_store = FileStore::create::<f32>(&path.0, n, 16, 2).unwrap();
    let mut via_file = base.clone();
    let cfg = OocConfig { budget_bytes: tight_budget(16, 2), depth: 2, parallel: true };
    solve_in_store::<MinPlusF32>(&mut via_file, &mut file_store, &cfg).unwrap();
    assert!(via_mem.eq_exact(&via_file), "staged and in-memory runs must agree bit-for-bit");
}

#[test]
fn budget_sweep_never_exceeds_the_budget() {
    let (n, t) = (64usize, 16usize);
    let base = dense(n, 11);
    let mut want = base.clone();
    fw_seq::<MinPlusF32>(&mut want);
    let floor = staged_budget_floor::<f32>(t, 2);
    for extra in [0u64, 1 << 12, 1 << 14, 1 << 16, 1 << 20] {
        let budget = floor + extra;
        let path = TempPath::new("sweep");
        let mut store = FileStore::create::<f32>(&path.0, n, t, 2).unwrap();
        let mut got = base.clone();
        let cfg = OocConfig { budget_bytes: budget, depth: 2, parallel: false };
        let stats = solve_in_store::<MinPlusF32>(&mut got, &mut store, &cfg).unwrap();
        assert!(want.eq_exact(&got), "wrong closure at budget {budget}");
        assert!(
            stats.peak_resident_bytes <= budget,
            "peak {} exceeds budget {budget}",
            stats.peak_resident_bytes
        );
    }
}

#[test]
fn budget_below_floor_fails_upfront_with_the_full_requirement() {
    let (n, t) = (32usize, 16usize);
    let path = TempPath::new("floor");
    let mut store = FileStore::create::<f32>(&path.0, n, t, 2).unwrap();
    ingest::<MinPlusF32>(&mut store, &dense(n, 3).view()).unwrap();
    let floor = staged_budget_floor::<f32>(t, 2);
    let cfg = OocConfig { budget_bytes: floor - 1, depth: 2, parallel: false };
    match ooc_fw::<MinPlusF32>(&mut store, &cfg) {
        Err(OocError::BudgetTooSmall { required, budget }) => {
            // the full up-front requirement, not the increment that tripped
            assert_eq!(required, floor);
            assert_eq!(budget, floor - 1);
        }
        other => panic!("expected BudgetTooSmall, got {other:?}"),
    }
}

#[test]
fn invalid_depth_is_rejected_by_the_shared_validation() {
    let (n, t) = (16usize, 8usize);
    let mut store = MemStore::new::<f32>(n, t);
    ingest::<MinPlusF32>(&mut store, &dense(n, 1).view()).unwrap();
    let cfg = OocConfig { budget_bytes: u64::MAX, depth: 0, parallel: false };
    assert_eq!(
        ooc_fw::<MinPlusF32>(&mut store, &cfg),
        Err(OocError::InvalidConfig { tile: t, depth: 0 })
    );
}

#[test]
fn truncated_store_file_is_a_typed_error_not_a_panic() {
    let (n, t) = (32usize, 8usize);
    let path = TempPath::new("trunc");
    {
        let mut store = FileStore::create::<f32>(&path.0, n, t, 2).unwrap();
        ingest::<MinPlusF32>(&mut store, &dense(n, 5).view()).unwrap();
    }
    // Chop the file: open() must refuse with a header error.
    let full = std::fs::metadata(&path.0).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path.0).unwrap();
    f.set_len(full / 2).unwrap();
    drop(f);
    match FileStore::open::<f32>(&path.0, 2) {
        Err(StoreError::BadHeader { detail }) => {
            assert!(detail.contains("truncated"), "unhelpful detail: {detail}")
        }
        other => panic!("expected BadHeader, got {:?}", other.map(|_| ())),
    }
    // Chop into the header itself.
    let f = std::fs::OpenOptions::new().write(true).open(&path.0).unwrap();
    f.set_len(10).unwrap();
    drop(f);
    assert!(matches!(FileStore::open::<f32>(&path.0, 2), Err(StoreError::Io { op: "read", .. })));
}

#[test]
fn store_written_as_one_dtype_refuses_to_open_as_another() {
    // i32 and f32 share the 4-byte width AND the 32-element pad stride, so
    // slot capacities are identical — only the header's dtype code can stop
    // a silent bit-reinterpretation of every stored distance.
    let (n, t) = (32usize, 16usize);
    let path = TempPath::new("dtype");
    drop(FileStore::create::<i32>(&path.0, n, t, 2).unwrap());
    match FileStore::open::<f32>(&path.0, 2) {
        Err(StoreError::BadHeader { detail }) => {
            assert!(
                detail.contains("i32") && detail.contains("f32"),
                "unhelpful detail: {detail}"
            );
        }
        other => panic!("expected BadHeader, got {:?}", other.map(|_| ())),
    }
    // same-dtype reopen still works
    assert!(FileStore::open::<i32>(&path.0, 2).is_ok());
    // a u16 store differs in width, slot capacity, and pad stride — all
    // derived from the element width, and all caught up front
    let path2 = TempPath::new("dtype16");
    drop(FileStore::create::<u16>(&path2.0, n, t, 2).unwrap());
    match FileStore::open::<f32>(&path2.0, 2) {
        Err(StoreError::BadHeader { detail }) => {
            assert!(detail.contains("width 2"), "unhelpful detail: {detail}");
        }
        other => panic!("expected BadHeader, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn corrupt_tile_blob_is_a_typed_decode_error() {
    use std::io::{Seek, SeekFrom, Write};
    let (n, t) = (32usize, 8usize);
    let path = TempPath::new("corrupt");
    {
        let mut store = FileStore::create::<f32>(&path.0, n, t, 2).unwrap();
        ingest::<MinPlusF32>(&mut store, &dense(n, 6).view()).unwrap();
    }
    // Stomp the magic of some mid-file tile slot.
    let mut f = std::fs::OpenOptions::new().write(true).open(&path.0).unwrap();
    let slot = apsp_core::ooc::tile_blob_capacity::<f32>(t) as u64;
    f.seek(SeekFrom::Start(36 + 5 * slot)).unwrap();
    f.write_all(b"garbage!").unwrap();
    drop(f);
    let mut store = FileStore::open::<f32>(&path.0, 2).unwrap();
    let cfg = OocConfig { budget_bytes: tight_budget(t, 2), depth: 2, parallel: false };
    match ooc_fw::<MinPlusF32>(&mut store, &cfg) {
        Err(OocError::Decode(_)) => {}
        other => panic!("expected a decode error, got {other:?}"),
    }
}

#[test]
fn mem_store_read_of_unwritten_tile_is_typed() {
    let mut store = MemStore::new::<f32>(16, 8);
    use apsp_core::ooc::TileStore;
    assert_eq!(store.read(1, 0), Err(StoreError::MissingTile { ti: 1, tj: 0 }));
}

#[test]
fn choose_tile_picks_the_largest_fit_and_gives_up_below_the_smallest() {
    let depth = 2;
    // A budget sized for tile 64 must not pick anything bigger.
    let b64 = staged_budget_floor::<f32>(64, depth);
    assert_eq!(choose_tile::<f32>(10_000, b64, depth), Some(64));
    assert!(staged_budget_floor::<f32>(96, depth) > b64);
    // Tiny budget: nothing fits.
    assert_eq!(choose_tile::<f32>(10_000, 1024, depth), None);
    // Clamped to n when the matrix is small.
    let huge = u64::MAX;
    assert_eq!(choose_tile::<f32>(24, huge, depth), Some(24));
}

#[test]
fn measured_run_is_consistent_with_the_four_engine_cost_model() {
    // Validate the §4.5 disk-tier extension against a real staged run: with
    // the run's own measured compute and I/O times as t0/t3, the model's
    // serialized (1-lane) prediction must bracket the measured wall time
    // from below within the driver's (pack/unpack/cache) overhead, and the
    // fully-overlapped (≥4-lane) prediction must be a lower bound.
    let (n, t) = (96usize, 24usize);
    let path = TempPath::new("model");
    let mut store = FileStore::create::<f32>(&path.0, n, t, 2).unwrap();
    let mut d = dense(n, 13);
    let cfg = OocConfig { budget_bytes: tight_budget(t, 2), depth: 2, parallel: false };
    let stats = solve_in_store::<MinPlusF32>(&mut d, &mut store, &cfg).unwrap();
    let c = OffloadCosts { t0: stats.compute_seconds, t1: 0.0, t2: 0.0, t3: stats.io_seconds };
    assert!(
        stats.wall_seconds >= c.predicted_time(4),
        "wall {} below the overlap lower bound {}",
        stats.wall_seconds,
        c.predicted_time(4)
    );
    assert!(
        stats.wall_seconds <= 5.0 * c.predicted_time(1) + 0.05,
        "wall {} implausibly above the serialized model {}",
        stats.wall_seconds,
        c.predicted_time(1)
    );
}
