//! Tile stores: where out-of-core FW keeps the matrix when it doesn't fit
//! in RAM.
//!
//! A [`TileStore`] holds the `⌈n/t⌉ × ⌈n/t⌉` grid of `t × t` tiles of the
//! distance matrix as *serialized [`PackedB`] blobs* — the exact bytes of
//! `srgemm`'s kernel-ready packed layout (`APTB` format,
//! [`PackedB::to_bytes`]). Packing therefore happens **once at ingest**;
//! every later read hands the GEMM a `B` operand it can stream directly,
//! and the store never needs to know the element type or the semiring —
//! blobs are self-describing.
//!
//! Two implementations:
//!
//! * [`MemStore`] — blobs in a `Vec`; the in-memory baseline the staged
//!   path is benchmarked against.
//! * [`FileStore`] — one file of fixed-capacity slots behind a background
//!   I/O thread, so tile reads (prefetch) and write-backs overlap the
//!   packed GEMM. Requests are processed FIFO, which makes a read of a
//!   slot observe every write queued before it — the driver's
//!   read-after-write guarantee.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use srgemm::gemm::pack::{PackElem, PackedB};
use srgemm::gemm::{KC, NC};

/// Serialized size of a full `tile × tile` blob with the default pack
/// tiling — what a store reserves per slot (ragged edge tiles are smaller
/// and leave slack; blobs are self-describing so the slack is ignored).
pub fn tile_blob_capacity<E: PackElem>(tile: usize) -> usize {
    PackedB::<E>::serialized_len(tile, tile, KC, NC)
}

/// Typed failures from a [`TileStore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure (`op` names the operation that failed).
    Io {
        /// Operation that failed ("open", "read", "write", ...).
        op: &'static str,
        /// Stringified `io::Error`.
        detail: String,
    },
    /// The store file's own header is wrong (bad magic, version, or a
    /// shape that contradicts the file length — e.g. a truncated file).
    BadHeader {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A tile that was never written was read.
    MissingTile {
        /// Block-row index.
        ti: usize,
        /// Block-column index.
        tj: usize,
    },
    /// The store was used after its I/O worker shut down.
    WorkerGone,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, detail } => write!(f, "tile store {op} failed: {detail}"),
            StoreError::BadHeader { detail } => write!(f, "bad tile store header: {detail}"),
            StoreError::MissingTile { ti, tj } => {
                write!(f, "tile ({ti}, {tj}) was never written")
            }
            StoreError::WorkerGone => write!(f, "tile store I/O worker is gone"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(op: &'static str, e: std::io::Error) -> StoreError {
    StoreError::Io { op, detail: e.to_string() }
}

/// Blob-level storage for the tile grid of one square matrix.
///
/// Implementations deal in opaque serialized-`PackedB` bytes; the driver
/// ([`super::ooc_fw`]) owns encode/decode. `read`/`write` address tiles by
/// block coordinates `(ti, tj)` with `ti, tj < ⌈n/t⌉`.
pub trait TileStore: Send {
    /// Matrix dimension.
    fn n(&self) -> usize;
    /// Tile side length `t`.
    fn tile(&self) -> usize;
    /// `"memory"` or `"file"` — surfaced in solver notes and bench labels.
    fn kind(&self) -> &'static str;
    /// Fetch the blob for tile `(ti, tj)`, consuming any in-flight
    /// prefetch for it. Blocks until the bytes are available.
    fn read(&mut self, ti: usize, tj: usize) -> Result<Vec<u8>, StoreError>;
    /// Queue `blob` as the new contents of tile `(ti, tj)`. May return
    /// before the bytes are durable; a later `read` of the same tile still
    /// observes them (FIFO), and [`TileStore::flush`] waits for all of them.
    fn write(&mut self, ti: usize, tj: usize, blob: Vec<u8>) -> Result<(), StoreError>;
    /// Hint that `(ti, tj)` will be read soon. Best-effort; default no-op.
    fn prefetch(&mut self, _ti: usize, _tj: usize) {}
    /// Wait until every queued write has completed, surfacing any deferred
    /// write error.
    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
    /// Host-RAM bytes this store currently holds (all blobs for
    /// [`MemStore`]; in-flight read/write buffers for [`FileStore`]).
    /// Counted against the driver's budget.
    fn resident_bytes(&self) -> u64;
    /// Per-slot capacity: the largest blob any tile of this store needs.
    fn max_blob_bytes(&self) -> usize;
    /// Tiles per side, `⌈n/t⌉`.
    fn tiles_per_side(&self) -> usize {
        self.n().div_ceil(self.tile())
    }
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// In-memory tile store: the whole grid of blobs lives in host RAM. This is
/// the no-staging baseline — same driver, same packed format, zero disk.
pub struct MemStore {
    n: usize,
    tile: usize,
    slot_cap: usize,
    slots: Vec<Option<Vec<u8>>>,
    resident: u64,
}

impl MemStore {
    /// Empty store for an `n × n` matrix in `tile × tile` blobs of element
    /// type `E`.
    ///
    /// # Panics
    /// Panics if `n` or `tile` is zero.
    pub fn new<E: PackElem>(n: usize, tile: usize) -> Self {
        assert!(n > 0 && tile > 0, "tile store dimensions must be positive");
        let nb = n.div_ceil(tile);
        MemStore {
            n,
            tile,
            slot_cap: tile_blob_capacity::<E>(tile),
            slots: (0..nb * nb).map(|_| None).collect(),
            resident: 0,
        }
    }

    fn slot(&self, ti: usize, tj: usize) -> usize {
        let nb = self.tiles_per_side();
        assert!(ti < nb && tj < nb, "tile index ({ti}, {tj}) out of range");
        ti * nb + tj
    }
}

impl TileStore for MemStore {
    fn n(&self) -> usize {
        self.n
    }
    fn tile(&self) -> usize {
        self.tile
    }
    fn kind(&self) -> &'static str {
        "memory"
    }
    fn read(&mut self, ti: usize, tj: usize) -> Result<Vec<u8>, StoreError> {
        let s = self.slot(ti, tj);
        self.slots[s].clone().ok_or(StoreError::MissingTile { ti, tj })
    }
    fn write(&mut self, ti: usize, tj: usize, blob: Vec<u8>) -> Result<(), StoreError> {
        let s = self.slot(ti, tj);
        if let Some(old) = self.slots[s].take() {
            self.resident -= old.len() as u64;
        }
        self.resident += blob.len() as u64;
        self.slots[s] = Some(blob);
        Ok(())
    }
    fn resident_bytes(&self) -> u64 {
        self.resident
    }
    fn max_blob_bytes(&self) -> usize {
        self.slot_cap
    }
}

// ---------------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------------

/// Store-file magic ("APsp Tile Store 1").
const FILE_MAGIC: [u8; 8] = *b"APSPTS01";
/// Fixed file header: magic + elem field (u32) + n/tile/slot (u64 each).
/// The elem field packs the byte width in its low 16 bits and the
/// [`PackElem`] dtype code in the high 16, mirroring the per-blob `APTB`
/// header — so a store written as i32 cannot be opened as f32 even though
/// both have 4-byte elements and identical slot capacities.
const FILE_HEADER: usize = 8 + 4 + 3 * 8;

/// The elem field a store of element type `E` carries.
fn elem_field<E: PackElem>() -> u32 {
    (E::BYTES as u32) | ((E::CODE as u32) << 16)
}

/// Reply channel for an asynchronous slot read.
type ReadReply = Receiver<Result<Vec<u8>, StoreError>>;
/// Reply channel for an asynchronous slot write (bytes written).
type WriteReply = Receiver<Result<usize, StoreError>>;

enum IoReq {
    Read { off: u64, len: usize, reply: Sender<Result<Vec<u8>, StoreError>> },
    Write { off: u64, data: Vec<u8>, reply: Sender<Result<usize, StoreError>> },
}

fn io_worker(mut file: File, rx: Receiver<IoReq>) {
    while let Ok(req) = rx.recv() {
        match req {
            IoReq::Read { off, len, reply } => {
                let res = file
                    .seek(SeekFrom::Start(off))
                    .and_then(|_| {
                        let mut buf = vec![0u8; len];
                        file.read_exact(&mut buf)?;
                        Ok(buf)
                    })
                    .map_err(|e| io_err("read", e));
                let _ = reply.send(res);
            }
            IoReq::Write { off, data, reply } => {
                let res = file
                    .seek(SeekFrom::Start(off))
                    .and_then(|_| file.write_all(&data))
                    .map(|_| data.len())
                    .map_err(|e| io_err("write", e));
                let _ = reply.send(res);
            }
        }
    }
}

/// File-backed tile store: a header plus `⌈n/t⌉²` fixed-capacity slots, all
/// I/O performed by one background worker thread. `prefetch` issues an
/// asynchronous slot read; `write` queues the blob and returns immediately
/// (bounded by `depth` outstanding writes, so queued buffers can never
/// exceed `depth · slot` bytes of RAM); the FIFO request queue makes any
/// read issued after a write to the same slot observe the new bytes.
pub struct FileStore {
    path: PathBuf,
    n: usize,
    tile: usize,
    slot_cap: usize,
    depth: usize,
    tx: Option<Sender<IoReq>>,
    worker: Option<JoinHandle<()>>,
    inflight_reads: HashMap<(usize, usize), ReadReply>,
    pending_writes: Vec<(usize, WriteReply)>,
    resident: u64,
}

impl FileStore {
    /// Create (truncating) a store file for an `n × n` matrix in
    /// `tile × tile` blobs of element type `E`, allowing up to `depth`
    /// outstanding writes.
    ///
    /// # Panics
    /// Panics if `n`, `tile`, or `depth` is zero.
    pub fn create<E: PackElem>(
        path: &Path,
        n: usize,
        tile: usize,
        depth: usize,
    ) -> Result<Self, StoreError> {
        assert!(n > 0 && tile > 0, "tile store dimensions must be positive");
        assert!(depth > 0, "write queue depth must be positive");
        let slot_cap = tile_blob_capacity::<E>(tile);
        let nb = n.div_ceil(tile);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("open", e))?;
        let mut header = Vec::with_capacity(FILE_HEADER);
        header.extend_from_slice(&FILE_MAGIC);
        header.extend_from_slice(&elem_field::<E>().to_le_bytes());
        for v in [n as u64, tile as u64, slot_cap as u64] {
            header.extend_from_slice(&v.to_le_bytes());
        }
        file.write_all(&header).map_err(|e| io_err("write", e))?;
        file.set_len((FILE_HEADER + nb * nb * slot_cap) as u64)
            .map_err(|e| io_err("write", e))?;
        Ok(Self::start(path.to_path_buf(), file, n, tile, slot_cap, depth))
    }

    /// Open an existing store file, validating its header against the
    /// element type `E` and its length against the declared geometry. A
    /// truncated or foreign file fails here with a typed error rather than
    /// a panic mid-solve.
    pub fn open<E: PackElem>(path: &Path, depth: usize) -> Result<Self, StoreError> {
        assert!(depth > 0, "write queue depth must be positive");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("open", e))?;
        let mut header = [0u8; FILE_HEADER];
        file.read_exact(&mut header).map_err(|e| io_err("read", e))?;
        if header[..8] != FILE_MAGIC {
            return Err(StoreError::BadHeader { detail: "wrong magic".into() });
        }
        let elem = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let width = (elem & 0xFFFF) as usize;
        let code = (elem >> 16) as u8;
        if width != E::BYTES {
            return Err(StoreError::BadHeader {
                detail: format!("element width {width}, expected {}", E::BYTES),
            });
        }
        if code != E::CODE {
            return Err(StoreError::BadHeader {
                detail: format!(
                    "element dtype {}, expected {}",
                    srgemm::gemm::dtype_name(code),
                    E::DTYPE
                ),
            });
        }
        let u64_at = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
        let (n, tile, slot_cap) =
            (u64_at(12) as usize, u64_at(20) as usize, u64_at(28) as usize);
        if n == 0 || tile == 0 || slot_cap != tile_blob_capacity::<E>(tile) {
            return Err(StoreError::BadHeader {
                detail: format!("implausible geometry n={n} tile={tile} slot={slot_cap}"),
            });
        }
        let nb = n.div_ceil(tile);
        let want = (FILE_HEADER + nb * nb * slot_cap) as u64;
        let got = file.metadata().map_err(|e| io_err("open", e))?.len();
        if got < want {
            return Err(StoreError::BadHeader {
                detail: format!("file is {got} bytes, geometry needs {want} (truncated?)"),
            });
        }
        Ok(Self::start(path.to_path_buf(), file, n, tile, slot_cap, depth))
    }

    fn start(
        path: PathBuf,
        file: File,
        n: usize,
        tile: usize,
        slot_cap: usize,
        depth: usize,
    ) -> Self {
        let (tx, rx) = channel();
        let worker = std::thread::Builder::new()
            .name("ooc-tile-io".into())
            .spawn(move || io_worker(file, rx))
            .expect("spawn tile-store I/O worker");
        FileStore {
            path,
            n,
            tile,
            slot_cap,
            depth,
            tx: Some(tx),
            worker: Some(worker),
            inflight_reads: HashMap::new(),
            pending_writes: Vec::new(),
            resident: 0,
        }
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn offset(&self, ti: usize, tj: usize) -> u64 {
        let nb = self.tiles_per_side();
        assert!(ti < nb && tj < nb, "tile index ({ti}, {tj}) out of range");
        (FILE_HEADER + (ti * nb + tj) * self.slot_cap) as u64
    }

    fn sender(&self) -> Result<&Sender<IoReq>, StoreError> {
        self.tx.as_ref().ok_or(StoreError::WorkerGone)
    }

    /// Wait for the oldest queued write to land.
    fn retire_one_write(&mut self) -> Result<(), StoreError> {
        if self.pending_writes.is_empty() {
            return Ok(());
        }
        let (len, rx) = self.pending_writes.remove(0);
        self.resident -= len as u64;
        match rx.recv() {
            Ok(res) => res.map(|_| ()),
            Err(_) => Err(StoreError::WorkerGone),
        }
    }
}

impl TileStore for FileStore {
    fn n(&self) -> usize {
        self.n
    }
    fn tile(&self) -> usize {
        self.tile
    }
    fn kind(&self) -> &'static str {
        "file"
    }

    fn read(&mut self, ti: usize, tj: usize) -> Result<Vec<u8>, StoreError> {
        let rx = match self.inflight_reads.remove(&(ti, tj)) {
            Some(rx) => rx,
            None => {
                let (reply, rx) = channel();
                let off = self.offset(ti, tj);
                self.sender()?
                    .send(IoReq::Read { off, len: self.slot_cap, reply })
                    .map_err(|_| StoreError::WorkerGone)?;
                self.resident += self.slot_cap as u64;
                rx
            }
        };
        let res = rx.recv().map_err(|_| StoreError::WorkerGone)?;
        self.resident -= self.slot_cap as u64;
        res
    }

    fn write(&mut self, ti: usize, tj: usize, blob: Vec<u8>) -> Result<(), StoreError> {
        assert!(blob.len() <= self.slot_cap, "blob exceeds slot capacity");
        // Bound queued-write RAM at depth · slot.
        while self.pending_writes.len() >= self.depth {
            self.retire_one_write()?;
        }
        let off = self.offset(ti, tj);
        let len = blob.len();
        let (reply, rx) = channel();
        self.sender()?
            .send(IoReq::Write { off, data: blob, reply })
            .map_err(|_| StoreError::WorkerGone)?;
        self.resident += len as u64;
        self.pending_writes.push((len, rx));
        Ok(())
    }

    fn prefetch(&mut self, ti: usize, tj: usize) {
        if self.inflight_reads.contains_key(&(ti, tj)) || self.tx.is_none() {
            return;
        }
        // Keep read-ahead bounded by the same depth as writes.
        if self.inflight_reads.len() >= self.depth {
            return;
        }
        let (reply, rx) = channel();
        let off = self.offset(ti, tj);
        if self
            .tx
            .as_ref()
            .unwrap()
            .send(IoReq::Read { off, len: self.slot_cap, reply })
            .is_ok()
        {
            self.resident += self.slot_cap as u64;
            self.inflight_reads.insert((ti, tj), rx);
        }
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        let mut first_err = Ok(());
        while !self.pending_writes.is_empty() {
            if let Err(e) = self.retire_one_write() {
                if first_err.is_ok() {
                    first_err = Err(e);
                }
            }
        }
        first_err
    }

    fn resident_bytes(&self) -> u64 {
        self.resident
    }
    fn max_blob_bytes(&self) -> usize {
        self.slot_cap
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        let _ = self.flush();
        drop(self.tx.take()); // close the channel so the worker exits
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}
