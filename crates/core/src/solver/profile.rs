//! Graph feature profile: everything the planner needs to pick a solver,
//! computed in one pass over the edges (plus one BFS for component count).

use std::collections::HashSet;

use apsp_graph::components::weak_components;
use apsp_graph::Graph;

/// Structural and numeric features of a graph, extracted once and shared by
/// every solver's eligibility check and cost estimate. All edge-derived
/// fields come from a single `O(m)` sweep (the structural-symmetry probe
/// adds a binary search per edge, `O(m log d_max)`); the component count is
/// one BFS, `O(n + m)`.
#[derive(Clone, Debug)]
pub struct GraphProfile {
    /// Vertex count.
    pub n: usize,
    /// Directed edge count (after CSR dedup).
    pub m: usize,
    /// `m / (n·(n−1))` — fraction of possible directed edges present.
    pub density: f64,
    /// Smallest edge weight (`0` when there are no edges).
    pub min_weight: f32,
    /// Largest edge weight (`0` when there are no edges).
    pub max_weight: f32,
    /// Mean edge weight (`0` when there are no edges).
    pub mean_weight: f64,
    /// Any `w < 0` edge present — disqualifies Dijkstra and Δ-stepping.
    pub negative_edges: usize,
    /// Every weight equals `1.0` — a hop-count instance (Seidel territory).
    pub unit_weights: bool,
    /// Every weight is a whole number — quantization (`--algo quant`) can
    /// be bit-exact instead of merely `eps`-bounded.
    pub integral_weights: bool,
    /// For every edge `(u,v,w)` the edge `(v,u,w)` also exists — the graph
    /// is undirected in structure *and* weight.
    pub symmetric: bool,
    /// Weakly-connected component count (`0` for the empty graph).
    pub weak_components: usize,
    /// Block size the block-occupancy fields below were measured at.
    pub block_size: usize,
    /// Blocks of the `block_size`-tiled distance matrix holding at least
    /// one edge or diagonal entry — the block-sparse solver's input size.
    pub nnz_blocks: usize,
    /// `nnz_blocks / nb²`.
    pub block_density: f64,
    /// Bytes of one dense `n×n` f32 distance matrix.
    pub dense_bytes: u64,
}

impl GraphProfile {
    /// Profile `g`, measuring block occupancy at block size `block`.
    pub fn compute(g: &Graph, block: usize) -> GraphProfile {
        let block = block.max(1);
        let n = g.n();
        let m = g.m();
        let nb = n.div_ceil(block);

        let mut min_weight = f32::INFINITY;
        let mut max_weight = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut negative_edges = 0usize;
        let mut unit_weights = true;
        let mut integral_weights = true;
        let mut symmetric = true;
        // diagonal blocks always materialize (zero-seeded diagonal)
        let mut blocks: HashSet<(u32, u32)> = (0..nb as u32).map(|k| (k, k)).collect();

        for (u, v, w) in g.edges() {
            min_weight = min_weight.min(w);
            max_weight = max_weight.max(w);
            sum += w as f64;
            if w < 0.0 {
                negative_edges += 1;
            }
            if w != 1.0 {
                unit_weights = false;
            }
            if w.fract() != 0.0 {
                integral_weights = false;
            }
            if symmetric && g.weight(v, u) != w {
                symmetric = false;
            }
            blocks.insert(((u / block) as u32, (v / block) as u32));
        }
        if m == 0 {
            min_weight = 0.0;
            max_weight = 0.0;
            unit_weights = false;
        }

        let (_, weak_components) = weak_components(g);
        let nnz_blocks = if n == 0 { 0 } else { blocks.len() };
        GraphProfile {
            n,
            m,
            density: if n > 1 { m as f64 / (n as f64 * (n as f64 - 1.0)) } else { 0.0 },
            min_weight,
            max_weight,
            mean_weight: if m > 0 { sum / m as f64 } else { 0.0 },
            negative_edges,
            unit_weights,
            integral_weights,
            symmetric,
            weak_components,
            block_size: block,
            nnz_blocks,
            block_density: if nb > 0 { nnz_blocks as f64 / (nb as f64 * nb as f64) } else { 0.0 },
            dense_bytes: (n as u64) * (n as u64) * 4,
        }
    }

    /// Any negative-weight edge?
    pub fn has_negative(&self) -> bool {
        self.negative_edges > 0
    }

    /// Exactly one weak component (and non-empty)?
    pub fn connected(&self) -> bool {
        self.weak_components == 1
    }

    /// Crude forecast of the fraction of dense block-GEMM work the
    /// block-sparse solver will perform: fill-in grows occupancy toward
    /// `√block_density → 1` on connected graphs, while disconnected
    /// components bound it by `1/c²` (fill never crosses components, and
    /// each component's cube shrinks as `(1/c)³` summed over `c` columns of
    /// the elimination). Calibration, not a theorem — see DESIGN.md §13.
    pub fn est_fill_work_ratio(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let c = self.weak_components.max(1) as f64;
        (self.block_density.sqrt() / (c * c)).clamp(self.block_density.min(1.0), 1.0)
    }

    /// Human-readable multi-line summary (the header of `apsp plan`).
    pub fn render(&self) -> String {
        let sign = if self.has_negative() {
            format!("{} negative edges", self.negative_edges)
        } else {
            "non-negative".to_string()
        };
        let unit = if self.unit_weights { "unit" } else { "non-unit" };
        let shape = if self.symmetric { "symmetric" } else { "directed" };
        let nb = self.n.div_ceil(self.block_size);
        format!(
            "graph profile\n  n = {}  m = {}  density {:.3}%\n  weights: [{}, {}]  mean {:.2}  \
             {sign}  {unit}\n  structure: {shape}, {} weak component{}\n  blocks (b = {}): \
             {}/{} materialized ({:.1}%)\n  dense working set: {}\n",
            self.n,
            self.m,
            self.density * 100.0,
            self.min_weight,
            self.max_weight,
            self.mean_weight,
            self.weak_components,
            if self.weak_components == 1 { "" } else { "s" },
            self.block_size,
            self.nnz_blocks,
            nb * nb,
            self.block_density * 100.0,
            human_bytes(self.dense_bytes),
        )
    }
}

/// `1536 → "1.5 KiB"` — for profile and plan rendering.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::GraphBuilder;

    #[test]
    fn dense_uniform_profile() {
        let g = generators::uniform_dense(32, WeightKind::small_ints(), 3);
        let p = GraphProfile::compute(&g, 8);
        assert_eq!(p.n, 32);
        assert_eq!(p.m, 32 * 31);
        assert!((p.density - 1.0).abs() < 1e-9);
        assert!(!p.has_negative());
        assert!(!p.unit_weights);
        assert!(p.integral_weights); // small_ints are whole numbers
        assert!(!p.symmetric); // independent random weights per direction
        assert_eq!(p.weak_components, 1);
        assert_eq!(p.nnz_blocks, 16); // every block occupied
        assert_eq!(p.block_density, 1.0);
        assert_eq!(p.dense_bytes, 32 * 32 * 4);
    }

    #[test]
    fn grid_profile_is_sparse_symmetric_and_banded() {
        let g = generators::grid(8, 8, WeightKind::small_ints(), 5);
        let p = GraphProfile::compute(&g, 16);
        assert!(p.density < 0.06, "grid density {}", p.density);
        assert!(p.symmetric);
        assert!(p.connected());
        assert!(p.block_density < 1.0);
        assert!(p.est_fill_work_ratio() <= 1.0);
    }

    #[test]
    fn negative_and_unit_weight_detection() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).add_edge(1, 2, -2.5).add_edge(2, 3, 1.0);
        let p = GraphProfile::compute(&b.build(), 2);
        assert_eq!(p.negative_edges, 1);
        assert!(p.has_negative());
        assert!(!p.unit_weights);
        assert!(!p.integral_weights); // -2.5 has a fractional part
        assert_eq!(p.min_weight, -2.5);

        let g = generators::unit_ring(6);
        let p = GraphProfile::compute(&g, 2);
        assert!(p.unit_weights);
        assert!(!p.symmetric); // the ring is directed
    }

    #[test]
    fn multi_component_count_and_fill_discount() {
        let g = generators::multi_component(24, 3, WeightKind::small_ints(), 7);
        let p = GraphProfile::compute(&g, 4);
        assert_eq!(p.weak_components, 3);
        assert!(!p.connected());
        let connected = generators::uniform_dense(24, WeightKind::small_ints(), 7);
        let pc = GraphProfile::compute(&connected, 4);
        assert!(p.est_fill_work_ratio() < pc.est_fill_work_ratio());
    }

    #[test]
    fn empty_and_edgeless_graphs_do_not_divide_by_zero() {
        let p = GraphProfile::compute(&GraphBuilder::new(0).build(), 8);
        assert_eq!(p.n, 0);
        assert_eq!(p.nnz_blocks, 0);
        assert_eq!(p.est_fill_work_ratio(), 0.0);
        let p = GraphProfile::compute(&GraphBuilder::new(5).build(), 8);
        assert_eq!(p.m, 0);
        assert_eq!(p.mean_weight, 0.0);
        assert!(!p.unit_weights);
        assert!(p.symmetric); // vacuously
        assert_eq!(p.weak_components, 5);
        assert!(!p.render().is_empty());
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(4 * 1024 * 1024), "4.0 MiB");
    }
}
