//! Property tests for the discrete-event engine: structural invariants
//! that must hold for *any* DAG.

use proptest::prelude::*;

use cluster_sim::{run, TaskGraph};

/// A random DAG spec: per task (resource index, duration, priority, dep mask
/// over earlier tasks).
#[allow(clippy::type_complexity)]
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, f64, u32, Vec<bool>)>)> {
    (1usize..5, 1usize..40).prop_flat_map(|(nres, ntasks)| {
        let tasks = proptest::collection::vec(
            (
                0..nres,
                (0u32..1000).prop_map(|d| d as f64 * 0.01),
                0u32..4,
                proptest::collection::vec(proptest::bool::weighted(0.15), ntasks),
            ),
            ntasks,
        );
        tasks.prop_map(move |t| (nres, t))
    })
}

fn build(nres: usize, spec: &[(usize, f64, u32, Vec<bool>)]) -> (TaskGraph, Vec<cluster_sim::TaskId>) {
    let mut g = TaskGraph::new();
    let resources: Vec<_> = (0..nres).map(|_| g.resource()).collect();
    let mut ids = Vec::new();
    for (i, (r, dur, pri, deps)) in spec.iter().enumerate() {
        let dep_ids: Vec<_> = deps
            .iter()
            .take(i)
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(j, _)| ids[j])
            .collect();
        ids.push(g.task(resources[*r], *dur, *pri, &dep_ids));
    }
    (g, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_respects_dependencies_and_durations((nres, spec) in dag_strategy()) {
        let (g, ids) = build(nres, &spec);
        let s = run(&g);
        for (i, (_, dur, _, deps)) in spec.iter().enumerate() {
            let start = s.start_of(ids[i]);
            let finish = s.finish_of(ids[i]);
            prop_assert!((finish - start - dur).abs() < 1e-9, "duration preserved");
            prop_assert!(start >= 0.0);
            for (j, &on) in deps.iter().take(i).enumerate() {
                if on {
                    prop_assert!(start >= s.finish_of(ids[j]) - 1e-9, "dep ordering");
                }
            }
        }
    }

    #[test]
    fn makespan_bounds((nres, spec) in dag_strategy()) {
        let (g, ids) = build(nres, &spec);
        let s = run(&g);
        // lower bound 1: busiest resource's total work
        let max_busy = s.busy.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(s.makespan >= max_busy - 1e-9);
        // lower bound 2: any single task's duration
        for (i, (_, dur, _, _)) in spec.iter().enumerate() {
            prop_assert!(s.makespan >= *dur - 1e-9);
            prop_assert!(s.finish_of(ids[i]) <= s.makespan + 1e-9);
        }
        // upper bound: fully serialized execution
        let total: f64 = spec.iter().map(|t| t.1).sum();
        prop_assert!(s.makespan <= total + 1e-9);
    }

    #[test]
    fn tasks_on_one_resource_never_overlap((nres, spec) in dag_strategy()) {
        let (g, ids) = build(nres, &spec);
        let s = run(&g);
        for r in 0..nres {
            let mut intervals: Vec<(f64, f64)> = spec
                .iter()
                .enumerate()
                .filter(|(_, t)| t.0 == r)
                .map(|(i, _)| (s.start_of(ids[i]), s.finish_of(ids[i])))
                .collect();
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in intervals.windows(2) {
                prop_assert!(w[1].0 >= w[0].1 - 1e-9, "overlap on resource {r}");
            }
        }
    }

    #[test]
    fn engine_is_deterministic((nres, spec) in dag_strategy()) {
        let (g, _) = build(nres, &spec);
        let s1 = run(&g);
        let s2 = run(&g);
        prop_assert_eq!(s1.makespan, s2.makespan);
        prop_assert_eq!(s1.start, s2.start);
        prop_assert_eq!(s1.finish, s2.finish);
    }
}
