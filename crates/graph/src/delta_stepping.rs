//! Δ-stepping SSSP (Meyer & Sanders) — the Dijkstra/Bellman-Ford hybrid
//! cited in the paper's related work (§6).
//!
//! Vertices are kept in buckets of width Δ; light edges (`w < Δ`) are relaxed
//! inside a bucket's fixpoint, heavy edges once when the bucket settles.
//! Sequential implementation — its purpose here is algorithmic fidelity and
//! to serve as yet another independent oracle, not parallel speed.

use crate::graph::{Graph, INF};

/// Distances from `src` using Δ-stepping with bucket width `delta`.
///
/// # Panics
/// Panics on negative weights or non-positive `delta`.
pub fn delta_stepping(g: &Graph, src: usize, delta: f32) -> Vec<f32> {
    let n = g.n();
    assert!(src < n, "source out of range");
    assert!(delta > 0.0, "delta must be positive");

    let mut dist = vec![INF; n];
    let mut buckets: Vec<Vec<u32>> = Vec::new();
    let bucket_of = |d: f32, delta: f32| (d / delta) as usize;

    let place = |buckets: &mut Vec<Vec<u32>>, v: usize, d: f32| {
        let idx = bucket_of(d, delta);
        if buckets.len() <= idx {
            buckets.resize_with(idx + 1, Vec::new);
        }
        buckets[idx].push(v as u32);
    };

    dist[src] = 0.0;
    place(&mut buckets, src, 0.0);

    let mut i = 0;
    while i < buckets.len() {
        // settle bucket i to a fixpoint over light edges
        let mut settled_this_round: Vec<u32> = Vec::new();
        loop {
            let frontier = std::mem::take(&mut buckets[i]);
            if frontier.is_empty() {
                break;
            }
            for &u in &frontier {
                let u = u as usize;
                // stale entry?
                if bucket_of(dist[u], delta) != i {
                    continue;
                }
                settled_this_round.push(u as u32);
                let (ts, ws) = g.out_edges(u);
                for (&v, &w) in ts.iter().zip(ws) {
                    assert!(w >= 0.0, "delta-stepping requires non-negative weights");
                    if w < delta {
                        let nd = dist[u] + w;
                        if nd < dist[v as usize] {
                            dist[v as usize] = nd;
                            place(&mut buckets, v as usize, nd);
                        }
                    }
                }
            }
        }
        // relax heavy edges out of everything settled in bucket i
        for &u in &settled_this_round {
            let u = u as usize;
            let du = dist[u];
            let (ts, ws) = g.out_edges(u);
            for (&v, &w) in ts.iter().zip(ws) {
                if w >= delta {
                    let nd = du + w;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        place(&mut buckets, v as usize, nd);
                    }
                }
            }
        }
        i += 1;
    }
    dist
}

/// All-pairs by one Δ-stepping sweep per source, fanned out over at most
/// `threads` workers (`0` → all cores, the `budget_threads` convention).
/// Requires non-negative weights and positive `delta`.
pub fn apsp_by_delta_stepping(g: &Graph, delta: f32, threads: usize) -> srgemm::Matrix<f32> {
    let n = g.n();
    let rows = crate::par_rows(n, threads, |s| delta_stepping(g, s, delta));
    let mut out = srgemm::Matrix::filled(n, n, INF);
    for (s, row) in rows.into_iter().enumerate() {
        out.row_mut(s).copy_from_slice(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::generators::{self, WeightKind};

    #[test]
    fn matches_dijkstra_across_deltas() {
        let g = generators::erdos_renyi(40, 0.15, WeightKind::small_ints(), 21);
        let want = dijkstra(&g, 0);
        for delta in [1.0, 5.0, 50.0, 1000.0] {
            assert_eq!(delta_stepping(&g, 0, delta), want, "delta={delta}");
        }
    }

    #[test]
    fn matches_dijkstra_on_dense_graph() {
        let g = generators::uniform_dense(25, WeightKind::small_ints(), 8);
        for s in [0, 12, 24] {
            assert_eq!(delta_stepping(&g, s, 10.0), dijkstra(&g, s));
        }
    }

    #[test]
    fn handles_unreachable_vertices() {
        let g = generators::multi_component(10, 2, WeightKind::small_ints(), 4);
        let d = delta_stepping(&g, 0, 7.0);
        assert_eq!(d[9], INF);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_delta() {
        let g = generators::unit_ring(3);
        delta_stepping(&g, 0, 0.0);
    }

    #[test]
    fn apsp_sweep_matches_per_source_calls_for_any_thread_count() {
        let g = generators::erdos_renyi(22, 0.25, WeightKind::small_ints(), 13);
        let mut want = srgemm::Matrix::filled(22, 22, INF);
        for s in 0..22 {
            want.row_mut(s).copy_from_slice(&delta_stepping(&g, s, 9.0));
        }
        for threads in [0, 1, 3] {
            assert!(apsp_by_delta_stepping(&g, 9.0, threads).eq_exact(&want), "threads={threads}");
        }
    }
}
