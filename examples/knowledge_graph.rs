//! Knowledge-graph relationship mining — the paper's headline application
//! ("in knowledge graph analytics, the relationship mining problems become
//! computing APSP in a large and dense graph", §1, citing Kannan et al.'s
//! 136-Pflop/s knowledge-graph run).
//!
//! ```text
//! cargo run --release --example knowledge_graph -- [entities]
//! ```
//!
//! Entities are connected by weighted "relatedness" scores in (0, 1]. The
//! strongest relation chain between two entities maximizes the *product* of
//! scores, which under `w = -ln(score)` becomes a shortest path in the
//! min-plus semiring — exactly the transform used in practice. We run
//! blocked Floyd-Warshall and mine the top indirect relationships.

use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
use apsp_graph::graph::GraphBuilder;
use rand::prelude::*;
use rand::rngs::StdRng;
use srgemm::MinPlusF32;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    println!("== knowledge graph: {n} entities, relationship mining by APSP ==\n");

    // synthetic KG: a few dense "communities" plus sparse cross links
    let mut rng = StdRng::seed_from_u64(2021);
    let communities = 8;
    let per = n / communities;
    let mut b = GraphBuilder::new(n);
    let mut direct_edges = 0u64;
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let same = u / per == v / per;
            let p = if same { 0.30 } else { 0.01 };
            if rng.random_bool(p) {
                // relatedness score in (0, 1]; stronger inside a community
                let score: f32 = if same {
                    rng.random_range(0.5..1.0)
                } else {
                    rng.random_range(0.05..0.4)
                };
                b.add_edge(u, v, -score.ln());
                direct_edges += 1;
            }
        }
    }
    let graph = b.build();
    println!("direct relations: {direct_edges}");

    let mut d = graph.to_dense();
    fw_blocked::<MinPlusF32>(&mut d, 64, DiagMethod::FwClosure, true);

    // mine: strongest *indirect* relations (no direct edge, high end-to-end
    // relatedness = exp(-dist))
    let mut mined: Vec<(f32, usize, usize)> = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && graph.weight(u, v).is_infinite() && d[(u, v)].is_finite() {
                mined.push((d[(u, v)], u, v));
            }
        }
    }
    mined.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
    println!("indirect entity pairs discovered: {}", mined.len());
    println!("\ntop 10 mined relationships (no direct edge):");
    println!("{:>6} {:>6} {:>12} {:>12}", "from", "to", "distance", "relatedness");
    for &(dist, u, v) in mined.iter().take(10) {
        println!("{u:>6} {v:>6} {dist:>12.4} {:>12.4}", (-dist).exp());
    }

    // community-level relatedness matrix: mean exp(-dist) between blocks
    println!("\ncommunity relatedness (mean over pairs):");
    for ci in 0..communities {
        let row: Vec<String> = (0..communities)
            .map(|cj| {
                let mut acc = 0.0f64;
                let mut cnt = 0u64;
                for u in ci * per..(ci + 1) * per {
                    for v in cj * per..(cj + 1) * per {
                        if u != v && d[(u, v)].is_finite() {
                            acc += (-d[(u, v)]).exp() as f64;
                            cnt += 1;
                        }
                    }
                }
                format!("{:5.2}", acc / cnt.max(1) as f64)
            })
            .collect();
        println!("  c{ci}: {}", row.join(" "));
    }
}
