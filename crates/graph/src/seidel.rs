//! Seidel's algorithm for unweighted undirected APSP — related work §6
//! (\[35\]: "Seidel showed a way to use fast matrix multiplication algorithms
//! … for the solution of the APSP problem by embedding the semiring into a
//! ring").
//!
//! For a *connected, undirected, unweighted* graph: square the graph
//! (Boolean matrix product) until complete, recurse, then recover the exact
//! distances from the halved instance with one *integer* matrix product —
//! the textbook demonstration that APSP reduces to ring matrix
//! multiplication. Built entirely from this workspace's generic GEMM
//! (`BoolOr` for the squaring, `RealArith` for the counting product).

use srgemm::gemm::gemm_blocked;
use srgemm::semiring::{BoolOr, RealArith};
use srgemm::Matrix;

use crate::graph::Graph;

/// Errors from [`seidel_apsp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeidelError {
    /// The adjacency structure is not symmetric.
    NotUndirected,
    /// The graph is not connected (Seidel requires a single component).
    Disconnected,
}

/// Hop-count APSP of a connected undirected graph. Edge weights are
/// ignored (treated as 1).
pub fn seidel_apsp(g: &Graph) -> Result<Matrix<u32>, SeidelError> {
    let n = g.n();
    let mut adj = Matrix::filled(n, n, false);
    for (u, v, _) in g.edges() {
        adj[(u, v)] = true;
    }
    for i in 0..n {
        for j in 0..n {
            if adj[(i, j)] != adj[(j, i)] {
                return Err(SeidelError::NotUndirected);
            }
        }
        adj[(i, i)] = false;
    }
    if n == 0 {
        return Ok(Matrix::filled(0, 0, 0));
    }
    // connectivity check via the Boolean closure of (I ∪ A)
    {
        let mut reach = adj.clone();
        srgemm::closure::fw_closure::<BoolOr>(&mut reach.view_mut());
        for j in 0..n {
            if !reach[(0, j)] {
                return Err(SeidelError::Disconnected);
            }
        }
    }
    Ok(seidel_recurse(&adj))
}

fn seidel_recurse(a: &Matrix<bool>) -> Matrix<u32> {
    let n = a.rows();
    // base: complete graph ⇒ distance 1 everywhere off-diagonal
    let complete = (0..n).all(|i| (0..n).all(|j| i == j || a[(i, j)]));
    if complete {
        return Matrix::from_fn(n, n, |i, j| u32::from(i != j));
    }

    // B = A ∪ A² (boolean squaring: the graph of ≤2-hop reachability)
    let mut b = a.clone();
    gemm_blocked::<BoolOr>(&mut b.view_mut(), &a.view(), &a.view());
    for i in 0..n {
        b[(i, i)] = false;
    }

    let d_half = seidel_recurse(&b);

    // S = D' × A over the integers: s[i][j] = Σ_k d'[i][k]·a[k][j]
    let df = Matrix::from_fn(n, n, |i, j| d_half[(i, j)] as f64);
    let af = Matrix::from_fn(n, n, |i, j| f64::from(a[(i, j)]));
    let mut s = Matrix::filled(n, n, 0.0f64);
    gemm_blocked::<RealArith<f64>>(&mut s.view_mut(), &df.view(), &af.view());

    // degree of each vertex
    let deg: Vec<f64> = (0..n)
        .map(|j| (0..n).map(|i| f64::from(a[(i, j)])).sum())
        .collect();

    // d[i][j] = 2·d'[i][j] − [ s[i][j] < d'[i][j] · deg(j) ]
    Matrix::from_fn(n, n, |i, j| {
        let twice = 2 * d_half[(i, j)];
        if s[(i, j)] < d_half[(i, j)] as f64 * deg[j] {
            twice - 1
        } else {
            twice
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::apsp_by_bfs;
    use crate::generators::{self, WeightKind};
    use crate::graph::GraphBuilder;

    fn undirected_connected(n: usize, extra: usize, seed: u64) -> Graph {
        // a random tree plus `extra` random chords → connected, undirected
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            let u = (next() % v as u64) as usize;
            b.add_undirected(u, v, 1.0);
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as usize;
            let v = (next() % n as u64) as usize;
            if u != v {
                b.add_undirected(u, v, 1.0);
            }
        }
        b.build()
    }

    #[test]
    fn matches_bfs_on_random_connected_graphs() {
        for (n, extra, seed) in [(8usize, 3usize, 1u64), (17, 10, 2), (33, 20, 3), (24, 0, 4)] {
            let g = undirected_connected(n, extra, seed);
            let want = apsp_by_bfs(&g);
            let got = seidel_apsp(&g).expect("connected undirected");
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(got[(i, j)] as f32, want[(i, j)], "({i},{j}) n={n}");
                }
            }
        }
    }

    #[test]
    fn complete_graph_base_case() {
        let g = generators::uniform_dense(6, WeightKind::Integer { lo: 1, hi: 1 }, 1);
        // uniform_dense is a complete digraph with symmetric structure
        let d = seidel_apsp(&g).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(d[(i, j)], u32::from(i != j));
            }
        }
    }

    #[test]
    fn rejects_directed_graphs() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0); // one-way
        assert_eq!(seidel_apsp(&b.build()), Err(SeidelError::NotUndirected));
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let mut b = GraphBuilder::new(4);
        b.add_undirected(0, 1, 1.0);
        b.add_undirected(2, 3, 1.0);
        assert_eq!(seidel_apsp(&b.build()), Err(SeidelError::Disconnected));
    }

    #[test]
    fn path_graph_distances_are_exact() {
        let mut b = GraphBuilder::new(9);
        for i in 0..8 {
            b.add_undirected(i, i + 1, 1.0);
        }
        let d = seidel_apsp(&b.build()).unwrap();
        assert_eq!(d[(0, 8)], 8);
        assert_eq!(d[(3, 5)], 2);
        assert_eq!(d[(4, 4)], 0);
    }
}
