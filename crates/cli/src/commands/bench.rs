//! `apsp bench` — run the wall-clock perf suite or diff two suite files.
//!
//! Thin passthrough to `apsp_bench::perf`: the same engine behind the
//! standalone `perf_suite` binary, reachable from the one CLI users already
//! have on their path.

use apsp_bench::json::Json;
use apsp_bench::perf::{self, Mode, Report};

const HELP: &str = "apsp bench — wall-clock perf suite and regression comparator

USAGE:
    apsp bench run [--quick] [--reps N] [--out FILE]
    apsp bench compare <OLD.json> <NEW.json> [--threshold PCT] [--report-only]
    apsp bench serve-load [--n N] [--readers R] [--batch B] [--batches K]
                          [--update-batch U] [--bad-input] [--seed S]
                          [--connect ADDR] [--out FILE]

RUN OPTIONS:
    --quick          CI-smoke sizes (seconds); default is the full suite
    --reps N         repetitions per entry, wall_s is the minimum [default: 3]
    --out FILE       output path [default: BENCH_PR10.json]; '-' for stdout

COMPARE OPTIONS:
    --threshold PCT  regression threshold in percent [default: 15]
    --report-only    print the diff but never fail the exit code

SERVE-LOAD OPTIONS:
    --n N            vertices for the in-process engine [default: 256]
    --readers R      concurrent reader threads/connections [default: 4]
    --batch B        queries per dist batch [default: 32]
    --batches K      batches per reader [default: 200]
    --update-batch U edge decreases per writer batch [default: 4]
    --bad-input      mix malformed updates in; require typed rejections
    --seed S         traffic RNG seed [default: 42]
    --connect ADDR   drive a running 'apsp serve --listen ADDR' over TCP
                     instead of an in-process engine
    --out FILE       write serve/* entries as apsp-bench-perf/1 JSON

The suite measures the GEMM kernels (naive/blocked/packed/parallel x
f32/f64), the headline packed-vs-blocked GEMM (baseline_wall_s vs wall_s),
the quantized u16/i32 packed lanes against packed f32, blocked
Floyd-Warshall, the quantized end-to-end solve against f32 blocked FW,
distributed_apsp at all 8 corners of the (schedule x bcast x exec) cube,
the headline distributed run with its serial-OuterUpdate baseline
(baseline_wall_s vs wall_s), the solver planner picks, and the serve-layer
load generator (p50/p99 batched-query latency and epoch lag under update
pressure). Entries record their element dtype; the comparator refuses
cross-dtype joins.";

/// Entry point for `apsp bench`.
pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    match args.first().map(String::as_str) {
        Some("run") => run_suite(&args[1..]),
        Some("compare") => run_compare(&args[1..]),
        Some("serve-load") => run_serve_load(&args[1..]),
        _ => Err("usage: apsp bench <run|compare|serve-load> (see 'apsp bench --help')".to_string()),
    }
}

fn run_suite(args: &[String]) -> Result<(), String> {
    let mut mode = Mode::Full;
    let mut reps = 3usize;
    let mut out = "BENCH_PR10.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => mode = Mode::Quick,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--reps needs a positive integer")?;
            }
            "--out" => out = it.next().ok_or("--out needs a path")?.clone(),
            other => return Err(format!("unknown option '{other}' for bench run")),
        }
    }
    let report = perf::run_suite(mode, reps);
    let text = report.to_json().pretty();
    if out == "-" {
        print!("{text}");
    } else {
        std::fs::write(&out, &text).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("[perf] wrote {} entries to {out}", report.entries.len());
    }
    Ok(())
}

fn run_serve_load(argv: &[String]) -> Result<(), String> {
    use apsp_bench::serve_load::{self, LoadCfg};
    let args = crate::args::Args::parse(argv)?;
    let cfg = LoadCfg {
        n: args.opt("n", 256)?,
        readers: args.opt("readers", 4)?,
        batch: args.opt("batch", 32)?,
        batches_per_reader: args.opt("batches", 200)?,
        update_batch: args.opt("update-batch", 4)?,
        bad_input: args.has_flag("bad-input"),
        seed: args.opt("seed", 42)?,
    };
    if cfg.readers == 0 || cfg.batch == 0 || cfg.batches_per_reader == 0 {
        return Err("--readers, --batch and --batches must be positive".into());
    }
    let (report, suffix) = match args.opt_str("connect") {
        Some(addr) => (serve_load::run_tcp(addr, &cfg)?, "/tcp"),
        None => (serve_load::run_inproc(&cfg), ""),
    };
    eprint!("{}", report.render());
    if let Some(out) = args.opt_str("out") {
        let text = report.to_json(suffix).pretty();
        if out == "-" {
            print!("{text}");
        } else {
            std::fs::write(out, &text).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("serve-load: wrote {out}");
        }
    }
    Ok(())
}

fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Report::from_json(&doc).map_err(|e| format!("{path}: {e}"))
}

fn run_compare(args: &[String]) -> Result<(), String> {
    let mut threshold = perf::DEFAULT_THRESHOLD;
    let mut report_only = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let pct: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a number (percent)")?;
                threshold = pct / 100.0;
            }
            "--report-only" => report_only = true,
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => return Err(format!("unknown option '{other}' for bench compare")),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return Err("bench compare needs exactly two suite files".to_string());
    };
    let cmp = perf::compare(&load(old_path)?, &load(new_path)?, threshold)?;
    print!("{}", cmp.render());
    if cmp.has_regressions() && !report_only {
        return Err(format!("regressions beyond {:.0}% detected", threshold * 100.0));
    }
    if cmp.has_regressions() {
        eprintln!(
            "bench: regressions beyond {:.0}% detected (report-only: not failing)",
            threshold * 100.0
        );
    }
    Ok(())
}
