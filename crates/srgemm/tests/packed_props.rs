//! Property-based equivalence checks for the packed, register-tiled kernel.
//!
//! The claim under test is the one DESIGN.md §11 argues: for **any** operand
//! shape — ragged micro-tile tails included — the packed kernel folds the
//! reduction in the same ascending-`k` order as `gemm_naive`, so the two are
//! *bit-identical* (not just numerically close) on every semiring, and the
//! row-slab parallel kernel with its shared packed `B` is bit-identical to
//! the serial one.

use proptest::prelude::*;
use srgemm::gemm::{gemm_naive, gemm_packed, gemm_packed_with_b, KC};
use srgemm::gemm::{gemm_parallel_threads, PackedB};
use srgemm::matrix::Matrix;
use srgemm::semiring::{MinPlus, Semiring};

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // mix finite weights with ~1/8 infinities, like a sparse graph
        if state.is_multiple_of(8) {
            f32::INFINITY
        } else {
            ((state >> 33) % 4096) as f32 / 16.0
        }
    })
}

fn lcg_matrix_f64(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % 4096) as f64 / 16.0
    })
}

/// Shapes that straddle every interesting boundary: the micro-tile edges
/// (MR ∈ {2,4,8}, NR ∈ {16,32} depending on ISA), the `k = 0` empty
/// reduction, and — with low weight, they are slow — `k` around the KC tile
/// boundary so multi-tile reductions and ragged KC tails are exercised.
fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    prop_oneof![
        8 => (1usize..40, 1usize..70, 0usize..48),
        1 => (1usize..8, 1usize..20, (KC - 2)..(KC + 3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_bit_identical_to_naive_minplus_f32((m, n, k) in shapes(), seed in any::<u64>()) {
        let a = lcg_matrix(m, k, seed);
        let b = lcg_matrix(k, n, seed ^ 0x9e3779b97f4a7c15);
        let mut c1 = lcg_matrix(m, n, seed ^ 0xdeadbeef);
        let mut c2 = c1.clone();
        gemm_naive::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_packed::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
        prop_assert!(c1.eq_exact(&c2), "shape ({m},{n},{k})");
    }

    #[test]
    fn packed_bit_identical_to_naive_minplus_f64((m, n, k) in shapes(), seed in any::<u64>()) {
        let a = lcg_matrix_f64(m, k, seed);
        let b = lcg_matrix_f64(k, n, seed ^ 0x9e3779b97f4a7c15);
        let mut c1 = Matrix::filled(m, n, MinPlus::<f64>::zero());
        let mut c2 = c1.clone();
        gemm_naive::<MinPlus<f64>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_packed::<MinPlus<f64>>(&mut c2.view_mut(), &a.view(), &b.view());
        prop_assert!(c1.eq_exact(&c2), "shape ({m},{n},{k})");
    }

    #[test]
    fn shared_packed_b_matches_fresh_pack(
        (m, n, k) in (1usize..30, 1usize..40, 1usize..30),
        seed in any::<u64>(),
    ) {
        // one packed B serving several A operands must behave exactly like
        // packing per call — the reuse the FW drivers rely on per iteration
        let b = lcg_matrix(k, n, seed);
        let pb = PackedB::pack::<MinPlus<f32>>(&b.view());
        for round in 0..3u64 {
            let a = lcg_matrix(m, k, seed.wrapping_add(round));
            let mut c1 = lcg_matrix(m, n, seed ^ round);
            let mut c2 = c1.clone();
            gemm_packed::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
            gemm_packed_with_b::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &pb);
            prop_assert!(c1.eq_exact(&c2), "round {round}, shape ({m},{n},{k})");
        }
    }

    #[test]
    fn parallel_with_packing_bit_equal_to_serial(
        // m large enough that several slabs actually spawn (floor is 16 rows)
        (m, n, k) in (1usize..80, 1usize..40, 0usize..32),
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let a = lcg_matrix(m, k, seed);
        let b = lcg_matrix(k, n, seed ^ 0x5bf0a8b1);
        let mut serial = lcg_matrix(m, n, seed ^ 0x7f4a7c15);
        let mut parallel = serial.clone();
        gemm_packed::<MinPlus<f32>>(&mut serial.view_mut(), &a.view(), &b.view());
        gemm_parallel_threads::<MinPlus<f32>>(&mut parallel.view_mut(), &a.view(), &b.view(), threads);
        prop_assert!(serial.eq_exact(&parallel), "shape ({m},{n},{k}) threads {threads}");
    }
}
