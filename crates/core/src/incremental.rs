//! Incremental Floyd-Warshall — the paper's §7 future-work item
//! ("we plan to extend this work to support … incremental Floyd-Warshall,
//! which \[is\] critical in applications").
//!
//! Given a solved distance matrix, an edge insertion or weight *decrease*
//! `(u, v, w)` is absorbed in `O(n²)`: every pair `(i, j)` can only improve
//! by routing through the new edge, so
//! `d[i][j] ← d[i][j] ⊕ (d[i][u] ⊗ w ⊗ d[v][j])`.
//! Weight increases and deletions can invalidate routes and require
//! recomputation in general; [`decrease_edge`] detects and rejects them.
//!
//! A batched form applies `m` updates in `O(m·n²)`, which beats the `O(n³)`
//! re-solve whenever `m ≪ n` — exactly the dynamic-graph use case
//! (traffic updates on a road network, new facts in a knowledge graph).
//!
//! Every rejection is a typed [`IncrementalError`], never a panic — the
//! [`crate::serve`] writer feeds untrusted client batches straight through
//! [`decrease_edges`], so a malformed update must come back as a value the
//! server can report, not kill the process. Updates that would *corrupt*
//! the closure (negative self-loops, negative cycles through the new edge,
//! NaN weights) are rejected before any element is written.
//!
//! Witness maintenance: the update rule is generic over the semiring, so
//! running it over [`crate::paths_dist::MinPlusPred`] (via
//! [`decrease_edge_pred`] / [`decrease_edges_pred`]) updates the
//! predecessor witnesses *together with* the distances — after a batch of
//! decreases, `reconstruct_path` still returns paths that realize the
//! reported distances. Updating only the `f32` distance matrix leaves any
//! separately-held predecessor matrix stale; the witness-carrying form is
//! what the serve layer uses.

use srgemm::matrix::Matrix;
use srgemm::semiring::Semiring;

use crate::paths_dist::{edge_elem, DistPred, MinPlusPred};

/// Errors from the incremental updater.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncrementalError {
    /// The new weight does not improve on the current `d[u][v]`; an
    /// increase cannot be absorbed incrementally (it may invalidate paths).
    NotADecrease,
    /// Endpoint out of range.
    BadVertex,
    /// A self-loop decrease (`u == v` with an improving weight) is a
    /// negative cycle; absorbing it would write a negative diagonal and
    /// corrupt the closure.
    NegativeSelfLoop,
    /// Accepting the edge would create a negative cycle through it
    /// (`w ⊗ d[v][u]` improves on `d[u][u]`), which incremental FW cannot
    /// absorb.
    NegativeCycle,
    /// The weight is NaN (compares unequal to itself), which would poison
    /// every ⊕/⊗ it touches.
    NanWeight,
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IncrementalError::NotADecrease => "notadecrease",
            IncrementalError::BadVertex => "badvertex",
            IncrementalError::NegativeSelfLoop => "negselfloop",
            IncrementalError::NegativeCycle => "negcycle",
            IncrementalError::NanWeight => "nanweight",
        };
        f.write_str(s)
    }
}

/// NaN detection generic over any `PartialEq` element (NaN is the only
/// value that compares unequal to itself; for composite elements such as
/// [`DistPred`] a NaN component makes the derived `PartialEq` do the same).
#[allow(clippy::eq_op)]
fn is_nan_like<T: PartialEq + Copy>(x: T) -> bool {
    x != x
}

/// Absorb an improved (or new) edge `u → v` of weight `w` into a solved
/// all-pairs matrix, in `O(n²)`. The matrix must already be a closure
/// (output of any `fw_*` solver). Returns the number of pairs improved
/// (always ≥ 1 on `Ok` — at least `(u, v)` itself improves).
///
/// Works over any idempotent semiring where "improve" means the new value
/// differs from the ⊕-combination (min-plus: strictly smaller). Rejections
/// are typed and leave the matrix untouched:
///
/// * [`IncrementalError::NanWeight`] — `w` is NaN(-like);
/// * [`IncrementalError::BadVertex`] — an endpoint is out of range;
/// * [`IncrementalError::NegativeSelfLoop`] — `u == v` and `w` improves on
///   the diagonal (a negative cycle);
/// * [`IncrementalError::NegativeCycle`] — `w ⊗ d[v][u]` improves on
///   `d[u][u]` (the new edge closes a negative cycle);
/// * [`IncrementalError::NotADecrease`] — `w` does not improve `d[u][v]`.
pub fn decrease_edge<S: Semiring>(
    d: &mut Matrix<S::Elem>,
    u: usize,
    v: usize,
    w: S::Elem,
) -> Result<usize, IncrementalError> {
    let n = d.rows();
    if is_nan_like(w) {
        return Err(IncrementalError::NanWeight);
    }
    if u >= n || v >= n {
        return Err(IncrementalError::BadVertex);
    }
    // reject non-improving updates: d[u][v] ⊕ w must differ from d[u][v]
    let combined = S::add(d[(u, v)], w);
    if u == v {
        // an improving self-loop is a negative cycle (min-plus: w < 0);
        // a non-improving one is merely redundant
        return Err(if combined != d[(u, v)] {
            IncrementalError::NegativeSelfLoop
        } else {
            IncrementalError::NotADecrease
        });
    }
    if combined == d[(u, v)] {
        return Err(IncrementalError::NotADecrease);
    }
    // the new edge must not close a negative cycle: routing u → v (new
    // edge) → u (existing closure) must not improve the diagonal
    let diag = d[(u, u)];
    if S::add(diag, S::mul(w, d[(v, u)])) != diag {
        return Err(IncrementalError::NegativeCycle);
    }

    // snapshot the u-th column and v-th row: the update reads d[i][u] and
    // d[v][j], both of which it may also write
    let col_u: Vec<S::Elem> = (0..n).map(|i| d[(i, u)]).collect();
    let row_v: Vec<S::Elem> = (0..n).map(|j| d[(v, j)]).collect();

    let mut improved = 0usize;
    for (i, &cu) in col_u.iter().enumerate() {
        let through = S::mul(cu, w);
        let drow = d.row_mut(i);
        for (dj, &rv) in drow.iter_mut().zip(&row_v) {
            let cand = S::mul(through, rv);
            let new = S::add(*dj, cand);
            if new != *dj {
                *dj = new;
                improved += 1;
            }
        }
    }
    Ok(improved)
}

/// Outcome of a batched update: one result per input update, in order,
/// plus aggregate counts. Rejected updates are skipped — they never abort
/// the batch and never panic, so a server can apply a client batch and
/// report exactly which entries were refused and why.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Per-update outcome: `Ok(pairs improved)` or the typed rejection.
    pub outcomes: Vec<Result<usize, IncrementalError>>,
    /// Number of accepted updates.
    pub applied: usize,
    /// Total pairs improved across accepted updates.
    pub improved: usize,
}

impl BatchReport {
    /// Number of rejected updates.
    pub fn rejected(&self) -> usize {
        self.outcomes.len() - self.applied
    }

    /// The rejections, with their batch positions.
    pub fn rejections(&self) -> impl Iterator<Item = (usize, IncrementalError)> + '_ {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.err().map(|e| (i, e)))
    }
}

/// Apply a batch of candidate edge updates; each is accepted or rejected
/// independently (see [`decrease_edge`] for the rejection taxonomy).
/// Never panics on malformed input — bad vertices, NaN weights, and
/// negative self-loops come back as typed per-update outcomes.
pub fn decrease_edges<S: Semiring>(
    d: &mut Matrix<S::Elem>,
    updates: &[(usize, usize, S::Elem)],
) -> BatchReport {
    let mut report = BatchReport::default();
    for &(u, v, w) in updates {
        let outcome = decrease_edge::<S>(d, u, v, w);
        if let Ok(k) = outcome {
            report.applied += 1;
            report.improved += k;
        }
        report.outcomes.push(outcome);
    }
    report
}

/// Witness-carrying single update: absorb edge `u → v` of weight `w` into
/// an annotated closure (distances *and* predecessor witnesses), so path
/// reconstruction stays correct after the update. The new edge's witness is
/// `u` (the vertex preceding `v` when the path uses the edge).
pub fn decrease_edge_pred(
    d: &mut Matrix<DistPred>,
    u: usize,
    v: usize,
    w: f32,
) -> Result<usize, IncrementalError> {
    decrease_edge::<MinPlusPred>(d, u, v, edge_elem(u, w))
}

/// Witness-carrying batched update over raw `(u, v, w)` triples; the
/// non-panicking batch form the [`crate::serve`] writer uses.
pub fn decrease_edges_pred(
    d: &mut Matrix<DistPred>,
    updates: &[(usize, usize, f32)],
) -> BatchReport {
    let mut report = BatchReport::default();
    for &(u, v, w) in updates {
        let outcome = decrease_edge_pred(d, u, v, w);
        if let Ok(k) = outcome {
            report.applied += 1;
            report.improved += k;
        }
        report.outcomes.push(outcome);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fw_seq::{fw_seq, fw_seq_with_paths, reconstruct_path};
    use crate::paths_dist::{combine, split};
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::graph::Graph;
    use apsp_graph::paths::validate_path;
    use srgemm::MinPlusF32;

    fn solved(n: usize, p: f64, seed: u64) -> (Graph, Matrix<f32>) {
        let g = generators::erdos_renyi(n, p, WeightKind::small_ints(), seed);
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        (g, d)
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let (g, mut d) = solved(30, 0.15, 5);
        // add a shortcut edge
        let (u, v, w) = (3usize, 27usize, 1.0f32);
        decrease_edge::<MinPlusF32>(&mut d, u, v, w).expect("improves");

        // full recompute with the edge added
        let mut b = apsp_graph::graph::GraphBuilder::new(30);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        b.add_edge(u, v, w);
        let mut want = b.build().to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        assert!(want.eq_exact(&d));
    }

    #[test]
    fn batch_updates_match_recompute() {
        let (g, mut d) = solved(25, 0.2, 9);
        let updates = [(0usize, 20usize, 2.0f32), (5, 10, 1.0), (18, 2, 3.0)];
        decrease_edges::<MinPlusF32>(&mut d, &updates);

        let mut b = apsp_graph::graph::GraphBuilder::new(25);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        for &(u, v, w) in &updates {
            b.add_edge(u, v, w);
        }
        let mut want = b.build().to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        assert!(want.eq_exact(&d));
    }

    #[test]
    fn rejects_weight_increase() {
        let (_, mut d) = solved(10, 0.5, 2);
        let cur = d[(1, 2)];
        assert_eq!(
            decrease_edge::<MinPlusF32>(&mut d, 1, 2, cur + 10.0),
            Err(IncrementalError::NotADecrease)
        );
    }

    #[test]
    fn rejects_bad_vertex() {
        let (_, mut d) = solved(10, 0.5, 2);
        assert_eq!(
            decrease_edge::<MinPlusF32>(&mut d, 1, 99, 0.5),
            Err(IncrementalError::BadVertex)
        );
    }

    #[test]
    fn rejects_negative_self_loop_and_leaves_matrix_valid() {
        // regression: pre-fix, a (u == v, w < 0) update was accepted,
        // wrote a negative diagonal, and corrupted the whole closure
        let (_, mut d) = solved(12, 0.4, 3);
        let before = d.clone();
        assert_eq!(
            decrease_edge::<MinPlusF32>(&mut d, 4, 4, -1.0),
            Err(IncrementalError::NegativeSelfLoop)
        );
        assert!(before.eq_exact(&d), "rejected update must not modify the matrix");
        crate::verify::check_apsp_invariants(&d, "after rejected self-loop");

        // a non-improving self-loop is merely redundant, not a corruption
        assert_eq!(
            decrease_edge::<MinPlusF32>(&mut d, 4, 4, 2.0),
            Err(IncrementalError::NotADecrease)
        );
    }

    #[test]
    fn rejects_nan_weight() {
        let (_, mut d) = solved(10, 0.5, 2);
        let before = d.clone();
        assert_eq!(
            decrease_edge::<MinPlusF32>(&mut d, 1, 2, f32::NAN),
            Err(IncrementalError::NanWeight)
        );
        assert!(before.eq_exact(&d));
    }

    #[test]
    fn rejects_negative_cycle_through_new_edge() {
        // a negative edge that would close a cycle u → v → u of negative
        // total weight must be refused before it corrupts the diagonal
        let (_, mut d) = solved(10, 0.8, 6);
        let (u, v) = (1usize, 7usize);
        let back = d[(v, u)];
        assert!(back.is_finite(), "dense-ish graph should connect v back to u");
        let w = -back - 1.0; // w + d[v][u] = -1 < 0
        assert_eq!(
            decrease_edge::<MinPlusF32>(&mut d, u, v, w),
            Err(IncrementalError::NegativeCycle)
        );
        crate::verify::check_apsp_invariants(&d, "after rejected negative cycle");
    }

    #[test]
    fn batch_survives_bad_vertex_with_typed_outcomes() {
        // regression: pre-fix, decrease_edges panicked on BadVertex —
        // a malformed client update would have killed a long-lived server
        let (g, mut d) = solved(20, 0.25, 11);
        let updates = [
            (0usize, 15usize, 1.0f32), // fine
            (3, 999, 1.0),             // out of range — must not panic
            (7, 7, -2.0),              // negative self-loop — must not corrupt
            (2, 12, f32::NAN),         // NaN — must not poison
            (5, 9, 2.0),               // fine
        ];
        let report = decrease_edges::<MinPlusF32>(&mut d, &updates);
        assert_eq!(report.outcomes.len(), 5);
        assert_eq!(report.outcomes[1], Err(IncrementalError::BadVertex));
        assert_eq!(report.outcomes[2], Err(IncrementalError::NegativeSelfLoop));
        assert_eq!(report.outcomes[3], Err(IncrementalError::NanWeight));
        assert!(report.outcomes[0].is_ok());
        assert_eq!(report.rejected(), 3);
        assert_eq!(
            report.rejections().map(|(i, _)| i).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        crate::verify::check_apsp_invariants(&d, "after mixed batch");

        // the good updates were really applied: oracle recompute
        let mut b = apsp_graph::graph::GraphBuilder::new(20);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        b.add_edge(0, 15, 1.0).add_edge(5, 9, 2.0);
        let mut want = b.build().to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        assert!(want.eq_exact(&d));
    }

    #[test]
    fn connecting_components_incrementally() {
        let g = generators::multi_component(20, 2, WeightKind::small_ints(), 4);
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        assert_eq!(d[(0, 19)], f32::INFINITY);
        // bridge the components
        let improved = decrease_edge::<MinPlusF32>(&mut d, 0, 10, 5.0).unwrap();
        assert!(improved > 0);
        assert!(d[(0, 19)].is_finite());
        // still a valid closure
        crate::verify::check_apsp_invariants(&d, "bridged");
    }

    #[test]
    fn update_count_is_zero_for_redundant_edge() {
        let (_, mut d) = solved(15, 0.6, 7);
        // an edge equal to the existing shortest distance improves nothing
        let cur = d[(2, 3)];
        if cur.is_finite() {
            assert_eq!(
                decrease_edge::<MinPlusF32>(&mut d, 2, 3, cur),
                Err(IncrementalError::NotADecrease)
            );
        }
    }

    #[test]
    fn witness_carrying_update_keeps_paths_realizable() {
        // regression: updating only the f32 distance matrix leaves a
        // separately-held predecessor matrix stale — reconstruct_path then
        // returns routes that no longer realize the reported distances.
        // The witness-carrying update fixes both together.
        let g = generators::erdos_renyi(24, 0.18, WeightKind::small_ints(), 21);
        let mut dist = g.to_dense();
        let pred = fw_seq_with_paths(&mut dist);
        let mut annotated = combine(&dist, &pred);

        let updates = [(0usize, 17usize, 1.0f32), (9, 3, 1.0), (20, 5, 2.0), (3, 3, -1.0)];
        let report = decrease_edges_pred(&mut annotated, &updates);
        assert_eq!(report.outcomes[3], Err(IncrementalError::NegativeSelfLoop));
        assert!(report.applied >= 1, "at least one update should land on this seed");

        // the graph with the accepted edges added is the oracle (rejected
        // NotADecrease edges would not change distances either way)
        let mut b = apsp_graph::graph::GraphBuilder::new(24);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        for (i, &(u, v, w)) in updates.iter().enumerate() {
            if report.outcomes[i].is_ok() {
                b.add_edge(u, v, w);
            }
        }
        let g2 = b.build();
        let mut want = g2.to_dense();
        fw_seq::<MinPlusF32>(&mut want);

        let (d2, p2) = split(&annotated);
        assert!(want.eq_exact(&d2), "witness-carrying update distances match recompute");
        for s in 0..24 {
            for t in 0..24 {
                if s != t && d2[(s, t)].is_finite() {
                    let p = reconstruct_path(&p2, s, t).expect("path exists");
                    assert!(
                        validate_path(&g2, &p, s, t, d2[(s, t)], 1e-3),
                        "{s}->{t}: reconstructed path must realize the updated distance"
                    );
                }
            }
        }
    }
}
