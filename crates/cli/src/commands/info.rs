//! `apsp info` — structural statistics of a graph file.

use crate::args::Args;

/// Entry point.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!("apsp info --input <FILE> [--format <dimacs|edges>]");
        return Ok(());
    }
    let args = Args::parse(tokens)?;
    let input: String = args.req("input")?;
    let g = super::load_graph(&input, args.opt_str("format"))?;
    let n = g.n();
    let m = g.m();
    println!("file      : {input}");
    println!("vertices  : {n}");
    println!("edges     : {m}");
    if n > 0 {
        println!("density   : {:.4}", m as f64 / (n as f64 * n as f64));
        let (mut wmin, mut wmax, mut wsum) = (f32::INFINITY, f32::NEG_INFINITY, 0.0f64);
        let mut out_deg = vec![0usize; n];
        for (u, _, w) in g.edges() {
            wmin = wmin.min(w);
            wmax = wmax.max(w);
            wsum += w as f64;
            out_deg[u] += 1;
        }
        if m > 0 {
            println!("weights   : min {wmin}, max {wmax}, mean {:.3}", wsum / m as f64);
        }
        let dmax = out_deg.iter().copied().max().unwrap_or(0);
        println!("out-degree: max {dmax}, mean {:.2}", m as f64 / n as f64);
        // memory footprints the paper's reader cares about
        let dense_bytes = n as f64 * n as f64 * 4.0;
        println!("dense distance matrix: {:.3} GB (f32)", dense_bytes / 1e9);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_stats_without_error() {
        let dir = std::env::temp_dir().join(format!("apsp-info-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("g.edges");
        std::fs::write(&input, "0 1 2.5\n1 2 1.0\n").unwrap();
        let cmd: Vec<String> = format!("--input {}", input.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        run(&cmd).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
