//! Std-only shim for the `rayon` API subset used by this workspace:
//! `into_par_iter()` on vectors and integer ranges with
//! `map`/`for_each`/`collect`, plus [`current_num_threads`].
//!
//! The build environment cannot reach crates.io, so this replaces rayon's
//! work-stealing pool with scoped threads over contiguous chunks — one chunk
//! per available core. For the workspace's workloads (row slabs of a GEMM,
//! one Dijkstra per source) the items are uniform enough that static
//! chunking keeps the cores busy.
//!
//! Ranges are **never materialized**: `(0..n).into_par_iter()` yields a
//! [`ParRange`] that splits `n` arithmetically into per-worker subranges
//! (`O(workers)` bookkeeping, not `O(n)` allocation), so index-only loops
//! over huge ranges cost no memory. Only `map`/`collect` allocate — for
//! their results, which is inherent.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParRange};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] on the
    /// calling thread (shim stand-in for running inside a sized pool).
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use: the size of the
/// innermost [`ThreadPool::install`] scope on this thread, else the host
/// parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
}

/// Builder for a sized [`ThreadPool`] — the subset of rayon's
/// `ThreadPoolBuilder` the workspace uses (`num_threads` + `build`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirrored from rayon; the shim's build never fails.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (host-parallelism) size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` workers (`0` → host parallelism, like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finalize. The shim allocates no threads up front — the cap is
    /// applied when a parallel operation runs under [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A sized scope for parallel operations. Unlike real rayon there is no
/// resident worker pool: [`ThreadPool::install`] simply bounds how many
/// scoped threads the shim's `for_each`/`map` fan out to while `op` runs on
/// the calling thread.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count (`0` at build time resolves to the host
    /// parallelism).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// Run `op` with [`current_num_threads`] pinned to this pool's size on
    /// the calling thread (restored on exit, panic-safe, nestable).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.current_num_threads())));
        let _restore = Restore(prev);
        op()
    }
}

/// Entry point mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item the parallel iterator yields.
    type Item: Send;
    /// Concrete parallel-iterator type (`ParIter` for owned item lists,
    /// `ParRange` for arithmetic ranges).
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange<usize>;
    fn into_par_iter(self) -> ParRange<usize> {
        let len = self.end.saturating_sub(self.start);
        ParRange { start: self.start, len }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    type Iter = ParRange<u32>;
    fn into_par_iter(self) -> ParRange<u32> {
        let len = (self.end.saturating_sub(self.start)) as usize;
        ParRange { start: self.start, len }
    }
}

/// Integer index types a [`ParRange`] can step through.
pub trait RangeIndex: Copy + Send + Sync + 'static {
    /// `self + n` (never overflows for indices inside the source range).
    fn add_usize(self, n: usize) -> Self;
}

impl RangeIndex for usize {
    #[inline]
    fn add_usize(self, n: usize) -> usize {
        self + n
    }
}

impl RangeIndex for u32 {
    #[inline]
    fn add_usize(self, n: usize) -> u32 {
        self + n as u32
    }
}

/// A lazy "parallel iterator" over an arithmetic index range. Holds only
/// `(start, len)`; subranges are computed arithmetically, so no `Vec` of
/// indices is ever built.
pub struct ParRange<I: RangeIndex> {
    start: I,
    len: usize,
}

impl<I: RangeIndex> ParRange<I> {
    /// Split into at most `parts` contiguous `(start, len)` subranges of
    /// near-equal size covering the whole range.
    fn subranges(&self, parts: usize) -> Vec<(I, usize)> {
        let parts = parts.clamp(1, self.len.max(1));
        let base = self.len / parts;
        let extra = self.len % parts;
        let mut out = Vec::with_capacity(parts);
        let mut off = 0usize;
        for p in 0..parts {
            let here = base + usize::from(p < extra);
            if here == 0 {
                break;
            }
            out.push((self.start.add_usize(off), here));
            off += here;
        }
        out
    }

    /// Run `f` on every index, fanned out over the available cores.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Send + Sync,
    {
        if self.len == 0 {
            return;
        }
        let workers = current_num_threads().min(self.len);
        if workers <= 1 {
            for k in 0..self.len {
                f(self.start.add_usize(k));
            }
            return;
        }
        let subs = self.subranges(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = subs
                .into_iter()
                .map(|(start, len)| {
                    let f = &f;
                    scope.spawn(move || {
                        for k in 0..len {
                            f(start.add_usize(k));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("parallel worker panicked");
            }
        });
    }

    /// Map every index (in parallel); order is preserved. Allocates only
    /// for the mapped results.
    pub fn map<R: Send, F>(self, f: F) -> ParIter<R>
    where
        F: Fn(I) -> R + Send + Sync,
    {
        if self.len == 0 {
            return ParIter { items: Vec::new() };
        }
        let workers = current_num_threads().min(self.len);
        if workers <= 1 {
            let items = (0..self.len).map(|k| f(self.start.add_usize(k))).collect();
            return ParIter { items };
        }
        let subs = self.subranges(workers);
        let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = subs
                .into_iter()
                .map(|(start, len)| {
                    let f = &f;
                    scope.spawn(move || {
                        (0..len).map(|k| f(start.add_usize(k))).collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        ParIter { items: chunks.into_iter().flatten().collect() }
    }

    /// Materialize the indices; `C` is typically `Vec<I>`. This is the one
    /// range operation that allocates `O(len)` — by request.
    pub fn collect<C: From<Vec<I>>>(self) -> C {
        C::from((0..self.len).map(|k| self.start.add_usize(k)).collect::<Vec<I>>())
    }
}

/// An eager "parallel iterator" over an owned item list.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Run `f` on every item, fanned out over the available cores.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        run_chunked(self.items, &|chunk| {
            for item in chunk {
                f(item);
            }
        });
    }

    /// Map every item (in parallel); order is preserved.
    pub fn map<R: Send, F>(self, f: F) -> ParIter<R>
    where
        F: Fn(T) -> R + Send + Sync,
    {
        let chunks = run_chunked_collect(self.items, &|chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        ParIter { items: chunks.into_iter().flatten().collect() }
    }

    /// Collect the items; `C` is typically `Vec<T>`.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// Split `items` into one contiguous chunk per worker and run `f` on each
/// chunk in its own scoped thread.
fn run_chunked<T: Send>(items: Vec<T>, f: &(impl Fn(Vec<T>) + Sync)) {
    run_chunked_collect(items, &|chunk| {
        f(chunk);
    });
}

fn run_chunked_collect<T: Send, R: Send>(
    items: Vec<T>,
    f: &(impl Fn(Vec<T>) -> R + Sync),
) -> Vec<R> {
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(items)];
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk_len.min(rest.len()));
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let sum = AtomicU64::new(0);
        (0..100u32).into_par_iter().for_each(|i| {
            sum.fetch_add(u64::from(i), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        Vec::<u32>::new().into_par_iter().for_each(|_| panic!("no items"));
        (0..0usize).into_par_iter().for_each(|_| panic!("no items"));
        let out: Vec<usize> = (5..5usize).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn huge_range_does_not_materialize() {
        // Regression: `into_par_iter` on a range used to `collect()` the
        // whole range into a Vec — O(n) allocation. Building the parallel
        // iterator for a range of usize::MAX indices must be O(1); with the
        // old implementation this line OOM-aborts.
        let it = (0..usize::MAX).into_par_iter();
        assert_eq!(it.subranges(4).len(), 4);

        // And a large range is processed with O(workers) bookkeeping only:
        // 10M indices would be 80 MB materialized; this runs in constant
        // space and visits every index exactly once.
        let sum = AtomicU64::new(0);
        let n: usize = 10_000_000;
        (0..n).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn nonzero_range_start_is_respected() {
        let visited = AtomicUsize::new(0);
        (100..200usize).into_par_iter().for_each(|i| {
            assert!((100..200).contains(&i));
            visited.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(visited.load(Ordering::Relaxed), 100);
        let out: Vec<u32> = (10..15u32).into_par_iter().map(|i| i).collect();
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn range_collect_materializes_on_request() {
        let out: Vec<usize> = (3..7usize).into_par_iter().collect();
        assert_eq!(out, vec![3, 4, 5, 6]);
    }

    #[test]
    fn thread_pool_install_caps_and_restores_worker_count() {
        let host = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(crate::current_num_threads(), 2);
            // nested pools override and restore independently
            let inner = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            inner.install(|| assert_eq!(crate::current_num_threads(), 1));
            assert_eq!(crate::current_num_threads(), 2);
        });
        assert_eq!(crate::current_num_threads(), host);
    }

    #[test]
    fn thread_pool_install_restores_on_panic() {
        let host = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let result = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(result.is_err());
        assert_eq!(crate::current_num_threads(), host);
    }

    #[test]
    fn zero_threads_means_host_parallelism() {
        let host = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), host);
        pool.install(|| assert_eq!(crate::current_num_threads(), host));
    }

    #[test]
    fn capped_map_still_covers_every_item_in_order() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..257usize).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(out, (1..=257).collect::<Vec<_>>());
    }
}
