//! End-to-end distributed Floyd-Warshall on the thread-backed runtime:
//! every preset on a 2×2 grid. Functional wall-clock — the at-scale timing
//! story lives in the fig7/fig8 harnesses.

use apsp_core::dist::{distributed_apsp, FwConfig, Variant};
use apsp_graph::generators::{uniform_dense, WeightKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srgemm::MinPlusF32;

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_fw_2x2");
    g.sample_size(10);
    let n = 192;
    let input = uniform_dense(n, WeightKind::small_ints(), 4).to_dense();

    for variant in Variant::all() {
        g.bench_with_input(
            BenchmarkId::new("variant", variant.legend()),
            &variant,
            |bch, &variant| {
                let cfg = FwConfig::new(32, variant);
                bch.iter(|| distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run").0)
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
