//! Divide-and-conquer APSP — the communication-avoiding comparator from the
//! paper's related work (§6: "Solomonik et al. proposed a communication
//! avoiding parallel Apsp which uses the divide and conquer approach").
//!
//! The recursive Kleene/Floyd block-2×2 closure:
//!
//! ```text
//! [A B]*      A ← A*         B ← A ⊗ B     C ← C ⊗ A     D ← D ⊕ C ⊗ B
//! [C D]       D ← D*         B ← B ⊗ D     C ← D ⊗ C     A ← A ⊕ B ⊗ C
//! ```
//!
//! All heavy work is GEMM (two closure recursions + six GEMM-shaped
//! updates per level), which is why it maps onto 2.5D process grids; here
//! it serves as an independent single-node solver validating the blocked
//! FW results, and as the subject of the dc-vs-blocked bench.

use srgemm::closure::fw_closure;
use srgemm::gemm::{gemm_blocked, gemm_parallel};
use srgemm::matrix::{Matrix, ViewMut};
use srgemm::panel::{panel_update_left, panel_update_right};
use srgemm::semiring::Semiring;

/// In-place divide-and-conquer closure. `base` is the recursion cutoff
/// (classic FW below it); `parallel` uses the rayon GEMM for the
/// off-diagonal quadrant updates.
///
/// # Panics
/// Panics if `a` is not square, `base == 0`, or the semiring is not
/// idempotent.
pub fn dc_apsp<S: Semiring>(a: &mut Matrix<S::Elem>, base: usize, parallel: bool) {
    assert_eq!(a.rows(), a.cols(), "distance matrix must be square");
    assert!(base > 0, "base case must be positive");
    assert!(
        S::IDEMPOTENT_ADD,
        "DC-APSP relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    let n = a.rows();
    let mut view = a.subview_mut(0, 0, n, n);
    dc_recurse::<S>(&mut view, base, parallel);
}

fn dc_recurse<S: Semiring>(a: &mut ViewMut<'_, S::Elem>, base: usize, parallel: bool) {
    let n = a.rows();
    if n <= base {
        fw_closure::<S>(a);
        return;
    }
    let mid = n / 2;
    // carve the four quadrants as disjoint mutable views
    let whole = a.subview_mut(0, 0, n, n);
    let (top, bottom) = whole.split_rows_mut(mid);
    let (mut a11, mut a12) = top.split_cols_mut(mid);
    let (mut a21, mut a22) = bottom.split_cols_mut(mid);

    // A ← A*
    dc_recurse::<S>(&mut a11, base, parallel);
    // B ← A ⊗ B ; C ← C ⊗ A   (closure absorbs the old values: A* ⊇ I)
    panel_update_left::<S>(&mut a12, &a11.as_view());
    panel_update_right::<S>(&mut a21, &a11.as_view());
    // D ← D ⊕ C ⊗ B
    if parallel {
        gemm_parallel::<S>(&mut a22, &a21.as_view(), &a12.as_view());
    } else {
        gemm_blocked::<S>(&mut a22, &a21.as_view(), &a12.as_view());
    }
    // D ← D*
    dc_recurse::<S>(&mut a22, base, parallel);
    // B ← B ⊗ D ; C ← D ⊗ C
    panel_update_right::<S>(&mut a12, &a22.as_view());
    panel_update_left::<S>(&mut a21, &a22.as_view());
    // A ← A ⊕ B ⊗ C
    if parallel {
        gemm_parallel::<S>(&mut a11, &a12.as_view(), &a21.as_view());
    } else {
        gemm_blocked::<S>(&mut a11, &a12.as_view(), &a21.as_view());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fw_seq::fw_seq;
    use apsp_graph::generators::{self, GraphKind, WeightKind};
    use srgemm::semiring::MaxMin;
    use srgemm::MinPlusF32;

    #[test]
    fn matches_sequential_fw_across_sizes_and_bases() {
        for n in [1usize, 2, 3, 5, 8, 17, 33, 48] {
            let g = generators::uniform_dense(n, WeightKind::small_ints(), n as u64);
            let mut want = g.to_dense();
            fw_seq::<MinPlusF32>(&mut want);
            for base in [1usize, 4, 16, 64] {
                let mut got = g.to_dense();
                dc_apsp::<MinPlusF32>(&mut got, base, false);
                assert!(want.eq_exact(&got), "n={n} base={base}");
            }
        }
    }

    #[test]
    fn parallel_gemms_give_identical_results() {
        let g = generators::uniform_dense(40, WeightKind::small_ints(), 3);
        let mut a = g.to_dense();
        let mut b = g.to_dense();
        dc_apsp::<MinPlusF32>(&mut a, 8, false);
        dc_apsp::<MinPlusF32>(&mut b, 8, true);
        assert!(a.eq_exact(&b));
    }

    #[test]
    fn sparse_and_disconnected_inputs() {
        for (kind, seed) in [
            (GraphKind::ErdosRenyi { p: 0.1 }, 5u64),
            (GraphKind::MultiComponent { components: 4 }, 6),
            (GraphKind::Ring, 7),
        ] {
            let g = generators::generate(kind, 27, WeightKind::small_ints(), seed);
            let mut want = g.to_dense();
            fw_seq::<MinPlusF32>(&mut want);
            let mut got = g.to_dense();
            dc_apsp::<MinPlusF32>(&mut got, 4, false);
            assert!(want.eq_exact(&got), "{kind:?}");
        }
    }

    #[test]
    fn works_for_widest_path_semiring() {
        type WP = MaxMin<f32>;
        let n = 21;
        let mut m = srgemm::Matrix::filled(n, n, f32::NEG_INFINITY);
        let mut state = 5u64;
        for i in 0..n {
            for j in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if i != j && state.is_multiple_of(4) {
                    m[(i, j)] = ((state >> 33) % 40) as f32;
                }
            }
        }
        let mut want = m.clone();
        fw_seq::<WP>(&mut want);
        let mut got = m.clone();
        dc_apsp::<WP>(&mut got, 4, false);
        assert!(want.eq_exact(&got));
    }
}
