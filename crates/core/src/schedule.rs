//! Summit-scale schedule generation: each ParallelFw variant, lowered to a
//! `cluster-sim` task DAG at *node* granularity.
//!
//! This is the timing side of the reproduction. The functional side
//! ([`crate::dist`]) proves the algorithms correct at test scale; this
//! module replays their exact communication/computation structure on the
//! calibrated Summit model ([`cluster_sim::MachineSpec::summit`]) at the
//! paper's problem sizes (up to 1.66M vertices, 256 nodes), which is what
//! regenerates Figs. 3–4 and 7–9.
//!
//! Granularity: one GPU-pool, NIC-egress, intra-fabric and host-memory
//! resource per *node*; ranks within a node are aggregated (their intranode
//! traffic rides the intra fabric, their compute the shared GPU pool). The
//! rank→node placement enters through the node-grid shape `K_r × K_c`,
//! exactly the quantity §3.4.1 shows the NIC volume depends on.

use cluster_sim::{chrome_trace, Cluster, EngineError, MachineSpec, Schedule, TaskId};

use crate::dist::{Exec, PanelBcastAlgo, Schedule as FwSchedule, Variant};
use crate::model;

/// Priorities: look-ahead work preempts (among simultaneously-ready tasks)
/// the bulk outer product — §3.2's "prioritizing the OuterUpdate on the
/// k+1 panels".
const PRI_LOOKAHEAD: u32 = 0;
const PRI_PANEL: u32 = 1;
const PRI_OUTER: u32 = 10;

/// One simulated configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleConfig {
    /// Vertices.
    pub n: usize,
    /// Block size `b` (the paper tunes 768).
    pub block: usize,
    /// Iteration-schedule axis (Algorithm 3 vs Algorithm 4).
    pub schedule: FwSchedule,
    /// PanelBcast algorithm axis (tree vs pipelined ring).
    pub bcast: PanelBcastAlgo,
    /// OuterUpdate execution axis (in-core vs host-resident offload).
    pub exec: Exec,
    /// Node-grid shape (`K_r`, `K_c`) — the placement's fingerprint.
    pub kr: usize,
    /// Node-grid shape.
    pub kc: usize,
    /// Element size (4 for the paper's f32).
    pub elem_bytes: usize,
    /// Streams available to the offload pipeline (GpuOffload exec only).
    pub oog_streams: usize,
}

impl ScheduleConfig {
    /// Paper-default tuning for a named preset: `b = 768`, deeply pipelined
    /// 16-chunk rings (the ring's bandwidth optimality needs
    /// chunk_count ≫ ring length to amortize the fill latency), 3 offload
    /// streams.
    pub fn new(n: usize, variant: Variant, kr: usize, kc: usize) -> Self {
        let (schedule, bcast, exec) = variant.axes();
        Self::with_axes(n, schedule, bcast, exec, kr, kc)
    }

    /// Build directly from a policy triple (same tuning defaults as
    /// [`ScheduleConfig::new`]). A `Ring` still carrying the functional
    /// test-scale default chunk count is deepened to 16; an explicitly
    /// tuned chunk count is kept.
    pub fn with_axes(
        n: usize,
        schedule: FwSchedule,
        mut bcast: PanelBcastAlgo,
        exec: Exec,
        kr: usize,
        kc: usize,
    ) -> Self {
        if let PanelBcastAlgo::Ring { chunks } = &mut bcast {
            if *chunks == crate::dist::DEFAULT_RING_CHUNKS {
                *chunks = 16;
            }
        }
        ScheduleConfig {
            n,
            block: 768,
            schedule,
            bcast,
            exec,
            kr,
            kc,
            elem_bytes: 4,
            oog_streams: 3,
        }
    }

    /// Paper legend for this configuration's policy triple.
    pub fn legend(&self) -> String {
        Variant::legend_for(self.schedule, self.bcast, self.exec)
    }
}

/// Outcome of a simulated run.
#[derive(Clone, Copy, Debug)]
pub struct SimOutcome {
    /// End-to-end simulated seconds.
    pub seconds: f64,
    /// `2n³` semiring flops (the paper's normalization).
    pub flops: f64,
    /// Flop rate in Pflop/s.
    pub pflops: f64,
    /// §5.1.3 effective bandwidth, bytes/s per node.
    pub effective_bw: f64,
    /// Mean GPU-pool utilization across nodes.
    pub gpu_utilization: f64,
}

/// A whole-node failure stalling a simulated run: the discrete-event
/// counterpart of `mpi_sim`'s structured deadlock report. Produced by
/// [`simulate_node_fault`] when the dead node's tasks gate the rest of the
/// schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimStall {
    /// Node whose GPU pool, NIC, intra fabric and host engine all died.
    pub node: usize,
    /// Simulated second at which the node died.
    pub died_at: f64,
    /// Tasks that finished before progress stopped.
    pub completed: usize,
    /// Total tasks in the DAG.
    pub total: usize,
    /// Simulated second of the last task completion — progress stops here.
    pub stalled_at: f64,
    /// When the survivors *notice*: `stalled_at + recv_timeout`. Blocked
    /// peers time out instead of waiting forever, mirroring
    /// `Comm::recv_raw`'s receive timeout in the functional runtime.
    pub detected_at: f64,
}

impl std::fmt::Display for SimStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {} died at {:.3} s: schedule stalled at {:.3} s with {}/{} tasks complete; \
             surviving nodes detect the failure at {:.3} s (recv timeout)",
            self.node, self.died_at, self.stalled_at, self.completed, self.total, self.detected_at
        )
    }
}

/// What a fault-injected simulation produced: either the run survived the
/// fault (it fired after every task the dead node gated had finished) or the
/// schedule stalled.
#[derive(Clone, Debug)]
pub enum FaultedOutcome {
    /// The fault never bit; normal outcome.
    Completed(SimOutcome),
    /// The dead node wedged the schedule.
    Stalled(SimStall),
}

/// Why a configuration cannot run (the paper's "Beyond GPU Memory" wall).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Infeasible {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

/// The most-square node grid for `nodes` (the `+Reordering` placement).
pub fn optimal_node_grid(nodes: usize) -> (usize, usize) {
    model::best_node_grid(nodes)
}

/// A "typical" contiguous-rank node grid: the factor pair with aspect ratio
/// closest to the skew a `1×Q` intranode layout produces on a near-square
/// process grid (≈8:1 on Summit's 12-rank nodes). Used for the Baseline and
/// Pipelined legends, which run without rank reordering.
pub fn default_node_grid(nodes: usize) -> (usize, usize) {
    let mut best = (nodes, 1);
    let mut best_err = f64::INFINITY;
    let mut r = 1;
    while r <= nodes {
        if nodes.is_multiple_of(r) {
            let c = nodes / r;
            if r >= c {
                let err = ((r as f64 / c as f64).ln() - 8.0f64.ln()).abs();
                if err < best_err {
                    best_err = err;
                    best = (r, c);
                }
            }
        }
        r += 1;
    }
    best
}

/// Simulate one configuration on `spec`. Fails with [`Infeasible`] when the
/// in-GPU-memory variants exceed device capacity (or offload exceeds host
/// memory).
pub fn simulate(spec: &MachineSpec, cfg: &ScheduleConfig) -> Result<SimOutcome, Infeasible> {
    check_memory(spec, cfg)?;
    Ok(simulate_unchecked(spec, cfg))
}

/// [`simulate`] without the memory-feasibility gate. For communication
/// experiments (the Fig. 3 placement sweep) where the paper exercises
/// configurations whose capacity accounting is orthogonal to the question
/// being asked.
pub fn simulate_unchecked(spec: &MachineSpec, cfg: &ScheduleConfig) -> SimOutcome {
    run_sim(spec, cfg).0
}

/// [`simulate`], additionally exporting the finished schedule as Chrome
/// trace_events JSON (the same schema `mpi_sim::RunTrace::to_chrome_json`
/// emits): one timeline per node resource (`gpu{i}`, `nic{i}`, …), each
/// task named by its phase (DiagUpdate … OuterUpdate, Sync barriers).
pub fn simulate_with_trace(spec: &MachineSpec, cfg: &ScheduleConfig) -> Result<(SimOutcome, String), Infeasible> {
    check_memory(spec, cfg)?;
    let (outcome, cl, sched) = run_sim(spec, cfg);
    let json = chrome_trace(&cl.dag, &sched, &cl.resource_names());
    Ok((outcome, json))
}

/// [`simulate`] under a whole-node failure: every resource of `node` stops
/// starting tasks at simulated second `died_at`. If tasks the dead node
/// gates remain, the run comes back as a typed [`SimStall`] whose
/// `detected_at` adds `recv_timeout` seconds — the point at which blocked
/// survivors would time out and report, rather than hang.
pub fn simulate_node_fault(
    spec: &MachineSpec,
    cfg: &ScheduleConfig,
    node: usize,
    died_at: f64,
    recv_timeout: f64,
) -> Result<FaultedOutcome, Infeasible> {
    check_memory(spec, cfg)?;
    if node >= spec.nodes {
        return Err(Infeasible {
            reason: format!("fault names node {node}, but the machine has only {} nodes", spec.nodes),
        });
    }
    let nodes = cfg.kr * cfg.kc;
    assert_eq!(nodes, spec.nodes, "node grid must cover the machine");

    let mut cl = Cluster::new(*spec);
    build_dag(&mut cl, cfg);
    match cl.try_run_with_faults(&cl.node_fault(node, died_at)) {
        Ok(sched) => Ok(FaultedOutcome::Completed(summarize(cfg, &cl, &sched))),
        Err(EngineError::Stalled { completed, total, stalled_at, .. }) => {
            Ok(FaultedOutcome::Stalled(SimStall {
                node,
                died_at,
                completed,
                total,
                stalled_at,
                detected_at: stalled_at + recv_timeout,
            }))
        }
    }
}

/// Build the DAG for `cfg`, run it, and summarize — keeping the cluster and
/// schedule alive for trace export.
fn run_sim(spec: &MachineSpec, cfg: &ScheduleConfig) -> (SimOutcome, Cluster, Schedule) {
    let nodes = cfg.kr * cfg.kc;
    assert_eq!(nodes, spec.nodes, "node grid must cover the machine");

    let mut cl = Cluster::new(*spec);
    build_dag(&mut cl, cfg);
    let sched = cl.run();
    let outcome = summarize(cfg, &cl, &sched);
    (outcome, cl, sched)
}

/// Summarize a finished schedule into the paper's reporting quantities.
fn summarize(cfg: &ScheduleConfig, cl: &Cluster, sched: &Schedule) -> SimOutcome {
    let nodes = cfg.kr * cfg.kc;
    let flops = model::fw_flops(cfg.n);
    let seconds = sched.makespan;
    let gpu_util = (0..nodes)
        .map(|nd| sched.busy[cl.gpu_resource(nd).index()] / seconds.max(1e-30))
        .sum::<f64>()
        / nodes as f64;
    SimOutcome {
        seconds,
        flops,
        pflops: flops / seconds / 1e15,
        effective_bw: model::effective_bandwidth(cfg.n, nodes, cfg.elem_bytes, seconds),
        gpu_utilization: gpu_util,
    }
}

/// Simulate the 1-D row-partitioned comparator
/// ([`crate::dist::oned::oned_apsp`]) on `spec`: `n` scalar iterations,
/// each a pivot-row tree broadcast over all nodes followed by a rank-1
/// relaxation. The relaxation has O(1) arithmetic intensity, so it runs at
/// memory bandwidth, not at the GEMM rate — the §6 observation that
/// outer-product (BLAS-2) formulations "will not be as efficient as
/// BlockedFw on GPUs".
pub fn simulate_oned(spec: &MachineSpec, n: usize, elem_bytes: usize) -> SimOutcome {
    let nodes = spec.nodes;
    let mut cl = Cluster::new(*spec);
    let members: Vec<usize> = (0..nodes).collect();
    let eb = elem_bytes as f64;
    let mut barrier: Vec<TaskId> = Vec::new();
    // model a constant per-node row share n/nodes
    let rows_per_node = n as f64 / nodes as f64;
    for k in 0..n {
        let owner = k % nodes;
        cl.set_phase("PanelBcast");
        let arr = tree_bcast(&mut cl, &members, owner, n as f64 * eb, PRI_PANEL, &barrier);
        cl.set_phase("OuterUpdate");
        let mut updates = Vec::with_capacity(nodes);
        for (nd, &arrived) in arr.iter().enumerate() {
            // rank-1 relaxation: 3 touches per element at DRAM bandwidth;
            // expressed as a host-memory task
            let bytes = 3.0 * rows_per_node * n as f64 * eb;
            updates.push(cl.host_task(nd, bytes, PRI_OUTER, &[arrived]));
        }
        cl.set_phase("Sync");
        let b = cl.send_task(0, 0, 0.0, PRI_PANEL, &updates);
        barrier = vec![b];
    }
    let sched = cl.run();
    let flops = model::fw_flops(n);
    SimOutcome {
        seconds: sched.makespan,
        flops,
        pflops: flops / sched.makespan / 1e15,
        effective_bw: model::effective_bandwidth(n, nodes, elem_bytes, sched.makespan),
        gpu_utilization: 0.0, // the 1-D formulation cannot use the GPUs
    }
}

/// Memory feasibility (paper Fig. 7's wall).
fn check_memory(spec: &MachineSpec, cfg: &ScheduleConfig) -> Result<(), Infeasible> {
    let n2 = cfg.n as f64 * cfg.n as f64;
    match cfg.exec {
        Exec::GpuOffload => {
            // host-resident: local share must fit in node DRAM
            let per_node = n2 * cfg.elem_bytes as f64 / spec.nodes as f64;
            let usable = 0.9 * spec.host_mem_bytes as f64;
            if per_node > usable {
                return Err(Infeasible {
                    reason: format!(
                        "offload: {:.0} GB/node exceeds host memory ({:.0} GB usable)",
                        per_node / 1e9,
                        usable / 1e9
                    ),
                });
            }
        }
        Exec::InCoreGemm => {
            let max_n = model::max_vertices_in_gpu_memory(spec, cfg.elem_bytes);
            if cfg.n > max_n {
                return Err(Infeasible {
                    reason: format!(
                        "beyond GPU memory: n={} exceeds the in-device limit of {} on {} nodes",
                        cfg.n, max_n, spec.nodes
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Node id of grid coordinate `(r, c)`.
fn node_at(cfg: &ScheduleConfig, r: usize, c: usize) -> usize {
    r * cfg.kc + c
}

/// Binomial-tree broadcast among `members` (node ids), rooted at index
/// `root_idx`. Returns the per-member arrival task. The root's "arrival" is
/// a zero-length marker depending on `dep`.
fn tree_bcast(cl: &mut Cluster, members: &[usize], root_idx: usize, bytes: f64, pri: u32, dep: &[TaskId]) -> Vec<TaskId> {
    let k = members.len();
    let mut arrival: Vec<Option<TaskId>> = vec![None; k];
    let marker = cl.send_task(members[root_idx], members[root_idx], 0.0, pri, dep);
    arrival[root_idx] = Some(marker);
    let rel = |i: usize| members[(root_idx + i) % k];
    let mut rel_arrival: Vec<Option<TaskId>> = vec![None; k];
    rel_arrival[0] = Some(marker);
    let mut mask = 1;
    while mask < k {
        for r in 0..mask {
            let dst = r + mask;
            if dst < k {
                let src_task = rel_arrival[r].expect("binomial parent arrived");
                let t = cl.send_task(rel(r), rel(dst), bytes, pri, &[src_task]);
                rel_arrival[dst] = Some(t);
            }
        }
        mask <<= 1;
    }
    for i in 0..k {
        arrival[(root_idx + i) % k] = rel_arrival[i];
    }
    arrival.into_iter().map(|a| a.expect("all members reached")).collect()
}

/// Pipelined ring broadcast among `members`, rooted at `root_idx`, split
/// into `chunks`. Returns the per-member arrival of the **last** chunk.
fn ring_bcast(cl: &mut Cluster, members: &[usize], root_idx: usize, bytes: f64, chunks: usize, pri: u32, dep: &[TaskId]) -> Vec<TaskId> {
    let k = members.len();
    let chunks = chunks.max(1);
    let chunk_bytes = bytes / chunks as f64;
    let marker = cl.send_task(members[root_idx], members[root_idx], 0.0, pri, dep);
    let mut arrival = vec![marker; k];
    if k == 1 {
        return arrival;
    }
    let rel = |i: usize| members[(root_idx + i) % k];
    // hop[i] carries the arrival of the current chunk at relative node i
    let mut last_chunk_arrival: Vec<TaskId> = vec![marker; k];
    for _c in 0..chunks {
        let mut prev = marker;
        for (i, slot) in last_chunk_arrival.iter_mut().enumerate().skip(1) {
            // chunk c leaves rel(i-1) once it has arrived there; the NIC
            // resource serializes chunks naturally
            let dep_task = if i == 1 { marker } else { prev };
            let t = cl.send_task(rel(i - 1), rel(i), chunk_bytes, pri, &[dep_task]);
            prev = t;
            *slot = t;
        }
    }
    for i in 0..k {
        arrival[(root_idx + i) % k] = last_chunk_arrival[i];
    }
    arrival
}

/// Panel broadcast arrivals for iteration `k`: the row panel travels down
/// every node column, the column panel across every node row. Returns
/// per-node `(row_arrival, col_arrival)` pairs, flattened by node id.
fn panel_bcasts(
    cl: &mut Cluster,
    cfg: &ScheduleConfig,
    k: usize,
    row_panel_ready: &[TaskId],
    col_panel_ready: &[TaskId],
) -> (Vec<TaskId>, Vec<TaskId>) {
    cl.set_phase("PanelBcast");
    let nodes = cfg.kr * cfg.kc;
    let eb = cfg.elem_bytes as f64;
    let krow = k % cfg.kr;
    let kcol = k % cfg.kc;
    // per-node panel shares
    let row_share = cfg.block as f64 * (cfg.n as f64 / cfg.kc as f64) * eb;
    let col_share = cfg.block as f64 * (cfg.n as f64 / cfg.kr as f64) * eb;
    let ring_chunks = match cfg.bcast {
        PanelBcastAlgo::Ring { chunks } => Some(chunks),
        PanelBcastAlgo::Tree => None,
    };

    let mut row_arrival = vec![None; nodes];
    for c in 0..cfg.kc {
        let members: Vec<usize> = (0..cfg.kr).map(|r| node_at(cfg, r, c)).collect();
        let dep = [row_panel_ready[c]];
        let arr = if let Some(chunks) = ring_chunks {
            ring_bcast(cl, &members, krow, row_share, chunks, PRI_PANEL, &dep)
        } else {
            tree_bcast(cl, &members, krow, row_share, PRI_PANEL, &dep)
        };
        for (r, t) in arr.into_iter().enumerate() {
            row_arrival[node_at(cfg, r, c)] = Some(t);
        }
    }
    let mut col_arrival = vec![None; nodes];
    for r in 0..cfg.kr {
        let members: Vec<usize> = (0..cfg.kc).map(|c| node_at(cfg, r, c)).collect();
        let dep = [col_panel_ready[r]];
        let arr = if let Some(chunks) = ring_chunks {
            ring_bcast(cl, &members, kcol, col_share, chunks, PRI_PANEL, &dep)
        } else {
            tree_bcast(cl, &members, kcol, col_share, PRI_PANEL, &dep)
        };
        for (c, t) in arr.into_iter().enumerate() {
            col_arrival[node_at(cfg, r, c)] = Some(t);
        }
    }
    (
        row_arrival.into_iter().map(|t| t.expect("row panel delivered")).collect(),
        col_arrival.into_iter().map(|t| t.expect("col panel delivered")).collect(),
    )
}

/// Diag update + diag broadcast + panel updates for iteration `k`.
/// Returns (`row_panel_ready` per node column root, `col_panel_ready` per
/// node row root).
#[allow(clippy::too_many_arguments)]
fn diag_and_panel_phase(
    cl: &mut Cluster,
    cfg: &ScheduleConfig,
    k: usize,
    diag_dep: &[TaskId],
    row_deps: &[Vec<TaskId>],
    col_deps: &[Vec<TaskId>],
    pri: u32,
) -> (Vec<TaskId>, Vec<TaskId>) {
    let eb = cfg.elem_bytes as f64;
    let b = cfg.block as f64;
    let krow = k % cfg.kr;
    let kcol = k % cfg.kc;
    let diag_node = node_at(cfg, krow, kcol);

    // DiagUpdate (§4.2: on the GPU either way; squaring costs log₂b GEMMs)
    cl.set_phase("DiagUpdate");
    let diag_flops = 2.0 * b * b * b * (b.log2().ceil().max(1.0));
    let t_diag = cl.gpu_task(diag_node, diag_flops, pri, diag_dep);

    // DiagBcast: tree along the k-th node row and node column
    cl.set_phase("DiagBcast");
    let row_members: Vec<usize> = (0..cfg.kc).map(|c| node_at(cfg, krow, c)).collect();
    let col_members: Vec<usize> = (0..cfg.kr).map(|r| node_at(cfg, r, kcol)).collect();
    let diag_bytes = b * b * eb;
    let diag_to_row = tree_bcast(cl, &row_members, kcol, diag_bytes, pri, &[t_diag]);
    let diag_to_col = tree_bcast(cl, &col_members, krow, diag_bytes, pri, &[t_diag]);

    // PanelUpdate on the owning node row/column
    cl.set_phase("PanelUpdate");
    let row_panel_flops = 2.0 * b * b * (cfg.n as f64 / cfg.kc as f64);
    let col_panel_flops = 2.0 * b * b * (cfg.n as f64 / cfg.kr as f64);
    let mut row_ready = Vec::with_capacity(cfg.kc);
    for c in 0..cfg.kc {
        let node = node_at(cfg, krow, c);
        let mut deps = vec![diag_to_row[c]];
        deps.extend_from_slice(&row_deps[c]);
        row_ready.push(cl.gpu_task(node, row_panel_flops, pri, &deps));
    }
    let mut col_ready = Vec::with_capacity(cfg.kr);
    for r in 0..cfg.kr {
        let node = node_at(cfg, r, kcol);
        let mut deps = vec![diag_to_col[r]];
        deps.extend_from_slice(&col_deps[r]);
        col_ready.push(cl.gpu_task(node, col_panel_flops, pri, &deps));
    }
    (row_ready, col_ready)
}

/// Per-node OuterUpdate duration in flops-equivalent: in-core variants run
/// at the GPU pool rate; the offload variant is bounded by
/// `max(t0, t1, t2)` of §4.5 (or worse with fewer streams).
fn outer_task(cl: &mut Cluster, cfg: &ScheduleConfig, node: usize, deps: &[TaskId]) -> TaskId {
    cl.set_phase("OuterUpdate");
    let m_loc = cfg.n as f64 / cfg.kr as f64;
    let n_loc = cfg.n as f64 / cfg.kc as f64;
    let b = cfg.block as f64;
    let flops = 2.0 * m_loc * n_loc * b;
    match cfg.exec {
        Exec::GpuOffload => {
            // §4.5 pipeline bound at node granularity
            let spec = cl.spec;
            let eb = cfg.elem_bytes as f64;
            let gpu_rate = spec.gpu_flops * spec.gpus_per_node as f64;
            let hd_rate = spec.hd_bw * spec.gpus_per_node as f64;
            let t0 = flops / gpu_rate;
            let t1 = (m_loc * n_loc + (m_loc + n_loc) * b) * eb / hd_rate;
            let t2 = 3.0 * m_loc * n_loc * eb / spec.host_mem_bw;
            let dur = match cfg.oog_streams {
                0 | 1 => t0 + t1 + t2,
                2 => (t0.max(t1 + t2)).min(t1.max(t0 + t2)).min(t2.max(t0 + t1)),
                _ => t0.max(t1).max(t2),
            };
            // charge the equivalent flops so utilization stays meaningful
            cl.gpu_task(node, dur * gpu_rate, PRI_OUTER, deps)
        }
        Exec::InCoreGemm => cl.gpu_task(node, flops, PRI_OUTER, deps),
    }
}

/// Build the full DAG for `cfg` into `cl`.
fn build_dag(cl: &mut Cluster, cfg: &ScheduleConfig) {
    let nodes = cfg.kr * cfg.kc;
    let nb = cfg.n.div_ceil(cfg.block);
    let bulk_sync = cfg.schedule == FwSchedule::BulkSync;

    if bulk_sync {
        // ---- Algorithm 3 shape: strict phases with an iteration barrier ----
        let mut barrier: Vec<TaskId> = Vec::new();
        for k in 0..nb {
            let diag_dep: Vec<TaskId> = barrier.clone();
            let row_deps: Vec<Vec<TaskId>> = (0..cfg.kc).map(|_| barrier.clone()).collect();
            let col_deps: Vec<Vec<TaskId>> = (0..cfg.kr).map(|_| barrier.clone()).collect();
            let (row_ready, col_ready) =
                diag_and_panel_phase(cl, cfg, k, &diag_dep, &row_deps, &col_deps, PRI_PANEL);
            let (row_arr, col_arr) = panel_bcasts(cl, cfg, k, &row_ready, &col_ready);
            let mut outers = Vec::with_capacity(nodes);
            for nd in 0..nodes {
                let deps = [row_arr[nd], col_arr[nd]];
                outers.push(outer_task(cl, cfg, nd, &deps));
            }
            // synthetic barrier: a zero-duration intra task on node 0
            cl.set_phase("Sync");
            let b = cl.send_task(0, 0, 0.0, PRI_PANEL, &outers);
            barrier = vec![b];
        }
    } else {
        // ---- Algorithm 4 shape: look-ahead pipeline, no global barrier ----
        // per-node "last outer update" (carried between iterations)
        let mut last_outer: Vec<Vec<TaskId>> = vec![Vec::new(); nodes];
        let no_deps: Vec<Vec<TaskId>> = vec![Vec::new(); cfg.kr.max(cfg.kc)];
        // prologue: k = 0 panels
        let (row_ready, col_ready) =
            diag_and_panel_phase(cl, cfg, 0, &[], &no_deps[..cfg.kc], &no_deps[..cfg.kr], PRI_PANEL);
        let (mut row_arr, mut col_arr) = panel_bcasts(cl, cfg, 0, &row_ready, &col_ready);

        for k in 0..nb {
            let mut next_arr = None;
            if k + 1 < nb {
                // look-ahead: relax the (k+1) strips with the k panels,
                // then run the (k+1) diag/panel phase
                let b = cfg.block as f64;
                let nrow = (k + 1) % cfg.kr;
                let ncol = (k + 1) % cfg.kc;
                let la_row_flops = 2.0 * b * b * (cfg.n as f64 / cfg.kc as f64);
                let la_col_flops = 2.0 * b * b * (cfg.n as f64 / cfg.kr as f64);
                cl.set_phase("OuterUpdate"); // look-ahead = OuterUpdate(k) on the k+1 strips
                let mut la_row: Vec<Vec<TaskId>> = Vec::with_capacity(cfg.kc);
                for c in 0..cfg.kc {
                    let node = node_at(cfg, nrow, c);
                    let t = cl.gpu_task(node, la_row_flops, PRI_LOOKAHEAD, &[row_arr[node], col_arr[node]]);
                    la_row.push(vec![t]);
                }
                let mut la_col: Vec<Vec<TaskId>> = Vec::with_capacity(cfg.kr);
                for r in 0..cfg.kr {
                    let node = node_at(cfg, r, ncol);
                    let t = cl.gpu_task(node, la_col_flops, PRI_LOOKAHEAD, &[row_arr[node], col_arr[node]]);
                    la_col.push(vec![t]);
                }
                let diag_node = node_at(cfg, nrow, ncol);
                let diag_dep = vec![row_arr[diag_node], col_arr[diag_node]];
                let (rr, cr) =
                    diag_and_panel_phase(cl, cfg, k + 1, &diag_dep, &la_row, &la_col, PRI_LOOKAHEAD);
                next_arr = Some(panel_bcasts(cl, cfg, k + 1, &rr, &cr));
            }
            // bulk OuterUpdate(k) per node — overlaps the (k+1) broadcasts
            for nd in 0..nodes {
                let mut deps = vec![row_arr[nd], col_arr[nd]];
                deps.extend_from_slice(&last_outer[nd]);
                let t = outer_task(cl, cfg, nd, &deps);
                last_outer[nd] = vec![t];
            }
            if let Some((ra, ca)) = next_arr {
                row_arr = ra;
                col_arr = ca;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_export_carries_all_phase_names() {
        let spec = MachineSpec::summit(4);
        for variant in Variant::all() {
            let cfg = ScheduleConfig::new(40_000, variant, 2, 2);
            let (outcome, json) = simulate_with_trace(&spec, &cfg).expect("feasible");
            assert!(outcome.seconds > 0.0);
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            for phase in ["DiagUpdate", "DiagBcast", "PanelUpdate", "PanelBcast", "OuterUpdate"] {
                assert!(json.contains(&format!("\"name\":\"{phase}\"")), "{variant:?} missing {phase}");
            }
            assert!(json.contains("\"gpu0\"") && json.contains("\"nic3\""), "resource names");
        }
    }

    #[test]
    fn come_hides_panel_bcast_behind_outer_update() {
        // Beyond the in-GPU-memory wall, only the offload execs are
        // feasible; composing look-ahead + ring onto offload (Co+Me) must
        // strictly beat bulk-synchronous offload because PanelBcast(k+1)
        // now overlaps OuterUpdate(k) instead of extending the critical
        // path.
        let spec = MachineSpec::summit(4);
        let n = 400_000;
        assert!(n > model::max_vertices_in_gpu_memory(&spec, 4), "test must sit beyond the memory wall");
        let ofl = simulate(&spec, &ScheduleConfig::new(n, Variant::Offload, 2, 2)).expect("offload feasible");
        let come = simulate(&spec, &ScheduleConfig::new(n, Variant::CoMe, 2, 2)).expect("Co+Me feasible");
        assert!(
            come.seconds < ofl.seconds,
            "Co+Me ({:.2}s) should beat bulk-sync offload ({:.2}s)",
            come.seconds,
            ofl.seconds
        );
        // and the in-core schedules must remain infeasible here
        assert!(simulate(&spec, &ScheduleConfig::new(n, Variant::Pipelined, 2, 2)).is_err());
    }

    #[test]
    fn node_fault_stalls_the_simulation_with_a_typed_report() {
        let spec = MachineSpec::summit(4);
        let cfg = ScheduleConfig::new(40_000, Variant::Pipelined, 2, 2);
        let clean = simulate(&spec, &cfg).expect("feasible");

        // node 1 dying at t=0 wedges the schedule: the typed report carries
        // progress, the stall time, and the detection time
        let out = simulate_node_fault(&spec, &cfg, 1, 0.0, 30.0).expect("feasible");
        let FaultedOutcome::Stalled(stall) = out else { panic!("expected a stall, got {out:?}") };
        assert_eq!(stall.node, 1);
        assert!(stall.completed < stall.total, "{}/{}", stall.completed, stall.total);
        assert!(stall.stalled_at < clean.seconds);
        assert!((stall.detected_at - (stall.stalled_at + 30.0)).abs() < 1e-12);
        let report = stall.to_string();
        assert!(report.contains("node 1 died") && report.contains("recv timeout"), "{report}");

        // a fault after the makespan never bites: identical outcome
        let out = simulate_node_fault(&spec, &cfg, 1, clean.seconds + 1.0, 30.0).expect("feasible");
        let FaultedOutcome::Completed(done) = out else { panic!("late fault must not stall") };
        assert_eq!(done.seconds, clean.seconds);

        // naming a node the machine does not have is an input error
        assert!(simulate_node_fault(&spec, &cfg, 99, 0.0, 30.0).is_err());
    }

    #[test]
    fn trace_outcome_matches_untraced_simulation() {
        let spec = MachineSpec::summit(4);
        let cfg = ScheduleConfig::new(40_000, Variant::Pipelined, 2, 2);
        let (traced, _) = simulate_with_trace(&spec, &cfg).expect("feasible");
        let plain = simulate(&spec, &cfg).expect("feasible");
        assert_eq!(traced.seconds, plain.seconds);
        assert_eq!(traced.pflops, plain.pflops);
    }
}
