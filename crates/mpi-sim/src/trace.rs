//! Per-rank, per-phase tracing of a runtime execution.
//!
//! The paper analyzes every variant through the same five-phase iteration
//! structure (Alg. 3/4): `DiagUpdate → DiagBcast → PanelUpdate → PanelBcast
//! → OuterUpdate`. This module records, for every rank, when each phase was
//! open (monotonic-clock spans relative to a per-run epoch) and every
//! message the rank sent, then merges the per-rank timelines into a
//! [`RunTrace`] that exports
//!
//! * Chrome/Perfetto `trace_events` JSON ([`RunTrace::to_chrome_json`]) —
//!   load it in `chrome://tracing` or <https://ui.perfetto.dev>; one track
//!   (`tid`) per rank;
//! * a phase-summary table ([`RunTrace::phase_summary`]) combining per-phase
//!   wall time with the phase-attributed traffic of the run's
//!   [`TrafficReport`].
//!
//! Phases are opened with the guard API [`crate::Comm::phase`]; the guard
//! also parks the phase name in a thread-local, which is how the traffic
//! [`crate::counters`] attribute each sent byte to the sending rank's
//! currently-open phase even when no trace recorder is attached.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use parking_lot::Mutex;

use crate::counters::TrafficReport;

/// The five phase names of one blocked-FW iteration, in paper order.
pub const PHASES: [&str; 5] =
    ["DiagUpdate", "DiagBcast", "PanelUpdate", "PanelBcast", "OuterUpdate"];

/// Bucket name for traffic sent while no phase guard is open.
pub const UNTRACED: &str = "(untraced)";

thread_local! {
    static PHASE_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The innermost phase currently open on this thread (= this rank), if any.
pub fn current_phase() -> Option<&'static str> {
    PHASE_STACK.with(|s| s.borrow().last().copied())
}

pub(crate) fn push_phase(name: &'static str) {
    PHASE_STACK.with(|s| s.borrow_mut().push(name));
}

pub(crate) fn pop_phase() {
    PHASE_STACK.with(|s| {
        s.borrow_mut().pop().expect("phase guard dropped without a matching push");
    });
}

/// One closed phase interval on one rank; times are µs since the run epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Phase name (one of [`PHASES`] for the FW loops; any label is legal).
    pub name: &'static str,
    /// Open time, µs since the runtime's epoch.
    pub start_us: u64,
    /// Close time, µs since the runtime's epoch.
    pub end_us: u64,
}

impl Span {
    /// Span length in µs.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One message leaving a rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgEvent {
    /// Send time, µs since the runtime's epoch.
    pub ts_us: u64,
    /// Destination world rank.
    pub dst_world: usize,
    /// Payload bytes.
    pub bytes: usize,
    /// True when the message crossed node boundaries (NIC traffic).
    pub nic: bool,
    /// Sending rank's open phase at send time.
    pub phase: Option<&'static str>,
}

/// One rank's recorded timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankTimeline {
    /// Closed phase spans, in close order.
    pub spans: Vec<Span>,
    /// Sent messages, in send order.
    pub events: Vec<MsgEvent>,
}

/// Live recorder shared by all ranks of one traced run.
pub(crate) struct TraceState {
    epoch: Instant,
    ranks: Vec<Mutex<RankTimeline>>,
}

impl TraceState {
    pub(crate) fn new(p: usize) -> Self {
        TraceState {
            epoch: Instant::now(),
            ranks: (0..p).map(|_| Mutex::new(RankTimeline::default())).collect(),
        }
    }

    pub(crate) fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub(crate) fn record_span(&self, world_rank: usize, span: Span) {
        self.ranks[world_rank].lock().spans.push(span);
    }

    pub(crate) fn record_msg(&self, world_rank: usize, event: MsgEvent) {
        self.ranks[world_rank].lock().events.push(event);
    }

    /// Drain into the immutable merged view (call after all ranks joined).
    pub(crate) fn finish(&self) -> RunTrace {
        RunTrace {
            per_rank: self.ranks.iter().map(|m| m.lock().clone()).collect(),
        }
    }
}

/// Merged per-rank timelines of one finished run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunTrace {
    /// Timeline of each rank, indexed by world rank.
    pub per_rank: Vec<RankTimeline>,
}

impl RunTrace {
    /// Number of ranks recorded.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Total span wall time per phase name, summed across ranks
    /// (rank-microseconds; concurrent ranks add up).
    pub fn phase_wall_us(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for tl in &self.per_rank {
            for s in &tl.spans {
                *out.entry(s.name).or_insert(0) += s.dur_us();
            }
        }
        out
    }

    /// Chrome `trace_events` JSON: one process, one track (`tid`) per rank.
    /// Phase spans are complete (`"ph":"X"`) events; sends are instant
    /// (`"ph":"i"`) events carrying `dst`/`bytes`/`nic`/`phase` args.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &str, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(s);
        };
        for (rank, tl) in self.per_rank.iter().enumerate() {
            emit(
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
                     \"args\":{{\"name\":\"rank {rank}\"}}}}"
                ),
                &mut out,
            );
            for s in &tl.spans {
                emit(
                    &format!(
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,\
                         \"tid\":{rank},\"ts\":{},\"dur\":{}}}",
                        escape_json(s.name),
                        s.start_us,
                        s.dur_us()
                    ),
                    &mut out,
                );
            }
            for e in &tl.events {
                emit(
                    &format!(
                        "{{\"name\":\"send\",\"cat\":\"msg\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":0,\"tid\":{rank},\"ts\":{},\"args\":{{\"dst\":{},\
                         \"bytes\":{},\"nic\":{},\"phase\":\"{}\"}}}}",
                        e.ts_us,
                        e.dst_world,
                        e.bytes,
                        e.nic,
                        escape_json(e.phase.unwrap_or(UNTRACED))
                    ),
                    &mut out,
                );
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Human-readable per-phase table: wall time (summed over ranks), NIC
    /// bytes, NIC message count and total message count, joining this
    /// trace's spans with the run's phase-attributed [`TrafficReport`].
    pub fn phase_summary(&self, traffic: &TrafficReport) -> String {
        let wall = self.phase_wall_us();
        // stable row order: the five paper phases first, then anything else
        let mut names: Vec<&str> = PHASES.to_vec();
        for k in wall.keys() {
            if !names.contains(k) {
                names.push(k);
            }
        }
        for k in traffic.per_phase.keys() {
            if !names.iter().any(|n| n == k) {
                names.push(k.as_str());
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>14} {:>14} {:>10} {:>10}",
            "phase", "rank-wall (ms)", "nic bytes", "nic msgs", "msgs"
        );
        for name in names {
            let w = wall.get(name).copied().unwrap_or(0);
            let t = traffic.per_phase.get(name).copied().unwrap_or_default();
            if w == 0 && t.msgs == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<14} {:>14.3} {:>14} {:>10} {:>10}",
                name,
                w as f64 / 1e3,
                t.nic_bytes,
                t.nic_msgs,
                t.msgs
            );
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RunTrace {
        RunTrace {
            per_rank: vec![
                RankTimeline {
                    spans: vec![
                        Span { name: "DiagUpdate", start_us: 0, end_us: 5 },
                        Span { name: "OuterUpdate", start_us: 5, end_us: 30 },
                    ],
                    events: vec![MsgEvent {
                        ts_us: 2,
                        dst_world: 1,
                        bytes: 64,
                        nic: true,
                        phase: Some("DiagUpdate"),
                    }],
                },
                RankTimeline {
                    spans: vec![Span { name: "OuterUpdate", start_us: 1, end_us: 11 }],
                    events: vec![],
                },
            ],
        }
    }

    #[test]
    fn chrome_json_has_span_and_msg_events() {
        let json = sample_trace().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"DiagUpdate\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"bytes\":64"));
        // balanced braces/brackets — cheap well-formedness check
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn phase_wall_sums_across_ranks() {
        let wall = sample_trace().phase_wall_us();
        assert_eq!(wall["DiagUpdate"], 5);
        assert_eq!(wall["OuterUpdate"], 25 + 10);
    }

    #[test]
    fn phase_stack_nests() {
        assert_eq!(current_phase(), None);
        push_phase("PanelBcast");
        push_phase("OuterUpdate");
        assert_eq!(current_phase(), Some("OuterUpdate"));
        pop_phase();
        assert_eq!(current_phase(), Some("PanelBcast"));
        pop_phase();
        assert_eq!(current_phase(), None);
    }

    #[test]
    fn escapes_hostile_names() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
