//! Line-oriented request/response protocol for `apsp serve`.
//!
//! One request per line (whitespace-separated tokens, case-insensitive
//! command word; blank lines and `#` comments are ignored), one response
//! line per request. Batch-aware by construction: `dist` and `update`
//! carry any number of pairs/triples in a single line, and every answer in
//! the line comes from a single epoch.
//!
//! ```text
//! request                          response
//! -------                          --------
//! dist <s> <t> [<s> <t> …]         ok <epoch> <d> [<d> …]
//! many <s> <t1> [<t2> …]           ok <epoch> <d1> [<d2> …]
//! path <s> <t>                     ok <epoch> <d> via <v0> <v1> … <vk>
//!                                  ok <epoch> unreachable
//! update <u> <v> <w> [<u> <v> <w> …]
//!                                  ok <epoch> applied=<a> rejected=<r> improved=<p>
//!                                     [reject@<i>=<kind> …]
//! epoch                            ok <epoch>
//! info                             ok <epoch> n=<n>
//! quit                             bye            (closes this connection)
//! shutdown                         bye            (stops the whole server)
//! ```
//!
//! Failures never kill the connection: an unparseable line answers
//! `err parse: …`, an out-of-range query vertex answers
//! `err badvertex: …`, and malformed *updates* come back inside the `ok`
//! line as typed per-entry rejections (`reject@<i>=<badvertex|negselfloop|
//! negcycle|nanweight|notadecrease>`) — the server keeps serving, which is
//! what the CI smoke asserts.
//!
//! Distances print as shortest-roundtrip floats; unreachable is `inf`.

use super::engine::Engine;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Batched point-to-point distance queries.
    Dist(Vec<(usize, usize)>),
    /// One source, many targets.
    Many {
        /// Source vertex.
        src: usize,
        /// Target vertices.
        targets: Vec<usize>,
    },
    /// Shortest path with vertex sequence.
    Path {
        /// Source vertex.
        src: usize,
        /// Destination vertex.
        dst: usize,
    },
    /// A writer batch of edge decreases.
    Update(Vec<(usize, usize, f32)>),
    /// Current epoch number.
    Epoch,
    /// Epoch plus matrix size.
    Info,
    /// Close this connection.
    Quit,
    /// Stop the server process.
    Shutdown,
}

/// A response plus connection-control flags.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// The response line (no trailing newline).
    pub text: String,
    /// Close this client connection after sending.
    pub close: bool,
    /// Stop the whole server after sending.
    pub shutdown: bool,
}

impl Reply {
    fn line(text: String) -> Reply {
        Reply { text, close: false, shutdown: false }
    }
}

fn parse_usize(tok: &str, what: &str) -> Result<usize, String> {
    tok.parse().map_err(|_| format!("bad {what} '{tok}'"))
}

fn parse_f32(tok: &str) -> Result<f32, String> {
    tok.parse().map_err(|_| format!("bad weight '{tok}'"))
}

/// Parse one request line. `Ok(None)` for blank lines and `#` comments.
pub fn parse(line: &str) -> Result<Option<Request>, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let Some((&cmd, args)) = toks.split_first() else {
        return Ok(None);
    };
    if cmd.starts_with('#') {
        return Ok(None);
    }
    let req = match cmd.to_ascii_lowercase().as_str() {
        "dist" => {
            if args.is_empty() || !args.len().is_multiple_of(2) {
                return Err("dist needs pairs: dist <s> <t> [<s> <t> ...]".into());
            }
            let pairs = args
                .chunks(2)
                .map(|c| Ok((parse_usize(c[0], "vertex")?, parse_usize(c[1], "vertex")?)))
                .collect::<Result<Vec<_>, String>>()?;
            Request::Dist(pairs)
        }
        "many" => {
            if args.len() < 2 {
                return Err("many needs a source and targets: many <s> <t1> [<t2> ...]".into());
            }
            let src = parse_usize(args[0], "vertex")?;
            let targets = args[1..]
                .iter()
                .map(|t| parse_usize(t, "vertex"))
                .collect::<Result<Vec<_>, String>>()?;
            Request::Many { src, targets }
        }
        "path" => {
            if args.len() != 2 {
                return Err("path needs exactly two vertices: path <s> <t>".into());
            }
            Request::Path {
                src: parse_usize(args[0], "vertex")?,
                dst: parse_usize(args[1], "vertex")?,
            }
        }
        "update" => {
            if args.is_empty() || !args.len().is_multiple_of(3) {
                return Err("update needs triples: update <u> <v> <w> [<u> <v> <w> ...]".into());
            }
            let triples = args
                .chunks(3)
                .map(|c| {
                    Ok((
                        parse_usize(c[0], "vertex")?,
                        parse_usize(c[1], "vertex")?,
                        parse_f32(c[2])?,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Request::Update(triples)
        }
        "epoch" => Request::Epoch,
        "info" => Request::Info,
        "quit" => Request::Quit,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown command '{other}'")),
    };
    Ok(Some(req))
}

fn fmt_dist(d: f32) -> String {
    if d.is_infinite() {
        "inf".to_string()
    } else {
        format!("{d}")
    }
}

/// Handle one request line end-to-end: parse, execute against `engine`,
/// render. Returns `None` for blank/comment lines (no response is owed).
/// Never panics on malformed input — every failure renders as an `err …`
/// or typed in-line rejection.
pub fn handle_line(engine: &Engine, line: &str) -> Option<Reply> {
    let req = match parse(line) {
        Ok(Some(req)) => req,
        Ok(None) => return None,
        Err(msg) => return Some(Reply::line(format!("err parse: {msg}"))),
    };
    Some(handle(engine, &req))
}

/// Execute a parsed request against the engine and render the response.
pub fn handle(engine: &Engine, req: &Request) -> Reply {
    match req {
        Request::Dist(pairs) => {
            let snap = engine.snapshot();
            match snap.dist_batch(pairs) {
                Ok(ds) => {
                    let vals: Vec<String> = ds.iter().map(|&d| fmt_dist(d)).collect();
                    Reply::line(format!("ok {} {}", snap.epoch(), vals.join(" ")))
                }
                Err(e) => Reply::line(format!("err badvertex: {e}")),
            }
        }
        Request::Many { src, targets } => {
            let snap = engine.snapshot();
            match snap.one_to_many(*src, targets) {
                Ok(ds) => {
                    let vals: Vec<String> = ds.iter().map(|&d| fmt_dist(d)).collect();
                    Reply::line(format!("ok {} {}", snap.epoch(), vals.join(" ")))
                }
                Err(e) => Reply::line(format!("err badvertex: {e}")),
            }
        }
        Request::Path { src, dst } => {
            let snap = engine.snapshot();
            match snap.path(*src, *dst) {
                Ok(Some((d, path))) => {
                    let verts: Vec<String> = path.iter().map(|v| v.to_string()).collect();
                    Reply::line(format!(
                        "ok {} {} via {}",
                        snap.epoch(),
                        fmt_dist(d),
                        verts.join(" ")
                    ))
                }
                Ok(None) => Reply::line(format!("ok {} unreachable", snap.epoch())),
                Err(e) => Reply::line(format!("err badvertex: {e}")),
            }
        }
        Request::Update(triples) => {
            let out = engine.apply(triples);
            let mut text = format!(
                "ok {} applied={} rejected={} improved={}",
                out.epoch,
                out.report.applied,
                out.report.rejected(),
                out.report.improved
            );
            for (i, e) in out.report.rejections() {
                text.push_str(&format!(" reject@{i}={e}"));
            }
            Reply::line(text)
        }
        Request::Epoch => Reply::line(format!("ok {}", engine.latest_epoch())),
        Request::Info => {
            let snap = engine.snapshot();
            Reply::line(format!("ok {} n={}", snap.epoch(), snap.n()))
        }
        Request::Quit => Reply { text: "bye".into(), close: true, shutdown: false },
        Request::Shutdown => Reply { text: "bye".into(), close: true, shutdown: true },
    }
}

/// Parse an `ok <epoch> …` response line into (epoch, payload tokens).
/// The load generator uses this to check per-batch epoch consistency from
/// the wire format alone.
pub fn parse_ok(line: &str) -> Result<(u64, Vec<String>), String> {
    let mut toks = line.split_whitespace();
    match toks.next() {
        Some("ok") => {}
        _ => return Err(format!("expected 'ok …', got '{line}'")),
    }
    let epoch = toks
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("missing epoch in '{line}'"))?;
    Ok((epoch, toks.map(String::from).collect()))
}

/// Parse a distance token as rendered by the server (`inf` or a float).
pub fn parse_dist_tok(tok: &str) -> Result<f32, String> {
    if tok == "inf" {
        return Ok(f32::INFINITY);
    }
    tok.parse().map_err(|_| format!("bad distance token '{tok}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};

    fn engine() -> Engine {
        let g = generators::erdos_renyi(16, 0.3, WeightKind::small_ints(), 5);
        Engine::solve_from_graph(&g, 8)
    }

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(
            parse("dist 0 1 2 3").unwrap().unwrap(),
            Request::Dist(vec![(0, 1), (2, 3)])
        );
        assert_eq!(
            parse("MANY 4 1 2").unwrap().unwrap(),
            Request::Many { src: 4, targets: vec![1, 2] }
        );
        assert_eq!(parse("path 0 5").unwrap().unwrap(), Request::Path { src: 0, dst: 5 });
        assert_eq!(
            parse("update 0 1 2.5").unwrap().unwrap(),
            Request::Update(vec![(0, 1, 2.5)])
        );
        assert_eq!(parse("epoch").unwrap().unwrap(), Request::Epoch);
        assert_eq!(parse("info").unwrap().unwrap(), Request::Info);
        assert_eq!(parse("quit").unwrap().unwrap(), Request::Quit);
        assert_eq!(parse("shutdown").unwrap().unwrap(), Request::Shutdown);
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("# comment").unwrap(), None);
        assert!(parse("dist 0").is_err()); // odd pair count
        assert!(parse("update 0 1").is_err()); // incomplete triple
        assert!(parse("frobnicate").is_err());
    }

    #[test]
    fn dist_and_path_answers_carry_one_epoch() {
        let e = engine();
        let r = handle_line(&e, "dist 0 1 1 2 2 3").unwrap();
        let (epoch, vals) = parse_ok(&r.text).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(vals.len(), 3);
        for v in &vals {
            parse_dist_tok(v).unwrap();
        }
        let r = handle_line(&e, "path 0 7").unwrap();
        assert!(r.text.starts_with("ok 0 "));
    }

    #[test]
    fn bad_input_is_a_typed_error_not_a_crash() {
        let e = engine();
        // unparseable line
        let r = handle_line(&e, "dist zero one").unwrap();
        assert!(r.text.starts_with("err parse:"), "{}", r.text);
        // out-of-range query
        let r = handle_line(&e, "dist 0 9999").unwrap();
        assert!(r.text.starts_with("err badvertex:"), "{}", r.text);
        // out-of-range update: typed in-line rejection, epoch unchanged
        let r = handle_line(&e, "update 0 9999 1.0").unwrap();
        assert_eq!(r.text, "ok 0 applied=0 rejected=1 improved=0 reject@0=badvertex");
        // negative self-loop and NaN
        let r = handle_line(&e, "update 3 3 -1 0 1 NaN").unwrap();
        assert!(r.text.contains("reject@0=negselfloop"), "{}", r.text);
        assert!(r.text.contains("reject@1=nanweight"), "{}", r.text);
        // the server still answers queries afterwards
        let r = handle_line(&e, "info").unwrap();
        assert_eq!(r.text, "ok 0 n=16");
        assert!(!r.close && !r.shutdown);
    }

    #[test]
    fn updates_advance_the_epoch_and_later_queries_see_it() {
        let e = engine();
        let r = handle_line(&e, "update 0 9 0.5").unwrap();
        assert!(r.text.starts_with("ok 1 applied=1"), "{}", r.text);
        let r = handle_line(&e, "dist 0 9").unwrap();
        let (epoch, vals) = parse_ok(&r.text).unwrap();
        assert_eq!(epoch, 1);
        assert!(parse_dist_tok(&vals[0]).unwrap() <= 0.5);
        let r = handle_line(&e, "epoch").unwrap();
        assert_eq!(r.text, "ok 1");
    }

    #[test]
    fn quit_and_shutdown_set_their_flags() {
        let e = engine();
        let q = handle_line(&e, "quit").unwrap();
        assert!(q.close && !q.shutdown);
        let s = handle_line(&e, "shutdown").unwrap();
        assert!(s.close && s.shutdown);
    }
}
