//! Result-equivalence helpers used across the test suites and harnesses,
//! mirroring the paper's §5.1: "we experimentally confirmed that the output
//! of our revised implementations match outputs of the sequential
//! Floyd-Warshall baseline."

use srgemm::matrix::Matrix;

/// Exact elementwise equality, reporting the first mismatch.
pub fn assert_matrices_equal(want: &Matrix<f32>, got: &Matrix<f32>, label: &str) {
    assert_eq!(
        (want.rows(), want.cols()),
        (got.rows(), got.cols()),
        "{label}: shape mismatch"
    );
    for i in 0..want.rows() {
        for j in 0..want.cols() {
            let (w, g) = (want[(i, j)], got[(i, j)]);
            assert!(
                w == g || (w.is_infinite() && g.is_infinite()),
                "{label}: mismatch at ({i},{j}): want {w}, got {g}"
            );
        }
    }
}

/// Max absolute difference over finite entries; `∞` entries must agree
/// exactly. Returns the max difference.
pub fn max_abs_diff(a: &Matrix<f32>, b: &Matrix<f32>) -> f32 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let mut worst = 0.0f32;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let (x, y) = (a[(i, j)], b[(i, j)]);
            match (x.is_infinite(), y.is_infinite()) {
                (true, true) => {}
                (false, false) => worst = worst.max((x - y).abs()),
                _ => return f32::INFINITY,
            }
        }
    }
    worst
}

/// APSP output invariants that hold regardless of the algorithm used:
/// zero diagonal, non-negativity (for non-negative inputs), and the
/// triangle inequality. Cheap enough to run on every harness output.
pub fn check_apsp_invariants(d: &Matrix<f32>, label: &str) {
    let n = d.rows();
    assert_eq!(n, d.cols(), "{label}: not square");
    for i in 0..n {
        assert_eq!(d[(i, i)], 0.0, "{label}: diagonal not zero at {i}");
    }
    for i in 0..n {
        for j in 0..n {
            assert!(d[(i, j)] >= 0.0, "{label}: negative distance at ({i},{j})");
        }
    }
    // spot-check the triangle inequality on a deterministic sample
    let step = (n / 8).max(1);
    for i in (0..n).step_by(step) {
        for j in (0..n).step_by(step) {
            for k in (0..n).step_by(step) {
                assert!(
                    d[(i, j)] <= d[(i, k)] + d[(k, j)] + 1e-3,
                    "{label}: triangle violated at ({i},{k},{j})"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_matrices_pass() {
        let a = Matrix::from_rows(&[&[0.0, f32::INFINITY], &[1.0, 0.0]]);
        assert_matrices_equal(&a, &a.clone(), "self");
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch at (0,1)")]
    fn different_matrices_fail_with_location() {
        let a = Matrix::from_rows(&[&[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[0.0, 2.0]]);
        assert_matrices_equal(&a, &b, "demo");
    }

    #[test]
    fn inf_vs_finite_is_infinite_diff() {
        let a = Matrix::from_rows(&[&[f32::INFINITY]]);
        let b = Matrix::from_rows(&[&[5.0]]);
        assert_eq!(max_abs_diff(&a, &b), f32::INFINITY);
    }

    #[test]
    fn invariants_accept_valid_apsp() {
        let d = Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[9.0, 0.0, 1.0], &[8.0, 9.0, 0.0]]);
        check_apsp_invariants(&d, "valid");
    }

    #[test]
    #[should_panic(expected = "triangle")]
    fn invariants_reject_triangle_violation() {
        let d = Matrix::from_rows(&[&[0.0, 10.0, 1.0], &[1.0, 0.0, 1.0], &[1.0, 1.0, 0.0]]);
        check_apsp_invariants(&d, "bad");
    }
}
