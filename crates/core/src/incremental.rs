//! Incremental Floyd-Warshall — the paper's §7 future-work item
//! ("we plan to extend this work to support … incremental Floyd-Warshall,
//! which \[is\] critical in applications").
//!
//! Given a solved distance matrix, an edge insertion or weight *decrease*
//! `(u, v, w)` is absorbed in `O(n²)`: every pair `(i, j)` can only improve
//! by routing through the new edge, so
//! `d[i][j] ← d[i][j] ⊕ (d[i][u] ⊗ w ⊗ d[v][j])`.
//! Weight increases and deletions can invalidate routes and require
//! recomputation in general; [`decrease_edge`] detects and rejects them.
//!
//! A batched form applies `m` updates in `O(m·n²)`, which beats the `O(n³)`
//! re-solve whenever `m ≪ n` — exactly the dynamic-graph use case
//! (traffic updates on a road network, new facts in a knowledge graph).

use srgemm::matrix::Matrix;
use srgemm::semiring::Semiring;

/// Errors from the incremental updater.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncrementalError {
    /// The new weight does not improve on the current `d[u][v]`; an
    /// increase cannot be absorbed incrementally (it may invalidate paths).
    NotADecrease,
    /// Endpoint out of range.
    BadVertex,
}

/// Absorb an improved (or new) edge `u → v` of weight `w` into a solved
/// all-pairs matrix, in `O(n²)`. The matrix must already be a closure
/// (output of any `fw_*` solver). Returns the number of pairs improved.
///
/// Works over any idempotent semiring where "improve" means the new value
/// differs from the ⊕-combination (min-plus: strictly smaller).
pub fn decrease_edge<S: Semiring>(
    d: &mut Matrix<S::Elem>,
    u: usize,
    v: usize,
    w: S::Elem,
) -> Result<usize, IncrementalError> {
    let n = d.rows();
    if u >= n || v >= n {
        return Err(IncrementalError::BadVertex);
    }
    // reject non-improving updates: d[u][v] ⊕ w must differ from d[u][v]
    let combined = S::add(d[(u, v)], w);
    if combined == d[(u, v)] {
        return Err(IncrementalError::NotADecrease);
    }

    // snapshot the u-th column and v-th row: the update reads d[i][u] and
    // d[v][j], both of which it may also write
    let col_u: Vec<S::Elem> = (0..n).map(|i| d[(i, u)]).collect();
    let row_v: Vec<S::Elem> = (0..n).map(|j| d[(v, j)]).collect();

    let mut improved = 0usize;
    for (i, &cu) in col_u.iter().enumerate() {
        let through = S::mul(cu, w);
        let drow = d.row_mut(i);
        for (dj, &rv) in drow.iter_mut().zip(&row_v) {
            let cand = S::mul(through, rv);
            let new = S::add(*dj, cand);
            if new != *dj {
                *dj = new;
                improved += 1;
            }
        }
    }
    Ok(improved)
}

/// Apply a batch of candidate edge updates; non-improving entries are
/// skipped. Returns total improved pairs.
pub fn decrease_edges<S: Semiring>(
    d: &mut Matrix<S::Elem>,
    updates: &[(usize, usize, S::Elem)],
) -> usize {
    let mut total = 0;
    for &(u, v, w) in updates {
        match decrease_edge::<S>(d, u, v, w) {
            Ok(k) => total += k,
            Err(IncrementalError::NotADecrease) => {}
            Err(IncrementalError::BadVertex) => panic!("edge endpoint out of range"),
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fw_seq::fw_seq;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::graph::Graph;
    use srgemm::MinPlusF32;

    fn solved(n: usize, p: f64, seed: u64) -> (Graph, Matrix<f32>) {
        let g = generators::erdos_renyi(n, p, WeightKind::small_ints(), seed);
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        (g, d)
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let (g, mut d) = solved(30, 0.15, 5);
        // add a shortcut edge
        let (u, v, w) = (3usize, 27usize, 1.0f32);
        decrease_edge::<MinPlusF32>(&mut d, u, v, w).expect("improves");

        // full recompute with the edge added
        let mut b = apsp_graph::graph::GraphBuilder::new(30);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        b.add_edge(u, v, w);
        let mut want = b.build().to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        assert!(want.eq_exact(&d));
    }

    #[test]
    fn batch_updates_match_recompute() {
        let (g, mut d) = solved(25, 0.2, 9);
        let updates = [(0usize, 20usize, 2.0f32), (5, 10, 1.0), (18, 2, 3.0)];
        decrease_edges::<MinPlusF32>(&mut d, &updates);

        let mut b = apsp_graph::graph::GraphBuilder::new(25);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        for &(u, v, w) in &updates {
            b.add_edge(u, v, w);
        }
        let mut want = b.build().to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        assert!(want.eq_exact(&d));
    }

    #[test]
    fn rejects_weight_increase() {
        let (_, mut d) = solved(10, 0.5, 2);
        let cur = d[(1, 2)];
        assert_eq!(
            decrease_edge::<MinPlusF32>(&mut d, 1, 2, cur + 10.0),
            Err(IncrementalError::NotADecrease)
        );
    }

    #[test]
    fn rejects_bad_vertex() {
        let (_, mut d) = solved(10, 0.5, 2);
        assert_eq!(
            decrease_edge::<MinPlusF32>(&mut d, 1, 99, 0.5),
            Err(IncrementalError::BadVertex)
        );
    }

    #[test]
    fn connecting_components_incrementally() {
        let g = generators::multi_component(20, 2, WeightKind::small_ints(), 4);
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        assert_eq!(d[(0, 19)], f32::INFINITY);
        // bridge the components
        let improved = decrease_edge::<MinPlusF32>(&mut d, 0, 10, 5.0).unwrap();
        assert!(improved > 0);
        assert!(d[(0, 19)].is_finite());
        // still a valid closure
        crate::verify::check_apsp_invariants(&d, "bridged");
    }

    #[test]
    fn update_count_is_zero_for_redundant_edge() {
        let (_, mut d) = solved(15, 0.6, 7);
        // an edge equal to the existing shortest distance improves nothing
        let cur = d[(2, 3)];
        if cur.is_finite() {
            assert_eq!(
                decrease_edge::<MinPlusF32>(&mut d, 2, 3, cur),
                Err(IncrementalError::NotADecrease)
            );
        }
    }
}
