//! Bellman-Ford single-source shortest paths.
//!
//! `O(nm)` relaxation-based SSSP that tolerates negative edges and detects
//! negative cycles — the "embarrassingly parallel but not work optimal"
//! alternative inside Johnson's algorithm (paper §6). It is also what makes
//! [`crate::johnson::johnson_apsp`] applicable to negative-weight inputs.

use crate::graph::{Graph, INF};

/// Result of a Bellman-Ford run.
#[derive(Clone, Debug, PartialEq)]
pub enum BellmanFord {
    /// Distances from the source (`∞` for unreachable).
    Distances(Vec<f32>),
    /// The graph contains a negative-weight cycle reachable from the source.
    NegativeCycle,
}

/// Run Bellman-Ford from `src`.
pub fn bellman_ford(g: &Graph, src: usize) -> BellmanFord {
    let n = g.n();
    assert!(src < n, "source out of range");
    let mut dist = vec![INF; n];
    dist[src] = 0.0;
    // n-1 full relaxation rounds with early exit
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for (u, v, w) in g.edges() {
            if dist[u] < INF && dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            return BellmanFord::Distances(dist);
        }
    }
    // one more round: any improvement ⇒ negative cycle
    for (u, v, w) in g.edges() {
        if dist[u] < INF && dist[u] + w < dist[v] {
            return BellmanFord::NegativeCycle;
        }
    }
    BellmanFord::Distances(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::generators::{self, WeightKind};
    use crate::graph::GraphBuilder;

    #[test]
    fn matches_dijkstra_on_nonnegative_graph() {
        let g = generators::erdos_renyi(20, 0.3, WeightKind::small_ints(), 9);
        for s in [0, 7, 19] {
            match bellman_ford(&g, s) {
                BellmanFord::Distances(d) => assert_eq!(d, dijkstra(&g, s)),
                BellmanFord::NegativeCycle => panic!("no negative cycle exists"),
            }
        }
    }

    #[test]
    fn handles_negative_edges_without_cycle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 5.0).add_edge(1, 2, -3.0).add_edge(0, 2, 4.0);
        match bellman_ford(&b.build(), 0) {
            BellmanFord::Distances(d) => assert_eq!(d, vec![0.0, 5.0, 2.0]),
            BellmanFord::NegativeCycle => panic!(),
        }
    }

    #[test]
    fn detects_negative_cycle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).add_edge(1, 2, -2.0).add_edge(2, 1, 1.0);
        assert_eq!(bellman_ford(&b.build(), 0), BellmanFord::NegativeCycle);
    }

    #[test]
    fn unreachable_negative_cycle_is_ignored() {
        // cycle lives in a component the source can't reach
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, -5.0).add_edge(3, 2, 1.0);
        match bellman_ford(&b.build(), 0) {
            BellmanFord::Distances(d) => {
                assert_eq!(d[1], 1.0);
                assert_eq!(d[2], INF);
            }
            BellmanFord::NegativeCycle => panic!("cycle is unreachable from 0"),
        }
    }
}
