//! Single-node Floyd-Warshall: sequential (Alg. 1) vs blocked (Alg. 2) vs
//! divide-and-conquer (Solomonik comparator) vs block-sparse, with the
//! block-size sweep.

use apsp_core::dc_apsp::dc_apsp;
use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
use apsp_core::fw_seq::fw_seq;
use apsp_core::fw_sparse::fw_block_sparse;
use apsp_graph::generators::{uniform_dense, WeightKind};
use apsp_graph::graph::GraphBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use srgemm::block_sparse::BlockSparseMatrix;
use srgemm::MinPlusF32;

fn bench_fw(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_node_fw");
    g.sample_size(10);
    let n = 384;
    let base = uniform_dense(n, WeightKind::small_ints(), 9).to_dense();
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));

    g.bench_function("sequential", |bch| {
        bch.iter(|| {
            let mut d = base.clone();
            fw_seq::<MinPlusF32>(&mut d);
            d
        })
    });
    for &b in &[32usize, 64, 128] {
        g.bench_with_input(BenchmarkId::new("blocked_serial", b), &b, |bch, &b| {
            bch.iter(|| {
                let mut d = base.clone();
                fw_blocked::<MinPlusF32>(&mut d, b, DiagMethod::FwClosure, false);
                d
            })
        });
        g.bench_with_input(BenchmarkId::new("blocked_parallel", b), &b, |bch, &b| {
            bch.iter(|| {
                let mut d = base.clone();
                fw_blocked::<MinPlusF32>(&mut d, b, DiagMethod::FwClosure, true);
                d
            })
        });
    }
    g.bench_function("dc_apsp", |bch| {
        bch.iter(|| {
            let mut d = base.clone();
            dc_apsp::<MinPlusF32>(&mut d, 64, false);
            d
        })
    });
    g.finish();
}

/// Block-sparse vs dense FW on a banded graph — the §7 sparse payoff.
fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_fw_banded");
    g.sample_size(10);
    let n = 256;
    // bandwidth-8 band graph: dense FW does 2n³ work, sparse skips
    // far-off-band blocks in early iterations
    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        for d in 1..=8usize {
            if i + d < n {
                builder.add_undirected(i, i + d, (d as f32) + 1.0);
            }
        }
    }
    let graph = builder.build();
    let dense0 = graph.to_dense();

    g.bench_function("dense_blocked", |bch| {
        bch.iter(|| {
            let mut d = dense0.clone();
            fw_blocked::<MinPlusF32>(&mut d, 32, DiagMethod::FwClosure, false);
            d
        })
    });
    g.bench_function("block_sparse", |bch| {
        bch.iter(|| {
            let mut sp = BlockSparseMatrix::from_dense(&dense0, 32, f32::INFINITY);
            fw_block_sparse::<MinPlusF32>(&mut sp);
            sp.nnz_blocks()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fw, bench_sparse);
criterion_main!(benches);
