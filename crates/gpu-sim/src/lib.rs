#![warn(missing_docs)]

//! # gpu-sim — a simulated CUDA device for the offload algorithms
//!
//! The paper's `Me-ParallelFw` keeps the distance matrix in host memory and
//! stages work through the GPU (§4.3–4.5). This crate reproduces the three
//! properties of the device that the algorithm depends on:
//!
//! 1. **Finite device memory** — [`device::SimGpu`] is a capacity-limited
//!    allocator; exceeding it fails with [`device::Oom`], which is the
//!    "Beyond GPU Memory" wall of the paper's Fig. 7.
//! 2. **Streams with engine-level overlap** — [`stream::Stream`] ops run
//!    *functionally* on the calling thread (real data, real results) while a
//!    simulated clock models the device: the SRGEMM engine, the H2D and D2H
//!    copy engines, and the host-memory engine each have their own timeline,
//!    and an op starts at the max of its stream cursor and its engine cursor.
//!    Overlap between `SrGemm`, `d2hXfer` and `hostUpdate` (paper Fig. 2)
//!    *emerges* from this model rather than being asserted.
//! 3. **The out-of-GPU SRGEMM** — [`oog::oog_srgemm`] tiles
//!    `C ← C ⊕ A ⊗ B` into `m_x × n_x` chunks round-robined over `s`
//!    streams with pipelined `A_i`/`B_j` uploads, exactly the §4.3–4.4
//!    procedure; [`oog::oog_srgemm_model`] replays the same schedule
//!    timing-only so the paper's Summit-scale sweeps (Figs. 5–6) can run
//!    without materializing terabytes.
//!
//! [`cost`] holds the closed-form §4.5 model (`t0`, `t1`, `t2`, Eq. 5) used
//! to validate the event-level clocks.

pub mod cost;
pub mod device;
pub mod oog;
pub mod spec;
pub mod stream;

pub use device::{DeviceBuffer, Oom, SimGpu};
pub use cost::{min_block_size, min_block_size_disk, OffloadCosts};
pub use oog::{oog_preflight, oog_srgemm, oog_srgemm_model, OogConfig, OogError, OogStats};
pub use spec::GpuSpec;
pub use stream::{Event, Stream};
