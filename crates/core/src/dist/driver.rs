//! The one generic ParallelFw driver loop, parameterized by the policy
//! triple (replacing the hand-rolled baseline/pipelined/offload loops).
//!
//! The [`Schedule`] axis picks between the bulk-synchronous loop of
//! Algorithm 3 and the look-ahead pipeline of Algorithm 4: once the k-th
//! panels are everywhere, the (k+1)-th panels are brought fully up to date
//! first — OuterUpdate(k) restricted to them, then DiagUpdate(k+1),
//! DiagBcast(k+1), PanelUpdate(k+1) and PanelBcast(k+1) — and only then is
//! the big OuterUpdate(k) applied to the rest of the local matrix. In the
//! real system the broadcast of the next panels is in flight *while* the
//! GPU grinds the outer product; functionally the result is identical, and
//! the `cluster-sim` schedule generator turns exactly this reordering into
//! hidden communication time.
//!
//! The [`OuterExec`] trait is the execution axis: [`InCoreGemm`] runs the
//! outer product as one in-memory GEMM; [`GpuOffload`] stages it through a
//! capacity-limited simulated device with `ooGSrGemm` (§4.3), so only the
//! k-th panels plus `s` tile buffers ever live on the device and the
//! feasible problem size is bounded by host memory instead of HBM — the
//! paper's 2.5× head room. Under the look-ahead schedule the strip-level
//! look-ahead updates also flow through the executor, so `Me-ParallelFw`
//! inherits `Co-ParallelFw`'s overlap unchanged (the paper's composed
//! Co+Me system).
//!
//! Device-capacity violations surface as [`DistError::DeviceOom`] — checked
//! up front by [`GpuOffload::preflight`] with rank-independent worst-case
//! arithmetic, so every rank of the grid takes the error path together
//! instead of one rank aborting mid-collective.

use gpu_sim::{oog_srgemm, SimGpu};
use mpi_sim::ProcessGrid;
use srgemm::gemm::{
    budget_threads, gemm_packed, gemm_packed_with_b, gemm_parallel_threads,
    gemm_parallel_threads_with_b, PackedB,
};
use srgemm::matrix::{View, ViewMut};
use srgemm::semiring::Semiring;

use super::{diag_and_panels, DistError, DistMatrix, FwConfig, PackedPanels, Schedule};

/// Execution policy for the OuterUpdate phase: applies
/// `C ← C ⊕ A ⊗ B` to a view of the local matrix (the whole matrix for the
/// bulk update, a single strip for look-ahead updates).
pub trait OuterExec<S: Semiring> {
    /// Apply one outer-product update. `c` is any sub-view of this rank's
    /// local matrix; `a`/`b` are the broadcast column/row panels (or slices
    /// of them).
    fn outer_update(
        &mut self,
        c: &mut ViewMut<'_, S::Elem>,
        a: &View<'_, S::Elem>,
        b: &View<'_, S::Elem>,
    ) -> Result<(), DistError>;

    /// Whether this executor consumes a pre-packed row panel. When `true`,
    /// the driver packs the broadcast row panel once per iteration and feeds
    /// the same [`PackedB`] to every update of that iteration (look-ahead
    /// row strip + bulk) via [`OuterExec::outer_update_packed`].
    fn wants_packed(&self) -> bool {
        false
    }

    /// Apply an outer-product update against a pre-packed `B`. Called only
    /// when [`OuterExec::wants_packed`] returns `true`; the default (for
    /// executors with their own staging pipeline, e.g. the GPU offload
    /// path) panics to flag the contract violation.
    fn outer_update_packed(
        &mut self,
        _c: &mut ViewMut<'_, S::Elem>,
        _a: &View<'_, S::Elem>,
        _pb: &PackedB<S::Elem>,
    ) -> Result<(), DistError> {
        unreachable!("outer_update_packed on an executor with wants_packed() == false")
    }
}

/// In-core execution: the OuterUpdate is one blocked GEMM over the view,
/// row-slab parallel under an explicit thread budget.
///
/// The budget matters because every rank of the mpi-sim grid is already a
/// thread on the same machine: `p` ranks each fanning out to all cores
/// oversubscribes the box `p`-fold and the OuterUpdates *slow down*. The
/// budget rule is `ranks × kernel threads ≤ cores` (DESIGN.md §10):
/// [`InCoreGemm::budgeted`] divides `available_parallelism` by the number
/// of co-resident ranks (floor 1, i.e. the serial kernel).
pub struct InCoreGemm {
    threads: usize,
}

impl InCoreGemm {
    /// Serial OuterUpdate (the pre-budget behavior; also the floor the
    /// budget degrades to when ranks ≥ cores).
    pub fn serial() -> Self {
        InCoreGemm { threads: 1 }
    }

    /// Explicit kernel thread count (`0` is treated as 1).
    pub fn with_threads(threads: usize) -> Self {
        InCoreGemm { threads: threads.max(1) }
    }

    /// Budget for `active_ranks` co-resident ranks:
    /// `available_parallelism / active_ranks`, floor 1.
    pub fn budgeted(active_ranks: usize) -> Self {
        InCoreGemm { threads: budget_threads(active_ranks) }
    }

    /// Kernel threads each OuterUpdate may use.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl<S: Semiring> OuterExec<S> for InCoreGemm {
    fn outer_update(
        &mut self,
        c: &mut ViewMut<'_, S::Elem>,
        a: &View<'_, S::Elem>,
        b: &View<'_, S::Elem>,
    ) -> Result<(), DistError> {
        if self.threads <= 1 {
            gemm_packed::<S>(c, a, b);
        } else {
            gemm_parallel_threads::<S>(c, a, b, self.threads);
        }
        Ok(())
    }

    fn wants_packed(&self) -> bool {
        true
    }

    fn outer_update_packed(
        &mut self,
        c: &mut ViewMut<'_, S::Elem>,
        a: &View<'_, S::Elem>,
        pb: &PackedB<S::Elem>,
    ) -> Result<(), DistError> {
        if self.threads <= 1 {
            gemm_packed_with_b::<S>(c, a, pb);
        } else {
            gemm_parallel_threads_with_b::<S>(c, a, pb, self.threads);
        }
        Ok(())
    }
}

/// `Me-ParallelFw` execution: the local matrix is host-resident and every
/// OuterUpdate is staged through the simulated GPU by `ooGSrGemm`.
pub struct GpuOffload {
    gpu: SimGpu,
    oog: gpu_sim::OogConfig,
    stats: OffloadStats,
}

impl GpuOffload {
    /// Build the executor after checking that the worst-case panels plus
    /// tile buffers fit on the device. The bound uses the *maximum* local
    /// panel extents over the whole `pr × pc` grid, computed from
    /// `(n, b, pr, pc)` alone, so all ranks agree on the verdict.
    pub fn preflight<S: Semiring>(
        cfg: &FwConfig,
        n: usize,
        pr: usize,
        pc: usize,
    ) -> Result<Self, DistError> {
        cfg.oog
            .validate()
            .map_err(|e| DistError::BadConfig { detail: e.to_string() })?;
        let b = cfg.block;
        let nb = n.div_ceil(b);
        let dim = |k: usize| b.min(n - k * b);
        let max_extent = |p: usize| {
            (0..p)
                .map(|r| (r..nb).step_by(p).map(dim).sum::<usize>())
                .max()
                .unwrap_or(0)
        };
        let (lrows_max, lcols_max) = (max_extent(pr), max_extent(pc));
        let esz = std::mem::size_of::<S::Elem>() as u64;
        // widest panel: b whenever there are ≥ 2 blocks, else the lone
        // (possibly ragged) block's n columns
        let panel_w = b.min(n);
        let panels = ((lrows_max + lcols_max) * panel_w) as u64 * esz;
        let tiles = (cfg.oog.streams * cfg.oog.mx * cfg.oog.nx) as u64 * esz;
        let need = panels + tiles;
        if need > cfg.gpu_spec.mem_bytes {
            return Err(DistError::DeviceOom { requested: need, available: cfg.gpu_spec.mem_bytes });
        }
        Ok(GpuOffload {
            gpu: SimGpu::new(cfg.gpu_spec),
            oog: cfg.oog,
            stats: OffloadStats::default(),
        })
    }

    /// Per-rank offload statistics accumulated so far.
    pub fn stats(&self) -> OffloadStats {
        self.stats
    }
}

impl<S: Semiring> OuterExec<S> for GpuOffload {
    fn outer_update(
        &mut self,
        c: &mut ViewMut<'_, S::Elem>,
        a: &View<'_, S::Elem>,
        b: &View<'_, S::Elem>,
    ) -> Result<(), DistError> {
        if c.rows() == 0 || c.cols() == 0 {
            return Ok(());
        }
        let oog_stats = oog_srgemm::<S>(&self.gpu, &self.oog, c, a, b).map_err(|e| match e {
            gpu_sim::OogError::Oom(oom) => {
                DistError::DeviceOom { requested: oom.requested, available: oom.available }
            }
            bad @ gpu_sim::OogError::InvalidConfig { .. } => {
                DistError::BadConfig { detail: bad.to_string() }
            }
        })?;
        self.stats.gpu_seconds += oog_stats.sim_time;
        self.stats.flops += oog_stats.flops;
        self.stats.tiles += oog_stats.tiles;
        self.stats.peak_device_bytes = self.stats.peak_device_bytes.max(oog_stats.device_bytes);
        Ok(())
    }
}

/// Aggregated per-rank offload statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OffloadStats {
    /// Simulated device+host pipeline seconds across all iterations.
    pub gpu_seconds: f64,
    /// Semiring flops pushed through `ooGSrGemm`.
    pub flops: f64,
    /// Output tiles processed.
    pub tiles: usize,
    /// High-water device memory, bytes.
    pub peak_device_bytes: u64,
}

/// Run the configured schedule on this rank's share with the given
/// executor. Collective over `grid`.
pub fn run<S: Semiring, E: OuterExec<S>>(
    grid: &ProcessGrid,
    a: &mut DistMatrix<S::Elem>,
    cfg: &FwConfig,
    exec: &mut E,
) -> Result<(), DistError> {
    assert!(
        S::IDEMPOTENT_ADD,
        "distributed FW relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    if a.nb == 0 {
        return Ok(());
    }
    match cfg.schedule {
        Schedule::BulkSync => run_bulk_sync::<S, E>(grid, a, cfg, exec),
        Schedule::LookAhead => run_look_ahead::<S, E>(grid, a, cfg, exec),
    }
}

/// Algorithm 3 shape: each iteration's five phases run to completion before
/// the next starts — the next iteration's broadcasts cannot complete until
/// every rank reaches them, an implicit bulk-synchronous barrier.
fn run_bulk_sync<S: Semiring, E: OuterExec<S>>(
    grid: &ProcessGrid,
    a: &mut DistMatrix<S::Elem>,
    cfg: &FwConfig,
    exec: &mut E,
) -> Result<(), DistError> {
    for k in 0..a.nb {
        let mut panels = diag_and_panels::<S>(grid, a, k, cfg.diag, cfg.bcast)?;
        if exec.wants_packed() {
            panels.pack_row::<S>();
        }
        // OuterUpdate(k): whole local matrix (re-touching the freshly-updated
        // k-th strips is a no-op — see `fw_blocked`'s module docs)
        let _p = grid.grid.phase("OuterUpdate");
        bulk_outer_update::<S, E>(a, &panels, exec)?;
    }
    Ok(())
}

/// OuterUpdate(k) over the whole local matrix, through the packed row panel
/// when the executor consumes one.
fn bulk_outer_update<S: Semiring, E: OuterExec<S>>(
    a: &mut DistMatrix<S::Elem>,
    panels: &PackedPanels<S::Elem>,
    exec: &mut E,
) -> Result<(), DistError> {
    let mut c = a.local.view_mut();
    let av = panels.col_panel.view();
    match &panels.packed_row {
        Some(pb) => exec.outer_update_packed(&mut c, &av, pb),
        None => exec.outer_update(&mut c, &av, &panels.row_panel.view()),
    }
}

/// Algorithm 4 shape: look-ahead pipeline. The (k+1)-th strips are relaxed
/// with the k-th panels and broadcast before the bulk OuterUpdate(k).
fn run_look_ahead<S: Semiring, E: OuterExec<S>>(
    grid: &ProcessGrid,
    a: &mut DistMatrix<S::Elem>,
    cfg: &FwConfig,
    exec: &mut E,
) -> Result<(), DistError> {
    // Prime the pipeline: diag/panel work for k = 0. Each panel set is
    // packed at most once, right after its broadcast lands, and the same
    // packed copy then serves the look-ahead row strip *and* the bulk
    // OuterUpdate of its iteration.
    let mut panels = diag_and_panels::<S>(grid, a, 0, cfg.diag, cfg.bcast)?;
    if exec.wants_packed() {
        panels.pack_row::<S>();
    }

    for k in 0..a.nb {
        let next = if k + 1 < a.nb {
            // ---- look-ahead: apply OuterUpdate(k) to the (k+1)-th strips only ----
            {
                let _p = grid.grid.phase("OuterUpdate");
                lookahead_update::<S, E>(a, k + 1, &panels, exec)?;
            }
            // ---- then the full (k+1) diag/panel phase, overlapping the big
            //      OuterUpdate(k) in the schedule model ----
            let mut p = diag_and_panels::<S>(grid, a, k + 1, cfg.diag, cfg.bcast)?;
            if exec.wants_packed() {
                p.pack_row::<S>();
            }
            Some(p)
        } else {
            None
        };

        // ---- OuterUpdate(k) over the whole local matrix ----
        // (the k+1 strips were already relaxed with these same panels, and
        // min-plus relaxation is monotone, so re-touching them is a no-op)
        let _p = grid.grid.phase("OuterUpdate");
        bulk_outer_update::<S, E>(a, &panels, exec)?;

        if let Some(p) = next {
            panels = p;
        }
    }
    Ok(())
}

/// OuterUpdate(k-panels only): relax the (k+1)-th block row and column with
/// the k-th panels, so DiagUpdate(k+1)/PanelUpdate(k+1) can run before the
/// bulk OuterUpdate(k) finishes. Flows through the executor so the offload
/// policy stages the strips through the device like any other update.
fn lookahead_update<S: Semiring, E: OuterExec<S>>(
    a: &mut DistMatrix<S::Elem>,
    next: usize,
    panels: &PackedPanels<S::Elem>,
    exec: &mut E,
) -> Result<(), DistError> {
    // row strip `next`: A(next, :) ⊕= A(next, k) ⊗ A(k, :) — the B operand
    // is the *whole* row panel, so the iteration's packed copy is reused
    if a.owns_row(next) {
        let r0 = a.local_row_start(next);
        let bk1 = a.block_dim(next);
        let col_slice = panels.col_panel.subview(r0, 0, bk1, panels.col_panel.cols());
        let mut strip = a.row_strip_mut(next);
        match &panels.packed_row {
            Some(pb) => exec.outer_update_packed(&mut strip, &col_slice, pb)?,
            None => exec.outer_update(&mut strip, &col_slice, &panels.row_panel.view())?,
        }
    }
    // column strip `next`: A(:, next) ⊕= A(:, k) ⊗ A(k, next) — the B
    // operand is a b×b column *slice* of the row panel, which does not
    // coincide with packed-tile boundaries, so this small update stays on
    // the unpacked path (it is O(n·b²) against the O(n²·b) bulk update)
    if a.owns_col(next) {
        let c0 = a.local_col_start(next);
        let bk1 = a.block_dim(next);
        let row_slice = panels.row_panel.subview(0, c0, panels.row_panel.rows(), bk1);
        let mut strip = a.col_strip_mut(next);
        exec.outer_update(&mut strip, &panels.col_panel.view(), &row_slice)?;
    }
    Ok(())
}
