//! Related-work comparator: the unblocked 1-D row-partitioned
//! Floyd-Warshall (Jenq & Sahni, §6) vs the paper's blocked 2-D
//! Co-ParallelFw, on the calibrated Summit model. Shows *why* the blocked
//! formulation exists: n-vs-n/b broadcast counts and GEMM-vs-BLAS-2
//! arithmetic intensity.

use apsp_bench::{arg, Table};
use apsp_core::dist::Variant;
use apsp_core::schedule::{optimal_node_grid, simulate, simulate_oned, ScheduleConfig};
use cluster_sim::MachineSpec;

fn main() {
    let nodes: usize = arg("--nodes", 64);
    let spec = MachineSpec::summit(nodes);
    let (kr, kc) = optimal_node_grid(nodes);
    println!("== 1-D unblocked vs 2-D blocked Co-ParallelFw, {nodes} nodes ==\n");
    let table = Table::new(&[
        ("vertices", 9),
        ("1-D s", 10),
        ("2-D s", 10),
        ("speedup", 8),
    ]);
    for n in [16_384usize, 32_768, 65_536, 131_072] {
        let oned = simulate_oned(&spec, n, 4);
        let twod = simulate(&spec, &ScheduleConfig::new(n, Variant::AsyncRing, kr, kc))
            .expect("feasible");
        table.row(&[
            n.to_string(),
            format!("{:.2}", oned.seconds),
            format!("{:.2}", twod.seconds),
            format!("{:.0}x", oned.seconds / twod.seconds),
        ]);
    }
    println!("\nthe blocked 2-D algorithm's advantage grows with n: fewer, larger messages and GEMM-rate updates");
}
