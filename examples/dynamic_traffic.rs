//! Dynamic traffic: incremental Floyd-Warshall on a road network.
//!
//! ```text
//! cargo run --release --example dynamic_traffic -- [n]
//! ```
//!
//! Builds a road-like grid, solves APSP once, then streams "traffic
//! improved" events (new expressway segments) through the `O(n²)`
//! incremental updater (paper §7 future work) and compares against
//! re-solving from scratch — the use case where incremental wins by a
//! factor of `n / #updates`.

use std::time::Instant;

use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
use apsp_core::incremental::decrease_edge;
use apsp_core::model::fw_flops;
use apsp_core::verify::assert_matrices_equal;
use apsp_graph::generators::{grid, WeightKind};
use apsp_graph::graph::GraphBuilder;
use rand::prelude::*;
use rand::rngs::StdRng;
use srgemm::MinPlusF32;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let width = (n as f64).sqrt().ceil() as usize;
    println!("== dynamic traffic: {width}x{} road grid ==\n", n.div_ceil(width));

    let roads = grid(width, n.div_ceil(width), WeightKind::Integer { lo: 5, hi: 30 }, 11);
    let n = roads.n();

    // initial solve
    let t = Instant::now();
    let mut dist = roads.to_dense();
    fw_blocked::<MinPlusF32>(&mut dist, 64, DiagMethod::FwClosure, true);
    let t_solve = t.elapsed().as_secs_f64();
    println!(
        "initial APSP solve: {:.3} s ({:.2} Gflop/s)",
        t_solve,
        fw_flops(n) / t_solve / 1e9
    );

    // stream of expressway openings: long-range fast links
    let mut rng = StdRng::seed_from_u64(3);
    let updates: Vec<(usize, usize, f32)> = (0..10)
        .map(|_| {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            (u, v, 1.0f32)
        })
        .filter(|&(u, v, _)| u != v)
        .collect();

    let t = Instant::now();
    let mut improved_total = 0usize;
    for &(u, v, w) in &updates {
        if let Ok(improved) = decrease_edge::<MinPlusF32>(&mut dist, u, v, w) {
            improved_total += improved;
            println!("  expressway {u:>4} → {v:<4}: {improved:>6} pairs improved");
        }
    }
    let t_inc = t.elapsed().as_secs_f64();
    println!(
        "\n{} incremental updates: {:.4} s total ({:.0}x faster than re-solving each time)",
        updates.len(),
        t_inc,
        t_solve * updates.len() as f64 / t_inc.max(1e-9)
    );
    println!("{improved_total} origin-destination pairs improved overall");

    // verify against a full re-solve with all new segments
    let mut b = GraphBuilder::new(n);
    for (x, y, w) in roads.edges() {
        b.add_edge(x, y, w);
    }
    for &(u, v, w) in &updates {
        b.add_edge(u, v, w);
    }
    let mut want = b.build().to_dense();
    fw_blocked::<MinPlusF32>(&mut want, 64, DiagMethod::FwClosure, true);
    assert_matrices_equal(&want, &dist, "incremental vs re-solve");
    println!("incremental result matches a from-scratch re-solve bit-for-bit ✓");
}
