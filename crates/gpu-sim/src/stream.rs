//! Streams: in-order op queues with engine-overlap timing.
//!
//! Ops issued to one stream are serialized (their simulated intervals never
//! overlap); ops on different streams overlap freely except where they
//! compete for the same engine (SRGEMM unit, H2D copy engine, D2H copy
//! engine). This is the `cudaStream` semantics §4.3 relies on: "In a single
//! cudaStream all the tasks will be performed sequentially but cudaStreams
//! are asynchronous to each other."
//!
//! Functionally, each op executes immediately on the caller's thread; the
//! clock model runs alongside, so results are exact while timings reflect a
//! V100-class device.

use srgemm::gemm::gemm_blocked;
use srgemm::matrix::{Matrix, View, ViewMut};
use srgemm::semiring::Semiring;

use crate::device::{DeviceBuffer, SimGpu};

/// Completion timestamp of a stream op, usable for host-side waits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Simulated completion time, seconds.
    pub at: f64,
}

/// An in-order operation queue on a [`SimGpu`].
pub struct Stream {
    gpu: SimGpu,
    cursor: f64,
}

impl SimGpu {
    /// Create a stream. Streams are independent op queues; make several to
    /// model multi-stream overlap (§4.4).
    pub fn stream(&self) -> Stream {
        Stream { gpu: self.clone(), cursor: 0.0 }
    }
}

impl Stream {
    /// Current stream cursor (time the last enqueued op completes).
    pub fn now(&self) -> f64 {
        self.cursor
    }

    /// Have the stream wait until simulated time `t` (used to model the host
    /// handing work to a stream only after some host-side event).
    pub fn wait_until(&mut self, t: f64) {
        self.cursor = self.cursor.max(t);
    }

    fn run_on_engine(&mut self, pick: impl FnOnce(&mut crate::device::Engines) -> &mut f64, dur: f64) -> Event {
        let mut st = self.gpu.state.lock();
        let engine = pick(&mut st.engines);
        let start = engine.max(self.cursor);
        let end = start + dur;
        *engine = end;
        self.cursor = end;
        Event { at: end }
    }

    /// Copy host data into a device buffer (h2dXfer).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn h2d<T: Copy>(&mut self, dst: &DeviceBuffer<T>, src: &[T]) -> Event {
        {
            let mut data = dst.data.lock();
            assert_eq!(data.len(), src.len(), "h2d length mismatch");
            data.copy_from_slice(src);
        }
        let bytes = std::mem::size_of_val(src) as f64;
        let dur = self.gpu.spec.h2d_time(bytes);
        self.run_on_engine(|e| &mut e.h2d, dur)
    }

    /// Copy a device buffer back to host memory (d2hXfer).
    pub fn d2h<T: Copy>(&mut self, src: &DeviceBuffer<T>, dst: &mut [T]) -> Event {
        {
            let data = src.data.lock();
            assert!(dst.len() <= data.len(), "d2h longer than source buffer");
            dst.copy_from_slice(&data[..dst.len()]);
        }
        let bytes = std::mem::size_of_val(dst) as f64;
        let dur = self.gpu.spec.d2h_time(bytes);
        self.run_on_engine(|e| &mut e.d2h, dur)
    }

    /// Launch `X ← A ⊗ B` (`init = true`: X is first filled with 0̄) or
    /// `X ← X ⊕ A ⊗ B` (`init = false`) on the SRGEMM engine. Buffers hold
    /// row-major `m×k`, `k×n`, `m×n` data.
    #[allow(clippy::too_many_arguments)]
    pub fn srgemm<S: Semiring>(
        &mut self,
        x: &DeviceBuffer<S::Elem>,
        a: &DeviceBuffer<S::Elem>,
        b: &DeviceBuffer<S::Elem>,
        m: usize,
        n: usize,
        k: usize,
        init: bool,
    ) -> Event {
        {
            let a_data = a.data.lock();
            let b_data = b.data.lock();
            let mut x_data = x.data.lock();
            assert!(a_data.len() >= m * k && b_data.len() >= k * n && x_data.len() >= m * n);
            if init {
                x_data[..m * n].fill(S::zero());
            }
            let av = Matrix::from_vec(m, k, a_data[..m * k].to_vec());
            let bv = Matrix::from_vec(k, n, b_data[..k * n].to_vec());
            let mut xm = Matrix::from_vec(m, n, x_data[..m * n].to_vec());
            gemm_blocked::<S>(&mut xm.view_mut(), &av.view(), &bv.view());
            x_data[..m * n].copy_from_slice(xm.as_slice());
        }
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let dur = self.gpu.spec.gemm_time(flops);
        self.run_on_engine(|e| &mut e.gemm, dur)
    }

    /// Timing-only variants — advance the clocks exactly like the real ops
    /// but move no data. Used by the Summit-scale figure harnesses.
    pub fn h2d_timed(&mut self, bytes: f64) -> Event {
        let dur = self.gpu.spec.h2d_time(bytes);
        self.run_on_engine(|e| &mut e.h2d, dur)
    }

    /// Timing-only d2h (see [`Stream::h2d_timed`]).
    pub fn d2h_timed(&mut self, bytes: f64) -> Event {
        let dur = self.gpu.spec.d2h_time(bytes);
        self.run_on_engine(|e| &mut e.d2h, dur)
    }

    /// Timing-only SRGEMM of `flops` (see [`Stream::h2d_timed`]).
    pub fn srgemm_timed(&mut self, flops: f64) -> Event {
        let dur = self.gpu.spec.gemm_time(flops);
        self.run_on_engine(|e| &mut e.gemm, dur)
    }
}

/// Host-side ⊕-accumulate (`hostUpdate`): `C_tile ← C_tile ⊕ X`, charged to
/// the host-memory engine starting no earlier than `ready` (the d2h event).
/// Returns the completion event.
pub fn host_update<S: Semiring>(
    gpu: &SimGpu,
    ready: Event,
    c_tile: &mut ViewMut<'_, S::Elem>,
    x: &View<'_, S::Elem>,
) -> Event {
    assert_eq!((c_tile.rows(), c_tile.cols()), (x.rows(), x.cols()), "tile shape mismatch");
    for i in 0..c_tile.rows() {
        let crow = c_tile.row_mut(i);
        let xrow = x.row(i);
        for (cv, &xv) in crow.iter_mut().zip(xrow) {
            *cv = S::add(*cv, xv);
        }
    }
    let elems = (c_tile.rows() * c_tile.cols()) as f64;
    let dur = gpu.spec.host_update_time(elems, std::mem::size_of::<S::Elem>() as f64);
    Event { at: gpu.host_work(ready.at, dur) }
}

/// `hostUpdate` straight from a row-major staging slice — the d2h
/// destination itself — so the tile loop accumulates into `C` with **zero
/// intermediate copies**: the old path materialized each tile as a fresh
/// `Matrix` (`to_vec` + `from_vec`) before accumulating, an allocation and
/// a full extra pass over the tile per iteration.
///
/// # Panics
/// Panics if `x.len() != c_tile.rows() * c_tile.cols()`.
pub fn host_update_slice<S: Semiring>(
    gpu: &SimGpu,
    ready: Event,
    c_tile: &mut ViewMut<'_, S::Elem>,
    x: &[S::Elem],
) -> Event {
    let (rows, cols) = (c_tile.rows(), c_tile.cols());
    assert_eq!(x.len(), rows * cols, "staging slice does not match tile shape");
    for i in 0..rows {
        let crow = c_tile.row_mut(i);
        let xrow = &x[i * cols..(i + 1) * cols];
        for (cv, &xv) in crow.iter_mut().zip(xrow) {
            *cv = S::add(*cv, xv);
        }
    }
    let dur = gpu
        .spec
        .host_update_time((rows * cols) as f64, std::mem::size_of::<S::Elem>() as f64);
    Event { at: gpu.host_work(ready.at, dur) }
}

/// Timing-only host update.
pub fn host_update_timed(gpu: &SimGpu, ready: Event, elems: f64, elem_bytes: f64) -> Event {
    let dur = gpu.spec.host_update_time(elems, elem_bytes);
    Event { at: gpu.host_work(ready.at, dur) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use srgemm::MinPlusF32;

    fn tiny() -> SimGpu {
        SimGpu::new(GpuSpec::test_tiny()) // all rates 1e9, latency 0
    }

    #[test]
    fn h2d_d2h_round_trip_preserves_data() {
        let gpu = tiny();
        let buf = gpu.alloc::<f32>(4, 0.0).unwrap();
        let mut s = gpu.stream();
        s.h2d(&buf, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = [0.0f32; 4];
        s.d2h(&buf, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn ops_on_one_stream_serialize() {
        let gpu = tiny();
        let buf = gpu.alloc::<u8>(1000, 0).unwrap();
        let mut s = gpu.stream();
        let e1 = s.h2d(&buf, &vec![0u8; 1000]); // 1000 B / 1e9 B/s = 1 µs
        let mut sink = vec![0u8; 1000];
        let e2 = s.d2h(&buf, &mut sink); // different engine, but same stream
        assert!((e1.at - 1e-6).abs() < 1e-12);
        assert!((e2.at - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn different_streams_overlap_on_different_engines() {
        let gpu = tiny();
        let a = gpu.alloc::<u8>(1000, 0).unwrap();
        let b = gpu.alloc::<u8>(1000, 0).unwrap();
        let mut s1 = gpu.stream();
        let mut s2 = gpu.stream();
        let e1 = s1.h2d(&a, &vec![0u8; 1000]);
        let mut sink = vec![0u8; 1000];
        let e2 = s2.d2h(&b, &mut sink); // d2h engine is free → starts at 0
        assert_eq!(e1.at, e2.at); // perfect overlap
    }

    #[test]
    fn same_engine_contention_serializes_across_streams() {
        let gpu = tiny();
        let a = gpu.alloc::<u8>(1000, 0).unwrap();
        let b = gpu.alloc::<u8>(1000, 0).unwrap();
        let mut s1 = gpu.stream();
        let mut s2 = gpu.stream();
        let e1 = s1.h2d(&a, &vec![0u8; 1000]);
        let e2 = s2.h2d(&b, &vec![0u8; 1000]); // same engine → queued behind
        assert!(e2.at > e1.at);
    }

    #[test]
    fn srgemm_computes_and_charges_time() {
        let gpu = tiny();
        let a = gpu.alloc::<f32>(4, 0.0).unwrap();
        let b = gpu.alloc::<f32>(4, 0.0).unwrap();
        let x = gpu.alloc::<f32>(4, 0.0).unwrap();
        let mut s = gpu.stream();
        s.h2d(&a, &[1.0, 2.0, 4.0, 1.0]);
        s.h2d(&b, &[0.0, 5.0, 1.0, 0.0]);
        let e = s.srgemm::<MinPlusF32>(&x, &a, &b, 2, 2, 2, true);
        let mut out = [0.0f32; 4];
        s.d2h(&x, &mut out);
        assert_eq!(out, [1.0, 2.0, 2.0, 1.0]);
        // 2*2*2*2 = 16 flops at 1e9 flop/s
        assert!(e.at > 16.0 / 1e9);
    }

    #[test]
    fn host_update_slice_matches_view_form() {
        let gpu = tiny();
        let mut c1 = srgemm::Matrix::from_rows(&[&[5.0f32, 1.0], &[0.5, 9.0]]);
        let mut c2 = c1.clone();
        let x = srgemm::Matrix::from_rows(&[&[3.0f32, 2.0], &[4.0, 0.25]]);
        let e1 = host_update::<MinPlusF32>(&gpu, Event { at: 1.0 }, &mut c1.view_mut(), &x.view());
        gpu.reset_clocks();
        let e2 = host_update_slice::<MinPlusF32>(
            &gpu,
            Event { at: 1.0 },
            &mut c2.view_mut(),
            x.as_slice(),
        );
        assert!(c1.eq_exact(&c2));
        assert_eq!(e1.at, e2.at);
    }

    #[test]
    fn host_update_accumulates_and_charges_host_engine() {
        let gpu = tiny();
        let mut c = srgemm::Matrix::from_rows(&[&[5.0f32, 1.0]]);
        let x = srgemm::Matrix::from_rows(&[&[3.0f32, 2.0]]);
        let e = host_update::<MinPlusF32>(&gpu, Event { at: 1.0 }, &mut c.view_mut(), &x.view());
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 1.0);
        // starts at ready=1.0, duration = 3*2*4/1e9
        assert!((e.at - (1.0 + 24.0 / 1e9)).abs() < 1e-12);
    }
}
