//! Fig. 9 — weak scaling: workload n³/p held constant from n = 300,000 at
//! 16 nodes up to 256 nodes; y-axis is runtime in seconds.
//!
//! Expected shape (paper §5.5.2): Co-ParallelFw stays nearly flat;
//! Baseline and Offload grow with node count because they do not hide
//! communication.

use apsp_bench::{arg, arg_str, execute_functional_scale, Csv, Table};
use apsp_core::dist::Variant;
use apsp_core::schedule::{default_node_grid, optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;

fn main() {
    // `--execute-p 1024` swaps the analytic Summit model for a *functional*
    // run: the real pipeline on the event-driven simulator at paper-scale
    // rank counts, NIC bytes checked against §3.4.1 (`--execute-n` sizes it)
    if let Some(p) = arg_str("--execute-p") {
        let p: usize = p.parse().expect("--execute-p takes a rank count");
        execute_functional_scale(p, arg("--execute-n", 64));
        return;
    }
    let n16: usize = arg("--n16", 300_000);
    println!("== Fig. 9: weak scaling, n³/p constant from n = {n16} at 16 nodes ==\n");
    let table = Table::new(&[
        ("nodes", 6),
        ("vertices", 9),
        ("Offload", 9),
        ("Baseline", 9),
        ("Pipelined", 10),
        ("+Reorder", 9),
        ("+Async", 9),
        ("Co+Me", 9),
    ]);

    let mut csv = Csv::from_args(&[
        "nodes", "vertices", "offload", "baseline", "pipelined", "reorder", "async", "come",
    ]);
    for nodes in [16usize, 32, 64, 128, 256] {
        let n = (n16 as f64 * (nodes as f64 / 16.0).cbrt()).round() as usize;
        let spec = MachineSpec::summit(nodes);
        let (dkr, dkc) = default_node_grid(nodes);
        let (okr, okc) = optimal_node_grid(nodes);
        let run = |variant, kr, kc| -> String {
            simulate(&spec, &ScheduleConfig::new(n, variant, kr, kc))
                .map(|o| format!("{:.1}", o.seconds))
                .unwrap_or_else(|_| "—".into())
        };
        let row = vec![
            nodes.to_string(),
            n.to_string(),
            run(Variant::Offload, okr, okc),
            run(Variant::Baseline, dkr, dkc),
            run(Variant::Pipelined, dkr, dkc),
            run(Variant::Pipelined, okr, okc),
            run(Variant::AsyncRing, okr, okc),
            run(Variant::CoMe, okr, okc),
        ];
        csv.row(&row);
        table.row(&row);
    }
    println!("\npaper: Co-ParallelFw shows perfect weak scaling; Baseline and Offload drift upward");
}
