//! Epoch-snapshot query engine: many concurrent readers over an
//! `Arc`-swapped immutable snapshot, one writer publishing new epochs.
//!
//! Readers call [`Engine::snapshot`] and answer an entire batch of queries
//! against that [`Snapshot`] — the snapshot is immutable, so every answer
//! in the batch is consistent with one epoch by construction (no torn
//! reads, no locks held while answering). The writer applies a batch of
//! edge decreases to a private copy, then publishes it as the next epoch
//! with a single pointer swap; readers pick it up on their *next* batch.
//!
//! The snapshot carries the witness-annotated closure
//! ([`Matrix<DistPred>`]), so path reconstruction reads the same epoch as
//! the distances — predecessor witnesses can never be stale relative to
//! the distances they explain (the bug class this module was built to
//! rule out; see [`crate::incremental`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use apsp_graph::graph::Graph;
use srgemm::matrix::Matrix;

use crate::fw_blocked::{fw_blocked, DiagMethod};
use crate::incremental::{decrease_edges_pred, BatchReport};
use crate::paths_dist::{annotate, reconstruct_path_annotated, split, DistPred, MinPlusPred};

/// A reader-side query failure (the request was understood but cannot be
/// answered on this matrix).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A vertex id is out of range for the served matrix.
    BadVertex {
        /// The offending vertex id.
        v: usize,
        /// The number of vertices in the served matrix.
        n: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadVertex { v, n } => {
                write!(f, "vertex {v} out of range (n={n})")
            }
        }
    }
}

/// One immutable published epoch: the witness-annotated closure plus its
/// epoch number. All queries on a snapshot answer from the same matrix, so
/// a batch resolved against one snapshot is internally consistent.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    data: Matrix<DistPred>,
}

impl Snapshot {
    /// The epoch this snapshot was published at (0 = the initial solve).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of vertices served.
    pub fn n(&self) -> usize {
        self.data.rows()
    }

    /// The annotated closure itself (distances + predecessor witnesses).
    pub fn data(&self) -> &Matrix<DistPred> {
        &self.data
    }

    fn check(&self, v: usize) -> Result<(), QueryError> {
        if v >= self.n() {
            return Err(QueryError::BadVertex { v, n: self.n() });
        }
        Ok(())
    }

    /// Point-to-point distance (`f32::INFINITY` when unreachable).
    pub fn dist(&self, s: usize, t: usize) -> Result<f32, QueryError> {
        self.check(s)?;
        self.check(t)?;
        Ok(self.data[(s, t)].d)
    }

    /// Batched point-to-point distances, all answered from this epoch.
    pub fn dist_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, QueryError> {
        pairs.iter().map(|&(s, t)| self.dist(s, t)).collect()
    }

    /// One-to-many distances from `s` to each target, from this epoch.
    pub fn one_to_many(&self, s: usize, targets: &[usize]) -> Result<Vec<f32>, QueryError> {
        self.check(s)?;
        targets
            .iter()
            .map(|&t| {
                self.check(t)?;
                Ok(self.data[(s, t)].d)
            })
            .collect()
    }

    /// Shortest path `s → t` with its length, reconstructed from this
    /// epoch's witnesses (`None` when unreachable). The returned path
    /// realizes the returned distance exactly — both come from the same
    /// snapshot.
    pub fn path(&self, s: usize, t: usize) -> Result<Option<(f32, Vec<usize>)>, QueryError> {
        self.check(s)?;
        self.check(t)?;
        let d = self.data[(s, t)].d;
        if s != t && !d.is_finite() {
            return Ok(None);
        }
        Ok(reconstruct_path_annotated(&self.data, s, t).map(|p| (d, p)))
    }

    /// Split into plain distance + predecessor matrices (copies).
    pub fn split(&self) -> (Matrix<f32>, Matrix<u32>) {
        split(&self.data)
    }
}

/// Outcome of one writer batch: the epoch the batch landed in (unchanged
/// when every update was rejected) and the per-update report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Epoch now current after the batch (== previous epoch if nothing
    /// was accepted, so no snapshot was published).
    pub epoch: u64,
    /// Whether this batch published a new snapshot.
    pub published: bool,
    /// Per-update typed outcomes (see [`crate::incremental::BatchReport`]).
    pub report: BatchReport,
}

/// The query engine: a current-snapshot pointer swapped by the writer,
/// read (briefly) by every reader batch.
///
/// Concurrency contract:
/// * any number of readers may call [`Engine::snapshot`] concurrently —
///   the read lock is held only for the `Arc` clone, never while
///   answering queries;
/// * [`Engine::apply`] may be called from any thread; batches serialize
///   on an internal writer lock (single-writer pipeline);
/// * a reader's batch always observes exactly one epoch; distances for a
///   fixed pair are monotonically non-increasing across epochs (decreases
///   only — the tested invariant).
pub struct Engine {
    current: RwLock<Arc<Snapshot>>,
    writer: Mutex<()>,
    latest: AtomicU64,
}

impl Engine {
    /// Serve an already-solved witness-annotated closure (epoch 0).
    pub fn from_annotated(data: Matrix<DistPred>) -> Engine {
        assert_eq!(data.rows(), data.cols(), "served matrix must be square");
        Engine {
            current: RwLock::new(Arc::new(Snapshot { epoch: 0, data })),
            writer: Mutex::new(()),
            latest: AtomicU64::new(0),
        }
    }

    /// Solve `g` (witness-carrying blocked Floyd-Warshall) and serve the
    /// result. `block` is the FW block size (64 is a good default).
    pub fn solve_from_graph(g: &Graph, block: usize) -> Engine {
        let mut annotated = annotate(&g.to_dense());
        let b = block.clamp(1, g.n().max(1));
        fw_blocked::<MinPlusPred>(&mut annotated, b, DiagMethod::FwClosure, false);
        Engine::from_annotated(annotated)
    }

    /// Number of vertices served.
    pub fn n(&self) -> usize {
        self.snapshot().n()
    }

    /// The current snapshot. Cheap (`Arc` clone under a short read lock);
    /// answer a whole batch of queries against the returned snapshot to
    /// get per-batch epoch consistency.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The most recently *published* epoch — what a freshly-taken snapshot
    /// would see. Readers measure their epoch lag as
    /// `latest_epoch() - snapshot.epoch()`.
    pub fn latest_epoch(&self) -> u64 {
        self.latest.load(Ordering::Acquire)
    }

    /// Apply a batch of edge decreases and publish the next epoch.
    ///
    /// The writer pipeline: take the writer lock (batches serialize),
    /// copy the current snapshot's matrix, run the witness-carrying
    /// non-panicking batch updater over the copy, and — iff at least one
    /// update was accepted — publish the copy as `epoch + 1` with a single
    /// pointer swap. Readers holding older snapshots are unaffected; new
    /// `snapshot()` calls see the new epoch. Rejected updates (bad vertex,
    /// NaN, negative self-loop/cycle, non-decrease) are reported per-entry
    /// and never corrupt, panic, or block the server.
    pub fn apply(&self, updates: &[(usize, usize, f32)]) -> UpdateOutcome {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let base = self.snapshot();
        let mut data = base.data.clone();
        let report = decrease_edges_pred(&mut data, updates);
        if report.applied == 0 {
            return UpdateOutcome { epoch: base.epoch, published: false, report };
        }
        let epoch = base.epoch + 1;
        let next = Arc::new(Snapshot { epoch, data });
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = next;
        self.latest.store(epoch, Ordering::Release);
        UpdateOutcome { epoch, published: true, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fw_seq::fw_seq;
    use crate::incremental::IncrementalError;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::paths::validate_path;
    use srgemm::MinPlusF32;

    fn engine(n: usize, p: f64, seed: u64) -> (Graph, Engine) {
        let g = generators::erdos_renyi(n, p, WeightKind::small_ints(), seed);
        let e = Engine::solve_from_graph(&g, 8);
        (g, e)
    }

    #[test]
    fn epoch_zero_matches_sequential_fw() {
        let (g, e) = engine(24, 0.25, 3);
        let snap = e.snapshot();
        assert_eq!(snap.epoch(), 0);
        let mut want = g.to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        let (d, _) = snap.split();
        assert!(want.eq_exact(&d));
    }

    #[test]
    fn queries_are_bounds_checked_not_panicking() {
        let (_, e) = engine(10, 0.4, 5);
        let snap = e.snapshot();
        assert_eq!(snap.dist(0, 99), Err(QueryError::BadVertex { v: 99, n: 10 }));
        assert_eq!(snap.one_to_many(99, &[0]), Err(QueryError::BadVertex { v: 99, n: 10 }));
        assert_eq!(snap.path(3, 42), Err(QueryError::BadVertex { v: 42, n: 10 }));
        assert!(snap.dist(0, 9).is_ok());
    }

    #[test]
    fn writer_publishes_new_epochs_and_old_snapshots_survive() {
        let (_, e) = engine(16, 0.3, 7);
        let old = e.snapshot();
        let d_before = old.dist(0, 12).unwrap();

        let out = e.apply(&[(0, 12, 0.5)]);
        assert!(out.published);
        assert_eq!(out.epoch, 1);
        assert_eq!(e.latest_epoch(), 1);

        // the old snapshot still answers from epoch 0 (no torn state)
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.dist(0, 12).unwrap(), d_before);

        // the new snapshot sees the decrease
        let new = e.snapshot();
        assert_eq!(new.epoch(), 1);
        assert!(new.dist(0, 12).unwrap() <= 0.5);
    }

    #[test]
    fn rejected_only_batches_do_not_publish() {
        let (_, e) = engine(12, 0.3, 9);
        let out = e.apply(&[(3, 3, -1.0), (99, 0, 1.0), (0, 1, f32::NAN)]);
        assert!(!out.published);
        assert_eq!(out.epoch, 0);
        assert_eq!(e.latest_epoch(), 0);
        assert_eq!(out.report.outcomes[0], Err(IncrementalError::NegativeSelfLoop));
        assert_eq!(out.report.outcomes[1], Err(IncrementalError::BadVertex));
        assert_eq!(out.report.outcomes[2], Err(IncrementalError::NanWeight));
    }

    #[test]
    fn paths_realize_distances_after_update_batches() {
        let (g, e) = engine(20, 0.2, 11);
        e.apply(&[(0, 13, 1.0), (7, 2, 1.0)]);
        let snap = e.snapshot();

        // oracle graph with the accepted edges
        let mut b = apsp_graph::graph::GraphBuilder::new(20);
        for (x, y, w) in g.edges() {
            b.add_edge(x, y, w);
        }
        b.add_edge(0, 13, 1.0).add_edge(7, 2, 1.0);
        let g2 = b.build();

        for s in 0..20 {
            for t in 0..20 {
                if s == t {
                    continue;
                }
                match snap.path(s, t).unwrap() {
                    Some((d, p)) => {
                        assert_eq!(d, snap.dist(s, t).unwrap());
                        assert!(validate_path(&g2, &p, s, t, d, 1e-3), "{s}->{t}");
                    }
                    None => assert_eq!(snap.dist(s, t).unwrap(), f32::INFINITY),
                }
            }
        }
    }

    #[test]
    fn one_to_many_matches_point_queries() {
        let (_, e) = engine(14, 0.3, 13);
        let snap = e.snapshot();
        let targets: Vec<usize> = (0..14).collect();
        let many = snap.one_to_many(5, &targets).unwrap();
        for (t, &d) in targets.iter().zip(&many) {
            assert_eq!(d, snap.dist(5, *t).unwrap());
        }
    }
}
