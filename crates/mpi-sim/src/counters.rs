//! Traffic accounting, split intra-node vs inter-node (NIC).
//!
//! The paper's effective-bandwidth metric (§5.1.3) is
//! `W_min / t_FW` where `W_min` is the theoretical minimum per-node NIC
//! volume. These counters measure the *actual* per-node NIC volume of a
//! functional run, which lets tests validate the §3.4.1 volume model and
//! lets the harness compare placements without any timing model at all.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::placement::Placement;
use crate::trace::UNTRACED;

/// Shared atomic counters; one slot per node.
pub(crate) struct Counters {
    /// bytes leaving each node through the NIC
    nic_egress: Vec<AtomicU64>,
    /// bytes entering each node through the NIC
    nic_ingress: Vec<AtomicU64>,
    /// bytes moved between ranks of the same node
    intra: Vec<AtomicU64>,
    /// inter-node message count per node (egress side)
    nic_msgs: Vec<AtomicU64>,
    total_msgs: AtomicU64,
    /// traffic keyed by the sending rank's open phase (see [`crate::trace`])
    per_phase: Mutex<BTreeMap<&'static str, PhaseTraffic>>,
}

impl Counters {
    pub(crate) fn new(nodes: usize) -> Self {
        let mk = || (0..nodes).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        Counters {
            nic_egress: mk(),
            nic_ingress: mk(),
            intra: mk(),
            nic_msgs: mk(),
            total_msgs: AtomicU64::new(0),
            per_phase: Mutex::new(BTreeMap::new()),
        }
    }

    /// Record one message. `phase` is the *sending* rank's currently-open
    /// trace phase ([`crate::trace::current_phase`]); `None` lands in the
    /// [`UNTRACED`] bucket so per-phase totals always sum to the run totals.
    /// Returns whether the message crossed node boundaries.
    pub(crate) fn record(
        &self,
        placement: &Placement,
        src: usize,
        dst: usize,
        bytes: usize,
        phase: Option<&'static str>,
    ) -> bool {
        let (sn, dn) = (placement.node_of(src), placement.node_of(dst));
        self.total_msgs.fetch_add(1, Ordering::Relaxed);
        let nic = sn != dn;
        if nic {
            self.nic_egress[sn].fetch_add(bytes as u64, Ordering::Relaxed);
            self.nic_ingress[dn].fetch_add(bytes as u64, Ordering::Relaxed);
            self.nic_msgs[sn].fetch_add(1, Ordering::Relaxed);
        } else {
            self.intra[sn].fetch_add(bytes as u64, Ordering::Relaxed);
        }
        let mut per_phase = self.per_phase.lock();
        let slot = per_phase.entry(phase.unwrap_or(UNTRACED)).or_default();
        slot.msgs += 1;
        if nic {
            slot.nic_bytes += bytes as u64;
            slot.nic_msgs += 1;
        } else {
            slot.intra_bytes += bytes as u64;
        }
        nic
    }

    pub(crate) fn snapshot(&self) -> TrafficReport {
        let load = |v: &Vec<AtomicU64>| v.iter().map(|a| a.load(Ordering::Relaxed)).collect::<Vec<_>>();
        TrafficReport {
            nic_egress: load(&self.nic_egress),
            nic_ingress: load(&self.nic_ingress),
            intra_node: load(&self.intra),
            nic_msgs: load(&self.nic_msgs),
            total_msgs: self.total_msgs.load(Ordering::Relaxed),
            per_phase: self
                .per_phase
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

/// Traffic attributed to one phase (keyed by the sender's open phase).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTraffic {
    /// Inter-node bytes sent while the phase was open.
    pub nic_bytes: u64,
    /// Intra-node bytes sent while the phase was open.
    pub intra_bytes: u64,
    /// Inter-node message count.
    pub nic_msgs: u64,
    /// All messages, any locality.
    pub msgs: u64,
}

/// Immutable traffic summary of a finished run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Per-node bytes sent to other nodes.
    pub nic_egress: Vec<u64>,
    /// Per-node bytes received from other nodes.
    pub nic_ingress: Vec<u64>,
    /// Per-node bytes exchanged within the node.
    pub intra_node: Vec<u64>,
    /// Per-node inter-node message count (egress side).
    pub nic_msgs: Vec<u64>,
    /// All messages, any locality.
    pub total_msgs: u64,
    /// Traffic keyed by the sending rank's open trace phase; sends outside
    /// any phase land under [`crate::trace::UNTRACED`]. Per-phase values
    /// always sum exactly to the run totals.
    pub per_phase: BTreeMap<String, PhaseTraffic>,
}

impl TrafficReport {
    /// Total bytes that crossed any NIC (each message counted once).
    pub fn total_nic_bytes(&self) -> u64 {
        self.nic_egress.iter().sum()
    }

    /// Total intra-node bytes.
    pub fn total_intra_bytes(&self) -> u64 {
        self.intra_node.iter().sum()
    }

    /// The busiest node's NIC volume, counting both directions — the value
    /// the per-node bandwidth model divides by.
    pub fn max_node_nic_bytes(&self) -> u64 {
        self.nic_egress
            .iter()
            .zip(&self.nic_ingress)
            .map(|(e, i)| e + i)
            .max()
            .unwrap_or(0)
    }

    /// NIC bytes attributed to `phase` (0 if the phase never sent).
    pub fn phase_nic_bytes(&self, phase: &str) -> u64 {
        self.per_phase.get(phase).map_or(0, |t| t.nic_bytes)
    }

    /// Sum of per-phase NIC bytes — equals [`Self::total_nic_bytes`] by
    /// construction (asserted by the integration suite).
    pub fn phase_nic_bytes_sum(&self) -> u64 {
        self.per_phase.values().map(|t| t.nic_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_intra_and_inter() {
        let p = Placement::contiguous(1, 4, 2); // nodes: {0,1}, {2,3}
        let c = Counters::new(2);
        c.record(&p, 0, 1, 100, None); // intra node 0
        c.record(&p, 0, 2, 40, None); // node 0 -> node 1
        c.record(&p, 3, 1, 60, None); // node 1 -> node 0
        let r = c.snapshot();
        assert_eq!(r.intra_node, vec![100, 0]);
        assert_eq!(r.nic_egress, vec![40, 60]);
        assert_eq!(r.nic_ingress, vec![60, 40]);
        assert_eq!(r.total_nic_bytes(), 100);
        assert_eq!(r.max_node_nic_bytes(), 100);
        assert_eq!(r.total_msgs, 3);
        assert_eq!(r.nic_msgs, vec![1, 1]);
    }

    #[test]
    fn attributes_traffic_to_the_senders_phase() {
        let p = Placement::contiguous(1, 4, 2);
        let c = Counters::new(2);
        c.record(&p, 0, 2, 40, Some("PanelBcast"));
        c.record(&p, 2, 0, 25, Some("PanelBcast"));
        c.record(&p, 0, 1, 10, Some("DiagBcast")); // intra
        c.record(&p, 3, 0, 5, None); // untraced
        let r = c.snapshot();
        let pb = &r.per_phase["PanelBcast"];
        assert_eq!((pb.nic_bytes, pb.nic_msgs, pb.msgs), (65, 2, 2));
        let db = &r.per_phase["DiagBcast"];
        assert_eq!((db.nic_bytes, db.intra_bytes), (0, 10));
        assert_eq!(r.per_phase[crate::trace::UNTRACED].nic_bytes, 5);
        assert_eq!(r.phase_nic_bytes_sum(), r.total_nic_bytes());
        assert_eq!(r.phase_nic_bytes("PanelBcast"), 65);
        assert_eq!(r.phase_nic_bytes("OuterUpdate"), 0);
    }
}
