#![warn(missing_docs)]

//! # apsp-bench — paper-figure regeneration harnesses and kernel benches
//!
//! One binary per data figure of the paper (see DESIGN.md §4 for the full
//! index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig3_rank_placement` | Fig. 3 — effective bandwidth vs (K_r, K_c) per node count |
//! | `fig4_comm_strategies` | Fig. 4 — Baseline/Pipelined/+Reordering/+Async vs n, 64 nodes |
//! | `fig5_oog_blocksize` | Fig. 5 — ooGSrGemm Gflop/s vs block size per buffer size |
//! | `fig6_oog_buffer` | Fig. 6 — ooGSrGemm Gflop/s heatmap, vertices × buffer |
//! | `fig7_64node_perf` | Fig. 7 — end-to-end PF/s vs n on 64 nodes, all variants |
//! | `fig8_strong_scaling` | Fig. 8 — strong scaling 16…256 nodes at n = 300k |
//! | `fig9_weak_scaling` | Fig. 9 — weak scaling, n³/p constant |
//! | `headline_claims` | §1/§5 headline numbers, paper vs simulated |
//! | `comm_volume_validation` | §5.2.2 — functional byte-count validation of §3.4.1 |
//!
//! The Criterion benches (`benches/`) measure the *real* CPU kernels of
//! this reproduction (SRGEMM, closures, blocked FW, the offload engine, the
//! collectives, and the distributed variants) — wall-clock numbers for this
//! machine, complementing the simulated Summit numbers above.

pub mod json;
pub mod perf;
pub mod serve_load;

/// Simple fixed-width table printer shared by the figure binaries.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table and print its header row.
    pub fn new(headers: &[(&str, usize)]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.1).collect();
        let row: Vec<String> = headers.iter().map(|(h, w)| format!("{h:>w$}")).collect();
        println!("{}", row.join("  "));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        Table { widths }
    }

    /// Print one row of already-formatted cells.
    pub fn row(&self, cells: &[String]) {
        let row: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", row.join("  "));
    }
}

/// The paper's Fig. 4/7 vertex sweep: 16,384 → 1,664,511 in ×1.26 steps
/// (every point in the published x-axes).
pub fn paper_vertex_sweep() -> Vec<usize> {
    vec![
        16_384, 20_643, 26_008, 32_768, 41_285, 52_016, 65_536, 82_570, 104_032, 131_072,
        165_140, 208_064, 262_144, 330_281, 416_128, 524_288, 660_562, 832_255, 1_048_576,
        1_321_124, 1_664_511,
    ]
}

/// Optional CSV sink: when `--csv <path>` is on the command line, every
/// table row is mirrored to the file (comma-separated, one header row).
pub struct Csv {
    file: Option<std::io::BufWriter<std::fs::File>>,
}

impl Csv {
    /// Open the sink if `--csv` was given; write the header.
    pub fn from_args(headers: &[&str]) -> Csv {
        use std::io::Write;
        let path: String = arg("--csv", String::new());
        if path.is_empty() {
            return Csv { file: None };
        }
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("create {path}: {e}")),
        );
        writeln!(f, "{}", headers.join(",")).expect("write csv header");
        Csv { file: Some(f) }
    }

    /// Append one row.
    pub fn row(&mut self, cells: &[String]) {
        use std::io::Write;
        if let Some(f) = &mut self.file {
            writeln!(f, "{}", cells.join(",")).expect("write csv row");
        }
    }
}

/// Parse `--flag value` style overrides from argv.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A `--flag value` string option with no default (`None` when absent).
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Shared `--trace <prefix>` handling for the figure binaries: write one
/// Chrome trace_events JSON per legend entry at the `--trace-n` vertex count
/// (default 65,536 — a bandwidth-bound sweep point), named
/// `<prefix>_<legend>.json`.
pub fn write_schedule_traces(
    spec: &cluster_sim::MachineSpec,
    legends: &[(&str, apsp_core::dist::Variant, usize, usize)],
) {
    let Some(prefix) = arg_str("--trace") else { return };
    let tn: usize = arg("--trace-n", 65_536);
    for &(legend, variant, kr, kc) in legends {
        let cfg = apsp_core::schedule::ScheduleConfig::new(tn, variant, kr, kc);
        match apsp_core::schedule::simulate_with_trace(spec, &cfg) {
            Ok((_, json)) => {
                let path = format!("{prefix}_{legend}.json");
                std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
                println!("wrote {legend} schedule trace (n = {tn}) to {path}");
            }
            Err(e) => println!("trace {legend}: infeasible at n = {tn} ({e})"),
        }
    }
}

/// Shared `--execute-p <ranks>` mode for the Fig. 8/9 harnesses: instead of
/// the analytic Summit model, run the *real* distributed pipeline on the
/// event-driven simulator at paper-scale rank counts (1024+ on one box) and
/// check the measured NIC bytes against the §3.4.1 communication model.
///
/// Every number printed is counted, not modeled: the run moves actual
/// panels through the simulated mailboxes, the output is verified
/// bit-for-bit against sequential Floyd–Warshall, and per-phase NIC
/// attribution is required to be exact. `n` is deliberately small — the
/// point is the rank count and the byte accounting, not the flop rate.
pub fn execute_functional_scale(p: usize, n: usize) {
    use std::time::{Duration, Instant};

    use apsp_core::dist::{
        distributed_apsp_opts, DistRunOpts, Exec, FwConfig, PanelBcastAlgo, Schedule,
    };
    use apsp_core::fw_seq::fw_seq;
    use apsp_core::model::comm_lower_bound_bytes;
    use apsp_core::verify::assert_matrices_equal;
    use apsp_graph::generators::{uniform_dense, WeightKind};
    use mpi_sim::Placement;
    use srgemm::MinPlusF32;

    // squarest factoring of p — the paper's rank-reordering rule favors
    // near-square process grids
    let pr =
        (1..=p).filter(|d| p.is_multiple_of(*d)).take_while(|d| d * d <= p).last().unwrap_or(1);
    let pc = p / pr;
    // 2×2 intranode tiles (4 ranks/node, the Summit layout) when the grid
    // allows it, otherwise one rank per node
    let (qr, qc) = if pr.is_multiple_of(2) && pc.is_multiple_of(2) { (2, 2) } else { (1, 1) };
    let (kr, kc) = (pr / qr, pc / qc);
    let block = (n / pr.max(pc)).max(1);
    let workers: usize = arg("--workers", 8);

    println!(
        "== functional execution: p = {p} ranks ({pr}x{pc} grid, {qr}x{qc} tiles -> \
         {kr}x{kc} = {} nodes), n = {n}, b = {block}, {workers} workers ==\n",
        kr * kc
    );

    let input = uniform_dense(n, WeightKind::small_ints(), 8).to_dense();
    let mut want = input.clone();
    fw_seq::<MinPlusF32>(&mut want);

    let table = Table::new(&[
        ("bcast", 8),
        ("seconds", 8),
        ("NIC B", 10),
        ("busiest B", 10),
        ("bound B", 10),
        ("ratio", 6),
    ]);
    let bound = comm_lower_bound_bytes(n, kr, kc, 4);

    for (name, bcast) in [("Tree", PanelBcastAlgo::Tree), ("Ring", PanelBcastAlgo::Ring { chunks: 3 })]
    {
        let schedule = if name == "Tree" { Schedule::BulkSync } else { Schedule::LookAhead };
        let mut cfg = FwConfig::from_axes(block, schedule, bcast, Exec::InCoreGemm);
        // one kernel thread per rank: p ranks must not each grab the host's
        // full core budget for their in-core GEMM
        cfg.kernel_threads = Some(1);
        let opts = DistRunOpts {
            // parked-waiting-for-a-slot is queueing, not deadlock
            recv_timeout: Some(Duration::from_secs(300)),
            workers: Some(workers),
            stack_bytes: Some(512 * 1024),
            ..Default::default()
        };
        let placement = Placement::tiled(pr, pc, qr, qc);
        let t0 = Instant::now();
        let (got, traffic) =
            distributed_apsp_opts::<MinPlusF32>(pr, pc, &cfg, &input, Some(placement), &opts)
                .unwrap_or_else(|e| panic!("functional {p}-rank run ({name}): {e}"));
        let secs = t0.elapsed().as_secs_f64();
        assert_matrices_equal(&want, &got, "functional at-scale run");
        assert_eq!(
            traffic.phase_nic_bytes_sum(),
            traffic.total_nic_bytes(),
            "per-phase NIC attribution must stay exact at p = {p}"
        );
        let measured = traffic.max_node_nic_bytes() as f64;
        table.row(&[
            name.to_string(),
            format!("{secs:.2}"),
            traffic.total_nic_bytes().to_string(),
            format!("{measured:.0}"),
            format!("{bound:.0}"),
            format!("{:.2}", measured / bound),
        ]);
    }
    println!(
        "\nevery run matched sequential Floyd-Warshall bit-for-bit; busiest-NIC volume \
         sits above the \u{a7}3.4.1 bound (ratio \u{2265} 1 up to broadcast overheads)"
    );
    println!("functional scale run OK: p = {p} ranks completed with a bounded worker pool");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_covers_the_paper_range() {
        let s = paper_vertex_sweep();
        assert_eq!(*s.first().unwrap(), 16_384);
        assert_eq!(*s.last().unwrap(), 1_664_511);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.contains(&524_288)); // the Fig. 7 memory wall
        assert!(s.contains(&208_064)); // the Fig. 7 compute-bound knee
    }
}
