//! Fig. 7 — end-to-end ParallelFw performance on 64 nodes across the full
//! vertex sweep 16,384 … 1,664,511, all variants.
//!
//! Expected shape (paper §5.4): the communication-optimized variants win
//! below ~208k vertices (bandwidth-bound); past that everything converges
//! toward the compute roofline; every in-GPU-memory variant dies at the
//! "Beyond GPU Memory" wall after 524k; only the offload execs continue to
//! 1.66M — bulk-synchronous Offload at roughly half the throughput of its
//! in-core peak, and the composed Co+Me system (look-ahead + ring + offload)
//! recovering ~50% of sustained peak there (§5.4).
//!
//! `--max-n <N>` truncates the sweep (used by the CI smoke run).

use apsp_bench::{arg, paper_vertex_sweep, write_schedule_traces, Csv, Table};
use apsp_core::dist::Variant;
use apsp_core::schedule::{default_node_grid, optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;

fn main() {
    let nodes: usize = arg("--nodes", 64);
    let max_n: usize = arg("--max-n", usize::MAX);
    let spec = MachineSpec::summit(nodes);
    let (dkr, dkc) = default_node_grid(nodes);
    let (okr, okc) = optimal_node_grid(nodes);
    let peak_pf = spec.total_flops() / 1e15;

    println!("== Fig. 7: ParallelFw Pflop/s on {nodes} nodes (sustained peak {peak_pf:.2} PF/s) ==\n");
    let table = Table::new(&[
        ("vertices", 9),
        ("Baseline", 9),
        ("Pipelined", 10),
        ("+Async", 9),
        ("Offload", 9),
        ("Co+Me", 9),
    ]);
    let mut csv = Csv::from_args(&["vertices", "baseline", "pipelined", "async", "offload", "come"]);

    for n in paper_vertex_sweep().into_iter().filter(|&n| n <= max_n) {
        let run = |variant, kr, kc| -> String {
            let cfg = ScheduleConfig::new(n, variant, kr, kc);
            match simulate(&spec, &cfg) {
                Ok(out) => format!("{:.3}", out.pflops),
                Err(_) => "—".into(), // beyond GPU memory
            }
        };
        let row = vec![
            n.to_string(),
            run(Variant::Baseline, dkr, dkc),
            run(Variant::Pipelined, dkr, dkc),
            run(Variant::AsyncRing, okr, okc),
            run(Variant::Offload, okr, okc),
            run(Variant::CoMe, okr, okc),
        ];
        csv.row(&row);
        table.row(&row);
    }
    println!("\npaper: in-memory variants stop after 524,288 (\"Beyond GPU Memory\");");
    println!("       Offload reaches 1,664,511 vertices at ~50% of theoretical throughput;");
    println!("       Co+Me composes the look-ahead schedule and ring bcast onto offload");

    // --trace <prefix>: per-legend schedule traces at --trace-n vertices
    write_schedule_traces(
        &spec,
        &[
            ("baseline", Variant::Baseline, dkr, dkc),
            ("pipelined", Variant::Pipelined, dkr, dkc),
            ("async", Variant::AsyncRing, okr, okc),
            ("offload", Variant::Offload, okr, okc),
            ("come", Variant::CoMe, okr, okc),
        ],
    );
}
