//! Out-of-GPU semiring matrix multiplication (`ooGSrGemm`, paper §4.3–4.4).
//!
//! Computes `C ← C ⊕ A ⊗ B` where `C` (m×n) lives in *host* memory and may
//! exceed device capacity; only `A` (m×k), `B` (k×n) and `s` tile buffers of
//! `m_x × n_x` reside on the device. The tile loop round-robins output tiles
//! over `s` streams; `A_i` row-slabs and `B_j` column-slabs are uploaded
//! once, when first touched (the §4.4 input pipelining); the host consumes
//! finished tiles in initiation order and ⊕-accumulates them into `C`
//! (`hostUpdate`). SRGEMM, d2hXfer and hostUpdate overlap across streams —
//! the execution order of the paper's Fig. 2.

use srgemm::matrix::{View, ViewMut};
use srgemm::semiring::Semiring;

use crate::device::{DeviceBuffer, Oom, SimGpu};
use crate::stream::{host_update_slice, host_update_timed, Event, Stream};

/// Tiling and stream configuration for [`oog_srgemm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OogConfig {
    /// Output tile rows (`m_x`).
    pub mx: usize,
    /// Output tile cols (`n_x`).
    pub nx: usize,
    /// Number of CUDA streams (`s`). 1 = fully serialized; ≥3 overlaps all
    /// three pipeline stages (§4.5).
    pub streams: usize,
}

impl OogConfig {
    /// Paper-flavored default: 2k×2k tiles on 3 streams ("performance is
    /// close to peak even for buffers of dimension 2k×2k", §5.3.1).
    pub fn new(mx: usize, nx: usize, streams: usize) -> Self {
        assert!(mx > 0 && nx > 0 && streams > 0, "tile dims and stream count must be positive");
        OogConfig { mx, nx, streams }
    }

    /// Typed form of `new`'s positivity contract. The fields are `pub`, so a
    /// literal construction can carry zeros past the constructor assert;
    /// every offload entry point calls this before touching the tiling
    /// arithmetic (`div_ceil(0)` panics), and the host-level out-of-core
    /// driver reuses the same check for its own tile/depth knobs.
    pub fn validate(&self) -> Result<(), OogError> {
        if self.mx == 0 || self.nx == 0 || self.streams == 0 {
            return Err(OogError::InvalidConfig { mx: self.mx, nx: self.nx, streams: self.streams });
        }
        Ok(())
    }
}

/// Typed failure out of the offload entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OogError {
    /// A zero tile dimension or stream count reached the entry point
    /// (literal [`OogConfig`] construction bypassing `new`'s assert).
    InvalidConfig {
        /// Offending tile rows.
        mx: usize,
        /// Offending tile cols.
        nx: usize,
        /// Offending stream count.
        streams: usize,
    },
    /// The full device requirement — `A` + `B` slabs *and* the `s` tile
    /// buffers, reported together, before anything is allocated — exceeds
    /// free device memory.
    Oom(Oom),
}

impl std::fmt::Display for OogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OogError::InvalidConfig { mx, nx, streams } => write!(
                f,
                "offload config invalid: tile dims and stream count must be positive \
                 (mx={mx}, nx={nx}, streams={streams})"
            ),
            OogError::Oom(oom) => oom.fmt(f),
        }
    }
}

impl std::error::Error for OogError {}

impl From<Oom> for OogError {
    fn from(oom: Oom) -> Self {
        OogError::Oom(oom)
    }
}

/// The one preflight both the functional and the model entry points run,
/// **before any allocation**: validate the config, then check the complete
/// requirement — `A` (m×k) + `B` (k×n) slabs plus the `s` tile buffers —
/// against the device's current free bytes. Returns the requirement so the
/// model can report it as its `device_bytes` high-water mark.
///
/// Keeping this a single helper is what pins the "functional and model
/// clocks agree" contract: a borderline configuration either passes both
/// entry points or fails both with the same [`Oom`] numbers.
pub fn oog_preflight(
    gpu: &SimGpu,
    cfg: &OogConfig,
    m: usize,
    n: usize,
    k: usize,
    elem_bytes: usize,
) -> Result<u64, OogError> {
    cfg.validate()?;
    let need = ((m * k + k * n + cfg.streams * cfg.mx * cfg.nx) * elem_bytes) as u64;
    let available = gpu.free_bytes();
    if need > available {
        return Err(Oom { requested: need, available }.into());
    }
    Ok(need)
}

/// Outcome of an offload GEMM: simulated time and throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OogStats {
    /// End-to-end simulated seconds (until the last hostUpdate).
    pub sim_time: f64,
    /// Semiring flops performed (2mnk).
    pub flops: f64,
    /// Output tiles processed.
    pub tiles: usize,
    /// Device bytes held at the high-water mark.
    pub device_bytes: u64,
}

impl OogStats {
    /// Simulated throughput in Gflop/s. A degenerate product (`m`, `n` or
    /// `k` of zero) takes no simulated time and does no flops; report 0
    /// instead of the `0/0 = NaN` (or `x/0 = inf`) a bare division yields.
    pub fn gflops(&self) -> f64 {
        if self.sim_time == 0.0 {
            return 0.0;
        }
        self.flops / self.sim_time / 1e9
    }
}

/// Functional + timed offload GEMM: `C ← C ⊕ A ⊗ B`.
///
/// Returns a typed [`OogError`] if the config carries zero tile dims or
/// streams, or if `A`, `B` and the `s` tile buffers do not fit on the device
/// together (the caller — `Me-ParallelFw` — picks `m_x`, `n_x` accordingly).
/// The preflight runs before any allocation, so an `Oom` always reports the
/// complete requirement against the device's true free bytes.
// Slab/tile loops below walk `0..mb × 0..nb` with explicit tile-origin
// arithmetic; iterator forms would hide the `i0 = i*mx` windows.
#[allow(clippy::needless_range_loop)]
pub fn oog_srgemm<S: Semiring>(
    gpu: &SimGpu,
    cfg: &OogConfig,
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) -> Result<OogStats, OogError> {
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    assert_eq!(a.rows(), m, "A rows must match C rows");
    assert_eq!(b.rows(), k, "B rows must match A cols");
    assert_eq!(b.cols(), n, "B cols must match C cols");
    oog_preflight(gpu, cfg, m, n, k, std::mem::size_of::<S::Elem>())?;
    gpu.reset_clocks();

    let mb = m.div_ceil(cfg.mx).max(1);
    let nb = n.div_ceil(cfg.nx).max(1);
    let s = cfg.streams;

    // Device residency: row slabs of A, column slabs of B, s tile buffers.
    // A resident slab: its device buffer, upload-done event, element count.
    type Slab<E> = Option<(DeviceBuffer<E>, Event, usize)>;
    let mut a_slabs: Vec<Slab<S::Elem>> = (0..mb).map(|_| None).collect();
    let mut b_slabs: Vec<Slab<S::Elem>> = (0..nb).map(|_| None).collect();
    let mut x_bufs = Vec::with_capacity(s);
    for _ in 0..s {
        x_bufs.push(gpu.alloc::<S::Elem>(cfg.mx * cfg.nx, S::zero())?);
    }

    let mut streams: Vec<Stream> = (0..s).map(|_| gpu.stream()).collect();
    // host-consumption event per stream: next srgemm on that stream must not
    // overwrite X before the host has read the previous tile
    let mut host_free: Vec<Event> = vec![Event { at: 0.0 }; s];
    let mut staging = vec![S::zero(); cfg.mx * cfg.nx];
    let mut tiles = 0usize;
    let mut high_water = gpu.used_bytes();

    for i in 0..mb {
        let i0 = i * cfg.mx;
        let ib = cfg.mx.min(m - i0);
        for j in 0..nb {
            let j0 = j * cfg.nx;
            let jb = cfg.nx.min(n - j0);
            let r = tiles % s;
            let st = &mut streams[r];

            // pipelined input uploads: first touch sends the slab
            if a_slabs[i].is_none() {
                let buf = gpu.alloc::<S::Elem>(ib * k, S::zero())?;
                let data = a.subview(i0, 0, ib, k).to_vec();
                let ev = st.h2d(&buf, &data);
                a_slabs[i] = Some((buf, ev, ib));
            }
            if b_slabs[j].is_none() {
                let buf = gpu.alloc::<S::Elem>(k * jb, S::zero())?;
                let data = b.subview(0, j0, k, jb).to_vec();
                let ev = st.h2d(&buf, &data);
                b_slabs[j] = Some((buf, ev, jb));
            }
            high_water = high_water.max(gpu.used_bytes());

            let (a_buf, a_ev, _) = a_slabs[i].as_ref().expect("A slab resident");
            let (b_buf, b_ev, _) = b_slabs[j].as_ref().expect("B slab resident");

            // the tile's srgemm waits for its inputs and for the host to
            // have consumed this stream's previous tile
            st.wait_until(a_ev.at.max(b_ev.at).max(host_free[r].at));
            st.srgemm::<S>(&x_bufs[r], a_buf, b_buf, ib, jb, k, true);
            let d2h_ev = st.d2h(&x_bufs[r], &mut staging[..ib * jb]);

            // hostUpdate: serialized on the host-memory engine, in initiation
            // order, accumulating straight from the d2h staging slice (no
            // per-tile allocation or copy)
            let mut c_tile = c.subview_mut(i0, j0, ib, jb);
            let done = host_update_slice::<S>(gpu, d2h_ev, &mut c_tile, &staging[..ib * jb]);
            host_free[r] = done;
            tiles += 1;
        }
    }

    Ok(OogStats {
        sim_time: gpu.now(),
        flops: 2.0 * m as f64 * n as f64 * k as f64,
        tiles,
        device_bytes: high_water,
    })
}

/// Timing-only replay of the [`oog_srgemm`] schedule for an `m×n×k` product
/// of `elem_bytes`-element data: identical clock arithmetic, no data. Used
/// by the Fig. 5/6 harnesses at Summit scale.
#[allow(clippy::needless_range_loop)]
pub fn oog_srgemm_model(
    gpu: &SimGpu,
    cfg: &OogConfig,
    m: usize,
    n: usize,
    k: usize,
    elem_bytes: usize,
) -> Result<OogStats, OogError> {
    let need = oog_preflight(gpu, cfg, m, n, k, elem_bytes)?;
    gpu.reset_clocks();
    let eb = elem_bytes as f64;
    let mb = m.div_ceil(cfg.mx).max(1);
    let nb = n.div_ceil(cfg.nx).max(1);
    let s = cfg.streams;

    let mut streams: Vec<Stream> = (0..s).map(|_| gpu.stream()).collect();
    let mut host_free: Vec<Event> = vec![Event { at: 0.0 }; s];
    let mut a_up: Vec<Option<Event>> = vec![None; mb];
    let mut b_up: Vec<Option<Event>> = vec![None; nb];
    let mut tiles = 0usize;

    for i in 0..mb {
        let i0 = i * cfg.mx;
        let ib = cfg.mx.min(m - i0);
        for j in 0..nb {
            let j0 = j * cfg.nx;
            let jb = cfg.nx.min(n - j0);
            let r = tiles % s;
            let st = &mut streams[r];

            if a_up[i].is_none() {
                a_up[i] = Some(st.h2d_timed((ib * k) as f64 * eb));
            }
            if b_up[j].is_none() {
                b_up[j] = Some(st.h2d_timed((k * jb) as f64 * eb));
            }
            let a_ev = a_up[i].expect("A slab uploaded");
            let b_ev = b_up[j].expect("B slab uploaded");

            st.wait_until(a_ev.at.max(b_ev.at).max(host_free[r].at));
            st.srgemm_timed(2.0 * ib as f64 * jb as f64 * k as f64);
            let d2h_ev = st.d2h_timed((ib * jb) as f64 * eb);
            host_free[r] = host_update_timed(gpu, d2h_ev, (ib * jb) as f64, eb);
            tiles += 1;
        }
    }

    Ok(OogStats {
        sim_time: gpu.now(),
        flops: 2.0 * m as f64 * n as f64 * k as f64,
        tiles,
        device_bytes: need,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::OffloadCosts;
    use crate::spec::GpuSpec;
    use srgemm::gemm::gemm_naive;
    use srgemm::{Matrix, MinPlusF32};

    fn lcg(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 256) as f32
        })
    }

    #[test]
    fn oog_matches_in_core_gemm() {
        let gpu = SimGpu::new(GpuSpec::test_tiny());
        let (m, n, k) = (37, 29, 11);
        let a = lcg(m, k, 1);
        let b = lcg(k, n, 2);
        let mut want = lcg(m, n, 3);
        let mut got = want.clone();
        gemm_naive::<MinPlusF32>(&mut want.view_mut(), &a.view(), &b.view());
        let cfg = OogConfig::new(8, 8, 3);
        let stats =
            oog_srgemm::<MinPlusF32>(&gpu, &cfg, &mut got.view_mut(), &a.view(), &b.view()).unwrap();
        assert!(want.eq_exact(&got));
        assert_eq!(stats.tiles, 5 * 4);
        assert!(stats.sim_time > 0.0);
    }

    #[test]
    fn oog_single_stream_matches_too() {
        let gpu = SimGpu::new(GpuSpec::test_tiny());
        let a = lcg(16, 8, 4);
        let b = lcg(8, 16, 5);
        let mut want = Matrix::filled(16, 16, f32::INFINITY);
        let mut got = want.clone();
        gemm_naive::<MinPlusF32>(&mut want.view_mut(), &a.view(), &b.view());
        let cfg = OogConfig::new(5, 7, 1);
        oog_srgemm::<MinPlusF32>(&gpu, &cfg, &mut got.view_mut(), &a.view(), &b.view()).unwrap();
        assert!(want.eq_exact(&got));
    }

    #[test]
    fn gflops_is_zero_not_nan_for_degenerate_products() {
        // m = 0 (or n = 0): no tiles, no flops, no simulated time — the
        // throughput must be 0, not 0/0 = NaN or x/0 = inf.
        let stats = OogStats { sim_time: 0.0, flops: 0.0, tiles: 0, device_bytes: 0 };
        assert_eq!(stats.gflops(), 0.0);

        let gpu = SimGpu::new(GpuSpec::test_tiny());
        let a = lcg(0, 8, 6);
        let b = lcg(8, 16, 7);
        let mut c = Matrix::filled(0, 16, f32::INFINITY);
        let cfg = OogConfig::new(8, 8, 2);
        let stats =
            oog_srgemm::<MinPlusF32>(&gpu, &cfg, &mut c.view_mut(), &a.view(), &b.view()).unwrap();
        assert!(stats.gflops().is_finite());
        assert_eq!(stats.gflops(), 0.0);
    }

    #[test]
    fn oog_fails_with_oom_when_operands_exceed_device() {
        let gpu = SimGpu::new(GpuSpec::test_tiny()); // 1 MiB
        let n = 512; // A+B = 2*512*512*4 B = 2 MiB > capacity
        let a = Matrix::filled(n, n, 1.0f32);
        let b = a.clone();
        let mut c = a.clone();
        let cfg = OogConfig::new(64, 64, 2);
        let err = oog_srgemm::<MinPlusF32>(&gpu, &cfg, &mut c.view_mut(), &a.view(), &b.view());
        assert!(err.is_err());
    }

    #[test]
    fn literal_zero_config_yields_typed_error_not_panic() {
        // `pub` fields let a literal construction skip `new`'s assert; the
        // entry points must catch it before `div_ceil(0)` panics.
        let gpu = SimGpu::new(GpuSpec::test_tiny());
        let a = lcg(8, 8, 1);
        let b = lcg(8, 8, 2);
        for cfg in [
            OogConfig { mx: 0, nx: 8, streams: 2 },
            OogConfig { mx: 8, nx: 0, streams: 2 },
            OogConfig { mx: 8, nx: 8, streams: 0 },
        ] {
            let mut c = lcg(8, 8, 3);
            let got = oog_srgemm::<MinPlusF32>(&gpu, &cfg, &mut c.view_mut(), &a.view(), &b.view());
            assert_eq!(
                got.unwrap_err(),
                OogError::InvalidConfig { mx: cfg.mx, nx: cfg.nx, streams: cfg.streams }
            );
            let got = oog_srgemm_model(&gpu, &cfg, 8, 8, 8, 4);
            assert_eq!(
                got.unwrap_err(),
                OogError::InvalidConfig { mx: cfg.mx, nx: cfg.nx, streams: cfg.streams }
            );
        }
    }

    #[test]
    fn oom_reports_full_requirement_before_any_allocation() {
        // A+B alone fit, but A+B+tiles do not: the error must carry the
        // complete requirement and the device's true free bytes — not a
        // figure with the tile buffers already deducted.
        let gpu = SimGpu::new(GpuSpec::test_tiny()); // 1 MiB
        let n = 256; // A+B = 2·256·256·4 = 512 KiB
        let cfg = OogConfig::new(320, 320, 2); // tiles = 2·320·320·4 = 800 KiB
        let a = Matrix::filled(n, n, 1.0f32);
        let b = a.clone();
        let mut c = a.clone();
        let want = ((n * n * 2 + cfg.streams * cfg.mx * cfg.nx) * 4) as u64;
        let got = oog_srgemm::<MinPlusF32>(&gpu, &cfg, &mut c.view_mut(), &a.view(), &b.view());
        assert_eq!(
            got.unwrap_err(),
            OogError::Oom(Oom { requested: want, available: gpu.spec().mem_bytes })
        );
        assert_eq!(gpu.used_bytes(), 0, "preflight must not leave allocations behind");
    }

    #[test]
    fn functional_and_model_preflights_agree_at_the_capacity_boundary() {
        // Sweep tile sizes across the exact fits/doesn't-fit boundary: the
        // two entry points must agree on every configuration, and when they
        // refuse they must refuse with identical numbers.
        let n = 128;
        let a = lcg(n, n, 11);
        let b = lcg(n, n, 12);
        for mx in [32, 64, 96, 128, 160, 192] {
            let cfg = OogConfig::new(mx, mx, 3);
            let need = ((2 * n * n + 3 * mx * mx) * 4) as u64;
            for mem in [need - 4, need, need + 4] {
                let spec = GpuSpec { mem_bytes: mem, ..GpuSpec::test_tiny() };
                let gpu_f = SimGpu::new(spec);
                let gpu_m = SimGpu::new(spec);
                let mut c = lcg(n, n, 13);
                let f = oog_srgemm::<MinPlusF32>(&gpu_f, &cfg, &mut c.view_mut(), &a.view(), &b.view());
                let m = oog_srgemm_model(&gpu_m, &cfg, n, n, n, 4);
                match (f, m) {
                    (Ok(fs), Ok(ms)) => {
                        assert!(mem >= need, "mx={mx} mem={mem}: both passed below the boundary");
                        assert!((fs.sim_time - ms.sim_time).abs() < 1e-12);
                    }
                    (Err(fe), Err(me)) => {
                        assert!(mem < need, "mx={mx} mem={mem}: both refused above the boundary");
                        assert_eq!(fe, me, "mx={mx} mem={mem}");
                        assert_eq!(fe, OogError::Oom(Oom { requested: need, available: mem }));
                    }
                    (f, m) => panic!("mx={mx} mem={mem}: preflights disagree: {f:?} vs {m:?}"),
                }
            }
        }
    }

    #[test]
    fn more_streams_cut_simulated_time() {
        let gpu = SimGpu::new(GpuSpec::summit_v100());
        // k small → transfer/host bound → overlap helps
        let run = |s| {
            oog_srgemm_model(&gpu, &OogConfig::new(2048, 2048, s), 16384, 16384, 256, 4)
                .unwrap()
                .sim_time
        };
        let t1 = run(1);
        let t3 = run(3);
        assert!(t3 < t1, "3 streams ({t3}) must beat 1 ({t1})");
    }

    #[test]
    fn third_stream_overlaps_all_three_stages() {
        // Pins OogConfig's claim that "≥3 overlaps all three pipeline
        // stages": with 2 streams at most two of {srgemm, d2hXfer,
        // hostUpdate} run concurrently — a stream cannot start its next
        // srgemm until the host consumed its previous tile — so adding the
        // third stream must strictly cut simulated time in a regime where
        // every stage has comparable weight (small k → transfer/host bound).
        let gpu = SimGpu::new(GpuSpec::summit_v100());
        let run = |s| {
            oog_srgemm_model(&gpu, &OogConfig::new(2048, 2048, s), 16384, 16384, 256, 4)
                .unwrap()
                .sim_time
        };
        let t2 = run(2);
        let t3 = run(3);
        assert!(t3 < t2, "3 streams ({t3}) must beat 2 ({t2})");
        // and a 4th stream adds (almost) nothing: the three engines are the
        // bottleneck, not stream count
        let t4 = run(4);
        assert!(t4 > 0.95 * t3, "4 streams ({t4}) should not beat 3 ({t3}) by much");
    }

    #[test]
    fn model_tracks_analytic_cost_for_three_streams() {
        // with ≥3 streams and k ≥ k_min the pipeline should run at ~t0
        let gpu = SimGpu::new(GpuSpec::summit_v100());
        let (m, n, k) = (32768, 32768, 768);
        let stats = oog_srgemm_model(&gpu, &OogConfig::new(2048, 2048, 3), m, n, k, 4).unwrap();
        let analytic = OffloadCosts::new(gpu.spec(), m, n, k, 4);
        assert!(analytic.compute_bound());
        let ratio = stats.sim_time / analytic.t0;
        assert!(
            (0.95..1.35).contains(&ratio),
            "sim {} vs t0 {} (ratio {ratio})",
            stats.sim_time,
            analytic.t0
        );
    }

    #[test]
    fn small_block_sizes_fall_off_peak() {
        // Fig. 5's shape: block size below the Eq. 5 threshold ⇒ well under
        // peak; above it ⇒ close to peak.
        let gpu = SimGpu::new(GpuSpec::summit_v100());
        let run = |k: usize| {
            oog_srgemm_model(&gpu, &OogConfig::new(2048, 2048, 4), 32768, 32768, k, 4)
                .unwrap()
                .gflops()
        };
        let peak = gpu.spec().srgemm_flops / 1e9;
        let lo = run(128);
        let hi = run(1024);
        assert!(lo < 0.55 * peak, "k=128 should be far from peak: {lo} vs {peak}");
        assert!(hi > 0.8 * peak, "k=1024 should be near peak: {hi} vs {peak}");
    }

    #[test]
    fn functional_and_model_clocks_agree() {
        let gpu1 = SimGpu::new(GpuSpec::test_tiny());
        let gpu2 = SimGpu::new(GpuSpec::test_tiny());
        let (m, n, k) = (24, 24, 8);
        let a = lcg(m, k, 7);
        let b = lcg(k, n, 8);
        let mut c = lcg(m, n, 9);
        let cfg = OogConfig::new(8, 8, 2);
        let f = oog_srgemm::<MinPlusF32>(&gpu1, &cfg, &mut c.view_mut(), &a.view(), &b.view()).unwrap();
        let t = oog_srgemm_model(&gpu2, &cfg, m, n, k, 4).unwrap();
        assert!((f.sim_time - t.sim_time).abs() < 1e-12, "{} vs {}", f.sim_time, t.sim_time);
        assert_eq!(f.tiles, t.tiles);
    }
}
