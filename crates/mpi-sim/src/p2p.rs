//! Tag-matched point-to-point mailboxes.
//!
//! Sends are buffered (never block), like MPI eager-protocol sends of the
//! message sizes the FW algorithms use between pipeline stages. Receives
//! block until a message with the requested `(context, source, tag)` key is
//! present, with a configurable timeout that converts distributed deadlocks
//! into typed errors instead of hangs — and a *poison* path that wakes every
//! blocked receiver immediately when some rank fails, so one failure never
//! costs the rest of the job a full timeout.

use std::any::Any;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Matching key: (communicator context, source rank in that communicator, tag).
pub type MatchKey = (u64, usize, u64);

/// A receive gave up waiting (suspected distributed deadlock). Carries the
/// keys still queued in the mailbox so the caller's report can show what
/// *did* arrive while the expected message never did.
#[derive(Clone, Debug)]
pub(crate) struct RecvTimeout {
    /// Match keys of every message pending in the mailbox at timeout.
    pub(crate) pending: Vec<MatchKey>,
}

/// Why a mailbox receive failed. [`crate::Comm::recv`] converts these into
/// the public [`crate::CommError`] variants, adding the rank/phase context
/// this layer cannot know.
#[derive(Clone, Debug)]
pub(crate) enum RecvError {
    /// Timed out with no matching message (suspected deadlock).
    Timeout(RecvTimeout),
    /// The runtime poisoned this mailbox because `rank` (world) failed.
    PeerFailed { rank: usize },
    /// A matching message arrived but its payload was not a `T`.
    TypeMismatch {
        /// `std::any::type_name` of the expected payload type.
        expected: &'static str,
    },
}

struct Envelope {
    key: MatchKey,
    bytes: usize,
    payload: Box<dyn Any + Send>,
}

#[derive(Default)]
struct QueueState {
    queue: Vec<Envelope>,
    /// World rank of the first failed rank, once the runtime poisons us.
    poisoned: Option<usize>,
}

/// One rank's incoming-message queue.
#[derive(Default)]
pub(crate) struct Mailbox {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Deposit a message (called by the *sender's* thread).
    pub(crate) fn deliver(&self, key: MatchKey, bytes: usize, payload: Box<dyn Any + Send>) {
        let mut q = self.state.lock();
        q.queue.push(Envelope { key, bytes, payload });
        self.cv.notify_all();
    }

    /// Mark the mailbox as poisoned by the failure of world rank `rank` and
    /// wake every blocked receiver. The first poisoner wins (first-failure
    /// attribution); queued messages still drain before the poison is
    /// observed, so ranks that already have their data can finish.
    pub(crate) fn poison(&self, rank: usize) {
        let mut q = self.state.lock();
        if q.poisoned.is_none() {
            q.poisoned = Some(rank);
        }
        self.cv.notify_all();
    }

    /// Blocking receive of the first message matching `key`. Matching
    /// queued messages are always drained first; otherwise a poisoned
    /// mailbox fails immediately with [`RecvError::PeerFailed`], and an
    /// expired `timeout` yields [`RecvError::Timeout`] (suspected
    /// deadlock). A payload of the wrong type is
    /// [`RecvError::TypeMismatch`] — a program bug, not a deadlock.
    pub(crate) fn recv<T: Send + 'static>(
        &self,
        key: MatchKey,
        timeout: Duration,
    ) -> Result<(T, usize), RecvError> {
        let mut q = self.state.lock();
        loop {
            if let Some(pos) = q.queue.iter().position(|e| e.key == key) {
                let env = q.queue.remove(pos);
                let bytes = env.bytes;
                return match env.payload.downcast::<T>() {
                    Ok(payload) => Ok((*payload, bytes)),
                    Err(_) => {
                        Err(RecvError::TypeMismatch { expected: std::any::type_name::<T>() })
                    }
                };
            }
            if let Some(rank) = q.poisoned {
                return Err(RecvError::PeerFailed { rank });
            }
            if self.cv.wait_for(&mut q, timeout).timed_out() {
                return Err(RecvError::Timeout(RecvTimeout {
                    pending: q.queue.iter().map(|e| e.key).collect(),
                }));
            }
        }
    }

    /// Non-blocking probe: is a matching message queued?
    pub(crate) fn probe(&self, key: MatchKey) -> bool {
        self.state.lock().queue.iter().any(|e| e.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delivers_in_fifo_order_per_key() {
        let mb = Mailbox::new();
        let key = (0, 1, 7);
        mb.deliver(key, 4, Box::new(10u32));
        mb.deliver(key, 4, Box::new(20u32));
        let (a, _) = mb.recv::<u32>(key, Duration::from_secs(1)).unwrap();
        let (b, _) = mb.recv::<u32>(key, Duration::from_secs(1)).unwrap();
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn matches_only_requested_key() {
        let mb = Mailbox::new();
        mb.deliver((0, 2, 1), 4, Box::new(99u32));
        mb.deliver((0, 1, 1), 4, Box::new(42u32));
        let (got, _) = mb.recv::<u32>((0, 1, 1), Duration::from_secs(1)).unwrap();
        assert_eq!(got, 42);
        assert!(mb.probe((0, 2, 1)));
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || {
            mb2.recv::<u64>((1, 0, 0), Duration::from_secs(5)).unwrap().0
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver((1, 0, 0), 8, Box::new(7u64));
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn recv_times_out_on_deadlock() {
        let mb = Mailbox::new();
        mb.deliver((0, 3, 9), 4, Box::new(1u32)); // unrelated message
        let err = mb
            .recv::<u32>((0, 0, 0), Duration::from_millis(10))
            .expect_err("nothing matching ever arrives");
        match err {
            RecvError::Timeout(t) => assert_eq!(t.pending, vec![(0, 3, 9)]),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn type_mismatch_is_a_typed_error() {
        let mb = Mailbox::new();
        mb.deliver((0, 0, 0), 4, Box::new(1u32));
        let err = mb.recv::<f32>((0, 0, 0), Duration::from_secs(1)).unwrap_err();
        match err {
            RecvError::TypeMismatch { expected } => assert_eq!(expected, "f32"),
            other => panic!("expected type mismatch, got {other:?}"),
        }
    }

    #[test]
    fn poison_wakes_a_blocked_receiver_immediately() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let err = mb2.recv::<u64>((0, 0, 0), Duration::from_secs(30)).unwrap_err();
            (err, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.poison(5);
        let (err, waited) = t.join().unwrap();
        match err {
            RecvError::PeerFailed { rank } => assert_eq!(rank, 5),
            other => panic!("expected peer failure, got {other:?}"),
        }
        assert!(waited < Duration::from_secs(5), "woke in {waited:?}, not at the timeout");
    }

    #[test]
    fn queued_messages_drain_before_poison_is_seen() {
        let mb = Mailbox::new();
        mb.deliver((0, 0, 0), 4, Box::new(11u32));
        mb.poison(2);
        let (got, _) = mb.recv::<u32>((0, 0, 0), Duration::from_secs(1)).unwrap();
        assert_eq!(got, 11);
        let err = mb.recv::<u32>((0, 0, 0), Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, RecvError::PeerFailed { rank: 2 }));
    }

    #[test]
    fn first_poisoner_wins() {
        let mb = Mailbox::new();
        mb.poison(1);
        mb.poison(3);
        let err = mb.recv::<u32>((0, 0, 0), Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, RecvError::PeerFailed { rank: 1 }));
    }
}
