//! Seeded workload generators.
//!
//! The paper's evaluation (§5.1.4) runs on **dense uniform random** distance
//! matrices; [`uniform_dense`] reproduces that workload. The other families
//! exist for correctness tests (multi-component, adversarial) and for the
//! example applications (roads, similarity graphs).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::graph::{Graph, GraphBuilder};

/// Weight regime for generated edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightKind {
    /// Uniform real weights in `[lo, hi)`.
    Real {
        /// Lower bound (inclusive).
        lo: f32,
        /// Upper bound (exclusive).
        hi: f32,
    },
    /// Uniform integer weights in `[lo, hi]`, stored as f32. Integer weights
    /// make every shortest-path sum exact in f32 (up to 2^24), so oracle
    /// comparisons in tests can demand bitwise equality.
    Integer {
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (inclusive).
        hi: u32,
    },
}

impl WeightKind {
    /// Default for tests: small exact integers.
    pub fn small_ints() -> Self {
        WeightKind::Integer { lo: 1, hi: 100 }
    }

    fn sample(&self, rng: &mut StdRng) -> f32 {
        match *self {
            WeightKind::Real { lo, hi } => rng.random_range(lo..hi),
            WeightKind::Integer { lo, hi } => rng.random_range(lo..=hi) as f32,
        }
    }
}

/// Graph families exposed to the harness binaries and tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphKind {
    /// Dense uniform random digraph — the paper's workload.
    UniformDense,
    /// Erdős–Rényi `G(n, p)` digraph.
    ErdosRenyi {
        /// Independent edge probability.
        p: f64,
    },
    /// 4-connected grid, road-network-like.
    Grid {
        /// Grid width; height is derived from the vertex count.
        width: usize,
    },
    /// Directed ring with shortcut chords — known closed-form distances.
    Ring,
    /// Several disconnected dense blobs.
    MultiComponent {
        /// Number of components.
        components: usize,
    },
}

/// Generate a graph of the given family on `n` vertices.
pub fn generate(kind: GraphKind, n: usize, weights: WeightKind, seed: u64) -> Graph {
    match kind {
        GraphKind::UniformDense => uniform_dense(n, weights, seed),
        GraphKind::ErdosRenyi { p } => erdos_renyi(n, p, weights, seed),
        GraphKind::Grid { width } => grid(width, n.div_ceil(width.max(1)), weights, seed),
        GraphKind::Ring => ring_with_chords(n, weights, seed),
        GraphKind::MultiComponent { components } => multi_component(n, components, weights, seed),
    }
}

/// Dense uniform random digraph: every ordered pair `(i, j)`, `i ≠ j`, gets
/// an edge (§5.1.4's "dense uniform random matrix").
pub fn uniform_dense(n: usize, weights: WeightKind, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(i, j, weights.sample(&mut rng));
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each ordered pair independently present with
/// probability `p`.
pub fn erdos_renyi(n: usize, p: f64, weights: WeightKind, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.random_bool(p) {
                b.add_edge(i, j, weights.sample(&mut rng));
            }
        }
    }
    b.build()
}

/// `width × height` 4-neighbor grid with undirected random-weight edges —
/// a road-network stand-in for the routing example.
pub fn grid(width: usize, height: usize, weights: WeightKind, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = width * height;
    let mut b = GraphBuilder::new(n);
    let id = |x: usize, y: usize| y * width + x;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                b.add_undirected(id(x, y), id(x + 1, y), weights.sample(&mut rng));
            }
            if y + 1 < height {
                b.add_undirected(id(x, y), id(x, y + 1), weights.sample(&mut rng));
            }
        }
    }
    b.build()
}

/// Directed ring `i → i+1 (mod n)` plus `n/4` random chords. The ring alone
/// has closed-form distances, which tests exploit.
pub fn ring_with_chords(n: usize, weights: WeightKind, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n, weights.sample(&mut rng));
    }
    for _ in 0..n / 4 {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            b.add_edge(u, v, weights.sample(&mut rng));
        }
    }
    b.build()
}

/// Plain directed ring with unit weights: `dist(i, j) = (j - i) mod n`.
pub fn unit_ring(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n, 1.0);
    }
    b.build()
}

/// `components` disconnected dense blobs — exercises the paper's claim that
/// the implementation "will work when there are multiple connected
/// components" (§2.1).
pub fn multi_component(n: usize, components: usize, weights: WeightKind, seed: u64) -> Graph {
    assert!(components >= 1, "need at least one component");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let per = n.div_ceil(components);
    for c in 0..components {
        let lo = c * per;
        let hi = ((c + 1) * per).min(n);
        for i in lo..hi {
            for j in lo..hi {
                if i != j {
                    b.add_edge(i, j, weights.sample(&mut rng));
                }
            }
        }
    }
    b.build()
}

/// Random geometric graph on the unit square: vertices within `radius`
/// are connected by an edge weighted with their Euclidean distance. Used by
/// the road-network example. Returns the graph and the point positions.
pub fn geometric(n: usize, radius: f64, seed: u64) -> (Graph, Vec<(f64, f64)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius {
                b.add_undirected(i, j, d as f32);
            }
        }
    }
    (b.build(), pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_dense_has_all_pairs() {
        let g = uniform_dense(10, WeightKind::small_ints(), 1);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 90);
        for (_, _, w) in g.edges() {
            assert!((1.0..=100.0).contains(&w));
        }
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        let a = uniform_dense(8, WeightKind::Real { lo: 0.0, hi: 1.0 }, 42);
        let b = uniform_dense(8, WeightKind::Real { lo: 0.0, hi: 1.0 }, 42);
        let c = uniform_dense(8, WeightKind::Real { lo: 0.0, hi: 1.0 }, 43);
        assert_eq!(a.total_weight(), b.total_weight());
        assert_ne!(a.total_weight(), c.total_weight());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = erdos_renyi(10, 0.0, WeightKind::small_ints(), 1);
        assert_eq!(empty.m(), 0);
        let full = erdos_renyi(10, 1.0, WeightKind::small_ints(), 1);
        assert_eq!(full.m(), 90);
    }

    #[test]
    fn grid_edge_count() {
        // 3x2 grid: horizontal 2*2, vertical 3*1 → 7 undirected = 14 directed
        let g = grid(3, 2, WeightKind::small_ints(), 1);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 14);
    }

    #[test]
    fn unit_ring_distances_are_modular() {
        let g = unit_ring(5);
        assert_eq!(g.weight(4, 0), 1.0);
        assert_eq!(g.weight(0, 2), f32::INFINITY);
        assert_eq!(g.m(), 5);
    }

    #[test]
    fn multi_component_has_no_cross_edges() {
        let g = multi_component(9, 3, WeightKind::small_ints(), 7);
        for (u, v, _) in g.edges() {
            assert_eq!(u / 3, v / 3, "edge {u}->{v} crosses components");
        }
    }

    #[test]
    fn geometric_weights_equal_distances() {
        let (g, pts) = geometric(30, 0.5, 3);
        for (u, v, w) in g.edges() {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            let d = (dx * dx + dy * dy).sqrt() as f32;
            assert!((w - d).abs() < 1e-6);
            assert!(w <= 0.5 + 1e-6);
        }
    }
}
