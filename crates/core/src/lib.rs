#![warn(missing_docs)]

//! # apsp-core — distributed GPU-offload Floyd-Warshall APSP
//!
//! Reproduction of *Scalable All-pairs Shortest Paths for Huge Graphs on
//! Multi-GPU Clusters* (Sao et al., HPDC 2021) as a Rust library. The
//! paper's algorithms, bottom-up:
//!
//! * [`fw_seq`](mod@fw_seq) — Algorithm 1, the classic `O(n³)` triple loop
//!   (plus a predecessor-tracking variant for path reconstruction).
//! * [`fw_blocked`](mod@fw_blocked) — Algorithm 2: DiagUpdate / PanelUpdate
//!   / MinPlus outer product over `b×b` blocks, with the diagonal closed
//!   either by Floyd-Warshall or by the repeated-squaring Neumann form
//!   (Eq. 4).
//! * [`dist`] — the distributed algorithms over the [`mpi_sim`] runtime,
//!   spanned by three orthogonal policy axes rather than a closed variant
//!   list:
//!   - [`dist::Schedule`] — bulk-synchronous (Algorithm 3) vs look-ahead
//!     pipelined (Algorithm 4),
//!   - [`dist::PanelBcastAlgo`] — binomial tree vs the bandwidth-optimal
//!     pipelined ring `PanelBcast` (§3.3),
//!   - [`dist::Exec`] — in-core GEMM vs `Me-ParallelFw`'s host-resident
//!     offload through a simulated GPU by `ooGSrGemm` (§4.3).
//!
//!   [`dist::Variant`] names the paper's legends as presets over the cube —
//!   `Baseline`, `Pipelined`, `+Async`, `Offload`, and the composed
//!   [`dist::Variant::CoMe`] (`Co+Me`: look-ahead + ring + offload, the
//!   Fig. 7 configuration that reaches n = 1.66M).
//! * [`model`] — the paper's performance models: Eq. 1, the §3.4.1
//!   communication-volume lower bound, Eq. 5, and the §5.1.3 metrics.
//! * [`schedule`] — lowers any policy triple to a [`cluster_sim`] task DAG
//!   at Summit scale; this is what regenerates the paper's Figs. 3–4 and
//!   7–9.
//! * [`serve`] — APSP-as-a-service: an epoch-snapshot query engine over a
//!   solved closure ([`serve::Engine`]), batched point-to-point /
//!   one-to-many / path queries against `Arc`-swapped immutable
//!   [`serve::Snapshot`]s while a single writer streams
//!   [`incremental`](mod@incremental) decrease batches and publishes new
//!   epochs; spoken over a line protocol by `apsp serve`.
//! * [`quant`] — low-precision quantized solves: scale-and-round weights
//!   into `u16`/`i32`, run blocked FW over the saturating integer min-plus
//!   semirings (2–4× the SIMD lanes of `f32` through the same packed
//!   kernel), and dequantize under a provable `±eps` bound, with typed
//!   overflow/tolerance rejection ([`quant::QuantError`]) decided before
//!   any work happens.
//! * [`solver`] — one [`Solver`] registry over every APSP algorithm in the
//!   workspace (dense FW, block-sparse, Johnson, Dijkstra, Δ-stepping,
//!   Seidel, the distributed driver), a one-pass [`GraphProfile`], and a
//!   calibrated cost-model planner behind `--algo auto` / `apsp plan` that
//!   picks a solver and explains why — ineligibility is typed
//!   ([`Ineligible`]), never a panic.
//!
//! ## Quickstart
//!
//! ```
//! use apsp_graph::generators::{uniform_dense, WeightKind};
//! use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
//! use srgemm::MinPlusF32;
//!
//! let g = uniform_dense(64, WeightKind::small_ints(), 42);
//! let mut d = g.to_dense();
//! fw_blocked::<MinPlusF32>(&mut d, 16, DiagMethod::FwClosure, true);
//! // d now holds all-pairs shortest distances.
//! assert_eq!(d[(0, 0)], 0.0);
//! ```

pub mod dc_apsp;
pub mod dist;
pub mod fw_blocked;
pub mod fw_seq;
pub mod fw_sparse;
pub mod incremental;
pub mod model;
pub mod ooc;
pub mod paths_dist;
pub mod quant;
pub mod schedule;
pub mod serve;
pub mod solver;
pub mod verify;

pub use dist::{
    distributed_apsp, distributed_apsp_opts, distributed_apsp_traced,
    distributed_apsp_traced_opts, DistError, DistRunOpts, Exec, FwConfig, PanelBcastAlgo,
    Schedule, Variant,
};
pub use fw_blocked::{fw_blocked, DiagMethod};
pub use fw_seq::{fw_seq, fw_seq_with_paths};
pub use incremental::{BatchReport, IncrementalError};
pub use serve::{Engine, Snapshot};
pub use solver::{
    GraphProfile, Ineligible, Plan, Registry, Solution, SolveError, SolveOpts, Solver, SolverStats,
};
