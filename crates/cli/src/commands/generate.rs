//! `apsp generate` — create a workload graph and write it to a file.

use apsp_graph::generators::{self, GraphKind, WeightKind};

use crate::args::Args;

/// Entry point.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!(
            "apsp generate --kind <dense|er|grid|ring|geometric|multi> --n <N> --out <FILE>
  --seed <u64>       RNG seed (default 42)
  --p <f64>          edge probability for 'er' (default 0.1)
  --width <N>        grid width (default ⌈√n⌉)
  --components <N>   component count for 'multi' (default 4)
  --wmin/--wmax <u32> integer weight range (default 1..100)
  --format <dimacs|edges>"
        );
        return Ok(());
    }
    let args = Args::parse(tokens)?;
    let n: usize = args.req("n")?;
    let out: String = args.req("out")?;
    let seed: u64 = args.opt("seed", 42)?;
    let kind_name: String = args.opt("kind", "dense".to_string())?;
    let wmin: u32 = args.opt("wmin", 1)?;
    let wmax: u32 = args.opt("wmax", 100)?;
    if wmin > wmax {
        return Err("--wmin must not exceed --wmax".into());
    }
    let weights = WeightKind::Integer { lo: wmin, hi: wmax };

    let g = match kind_name.as_str() {
        "dense" => generators::generate(GraphKind::UniformDense, n, weights, seed),
        "er" => {
            let p: f64 = args.opt("p", 0.1)?;
            generators::generate(GraphKind::ErdosRenyi { p }, n, weights, seed)
        }
        "grid" => {
            let width: usize = args.opt("width", (n as f64).sqrt().ceil() as usize)?;
            generators::generate(GraphKind::Grid { width }, n, weights, seed)
        }
        "ring" => generators::generate(GraphKind::Ring, n, weights, seed),
        "multi" => {
            let components: usize = args.opt("components", 4)?;
            generators::generate(GraphKind::MultiComponent { components }, n, weights, seed)
        }
        "geometric" => generators::geometric(n, 0.15, seed).0,
        other => return Err(format!("unknown kind '{other}'")),
    };

    super::save_graph(&g, &out, args.opt_str("format"))?;
    println!("wrote {} vertices, {} edges to {out}", g.n(), g.m());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn generates_and_writes() {
        let dir = std::env::temp_dir().join(format!("apsp-gen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.gr");
        let cmd = format!("--kind er --n 12 --p 0.3 --seed 1 --out {}", out.display());
        run(&toks(&cmd)).unwrap();
        let g = crate::commands::load_graph(out.to_str().unwrap(), None).unwrap();
        assert_eq!(g.n(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_unknown_kind() {
        assert!(run(&toks("--kind nope --n 5 --out /tmp/x.gr")).is_err());
    }

    #[test]
    fn rejects_inverted_weight_range() {
        assert!(run(&toks("--kind dense --n 5 --wmin 9 --wmax 2 --out /tmp/x.gr")).is_err());
    }
}
