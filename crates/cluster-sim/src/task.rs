//! Task-DAG construction.

/// Identifies a resource (a serial execution engine: one GPU pool, one NIC
/// direction, one host-memory channel…).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Index into per-resource arrays such as [`crate::engine::Schedule::busy`].
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// Identifies a task within a [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u32);

#[derive(Clone, Debug)]
pub(crate) struct Task {
    pub resource: ResourceId,
    pub duration: f64,
    /// Lower runs first among simultaneously-ready tasks on one resource.
    pub priority: u32,
    pub deps: Vec<TaskId>,
    /// Phase label stamped from [`TaskGraph::set_phase`] at creation.
    pub label: Option<&'static str>,
}

/// A static DAG of tasks bound to resources.
///
/// Build with [`TaskGraph::resource`] / [`TaskGraph::task`], then execute
/// with [`crate::engine::run`]. Dependencies must point to already-created
/// tasks, which structurally guarantees acyclicity.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    pub(crate) num_resources: u32,
    /// Ambient label applied to tasks created from now on (trace export).
    current_phase: Option<&'static str>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new resource (serial engine).
    pub fn resource(&mut self) -> ResourceId {
        let id = ResourceId(self.num_resources);
        self.num_resources += 1;
        id
    }

    /// Add a task of `duration` seconds on `resource`, starting after every
    /// task in `deps` finishes. `priority`: lower value = preferred when
    /// several tasks are ready on the same resource at the same instant.
    ///
    /// # Panics
    /// Panics on an unknown resource, a forward/unknown dependency, a
    /// negative or non-finite duration.
    pub fn task(&mut self, resource: ResourceId, duration: f64, priority: u32, deps: &[TaskId]) -> TaskId {
        assert!(resource.0 < self.num_resources, "unknown resource");
        assert!(duration.is_finite() && duration >= 0.0, "bad duration {duration}");
        let id = TaskId(self.tasks.len() as u32);
        for d in deps {
            assert!(d.0 < id.0, "dependency on a not-yet-created task");
        }
        self.tasks.push(Task {
            resource,
            duration,
            priority,
            deps: deps.to_vec(),
            label: self.current_phase,
        });
        id
    }

    /// Label every subsequently-created task with `name` — the phase
    /// attribution that [`crate::trace::chrome_trace`] exports. Builders
    /// call this at each phase boundary (DiagUpdate, PanelBcast, …).
    pub fn set_phase(&mut self, name: &'static str) {
        self.current_phase = Some(name);
    }

    /// The phase label of `t` (`"task"` when none was set).
    pub fn label_of(&self, t: TaskId) -> &'static str {
        self.tasks[t.0 as usize].label.unwrap_or("task")
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_ids_sequentially() {
        let mut g = TaskGraph::new();
        let r = g.resource();
        let a = g.task(r, 1.0, 0, &[]);
        let b = g.task(r, 2.0, 0, &[a]);
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not-yet-created")]
    fn rejects_forward_deps() {
        let mut g = TaskGraph::new();
        let r = g.resource();
        g.task(r, 1.0, 0, &[TaskId(5)]);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn rejects_nan_duration() {
        let mut g = TaskGraph::new();
        let r = g.resource();
        g.task(r, f64::NAN, 0, &[]);
    }
}
