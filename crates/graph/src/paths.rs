//! Parent-pointer path extraction and validation helpers.
//!
//! Used by the examples (route printing) and by tests that check not just
//! distances but the realizability of the reported paths. Distributed
//! shortest-*path* generation is the paper's declared future work (§7); the
//! single-node predecessor machinery here plus `apsp_core::fw_seq::fw_seq_with_paths`
//! implements that extension at library scale.

use crate::graph::{Graph, INF};

/// Follow `parent` pointers from `dst` back to `src`.
/// Returns the vertex sequence `src … dst`, or `None` if `dst` is unreachable.
pub fn extract_path(parent: &[usize], src: usize, dst: usize) -> Option<Vec<usize>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while parent[cur] != usize::MAX {
        cur = parent[cur];
        path.push(cur);
        if cur == src {
            path.reverse();
            return Some(path);
        }
        if path.len() > parent.len() {
            return None; // cycle in parent pointers — corrupt input
        }
    }
    None
}

/// Sum of edge weights along `path`; `∞` if some edge is missing.
pub fn path_length(g: &Graph, path: &[usize]) -> f32 {
    let mut total = 0.0;
    for win in path.windows(2) {
        let w = g.weight(win[0], win[1]);
        if w == INF {
            return INF;
        }
        total += w;
    }
    total
}

/// Check that `path` starts at `src`, ends at `dst`, uses only existing
/// edges, and has total length `expected` (within `tol`).
pub fn validate_path(g: &Graph, path: &[usize], src: usize, dst: usize, expected: f32, tol: f32) -> bool {
    if path.first() != Some(&src) || path.last() != Some(&dst) {
        return false;
    }
    let len = path_length(g, path);
    if len == INF && expected == INF {
        return true;
    }
    (len - expected).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_with_parents;
    use crate::generators::{self, WeightKind};
    use crate::graph::GraphBuilder;

    #[test]
    fn extracts_simple_path() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).add_edge(1, 2, 1.0).add_edge(2, 3, 1.0);
        let g = b.build();
        let (d, parent) = dijkstra_with_parents(&g, 0);
        let p = extract_path(&parent, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        assert!(validate_path(&g, &p, 0, 3, d[3], 1e-6));
    }

    #[test]
    fn trivial_path_to_self() {
        let parent = vec![usize::MAX; 3];
        assert_eq!(extract_path(&parent, 1, 1), Some(vec![1]));
    }

    #[test]
    fn unreachable_gives_none() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let (_, parent) = dijkstra_with_parents(&g, 0);
        assert_eq!(extract_path(&parent, 0, 2), None);
    }

    #[test]
    fn validate_rejects_fake_paths() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).add_edge(1, 2, 1.0);
        let g = b.build();
        // 0 -> 2 directly is not an edge
        assert!(!validate_path(&g, &[0, 2], 0, 2, 2.0, 1e-6));
        // wrong total
        assert!(!validate_path(&g, &[0, 1, 2], 0, 2, 5.0, 1e-6));
        // right path, right total
        assert!(validate_path(&g, &[0, 1, 2], 0, 2, 2.0, 1e-6));
    }

    #[test]
    fn random_graph_paths_realize_reported_distances() {
        let g = generators::erdos_renyi(30, 0.2, WeightKind::small_ints(), 17);
        let (d, parent) = dijkstra_with_parents(&g, 3);
        for (t, &dt) in d.iter().enumerate() {
            if dt < INF {
                let p = extract_path(&parent, 3, t).unwrap();
                assert!(validate_path(&g, &p, 3, t, dt, 1e-4));
            }
        }
    }
}
