//! Cache-blocked serial semiring GEMM.
//!
//! The loop nest is i-k-j inside tiles: for a fixed `(i, k)` the inner j-loop
//! streams a row of `B` and a row of `C`, which vectorizes for min/+ and keeps
//! both rows hot in L1. Tiles of `KC × NC` of `B` are reused across the `MC`
//! rows of a slab, mirroring (at CPU scale) the shared-memory staging the
//! paper's Cutlass-based SRGEMM performs on the GPU.

use crate::matrix::{View, ViewMut};
use crate::semiring::Semiring;

/// Rows of the `C`/`A` slab held in L2 per outer tile.
pub const MC: usize = 64;
/// Inner (reduction) tile; `B[kc, :]` panel stays in L1/L2.
pub const KC: usize = 256;
/// Columns of the `B`/`C` tile.
pub const NC: usize = 512;

/// `C ← C ⊕ A ⊗ B`, cache-tiled.
pub fn gemm_blocked<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) {
    super::check_shapes(c, a, b);
    gemm_blocked_tiled::<S>(c, a, b, MC, KC, NC)
}

/// Tiled kernel with explicit tile sizes (exposed for the tiling ablation
/// bench).
pub fn gemm_blocked_tiled<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
    mc: usize,
    kc: usize,
    nc: usize,
) {
    super::check_shapes(c, a, b);
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    let mut i0 = 0;
    while i0 < m {
        let ib = mc.min(m - i0);
        let mut k0 = 0;
        while k0 < k {
            let kb = kc.min(k - k0);
            let mut j0 = 0;
            while j0 < n {
                let jb = nc.min(n - j0);
                micro_kernel::<S>(c, a, b, i0, j0, k0, ib, jb, kb);
                j0 += jb;
            }
            k0 += kb;
        }
        i0 += ib;
    }
}

/// Innermost tile: i-k-j with the j-loop over contiguous row slices.
/// (Index-offset loops kept as written: the kernel mirrors the BLAS-style
/// tiling math, and iterator forms obscure the `k0..k0+kb` windows.)
#[inline]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn micro_kernel<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
    i0: usize,
    j0: usize,
    k0: usize,
    ib: usize,
    jb: usize,
    kb: usize,
) {
    for i in i0..i0 + ib {
        let a_row = a.row(i);
        let c_row = &mut c.row_mut(i)[j0..j0 + jb];
        for l in k0..k0 + kb {
            let a_il = a_row[l];
            let b_row = &b.row(l)[j0..j0 + jb];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj = S::fma(*cj, a_il, bj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use crate::matrix::Matrix;
    use crate::semiring::MinPlus;

    type MP = MinPlus<f64>;

    /// Deterministic pseudo-random matrix without pulling in rand.
    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 10.0
        })
    }

    #[test]
    fn blocked_matches_naive_across_tile_boundaries() {
        // sizes straddle the MC/KC/NC boundaries when tiles are tiny
        for &(m, n, k) in &[(1, 1, 1), (7, 5, 9), (16, 16, 16), (33, 17, 65)] {
            let a = lcg_matrix(m, k, 1);
            let b = lcg_matrix(k, n, 2);
            let mut c1 = lcg_matrix(m, n, 3);
            let mut c2 = c1.clone();
            gemm_naive::<MP>(&mut c1.view_mut(), &a.view(), &b.view());
            gemm_blocked_tiled::<MP>(&mut c2.view_mut(), &a.view(), &b.view(), 8, 4, 8);
            assert!(c1.eq_exact(&c2), "mismatch at ({m},{n},{k})");
        }
    }

    #[test]
    fn non_divisible_tile_sizes() {
        let a = lcg_matrix(13, 11, 4);
        let b = lcg_matrix(11, 19, 5);
        let mut c1 = Matrix::filled(13, 19, f64::INFINITY);
        let mut c2 = c1.clone();
        gemm_naive::<MP>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_blocked_tiled::<MP>(&mut c2.view_mut(), &a.view(), &b.view(), 5, 3, 7);
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn works_on_strided_subviews() {
        // operate on interior blocks of larger parents
        let pa = lcg_matrix(20, 20, 6);
        let pb = lcg_matrix(20, 20, 7);
        let mut pc = lcg_matrix(20, 20, 8);
        let mut pc2 = pc.clone();

        let a = pa.subview(2, 3, 6, 7);
        let b = pb.subview(1, 4, 7, 5);
        gemm_naive::<MP>(&mut pc.subview_mut(3, 3, 6, 5), &a, &b);
        gemm_blocked::<MP>(&mut pc2.subview_mut(3, 3, 6, 5), &a, &b);
        assert!(pc.eq_exact(&pc2));
        // outside the target block nothing changed
        assert_eq!(pc[(0, 0)], pc2[(0, 0)]);
    }
}
