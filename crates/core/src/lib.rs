#![warn(missing_docs)]

//! # apsp-core — distributed GPU-offload Floyd-Warshall APSP
//!
//! Reproduction of *Scalable All-pairs Shortest Paths for Huge Graphs on
//! Multi-GPU Clusters* (Sao et al., HPDC 2021) as a Rust library. The
//! paper's algorithms, bottom-up:
//!
//! * [`fw_seq`] — Algorithm 1, the classic `O(n³)` triple loop (plus a
//!   predecessor-tracking variant for path reconstruction).
//! * [`fw_blocked`] — Algorithm 2: DiagUpdate / PanelUpdate / MinPlus outer
//!   product over `b×b` blocks, with the diagonal closed either by
//!   Floyd-Warshall or by the repeated-squaring Neumann form (Eq. 4).
//! * [`dist`] — the distributed variants over the [`mpi_sim`] runtime:
//!   - [`dist::Variant::Baseline`] — Algorithm 3 (bulk-synchronous, tree
//!     broadcasts),
//!   - [`dist::Variant::Pipelined`] — Algorithm 4 (look-ahead update,
//!     panel broadcast overlapped with the outer product),
//!   - [`dist::Variant::AsyncRing`] — pipelined + bandwidth-optimal ring
//!     `PanelBcast` (§3.3),
//!   - [`dist::Variant::Offload`] — `Me-ParallelFw`: the local matrix lives
//!     in host memory and the outer product is staged through a simulated
//!     GPU by `ooGSrGemm` (§4.3).
//! * [`model`] — the paper's performance models: Eq. 1, the §3.4.1
//!   communication-volume lower bound, Eq. 5, and the §5.1.3 metrics.
//! * [`schedule`] — lowers each variant to a [`cluster_sim`] task DAG at
//!   Summit scale; this is what regenerates the paper's Figs. 3–4 and 7–9.
//!
//! ## Quickstart
//!
//! ```
//! use apsp_graph::generators::{uniform_dense, WeightKind};
//! use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
//! use srgemm::MinPlusF32;
//!
//! let g = uniform_dense(64, WeightKind::small_ints(), 42);
//! let mut d = g.to_dense();
//! fw_blocked::<MinPlusF32>(&mut d, 16, DiagMethod::FwClosure, true);
//! // d now holds all-pairs shortest distances.
//! assert_eq!(d[(0, 0)], 0.0);
//! ```

pub mod dc_apsp;
pub mod dist;
pub mod fw_blocked;
pub mod fw_seq;
pub mod fw_sparse;
pub mod incremental;
pub mod model;
pub mod paths_dist;
pub mod schedule;
pub mod verify;

pub use dist::{distributed_apsp, distributed_apsp_traced, FwConfig, Variant};
pub use fw_blocked::{fw_blocked, DiagMethod};
pub use fw_seq::{fw_seq, fw_seq_with_paths};
