//! `apsp plan` — profile a graph and print the planner's explained
//! solver choice without running anything.

use apsp_core::Registry;

use crate::args::Args;

/// Entry point.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!(
            "apsp plan --input <FILE>
  prints the graph profile, every solver's cost estimate or typed
  ineligibility reason, and the solver '--algo auto' would pick
  --block <N>        block size the tiled solvers would use (default 64)
  --threads <N>      worker cap the estimates assume (0 = all cores)
  --memory-budget <BYTES[k|m|g]>  working-set ceiling for eligibility
  --error-tolerance <EPS>  opt in to the quantized low-precision solver row
  --pr <N> --pc <N>  process grid assumed for the dist row (default 2x2)
  --format <dimacs|edges>"
        );
        return Ok(());
    }
    let args = Args::parse(tokens)?;
    let opts = super::build_solve_opts(&args)?;
    let input = args.opt_str("input").ok_or("missing required option --input")?;
    let g = super::load_graph(input, args.opt_str("format"))?;
    if g.n() == 0 {
        return Err("graph is empty".into());
    }
    let plan = Registry::with_all().plan(&g, &opts);
    print!("{}", plan.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn write_graph(g: &apsp_graph::Graph, name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "apsp-plan-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join(name);
        crate::commands::save_graph(g, input.to_str().unwrap(), None).unwrap();
        (dir, input)
    }

    #[test]
    fn plan_runs_on_a_sparse_graph_and_explains_itself() {
        let g = apsp_graph::generators::grid(
            8,
            8,
            apsp_graph::generators::WeightKind::small_ints(),
            3,
        );
        let (dir, input) = write_graph(&g, "grid.gr");
        run(&toks(&format!("--input {}", input.display()))).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_rejects_missing_input_and_empty_graphs() {
        assert!(run(&toks("")).unwrap_err().contains("--input"));
    }

    #[test]
    fn plan_accepts_budget_and_thread_flags() {
        let g = apsp_graph::generators::erdos_renyi(
            10,
            0.4,
            apsp_graph::generators::WeightKind::small_ints(),
            5,
        );
        let (dir, input) = write_graph(&g, "er.gr");
        run(&toks(&format!(
            "--input {} --threads 2 --memory-budget 64m --block 8",
            input.display()
        )))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
