//! Deterministic fault injection — the chaos harness for the runtime.
//!
//! A [`FaultPlan`] is a small script of failures evaluated against the
//! per-rank send streams: kill a rank just before one of its sends, or drop
//! or delay one specific message. Because each rank's sends happen in
//! program order on its own scheduled task, selecting a fault by *(source
//! rank, send index)* is fully deterministic — the same plan produces the
//! same failure on every run, which is what lets the chaos property tests
//! assert exact typed outcomes.
//!
//! Plans attach to a runtime via [`crate::Runtime::with_faults`] and act
//! inside `Comm::send`: a killed rank's send returns
//! [`crate::CommError::Killed`], a dropped message is charged to the
//! traffic counters but never delivered (the receiver sees a typed
//! [`crate::CommError::RecvTimeout`]), and a delayed message rides the
//! scheduler's deadline wheel — the runtime-scoped timekeeper delivers it
//! after the configured delay (and cancels it if the run ends first), so no
//! delivery can outlive the runtime or bypass poisoning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One injected failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill world rank `rank` just before its `before_send`-th send
    /// (0-based, counted across all of that rank's communicators). Every
    /// send at or past that index fails with [`crate::CommError::Killed`].
    Kill {
        /// World rank to kill.
        rank: usize,
        /// Index of the first send that fails.
        before_send: u64,
    },
    /// Drop the `nth` matching message (0-based) sent by world rank `src`.
    /// The message is charged to the traffic counters (it left the rank)
    /// but never delivered, so the receiver times out with a typed error.
    Drop {
        /// Sending world rank.
        src: usize,
        /// Restrict to one communicator context (`None` = any).
        ctx: Option<u64>,
        /// Restrict to one tag (`None` = any).
        tag: Option<u64>,
        /// Which matching message to drop (0-based).
        nth: u64,
    },
    /// Delay the `nth` matching message sent by `src` by `by` before
    /// delivering it (models a straggling link rather than a failure).
    Delay {
        /// Sending world rank.
        src: usize,
        /// Restrict to one communicator context (`None` = any).
        ctx: Option<u64>,
        /// Restrict to one tag (`None` = any).
        tag: Option<u64>,
        /// Which matching message to delay (0-based).
        nth: u64,
        /// How long to hold the message back.
        by: Duration,
    },
}

/// A deterministic script of injected failures (empty = no faults).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The failures to inject.
    pub actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill world rank `rank` before its `before_send`-th send.
    pub fn kill(rank: usize, before_send: u64) -> Self {
        FaultPlan { actions: vec![FaultAction::Kill { rank, before_send }] }
    }

    /// Drop the `nth` message sent by world rank `src` (any ctx/tag).
    pub fn drop_nth(src: usize, nth: u64) -> Self {
        FaultPlan { actions: vec![FaultAction::Drop { src, ctx: None, tag: None, nth }] }
    }

    /// Delay the `nth` message sent by world rank `src` by `by`.
    pub fn delay_nth(src: usize, nth: u64, by: Duration) -> Self {
        FaultPlan { actions: vec![FaultAction::Delay { src, ctx: None, tag: None, nth, by }] }
    }

    /// A seeded single-fault plan over a `p`-rank world: deterministically
    /// picks a victim rank, a send index, and kill-vs-drop from `seed`.
    /// The same `(seed, p)` always yields the same plan.
    pub fn random_single(seed: u64, p: usize) -> Self {
        let mut state = seed;
        let mut next = move || {
            // splitmix64: tiny, seedable, and dependency-free
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let rank = (next() % p.max(1) as u64) as usize;
        let point = next() % 6;
        if next() % 2 == 0 {
            Self::kill(rank, point)
        } else {
            Self::drop_nth(rank, point)
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// What should happen to one outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SendFate {
    /// Deliver normally.
    Deliver,
    /// The sender dies instead of sending.
    Kill,
    /// Count the bytes but never deliver.
    Drop,
    /// Deliver after the given delay.
    Delay(Duration),
}

/// Runtime-side evaluation state for a [`FaultPlan`]: per-rank send
/// counters plus a per-action match counter, all lock-free.
pub(crate) struct FaultState {
    plan: FaultPlan,
    sends: Vec<AtomicU64>,
    matches: Vec<AtomicU64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, p: usize) -> Self {
        let matches = plan.actions.iter().map(|_| AtomicU64::new(0)).collect();
        FaultState { plan, sends: (0..p).map(|_| AtomicU64::new(0)).collect(), matches }
    }

    /// Decide the fate of a message about to be sent by `src_world` on
    /// `(ctx, tag)`. Kill takes priority; the killed send does not count
    /// toward drop/delay match counters.
    pub(crate) fn decide(&self, src_world: usize, ctx: u64, tag: u64) -> SendFate {
        let s = self.sends[src_world].fetch_add(1, Ordering::Relaxed);
        for a in &self.plan.actions {
            if let FaultAction::Kill { rank, before_send } = a {
                if *rank == src_world && s >= *before_send {
                    return SendFate::Kill;
                }
            }
        }
        for (i, a) in self.plan.actions.iter().enumerate() {
            let (asrc, actx, atag, nth, fate) = match a {
                FaultAction::Drop { src, ctx, tag, nth } => (src, ctx, tag, nth, SendFate::Drop),
                FaultAction::Delay { src, ctx, tag, nth, by } => {
                    (src, ctx, tag, nth, SendFate::Delay(*by))
                }
                FaultAction::Kill { .. } => continue,
            };
            if *asrc != src_world
                || actx.is_some_and(|c| c != ctx)
                || atag.is_some_and(|t| t != tag)
            {
                continue;
            }
            let k = self.matches[i].fetch_add(1, Ordering::Relaxed);
            if k == *nth {
                return fate;
            }
        }
        SendFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_fires_on_and_after_the_index() {
        let fs = FaultState::new(FaultPlan::kill(1, 2), 3);
        assert_eq!(fs.decide(1, 0, 0), SendFate::Deliver); // send 0
        assert_eq!(fs.decide(1, 0, 0), SendFate::Deliver); // send 1
        assert_eq!(fs.decide(1, 0, 0), SendFate::Kill); // send 2
        assert_eq!(fs.decide(1, 0, 0), SendFate::Kill); // and onward
        assert_eq!(fs.decide(0, 0, 0), SendFate::Deliver); // other ranks unaffected
    }

    #[test]
    fn drop_fires_exactly_once_on_the_nth_match() {
        let fs = FaultState::new(FaultPlan::drop_nth(0, 1), 2);
        assert_eq!(fs.decide(0, 0, 7), SendFate::Deliver);
        assert_eq!(fs.decide(0, 0, 8), SendFate::Drop);
        assert_eq!(fs.decide(0, 0, 9), SendFate::Deliver);
    }

    #[test]
    fn filters_restrict_matches_to_ctx_and_tag() {
        let plan = FaultPlan {
            actions: vec![FaultAction::Drop { src: 0, ctx: Some(0), tag: Some(5), nth: 0 }],
        };
        let fs = FaultState::new(plan, 2);
        assert_eq!(fs.decide(0, 1, 5), SendFate::Deliver); // wrong ctx
        assert_eq!(fs.decide(0, 0, 4), SendFate::Deliver); // wrong tag
        assert_eq!(fs.decide(0, 0, 5), SendFate::Drop);
    }

    #[test]
    fn random_single_is_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultPlan::random_single(seed, 4);
            let b = FaultPlan::random_single(seed, 4);
            assert_eq!(a, b);
            match &a.actions[0] {
                FaultAction::Kill { rank, .. } | FaultAction::Drop { src: rank, .. } => {
                    assert!(*rank < 4)
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }
}
