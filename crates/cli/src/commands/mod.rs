//! Subcommand implementations.

pub mod bench;
pub mod generate;
pub mod info;
pub mod plan;
pub mod route;
pub mod serve;
pub mod simulate;
pub mod solve;

use apsp_graph::graph::Graph;
use apsp_graph::io;

/// Parse a `--variant` preset name (shared by `simulate` and
/// `solve --algo dist`).
pub fn parse_variant(name: &str) -> Result<apsp_core::dist::Variant, String> {
    use apsp_core::dist::Variant;
    match name {
        "baseline" => Ok(Variant::Baseline),
        "pipelined" => Ok(Variant::Pipelined),
        "async" => Ok(Variant::AsyncRing),
        "offload" => Ok(Variant::Offload),
        "come" | "co+me" => Ok(Variant::CoMe),
        other => Err(format!("unknown variant '{other}' (baseline|pipelined|async|offload|come)")),
    }
}

/// Parse a `--schedule` axis value.
pub fn parse_schedule(name: &str) -> Result<apsp_core::dist::Schedule, String> {
    use apsp_core::dist::Schedule;
    match name {
        "bulksync" | "bulk-sync" => Ok(Schedule::BulkSync),
        "lookahead" | "look-ahead" => Ok(Schedule::LookAhead),
        other => Err(format!("unknown schedule '{other}' (bulksync|lookahead)")),
    }
}

/// Parse a `--bcast` axis value (`tree`, `ring`, or `ring:<chunks>`).
pub fn parse_bcast(name: &str) -> Result<apsp_core::dist::PanelBcastAlgo, String> {
    use apsp_core::dist::{PanelBcastAlgo, DEFAULT_RING_CHUNKS};
    match name {
        "tree" => Ok(PanelBcastAlgo::Tree),
        "ring" => Ok(PanelBcastAlgo::Ring { chunks: DEFAULT_RING_CHUNKS }),
        other => match other.strip_prefix("ring:") {
            Some(c) => {
                let chunks: usize =
                    c.parse().map_err(|_| format!("bad ring chunk count '{c}'"))?;
                if chunks == 0 {
                    return Err("ring chunk count must be positive".into());
                }
                Ok(PanelBcastAlgo::Ring { chunks })
            }
            None => Err(format!("unknown bcast '{other}' (tree|ring|ring:<chunks>)")),
        },
    }
}

/// Parse an `--exec` axis value.
pub fn parse_exec(name: &str) -> Result<apsp_core::dist::Exec, String> {
    use apsp_core::dist::Exec;
    match name {
        "incore" | "in-core" => Ok(Exec::InCoreGemm),
        "offload" | "gpu-offload" => Ok(Exec::GpuOffload),
        other => Err(format!("unknown exec '{other}' (incore|offload)")),
    }
}

/// Parse a `solve --fault` spec into a deterministic [`mpi_sim::FaultPlan`]
/// over a `p`-rank grid. Grammar:
///
/// * `kill:<rank>@<send>` — rank dies before its `<send>`-th send;
/// * `drop:<rank>@<n>` — rank's `<n>`-th send is silently lost;
/// * `delay:<rank>@<n>:<ms>` — rank's `<n>`-th send is delayed `<ms>` ms;
/// * `random:<seed>` — a seed-derived single fault (any of the above).
pub fn parse_fault_plan(spec: &str, p: usize) -> Result<mpi_sim::FaultPlan, String> {
    use mpi_sim::FaultPlan;
    let err = || {
        format!(
            "bad fault spec '{spec}' \
             (kill:<rank>@<send> | drop:<rank>@<n> | delay:<rank>@<n>:<ms> | random:<seed>)"
        )
    };
    let (kind, rest) = spec.split_once(':').ok_or_else(err)?;
    let rank = |s: &str| -> Result<usize, String> {
        let r: usize = s.parse().map_err(|_| err())?;
        if r >= p {
            return Err(format!("fault names rank {r}, but the grid has only {p} ranks"));
        }
        Ok(r)
    };
    match kind {
        "random" => Ok(FaultPlan::random_single(rest.parse().map_err(|_| err())?, p)),
        "kill" => {
            let (r, s) = rest.split_once('@').ok_or_else(err)?;
            Ok(FaultPlan::kill(rank(r)?, s.parse().map_err(|_| err())?))
        }
        "drop" => {
            let (r, n) = rest.split_once('@').ok_or_else(err)?;
            Ok(FaultPlan::drop_nth(rank(r)?, n.parse().map_err(|_| err())?))
        }
        "delay" => {
            let (r, tail) = rest.split_once('@').ok_or_else(err)?;
            let (n, ms) = tail.split_once(':').ok_or_else(err)?;
            let by = std::time::Duration::from_millis(ms.parse().map_err(|_| err())?);
            Ok(FaultPlan::delay_nth(rank(r)?, n.parse().map_err(|_| err())?, by))
        }
        _ => Err(err()),
    }
}

/// Parse a `--recv-timeout <secs>` value (fractional seconds allowed).
pub fn parse_recv_timeout(args: &crate::args::Args) -> Result<Option<std::time::Duration>, String> {
    match args.opt_str("recv-timeout") {
        None => Ok(None),
        Some(s) => {
            let secs: f64 = s.parse().map_err(|_| format!("bad --recv-timeout '{s}'"))?;
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(format!("--recv-timeout must be a positive number of seconds, got '{s}'"));
            }
            Ok(Some(std::time::Duration::from_secs_f64(secs)))
        }
    }
}

/// Resolve the policy triple from `--variant` (preset, default
/// `default_variant`) with per-axis `--schedule` / `--bcast` / `--exec`
/// overrides layered on top.
pub fn resolve_axes(
    args: &crate::args::Args,
    default_variant: &str,
) -> Result<
    (apsp_core::dist::Schedule, apsp_core::dist::PanelBcastAlgo, apsp_core::dist::Exec),
    String,
> {
    let variant = parse_variant(&args.opt("variant", default_variant.to_string())?)?;
    let (mut schedule, mut bcast, mut exec) = variant.axes();
    if let Some(s) = args.opt_str("schedule") {
        schedule = parse_schedule(s)?;
    }
    if let Some(b) = args.opt_str("bcast") {
        bcast = parse_bcast(b)?;
    }
    if let Some(e) = args.opt_str("exec") {
        exec = parse_exec(e)?;
    }
    Ok((schedule, bcast, exec))
}

/// Parse a byte-size string: plain bytes or a `k`/`m`/`g` suffix
/// (powers of 1024), e.g. `--memory-budget 512m`.
pub fn parse_byte_size(s: &str) -> Result<u64, String> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.as_bytes().last() {
        Some(b'k') => (&t[..t.len() - 1], 1u64 << 10),
        Some(b'm') => (&t[..t.len() - 1], 1u64 << 20),
        Some(b'g') => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t.as_str(), 1),
    };
    let n: u64 = digits.parse().map_err(|_| format!("bad byte size '{s}' (e.g. 4096, 64k, 512m, 2g)"))?;
    n.checked_mul(mult).ok_or_else(|| format!("byte size '{s}' overflows"))
}

/// Build the shared [`apsp_core::SolveOpts`] from CLI flags (`--block`,
/// `--threads`/`--serial`, `--memory-budget`, `--pr`/`--pc`, the dist axes,
/// `--recv-timeout`). Used identically by `apsp solve` and `apsp plan` so
/// the plan describes exactly the run `solve` would perform.
pub fn build_solve_opts(args: &crate::args::Args) -> Result<apsp_core::SolveOpts, String> {
    let block: usize = args.opt("block", 64)?;
    if block == 0 {
        return Err("--block must be positive".into());
    }
    let threads: usize =
        if args.has_flag("serial") { 1 } else { args.opt("threads", 0)? };
    let memory_budget = args.opt_str("memory-budget").map(parse_byte_size).transpose()?;
    let error_tolerance = args
        .opt_str("error-tolerance")
        .map(|s| {
            s.parse::<f64>().map_err(|_| format!("--error-tolerance: '{s}' is not a number"))
        })
        .transpose()?;
    if let Some(t) = error_tolerance {
        if !t.is_finite() || t < 0.0 {
            return Err("--error-tolerance must be a non-negative finite number".into());
        }
    }
    let (schedule, bcast, exec) = resolve_axes(args, "pipelined")?;
    Ok(apsp_core::SolveOpts {
        block,
        threads,
        memory_budget,
        error_tolerance,
        grid: (args.opt("pr", 2)?, args.opt("pc", 2)?),
        dist: apsp_core::FwConfig::from_axes(block, schedule, bcast, exec),
        dist_run: apsp_core::DistRunOpts {
            recv_timeout: parse_recv_timeout(args)?,
            ..Default::default()
        },
    })
}

/// Load a graph from `path`, inferring format from the extension unless
/// `format` overrides (`dimacs` | `edges`).
pub fn load_graph(path: &str, format: Option<&str>) -> Result<Graph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    match resolved_format(path, format)? {
        "dimacs" => io::read_dimacs(file).map_err(|e| e.to_string()),
        "edges" => io::read_edge_list(file, None).map_err(|e| e.to_string()),
        _ => unreachable!(),
    }
}

/// Write a graph to `path` in the resolved format.
pub fn save_graph(g: &Graph, path: &str, format: Option<&str>) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    match resolved_format(path, format)? {
        "dimacs" => io::write_dimacs(g, file).map_err(|e| e.to_string()),
        "edges" => io::write_edge_list(g, file).map_err(|e| e.to_string()),
        _ => unreachable!(),
    }
}

fn resolved_format<'a>(path: &str, format: Option<&'a str>) -> Result<&'a str, String> {
    match format {
        Some("dimacs") => Ok("dimacs"),
        Some("edges") => Ok("edges"),
        Some(other) => Err(format!("unknown format '{other}' (dimacs|edges)")),
        None => {
            if path.ends_with(".gr") {
                Ok("dimacs")
            } else {
                Ok("edges")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{uniform_dense, WeightKind};

    #[test]
    fn save_and_load_round_trip_both_formats() {
        let dir = std::env::temp_dir().join(format!("apsp-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = uniform_dense(8, WeightKind::small_ints(), 1);
        for name in ["g.gr", "g.edges"] {
            let path = dir.join(name);
            let path = path.to_str().unwrap();
            save_graph(&g, path, None).unwrap();
            let back = load_graph(path, None).unwrap();
            assert_eq!(back.n(), 8);
            assert_eq!(back.m(), g.m());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("4096").unwrap(), 4096);
        assert_eq!(parse_byte_size("64k").unwrap(), 64 << 10);
        assert_eq!(parse_byte_size("512M").unwrap(), 512 << 20);
        assert_eq!(parse_byte_size("2g").unwrap(), 2 << 30);
        assert!(parse_byte_size("lots").is_err());
    }

    #[test]
    fn format_resolution() {
        assert_eq!(resolved_format("x.gr", None).unwrap(), "dimacs");
        assert_eq!(resolved_format("x.tsv", None).unwrap(), "edges");
        assert_eq!(resolved_format("x.gr", Some("edges")).unwrap(), "edges");
        assert!(resolved_format("x", Some("bogus")).is_err());
    }
}
