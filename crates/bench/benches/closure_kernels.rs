//! DiagUpdate ablation (paper §4.2, DESIGN.md §7): classic Floyd-Warshall
//! closure vs repeated-squaring (Eq. 4). On a GPU the squaring form wins by
//! turning all work into GEMMs; on a CPU the `log b` factor usually costs —
//! exactly the trade-off the paper discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srgemm::closure::{fw_closure, fw_closure_squaring};
use srgemm::{Matrix, MinPlusF32};

fn block(n: usize, seed: u64) -> Matrix<f32> {
    let mut state = seed | 1;
    Matrix::from_fn(n, n, |i, j| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        if i == j {
            0.0
        } else {
            ((state >> 33) % 1000) as f32 + 1.0
        }
    })
}

fn bench_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("diag_update");
    g.sample_size(10);
    for &b in &[64usize, 128, 256] {
        let base = block(b, b as u64);
        g.bench_with_input(BenchmarkId::new("fw_closure", b), &b, |bch, _| {
            bch.iter(|| {
                let mut m = base.clone();
                fw_closure::<MinPlusF32>(&mut m.view_mut());
                m
            })
        });
        g.bench_with_input(BenchmarkId::new("squaring_serial", b), &b, |bch, _| {
            bch.iter(|| {
                let mut m = base.clone();
                fw_closure_squaring::<MinPlusF32>(&mut m.view_mut(), false);
                m
            })
        });
        g.bench_with_input(BenchmarkId::new("squaring_parallel", b), &b, |bch, _| {
            bch.iter(|| {
                let mut m = base.clone();
                fw_closure_squaring::<MinPlusF32>(&mut m.view_mut(), true);
                m
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
