//! Headline claims — the abstract/§1 numbers, paper vs this reproduction,
//! in one table. Derived from the same simulations as Figs. 7–8.

use apsp_bench::Table;
use apsp_core::dist::Variant;
use apsp_core::model::max_vertices_in_gpu_memory;
use apsp_core::schedule::{default_node_grid, optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;
use gpu_sim::cost::min_block_size;
use gpu_sim::GpuSpec;

fn main() {
    println!("== headline claims: paper vs reproduction ==\n");
    let table = Table::new(&[("claim", 46), ("paper", 12), ("ours", 12)]);

    // 1. speedup over baseline on 256 nodes (n = 300k)
    let spec256 = MachineSpec::summit(256);
    let (dkr, dkc) = default_node_grid(256);
    let (okr, okc) = optimal_node_grid(256);
    let base = simulate(&spec256, &ScheduleConfig::new(300_000, Variant::Baseline, dkr, dkc)).expect("feasible");
    let co = simulate(&spec256, &ScheduleConfig::new(300_000, Variant::AsyncRing, okr, okc)).expect("feasible");
    table.row(&[
        "Co-ParallelFw speedup over Baseline, 256 nodes".into(),
        "4.6x".into(),
        format!("{:.1}x", base.seconds / co.seconds),
    ]);

    // 2. absolute rate and fraction of peak at 256 nodes
    table.row(&[
        "Co-ParallelFw rate on 256 nodes".into(),
        "8.1 PF/s".into(),
        format!("{:.1} PF/s", co.pflops),
    ]);
    let theo_peak = 256.0 * 6.0 * 7.8e12 / 1e15;
    table.row(&[
        "fraction of theoretical (no-FMA) peak".into(),
        "70%".into(),
        format!("{:.0}%", 100.0 * co.pflops / theo_peak),
    ]);

    // 3. largest problem: offload vs in-memory on 64 nodes
    let spec64 = MachineSpec::summit(64);
    let wall = max_vertices_in_gpu_memory(&spec64, 4);
    let ratio_vertices = 1_664_511.0 / wall as f64;
    table.row(&[
        "offload problem-size gain over in-memory (64 nodes)".into(),
        "2.5x".into(),
        format!("{ratio_vertices:.1}x"),
    ]);

    // 4. offload overhead at an in-memory-feasible size
    let (o64r, o64c) = optimal_node_grid(64);
    let incore = simulate(&spec64, &ScheduleConfig::new(524_288, Variant::AsyncRing, o64r, o64c)).expect("feasible");
    let off = simulate(&spec64, &ScheduleConfig::new(524_288, Variant::Offload, o64r, o64c)).expect("feasible");
    table.row(&[
        "offload runtime overhead".into(),
        "+20%".into(),
        format!("{:+.0}%", 100.0 * (off.seconds / incore.seconds - 1.0)),
    ]);

    // 5. the 1.66M-vertex run and its footprint
    let big = simulate(&spec64, &ScheduleConfig::new(1_664_511, Variant::Offload, o64r, o64c)).expect("feasible");
    table.row(&[
        "1.66M vertices on 64 nodes (output footprint)".into(),
        "~10 TB".into(),
        format!("{:.1} TB", 1_664_511f64 * 1_664_511f64 * 4.0 / 1e12),
    ]);
    table.row(&[
        "  …at fraction of 64-node theoretical peak".into(),
        "50%".into(),
        format!("{:.0}%", 100.0 * big.pflops * 1e15 / (64.0 * 6.0 * 7.8e12)),
    ]);

    // 6. Eq. 5 minimum offload block size
    table.row(&[
        "Eq. 5 minimum offload block size".into(),
        "624".into(),
        format!("{:.0}", min_block_size(&GpuSpec::summit_v100(), 4)),
    ]);
}
