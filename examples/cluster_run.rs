//! Distributed APSP on the in-process cluster: runs every ParallelFw
//! preset on a thread-backed "MPI" with a 2×3 process grid spread over 3
//! simulated nodes, verifies every result against sequential
//! Floyd-Warshall, and prints the measured NIC traffic per variant —
//! the functional counterpart of the paper's §5.2 experiments.
//!
//! ```text
//! cargo run --release --example cluster_run -- [n]
//! ```

use apsp_core::dist::{distributed_apsp, FwConfig, Variant};
use apsp_core::fw_seq::fw_seq;
use apsp_core::model::comm_lower_bound_bytes;
use apsp_core::verify::assert_matrices_equal;
use apsp_graph::generators::{uniform_dense, WeightKind};
use mpi_sim::Placement;
use srgemm::MinPlusF32;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(240);
    let (pr, pc) = (2usize, 3usize);
    println!("== distributed APSP: n = {n}, grid {pr}×{pc}, 6 ranks on 3 nodes ==\n");

    let graph = uniform_dense(n, WeightKind::small_ints(), 11);
    let input = graph.to_dense();
    let mut want = input.clone();
    fw_seq::<MinPlusF32>(&mut want);

    // 2 ranks per node, like the paper's 2 MPI ranks per GPU
    let placement = Placement::contiguous(pr, pc, 2);

    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>10}",
        "variant", "NIC bytes", "max node NIC", "intra bytes", "messages"
    );
    for variant in Variant::all() {
        let cfg = FwConfig::new(40, variant);
        let (got, traffic) =
            distributed_apsp::<MinPlusF32>(pr, pc, &cfg, &input, Some(placement.clone()))
                .unwrap_or_else(|e| panic!("{}: {e}", variant.legend()));
        assert_matrices_equal(&want, &got, variant.legend());
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>10}",
            variant.legend(),
            traffic.total_nic_bytes(),
            traffic.max_node_nic_bytes(),
            traffic.total_intra_bytes(),
            traffic.total_msgs
        );
    }

    println!("\nall variants match sequential Floyd-Warshall bit-for-bit ✓");
    let bound = comm_lower_bound_bytes(n, 1, 3, 4);
    println!("§3.4.1 per-node volume lower bound for K=1×3: {bound:.0} bytes");
}
