//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use. A strategy is just a sampler here — no shrink trees.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Object-safe: `prop_map`/`prop_flat_map`/`boxed` are `Sized`-gated, so
/// `Box<dyn Strategy<Value = T>>` works (see [`BoxedStrategy`]).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each sampled value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always the same (cloned) value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the full value range of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, moderately sized — mirrors how the tests use it
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2e6 - 1e6) as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice between same-typed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.sample(rng);
            }
            pick -= w;
        }
        self.arms.last().expect("non-empty").1.sample(rng)
    }
}

/// Fixed-length vector of samples (see [`crate::collection::vec`]).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Bernoulli boolean (see [`crate::bool::weighted`]).
pub struct Weighted {
    pub(crate) p: f64,
}

impl Strategy for Weighted {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::new(1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_threads_the_sampled_size() {
        let mut rng = TestRng::new(2);
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn union_respects_zero_weight_shapes() {
        let mut rng = TestRng::new(3);
        let s = Union::new(vec![(1, (5u32..6).boxed()), (3, Just(9u32).boxed())]);
        let mut saw = [false; 2];
        for _ in 0..200 {
            match s.sample(&mut rng) {
                5 => saw[0] = true,
                9 => saw[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }
}
