//! Distributed incremental Floyd-Warshall: absorb an edge insertion or
//! weight decrease into an already-solved *distributed* closure in
//! `O(n²/P)` per rank plus two vector broadcasts — the distributed form of
//! [`crate::incremental`], combining both §7 future-work directions
//! (incremental + distributed).
//!
//! The update `d[i][j] ⊕= d[i][u] ⊗ w ⊗ d[v][j]` needs exactly one column
//! (`d[:,u]`, owned by one process column) and one row (`d[v,:]`, owned by
//! one process row). The owners broadcast their slices along the grid's
//! row/column communicators — the same communication pattern as a
//! `PanelBcast` with `b = 1` — and every rank applies a local rank-1
//! relaxation.

use mpi_sim::{CommError, ProcessGrid};
use srgemm::semiring::Semiring;

use super::DistMatrix;
use crate::incremental::IncrementalError;

/// Failure modes of the distributed incremental update: the update itself
/// can be malformed (typed, deterministic, detected on every rank before
/// any message is sent), or a slice broadcast can break mid-flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DistUpdateError {
    /// The update was rejected by local validation; no rank communicated.
    Update(IncrementalError),
    /// A row/column slice broadcast failed.
    Comm(CommError),
}

impl From<CommError> for DistUpdateError {
    fn from(e: CommError) -> Self {
        DistUpdateError::Comm(e)
    }
}

impl From<IncrementalError> for DistUpdateError {
    fn from(e: IncrementalError) -> Self {
        DistUpdateError::Update(e)
    }
}

impl std::fmt::Display for DistUpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistUpdateError::Update(e) => write!(f, "rejected update: {e}"),
            DistUpdateError::Comm(e) => write!(f, "communication failure: {e}"),
        }
    }
}

/// Validation shared by every rank, before any communication: rejections
/// are computed from the arguments alone (plus the closure invariant
/// `d[u][u] = 1̄`), so all ranks agree without a collective and the grid
/// never deadlocks half-in/half-out of the broadcast pair.
fn validate<S: Semiring>(n: usize, u: usize, v: usize, w: S::Elem) -> Result<(), IncrementalError> {
    #[allow(clippy::eq_op)]
    if w != w {
        return Err(IncrementalError::NanWeight);
    }
    if u >= n || v >= n {
        return Err(IncrementalError::BadVertex);
    }
    if u == v {
        // on a valid closure d[u][u] = 1̄, so "improving" means w ⊕ 1̄ ≠ 1̄
        // (min-plus: w < 0) — a negative cycle
        return Err(if S::add(S::one(), w) != S::one() {
            IncrementalError::NegativeSelfLoop
        } else {
            IncrementalError::NotADecrease
        });
    }
    Ok(())
}

/// Collectively absorb the improved edge `u → v` of weight `w` into the
/// solved distributed closure `a`. Every rank of `grid` must call this with
/// identical arguments. Returns the number of local entries improved on
/// this rank, or a typed error — malformed updates (out-of-range endpoint,
/// NaN weight, negative self-loop) are rejected on every rank *before* any
/// message is sent, so a bad client update can never kill or desynchronize
/// the grid.
pub fn decrease_edge_dist<S: Semiring>(
    grid: &ProcessGrid,
    a: &mut DistMatrix<S::Elem>,
    u: usize,
    v: usize,
    w: S::Elem,
) -> Result<usize, DistUpdateError> {
    validate::<S>(a.n, u, v, w)?;

    // --- broadcast my rows' d[i][u] along each process row ---
    let bu = u / a.b;
    let cu = u % a.b;
    let col_owner = bu % a.pc; // process-column index owning block column bu
    let mine = (a.my_c == col_owner).then(|| {
        let c0 = a.local_col_start(bu) + cu;
        (0..a.local.rows()).map(|r| a.local[(r, c0)]).collect::<Vec<S::Elem>>()
    });
    let col_u: Vec<S::Elem> = grid.row.bcast(col_owner, mine)?;
    debug_assert_eq!(col_u.len(), a.local.rows());

    // --- broadcast my columns' d[v][j] along each process column ---
    let bv = v / a.b;
    let rv = v % a.b;
    let row_owner = bv % a.pr;
    let mine = (a.my_r == row_owner).then(|| {
        let r0 = a.local_row_start(bv) + rv;
        a.local.row(r0).to_vec()
    });
    let row_v: Vec<S::Elem> = grid.col.bcast(row_owner, mine)?;
    debug_assert_eq!(row_v.len(), a.local.cols());

    // --- local rank-1 relaxation ---
    let mut improved = 0usize;
    for (i, &cu) in col_u.iter().enumerate() {
        let through = S::mul(cu, w);
        let row = a.local.row_mut(i);
        for (j, rv_j) in row_v.iter().enumerate() {
            let cand = S::mul(through, *rv_j);
            let new = S::add(row[j], cand);
            if new != row[j] {
                row[j] = new;
                improved += 1;
            }
        }
    }
    Ok(improved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{driver, DistMatrix, FwConfig, InCoreGemm, Variant};
    use crate::fw_seq::fw_seq;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::graph::GraphBuilder;
    use mpi_sim::{ProcessGrid, Runtime};
    use srgemm::MinPlusF32;

    fn solve_then_update(
        pr: usize,
        pc: usize,
        b: usize,
        n: usize,
        seed: u64,
        updates: Vec<(usize, usize, f32)>,
    ) -> srgemm::Matrix<f32> {
        let g = generators::erdos_renyi(n, 0.2, WeightKind::small_ints(), seed);
        let input = g.to_dense();
        let updates2 = updates.clone();
        let out = Runtime::new(pr * pc).run(move |comm| {
            let grid = ProcessGrid::new(comm, pr, pc).unwrap();
            let (r, c) = grid.coords();
            let mut a = DistMatrix::from_global(&input, b, pr, pc, r, c);
            let cfg = FwConfig::new(b, Variant::Baseline);
            driver::run::<MinPlusF32, _>(&grid, &mut a, &cfg, &mut InCoreGemm::budgeted(pr * pc))
                .expect("in-core run");
            for &(u, v, w) in &updates2 {
                decrease_edge_dist::<MinPlusF32>(&grid, &mut a, u, v, w).expect("update");
            }
            a.gather(&grid).unwrap()
        });
        out.into_iter().flatten().next().expect("rank 0 gathers")
    }

    #[test]
    fn distributed_incremental_matches_full_recompute() {
        let n = 26;
        let seed = 31;
        let updates = vec![(1usize, 20usize, 1.0f32), (15, 3, 2.0)];
        let got = solve_then_update(2, 3, 5, n, seed, updates.clone());

        // oracle: rebuild the graph with the new edges and solve from scratch
        let g = generators::erdos_renyi(n, 0.2, WeightKind::small_ints(), seed);
        let mut b = GraphBuilder::new(n);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        for &(u, v, w) in &updates {
            b.add_edge(u, v, w);
        }
        let mut want = b.build().to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        assert!(want.eq_exact(&got));
    }

    #[test]
    fn update_touching_ragged_tail_block() {
        // n=23 with b=4 → last block ragged; update endpoints in it
        let got = solve_then_update(2, 2, 4, 23, 7, vec![(22, 0, 1.0), (1, 21, 1.0)]);
        let g = generators::erdos_renyi(23, 0.2, WeightKind::small_ints(), 7);
        let mut b = GraphBuilder::new(23);
        for (x, y, wt) in g.edges() {
            b.add_edge(x, y, wt);
        }
        b.add_edge(22, 0, 1.0).add_edge(1, 21, 1.0);
        let mut want = b.build().to_dense();
        fw_seq::<MinPlusF32>(&mut want);
        assert!(want.eq_exact(&got));
    }

    #[test]
    fn malformed_updates_are_typed_on_every_rank_without_deadlock() {
        // regression: pre-fix this was an assert! that killed the calling
        // rank and deadlocked the rest of the grid mid-collective
        let g = generators::erdos_renyi(12, 0.3, WeightKind::small_ints(), 13);
        let input = g.to_dense();
        let errors = Runtime::new(4).run(move |comm| {
            let grid = ProcessGrid::new(comm, 2, 2).unwrap();
            let (r, c) = grid.coords();
            let mut a = DistMatrix::from_global(&input, 3, 2, 2, r, c);
            let cfg = FwConfig::new(3, Variant::Baseline);
            driver::run::<MinPlusF32, _>(&grid, &mut a, &cfg, &mut InCoreGemm::budgeted(4))
                .expect("in-core run");
            let bad_vertex = decrease_edge_dist::<MinPlusF32>(&grid, &mut a, 1, 99, 1.0);
            let self_loop = decrease_edge_dist::<MinPlusF32>(&grid, &mut a, 5, 5, -1.0);
            let nan = decrease_edge_dist::<MinPlusF32>(&grid, &mut a, 1, 2, f32::NAN);
            // the grid is still functional after the rejections
            let ok = decrease_edge_dist::<MinPlusF32>(&grid, &mut a, 0, 11, 0.5);
            (bad_vertex, self_loop, nan, ok.is_ok())
        });
        use crate::incremental::IncrementalError;
        for (bad_vertex, self_loop, nan, grid_alive) in errors {
            assert_eq!(bad_vertex, Err(DistUpdateError::Update(IncrementalError::BadVertex)));
            assert_eq!(
                self_loop,
                Err(DistUpdateError::Update(IncrementalError::NegativeSelfLoop))
            );
            assert_eq!(nan, Err(DistUpdateError::Update(IncrementalError::NanWeight)));
            assert!(grid_alive);
        }
    }

    #[test]
    fn redundant_update_changes_nothing() {
        // inserting an edge equal to an existing distance leaves the
        // closure untouched
        let base = solve_then_update(2, 2, 4, 16, 9, vec![]);
        let d = base[(2, 5)];
        if d.is_finite() {
            let same = solve_then_update(2, 2, 4, 16, 9, vec![(2, 5, d)]);
            assert!(base.eq_exact(&same));
        }
    }
}
