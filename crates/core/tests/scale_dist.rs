//! Paper-scale rank counts for the full distributed FW pipeline.
//!
//! The acceptance bar for the event-driven executor: a 1024-rank
//! `distributed_apsp` (32×32 grid — the paper's Fig. 8/9 node scale) runs
//! to completion on one small box with a bounded worker pool and still
//! reproduces sequential Floyd-Warshall bit-for-bit.

use std::time::Duration;

use apsp_core::dist::{distributed_apsp_opts, DistRunOpts, FwConfig, Variant};
use apsp_core::fw_seq::fw_seq;
use apsp_core::verify::assert_matrices_equal;
use apsp_graph::generators::{self, GraphKind, WeightKind};
use mpi_sim::Placement;
use srgemm::MinPlusF32;

#[test]
fn distributed_apsp_runs_at_1024_ranks() {
    let (pr, pc) = (32usize, 32usize); // 1024 ranks
    let n = 64usize; // n/b = 32 block rows/cols → one block per process row

    let g = generators::generate(GraphKind::UniformDense, n, WeightKind::small_ints(), 4242);
    let input = g.to_dense();
    let mut want = input.clone();
    fw_seq::<MinPlusF32>(&mut want);

    let mut cfg = FwConfig::new(2, Variant::Baseline);
    // one kernel thread per rank: 1024 ranks must not each try to grab the
    // host's full core budget for their in-core GEMM
    cfg.kernel_threads = Some(1);

    let opts = DistRunOpts {
        // ranks spend nearly all wall-clock parked waiting for one of the
        // few worker slots; that is queueing, not deadlock
        recv_timeout: Some(Duration::from_secs(300)),
        workers: Some(8),
        stack_bytes: Some(512 * 1024),
        ..Default::default()
    };
    // 4 ranks per node × 256 nodes, 2×2 tiles — the paper's Summit layout
    let placement = Placement::tiled(pr, pc, 2, 2);

    let (got, traffic) =
        distributed_apsp_opts::<MinPlusF32>(pr, pc, &cfg, &input, Some(placement), &opts)
            .expect("1024-rank distributed run");
    assert_matrices_equal(&want, &got, "1024 ranks, 32x32 grid");

    // per-phase NIC attribution stays exact at paper scale
    assert_eq!(traffic.phase_nic_bytes_sum(), traffic.total_nic_bytes());
    assert!(traffic.total_nic_bytes() > 0, "a 32x32 grid must exchange panels over the NIC");
}
