//! Cross-crate semiring generality: the distributed machinery is not
//! min-plus-specific — it computes closures over any idempotent semiring,
//! which is how GraphBLAS-style stacks (paper §6) use one code path for
//! many graph problems.

use apsp_core::dist::{distributed_apsp, FwConfig, Variant};
use apsp_core::fw_seq::fw_seq;
use apsp_graph::generators::{self, WeightKind};
use srgemm::semiring::{MaxMin, Semiring};
use srgemm::Matrix;

/// Widest-path (max-min) APSP, distributed, vs sequential.
#[test]
fn distributed_widest_path_matches_sequential() {
    type WP = MaxMin<f32>;
    let n = 24;
    // capacities: dense random
    let g = generators::uniform_dense(n, WeightKind::Integer { lo: 1, hi: 50 }, 77);
    let mut input = Matrix::filled(n, n, WP::zero());
    for (u, v, w) in g.edges() {
        input[(u, v)] = w;
    }
    let mut want = input.clone();
    fw_seq::<WP>(&mut want);
    for variant in [Variant::Baseline, Variant::Pipelined, Variant::AsyncRing] {
        let cfg = FwConfig::new(6, variant);
        let (got, _) = distributed_apsp::<WP>(2, 2, &cfg, &input, None).expect("run");
        assert!(want.eq_exact(&got), "{:?}", variant);
    }
}

/// Widest-path outputs dominate direct capacities and are symmetric-free
/// (directed) — sanity on the semantics, not just self-consistency.
#[test]
fn widest_path_semantics() {
    type WP = MaxMin<f32>;
    let mut input = Matrix::filled(3, 3, WP::zero());
    // 0 -10-> 1 -7-> 2 and a direct thin pipe 0 -2-> 2
    input[(0, 1)] = 10.0;
    input[(1, 2)] = 7.0;
    input[(0, 2)] = 2.0;
    let mut d = input.clone();
    fw_seq::<WP>(&mut d);
    assert_eq!(d[(0, 2)], 7.0); // via 1: min(10,7) beats direct 2
    assert_eq!(d[(2, 0)], f32::NEG_INFINITY); // no reverse path
}
