//! Collective operations built on tag-matched p2p.
//!
//! Two broadcast algorithms, matching the paper's §3.3:
//!
//! * [`Comm::bcast`] — binomial tree, `⌈log₂ p⌉` rounds; latency-optimal.
//!   This is the "library broadcast" used for the small, critical-path
//!   `DiagBcast`.
//! * [`Comm::ring_bcast`] — pipelined ring; every rank sends and receives
//!   each byte exactly once (bandwidth-optimal), the nearer successors of
//!   the root finish early, and consecutive broadcasts from different roots
//!   overlap freely — the asynchrony that lets `Co-ParallelFw` drift across
//!   iterations.
//!
//! Every collective returns `Result<_, CommError>`: a deadlock, a failed
//! peer, or an injected fault surfaces as a typed error on every
//! participating rank instead of a panic cascade.

use std::sync::Arc;

use crate::comm::{Comm, INTERNAL_TAG};
use crate::error::CommError;
use crate::payload::Payload;

impl Comm {
    /// Block until every member of the communicator has entered the barrier.
    ///
    /// Both phases are binomial trees rooted at rank 0 — an `O(log p)`-round
    /// reduction of empty tokens followed by the `O(log p)`-round release
    /// broadcast — `2(p-1)` messages total with no rank receiving more than
    /// `⌈log₂ p⌉` of them (the old linear gather funnelled `p-1` receives
    /// through rank 0).
    pub fn barrier(&self) -> Result<(), CommError> {
        let op = self.next_op();
        let tag = INTERNAL_TAG | op;
        let (rank, size) = (self.rank(), self.size());
        if size == 1 {
            return Ok(());
        }
        // reduce phase: mirror image of the binomial broadcast below — each
        // rank absorbs its subtree's tokens, then reports to its parent.
        let mut mask = 1usize;
        while mask < size {
            if rank & mask != 0 {
                self.send_raw(rank - mask, tag, ())?;
                break;
            }
            if rank + mask < size {
                self.recv_raw::<()>(rank + mask, tag)?;
            }
            mask <<= 1;
        }
        // release: binomial fan-out of an empty token
        self.bcast_internal(0, if rank == 0 { Some(Arc::new(())) } else { None }, tag | (1 << 62))?;
        Ok(())
    }

    /// Binomial-tree broadcast from `root`. The root passes `Some(data)`,
    /// everyone else `None`; all members return the broadcast value.
    ///
    /// Internally the payload travels as one shared allocation (see
    /// [`Comm::bcast_shared`]); the clone here happens only if the caller's
    /// returned copy still shares with in-flight sends, i.e. at most once
    /// per rank and never for the last-to-finish holders. Callers that can
    /// hold an `Arc` should use [`Comm::bcast_shared`] and skip even that.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn bcast<T: Payload + Clone + Sync>(
        &self,
        root: usize,
        data: Option<T>,
    ) -> Result<T, CommError> {
        let shared = self.bcast_shared(root, data.map(Arc::new))?;
        Ok(Arc::try_unwrap(shared).unwrap_or_else(|arc| (*arc).clone()))
    }

    /// Binomial-tree broadcast from `root`, returning the payload by shared
    /// reference: every rank's `Arc` points at the root's single allocation.
    ///
    /// Zero deep copies, deterministically: each tree hop forwards the `Arc`
    /// by reference count (the old implementation deep-cloned the payload
    /// once per child *on the root's critical path*). The traffic counters
    /// still charge every hop the full `size_bytes()` of the inner value —
    /// wire accounting is independent of host-memory sharing.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn bcast_shared<T: Payload + Sync>(
        &self,
        root: usize,
        data: Option<Arc<T>>,
    ) -> Result<Arc<T>, CommError> {
        let op = self.next_op();
        self.bcast_internal(root, data, INTERNAL_TAG | op)
    }

    fn bcast_internal<T: Payload + Sync>(
        &self,
        root: usize,
        data: Option<Arc<T>>,
        tag: u64,
    ) -> Result<Arc<T>, CommError> {
        let (rank, size) = (self.rank(), self.size());
        assert_eq!(
            rank == root,
            data.is_some(),
            "exactly the root must supply the broadcast payload"
        );
        if size == 1 {
            return Ok(data.expect("root payload"));
        }
        let relative = (rank + size - root) % size;

        // receive phase: my parent is relative - lowest_set_bit(relative)
        let mut value = data;
        let mut mask = 1usize;
        while mask < size {
            if relative & mask != 0 {
                let src = (relative - mask + root) % size;
                value = Some(self.recv_raw::<Arc<T>>(src, tag)?);
                break;
            }
            mask <<= 1;
        }
        // forward phase: children are relative + mask for decreasing masks;
        // each send bumps the refcount on the one shared allocation
        let value = value.expect("broadcast value must have arrived");
        let mut mask = mask >> 1;
        while mask > 0 {
            if relative + mask < size {
                let dst = (relative + mask + root) % size;
                self.send_raw(dst, tag, Arc::clone(&value))?;
            }
            mask >>= 1;
        }
        Ok(value)
    }

    /// Pipelined ring broadcast of a slice-able payload from `root`,
    /// split into `nchunks` chunks (§3.3). Bandwidth-optimal: each rank
    /// receives and forwards every byte exactly once. Returns the
    /// reassembled vector on every rank.
    ///
    /// Chunks travel as [`Arc`]s, so a forwarding rank passes the received
    /// buffer on by reference count — one host copy per rank (the final
    /// reassembly), not two.
    pub fn ring_bcast<T: Copy + Send + Sync + 'static>(
        &self,
        root: usize,
        data: Option<Vec<T>>,
        nchunks: usize,
    ) -> Result<Vec<T>, CommError> {
        let op = self.next_op();
        let tag = INTERNAL_TAG | op;
        let (rank, size) = (self.rank(), self.size());
        assert_eq!(
            rank == root,
            data.is_some(),
            "exactly the root must supply the ring-broadcast payload"
        );
        if size == 1 {
            return Ok(data.expect("root payload"));
        }
        let relative = (rank + size - root) % size;
        let succ = (rank + 1) % size;
        let pred = (rank + size - 1) % size;
        let is_last = relative == size - 1;

        // chunk messages travel on `tag`; the chunk-count header on `hdr`.
        let hdr = tag | (1 << 62);
        if rank == root {
            let data = data.expect("root payload");
            let nchunks = nchunks.clamp(1, data.len().max(1));
            let chunk = data.len().div_ceil(nchunks).max(1);
            self.send_raw(succ, hdr, nchunks as u64)?;
            let mut sent = 0;
            for c in 0..nchunks {
                let lo = (c * chunk).min(data.len());
                let hi = ((c + 1) * chunk).min(data.len());
                self.send_raw(succ, tag, Arc::new(data[lo..hi].to_vec()))?;
                sent += 1;
            }
            debug_assert_eq!(sent, nchunks);
            Ok(data)
        } else {
            let nchunks: u64 = self.recv_raw(pred, hdr)?;
            if !is_last {
                self.send_raw(succ, hdr, nchunks)?;
            }
            let mut out = Vec::new();
            for _ in 0..nchunks {
                let chunk: Arc<Vec<T>> = self.recv_raw(pred, tag)?;
                if !is_last {
                    // forward by refcount *before* the local copy-out, so
                    // the successor's receive overlaps our reassembly
                    self.send_raw(succ, tag, chunk.clone())?;
                }
                out.extend_from_slice(&chunk);
            }
            Ok(out)
        }
    }

    /// Gather one value from every rank to `root` (in rank order).
    /// Returns `Some(values)` at the root, `None` elsewhere.
    pub fn gather<T: Payload>(&self, root: usize, value: T) -> Result<Option<Vec<T>>, CommError> {
        let op = self.next_op();
        let tag = INTERNAL_TAG | op;
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_raw(src, tag)?);
                }
            }
            Ok(Some(out.into_iter().map(|v| v.expect("gathered")).collect()))
        } else {
            self.send_raw(root, tag, value)?;
            Ok(None)
        }
    }

    /// Every rank contributes one value; every rank gets the full rank-ordered
    /// vector. Implemented as a gather to rank 0 followed by one binomial
    /// broadcast of the assembled vector: `2(p-1)` messages total, vs the
    /// `p` separate broadcasts (`p(p-1)` messages) of the naive formulation.
    /// The `Copy` bound is what gives `Vec<T>` its wire format.
    pub fn allgather<T: Payload + Copy + Sync>(&self, value: T) -> Result<Vec<T>, CommError> {
        let gathered = self.gather(0, value)?;
        self.bcast(0, gathered)
    }

    /// Fold all ranks' values with `op` (applied in rank order) and return
    /// the result on every rank.
    pub fn allreduce<T: Payload + Clone + Sync>(
        &self,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> Result<T, CommError> {
        let gathered = self.gather(0, value)?;
        let folded = gathered.map(|vs| {
            let mut it = vs.into_iter();
            let first = it.next().expect("non-empty communicator");
            it.fold(first, &op)
        });
        self.bcast(0, folded)
    }
}

#[cfg(test)]
mod tests {
    use crate::placement::Placement;
    use crate::runtime::Runtime;

    #[test]
    fn bcast_from_every_root() {
        for root in 0..5 {
            let out = Runtime::new(5).run(move |comm| {
                let data = (comm.rank() == root).then(|| vec![root as u64, 99]);
                comm.bcast(root, data).unwrap()
            });
            for v in out {
                assert_eq!(v, vec![root as u64, 99]);
            }
        }
    }

    #[test]
    fn tree_bcast_shares_one_allocation_zero_deep_clones() {
        // Regression: the binomial tree used to deep-clone the payload once
        // per child (`value.clone()` on every forward), putting up to
        // ⌈log₂ p⌉ full copies on the root's critical path. `bcast_shared`
        // forwards the root's single allocation by refcount: a broadcast
        // across 8 ranks must invoke the payload's `Clone` exactly ZERO
        // times, while the wire counters still charge every hop full price.
        use crate::payload::Payload;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        static DEEP_CLONES: AtomicUsize = AtomicUsize::new(0);

        struct CloneCounted(Vec<u8>);
        impl Clone for CloneCounted {
            fn clone(&self) -> Self {
                DEEP_CLONES.fetch_add(1, Ordering::SeqCst);
                CloneCounted(self.0.clone())
            }
        }
        impl Payload for CloneCounted {
            fn size_bytes(&self) -> usize {
                self.0.len()
            }
        }

        DEEP_CLONES.store(0, Ordering::SeqCst);
        let p = 8;
        let rt = Runtime::new(p);
        let (out, report) = rt.run_traced(move |comm| {
            let data = (comm.rank() == 0).then(|| Arc::new(CloneCounted(vec![7u8; 1024])));
            let got = comm.bcast_shared(0, data).unwrap();
            (got.0[0], got.0.len())
        });
        for v in out {
            assert_eq!(v, (7u8, 1024));
        }
        assert_eq!(
            DEEP_CLONES.load(Ordering::SeqCst),
            0,
            "tree bcast must not deep-clone the payload"
        );
        // every rank still receives the full payload once: p-1 hops × 1024
        // wire bytes (one rank per node here, so all hops cross the NIC)
        assert_eq!(report.total_nic_bytes(), (p as u64 - 1) * 1024);
        assert_eq!(report.total_msgs, p as u64 - 1);
    }

    #[test]
    fn owned_bcast_still_returns_owned_values() {
        // the Arc plumbing must stay invisible to `bcast` callers: owned
        // values in, owned values out, same wire accounting as before
        let rt = Runtime::new(4);
        let (out, report) = rt.run_traced(move |comm| {
            let data = (comm.rank() == 0).then(|| vec![3u64; 100]);
            comm.bcast(0, data).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![3u64; 100]);
        }
        assert_eq!(report.total_nic_bytes(), 3 * 800);
    }

    #[test]
    fn ring_bcast_delivers_identical_data() {
        for root in [0, 2, 6] {
            let payload: Vec<f32> = (0..1000).map(|i| i as f32).collect();
            let expect = payload.clone();
            let out = Runtime::new(7).run(move |comm| {
                let data = (comm.rank() == root).then(|| payload.clone());
                comm.ring_bcast(root, data, 8).unwrap()
            });
            for v in out {
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn ring_bcast_handles_tiny_and_empty_payloads() {
        let out = Runtime::new(3).run(|comm| {
            let a = comm.ring_bcast(0, (comm.rank() == 0).then(|| vec![5u8]), 16).unwrap();
            let b = comm.ring_bcast(1, (comm.rank() == 1).then(Vec::<u8>::new), 4).unwrap();
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, vec![5u8]);
            assert!(b.is_empty());
        }
    }

    #[test]
    fn ring_bcast_moves_minimal_bytes() {
        // p ranks, one per node: ring broadcast of B bytes must put exactly
        // (p-1)*B data bytes on the wire (each rank receives once) —
        // vs binomial which is the same total but unbalanced per node.
        let payload = vec![0u8; 1024];
        let rt = Runtime::new(4);
        let (_, report) = rt.run_traced(move |comm| {
            let data = (comm.rank() == 0).then(|| payload.clone());
            comm.ring_bcast(0, data, 4).unwrap();
        });
        // each of the 3 forwarding hops moves 1024 data bytes + an 8-byte
        // chunk-count header
        assert_eq!(report.total_nic_bytes(), 3 * (1024 + 8));
        // per-node egress is balanced: every non-tail rank sends once
        let egress = report.nic_egress.clone();
        assert_eq!(egress[0], 1032);
        assert_eq!(egress[1], 1032);
        assert_eq!(egress[2], 1032);
        assert_eq!(egress[3], 0); // ring tail
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PHASE1: AtomicUsize = AtomicUsize::new(0);
        let out = Runtime::new(6).run(|comm| {
            PHASE1.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // after the barrier, everyone must have bumped the counter
            PHASE1.load(Ordering::SeqCst)
        });
        for v in out {
            assert_eq!(v, 6);
        }
    }

    #[test]
    fn barrier_uses_logarithmic_fan_in() {
        // binomial-reduction regression pin: 2(p-1) messages total, and —
        // unlike the old linear gather, which funnelled p-1 receives into
        // rank 0 — no rank receives more than ceil(log2 p) messages per
        // phase. The per-rank message events from the trace expose ingress.
        for p in [2usize, 4, 5, 7, 8] {
            let rt = Runtime::new(p);
            let (_, report, trace) = rt.run_with_trace(|comm| comm.barrier().unwrap());
            assert_eq!(
                report.total_msgs,
                2 * (p as u64 - 1),
                "barrier on {p} ranks must move exactly 2(p-1) messages"
            );
            let log2p = p.next_power_of_two().trailing_zeros() as usize;
            let mut ingress = vec![0usize; p];
            for tl in &trace.per_rank {
                for e in &tl.events {
                    ingress[e.dst_world] += 1;
                }
            }
            for (r, n) in ingress.into_iter().enumerate() {
                assert!(
                    n <= log2p + 1,
                    "barrier on {p} ranks: rank {r} received {n} messages, \
                     expected at most ⌈log₂ p⌉ + 1 = {}",
                    log2p + 1
                );
            }
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let out = Runtime::new(4).run(|comm| comm.allgather(comm.rank() as u64 * 10).unwrap());
        for v in out {
            assert_eq!(v, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn allgather_uses_linear_message_count() {
        // gather-then-bcast regression pin: (p-1) gather sends plus (p-1)
        // binomial-broadcast sends = 2(p-1) messages, NOT the p(p-1) of a
        // broadcast-per-contributor formulation.
        for p in [2usize, 4, 7, 8] {
            let rt = Runtime::new(p);
            let (out, report) =
                rt.run_traced(move |comm| comm.allgather(comm.rank() as u64).unwrap());
            for v in out {
                assert_eq!(v, (0..p as u64).collect::<Vec<_>>());
            }
            assert_eq!(
                report.total_msgs,
                2 * (p as u64 - 1),
                "allgather on {p} ranks must move exactly 2(p-1) messages"
            );
        }
    }

    #[test]
    fn allreduce_min_and_sum() {
        let out = Runtime::new(5).run(|comm| {
            let r = comm.rank() as f64;
            let min = comm.allreduce(r, f64::min).unwrap();
            let sum = comm.allreduce(r, |a, b| a + b).unwrap();
            (min, sum)
        });
        for (min, sum) in out {
            assert_eq!(min, 0.0);
            assert_eq!(sum, 10.0);
        }
    }

    #[test]
    fn collectives_work_on_split_subcommunicators() {
        let out = Runtime::new(6).run(|comm| {
            let row = comm.split((comm.rank() / 3) as u64, (comm.rank() % 3) as u64).unwrap();

            row.allreduce(comm.rank() as u64, |a, b| a + b).unwrap()
        });
        assert_eq!(out[0], 1 + 2);
        assert_eq!(out[5], 3 + 4 + 5);
    }

    #[test]
    fn tiled_placement_cuts_nic_traffic_for_column_bcast() {
        // 4x4 grid, Q=4. Contiguous packs whole rows per node, so a column
        // broadcast crosses NICs on every hop; tiled 2x2 keeps half the
        // column hops in-node.
        let run = |placement: Placement| {
            let rt = Runtime::new(16).with_placement(placement);
            let (_, report) = rt.run_traced(|comm| {
                let col = comm.split((comm.rank() % 4) as u64, (comm.rank() / 4) as u64).unwrap();
                let data = (col.rank() == 0).then(|| vec![0u8; 4096]);
                col.ring_bcast(0, data, 4).unwrap();
            });
            report.total_nic_bytes()
        };
        let contiguous = run(Placement::contiguous(4, 4, 4));
        let tiled = run(Placement::tiled(4, 4, 2, 2));
        assert!(
            tiled < contiguous,
            "tiled ({tiled}) should beat contiguous ({contiguous})"
        );
    }
}
