//! Workspace-spanning integration tests: graph generators → distributed
//! algorithms over the MPI substrate → offload through the GPU substrate →
//! oracle validation, plus schedule-level consistency with the functional
//! runs.

use apsp_core::dist::{distributed_apsp, FwConfig, Variant};
use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
use apsp_core::fw_seq::{fw_seq, fw_seq_with_paths, reconstruct_path};
use apsp_core::verify::{assert_matrices_equal, check_apsp_invariants};
use apsp_graph::dijkstra::apsp_by_dijkstra;
use apsp_graph::generators::{self, WeightKind};
use apsp_graph::johnson::johnson_apsp;
use apsp_graph::paths::validate_path;
use mpi_sim::Placement;
use srgemm::MinPlusF32;

/// The full pipeline on the paper's workload: generator → every solver in
/// the workspace → exact agreement.
#[test]
fn five_independent_solvers_agree_on_the_paper_workload() {
    let n = 32;
    let g = generators::uniform_dense(n, WeightKind::small_ints(), 2021);
    let input = g.to_dense();

    // oracle 1: repeated Dijkstra
    let dij = apsp_by_dijkstra(&g);
    // oracle 2: Johnson
    let joh = johnson_apsp(&g).expect("no negative cycles");
    // solver 3: sequential FW
    let mut seq = input.clone();
    fw_seq::<MinPlusF32>(&mut seq);
    // solver 4: blocked FW
    let mut blk = input.clone();
    fw_blocked::<MinPlusF32>(&mut blk, 8, DiagMethod::Squaring, true);
    // solver 5: the full distributed offload pipeline
    let cfg = FwConfig::new(8, Variant::Offload);
    let (dist, _) = distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run");

    assert_matrices_equal(&dij, &joh, "dijkstra vs johnson");
    assert_matrices_equal(&dij, &seq, "dijkstra vs sequential FW");
    assert_matrices_equal(&dij, &blk, "dijkstra vs blocked FW");
    assert_matrices_equal(&dij, &dist, "dijkstra vs distributed offload FW");
    check_apsp_invariants(&dist, "distributed output");
}

/// Distributed paths extension: distances from the distributed run feed
/// path reconstruction from the sequential predecessor matrix, and the
/// paths are realizable in the original graph.
#[test]
fn distributed_distances_are_realizable_as_paths() {
    let n = 24;
    let g = generators::erdos_renyi(n, 0.3, WeightKind::small_ints(), 31);
    let input = g.to_dense();
    let cfg = FwConfig::new(6, Variant::AsyncRing);
    let (dist, _) = distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("run");

    let mut with_pred = input.clone();
    let pred = fw_seq_with_paths(&mut with_pred);
    assert_matrices_equal(&with_pred, &dist, "pred-run vs distributed");

    for s in 0..n {
        for t in 0..n {
            if s != t && dist[(s, t)].is_finite() {
                let p = reconstruct_path(&pred, s, t).expect("path exists");
                assert!(validate_path(&g, &p, s, t, dist[(s, t)], 1e-3));
            }
        }
    }
}

/// Placement interacts with the algorithms but never with the answer.
#[test]
fn every_placement_yields_identical_answers_different_traffic() {
    let n = 36;
    let input = generators::uniform_dense(n, WeightKind::small_ints(), 8).to_dense();
    let mut want = input.clone();
    fw_seq::<MinPlusF32>(&mut want);

    let cfg = FwConfig::new(6, Variant::Pipelined);
    let mut traffics = Vec::new();
    for placement in [
        Placement::one_rank_per_node(6),
        Placement::single_node(6),
        Placement::contiguous(2, 3, 3),
        Placement::tiled(2, 3, 2, 1),
    ] {
        let (got, traffic) =
            distributed_apsp::<MinPlusF32>(2, 3, &cfg, &input, Some(placement)).expect("run");
        assert_matrices_equal(&want, &got, "placement-independence");
        traffics.push(traffic.total_nic_bytes());
    }
    // single-node placement must be the unique zero-NIC configuration
    assert_eq!(traffics[1], 0);
    assert!(traffics[0] > 0);
}

/// Cross-checking the two timing paths: the gpu-sim stream clocks and the
/// analytic §4.5 model agree on stream-scaling direction.
#[test]
fn gpu_sim_and_cost_model_agree_on_overlap_direction() {
    use gpu_sim::cost::OffloadCosts;
    use gpu_sim::{oog_srgemm_model, GpuSpec, OogConfig, SimGpu};
    let spec = GpuSpec::summit_v100();
    let gpu = SimGpu::new(spec);
    let (m, n, k) = (16_384usize, 16_384usize, 256usize);
    let analytic = OffloadCosts::new(&spec, m, n, k, 4);
    let t1 = oog_srgemm_model(&gpu, &OogConfig::new(2048, 2048, 1), m, n, k, 4).unwrap();
    let t3 = oog_srgemm_model(&gpu, &OogConfig::new(2048, 2048, 3), m, n, k, 4).unwrap();
    assert!(t3.sim_time < t1.sim_time);
    // both within a factor ~2 of the analytic regime predictions
    assert!(t1.sim_time / analytic.predicted_time(1) < 2.0);
    assert!(t3.sim_time / analytic.predicted_time(3) < 2.0);
    assert!(analytic.predicted_time(3) / t3.sim_time < 2.0);
}

/// The functional NIC counters and the schedule simulator must rank
/// placements the same way (square node grid wins).
#[test]
fn functional_and_simulated_placement_rankings_agree() {
    use apsp_core::schedule::{simulate_unchecked, ScheduleConfig};
    use cluster_sim::MachineSpec;

    // functional: 16 nodes via 8x8 ranks, Q=4
    let n = 64;
    let input = generators::uniform_dense(n, WeightKind::small_ints(), 12).to_dense();
    let cfg = FwConfig::new(8, Variant::AsyncRing);
    let measure = |qr: usize, qc: usize| {
        let (_, t) = distributed_apsp::<MinPlusF32>(
            8,
            8,
            &cfg,
            &input,
            Some(Placement::tiled(8, 8, qr, qc)),
        )
        .expect("run");
        t.max_node_nic_bytes()
    };
    let func_square = measure(2, 2); // K = 4x4
    let func_skewed = measure(1, 4); // K = 8x2

    // simulated at Summit scale, same node-grid shapes. Tree-broadcast
    // variant: the ring's fill latency grows with ring length, which at a
    // small node count can offset the volume gain, while the tree variant
    // ranks placements exactly by the §3.4.1 volume.
    let spec = MachineSpec::summit(16);
    let sim_square = simulate_unchecked(&spec, &ScheduleConfig::new(32_768, Variant::Pipelined, 4, 4)).seconds;
    let sim_skewed = simulate_unchecked(&spec, &ScheduleConfig::new(32_768, Variant::Pipelined, 8, 2)).seconds;

    assert!(func_square < func_skewed, "functional: square wins");
    assert!(sim_square < sim_skewed, "simulated: square wins");
}
