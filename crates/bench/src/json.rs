//! Minimal JSON value + writer + parser, std-only.
//!
//! The container has no crates.io access, so the perf-suite's stable-schema
//! output (`BENCH_PR4.json` and successors) is serialized by hand. Objects
//! preserve insertion order (`Vec<(String, Json)>`, not a hash map) so the
//! emitted files are byte-stable across runs of the same suite — diffs in
//! version control show only the numbers that moved.
//!
//! Supported: the full JSON value grammar minus two corners nobody benches
//! with — exponent-heavy float shapes are printed in shortest-roundtrip Rust
//! form, and strings escape only the mandatory set (`"`*, `\`, control
//! chars). The parser accepts anything the writer emits plus ordinary
//! hand-written JSON (whitespace, nested containers, escaped strings,
//! scientific notation).

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (the suite emits timings and ratios;
/// integers up to 2⁵³ round-trip exactly).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad1);
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (a single value with optional surrounding
    /// whitespace). Errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { pos, message: "trailing characters after value".into() });
        }
        Ok(value)
    }
}

/// Why a document failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn write_num(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            let _ = write!(out, "{}", x as i64);
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, message: impl Into<String>) -> JsonError {
    JsonError { pos, message: message.into() }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // surrogate pairs are not needed for the suite's
                        // ASCII schema; reject rather than mis-decode
                        let ch = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "unsupported \\u code point"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<f64>().map_err(|_| err(start, format!("bad number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_then_parser_round_trips() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("apsp-bench-perf/1".into())),
            ("reps".into(), Json::Num(3.0)),
            ("wall_s".into(), Json::Num(0.12345)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "entries".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("name".into(), Json::Str("a/b".into()))]),
                    Json::Obj(vec![]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_hand_written_json() {
        let text = r#"
            { "x": [1, 2.5, -3e2, true, false, null],
              "s": "he said \"hi\"\nA" }
        "#;
        let v = Json::parse(text).expect("parses");
        assert_eq!(v.get("x").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "he said \"hi\"\nA");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        match v {
            Json::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_with_position() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.pos > 0);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[] []").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn integers_stay_integers_in_text() {
        let text = Json::Num(42.0).pretty();
        assert_eq!(text.trim(), "42");
        let text = Json::Num(0.5).pretty();
        assert_eq!(text.trim(), "0.5");
    }
}
