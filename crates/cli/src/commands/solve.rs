//! `apsp solve` — compute all-pairs shortest distances.

use std::io::Write;
use std::time::Instant;

use apsp_core::dc_apsp::dc_apsp;
use apsp_core::fw_blocked::{fw_blocked, DiagMethod};
use apsp_core::fw_seq::fw_seq;
use apsp_core::fw_sparse::fw_block_sparse;
use apsp_core::model::fw_flops;
use apsp_graph::johnson::johnson_apsp;
use srgemm::block_sparse::BlockSparseMatrix;
use srgemm::{Matrix, MinPlusF32};

use crate::args::Args;

/// Entry point.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!(
            "apsp solve --input <FILE> [--algo fw|blocked|dc|sparse|johnson]
  --block <N>        block size for blocked/sparse (default 64)
  --serial           disable rayon parallelism (blocked/dc)
  --out <FILE>       write the distance matrix as TSV (careful: n² values)
  --format <dimacs|edges>"
        );
        return Ok(());
    }
    let args = Args::parse(tokens)?;
    let input: String = args.req("input")?;
    let algo: String = args.opt("algo", "blocked".to_string())?;
    let block: usize = args.opt("block", 64)?;
    let parallel = !args.has_flag("serial");

    let g = super::load_graph(&input, args.opt_str("format"))?;
    let n = g.n();
    if n == 0 {
        return Err("graph is empty".into());
    }
    println!("loaded {} vertices, {} edges from {input}", n, g.m());

    let t0 = Instant::now();
    let dist: Matrix<f32> = match algo.as_str() {
        "fw" => {
            let mut d = g.to_dense();
            fw_seq::<MinPlusF32>(&mut d);
            d
        }
        "blocked" => {
            let mut d = g.to_dense();
            fw_blocked::<MinPlusF32>(&mut d, block, DiagMethod::FwClosure, parallel);
            d
        }
        "dc" => {
            let mut d = g.to_dense();
            dc_apsp::<MinPlusF32>(&mut d, block.max(1), parallel);
            d
        }
        "sparse" => {
            let mut sp = BlockSparseMatrix::from_dense(&g.to_dense(), block, f32::INFINITY);
            // seed zero diagonals so absent diagonal blocks still close
            for i in 0..n {
                sp.set(i, i, 0.0);
            }
            let stats = fw_block_sparse::<MinPlusF32>(&mut sp);
            println!(
                "sparse: {} → {} blocks materialized, {:.0}% of dense block work",
                stats.input_blocks,
                stats.output_blocks,
                100.0 * stats.work_ratio()
            );
            sp.to_dense()
        }
        "johnson" => johnson_apsp(&g).map_err(|e| format!("{e:?}"))?,
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let secs = t0.elapsed().as_secs_f64();
    println!("solved in {:.3} s ({:.2} Gflop/s FW-equivalent)", secs, fw_flops(n) / secs / 1e9);

    // summary statistics
    let mut finite = 0u64;
    let mut total = 0f64;
    let mut max = 0f32;
    for i in 0..n {
        for j in 0..n {
            let d = dist[(i, j)];
            if i != j && d.is_finite() {
                finite += 1;
                total += d as f64;
                max = max.max(d);
            }
        }
    }
    let pairs = (n * n - n) as u64;
    println!(
        "reachable pairs: {finite}/{pairs}; mean distance {:.3}; diameter {max}",
        total / finite.max(1) as f64
    );

    if let Some(out) = args.opt_str("out") {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?,
        );
        for i in 0..n {
            let row: Vec<String> = (0..n).map(|j| format!("{}", dist[(i, j)])).collect();
            writeln!(f, "{}", row.join("\t")).map_err(|e| e.to_string())?;
        }
        println!("wrote {n}×{n} distance matrix to {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn fixture() -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("apsp-solve-{}-{:?}", std::process::id(), std::thread::current().id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("g.gr");
        let g = apsp_graph::generators::erdos_renyi(
            15,
            0.3,
            apsp_graph::generators::WeightKind::small_ints(),
            4,
        );
        crate::commands::save_graph(&g, input.to_str().unwrap(), None).unwrap();
        (dir, input)
    }

    #[test]
    fn every_algorithm_solves_and_agrees() {
        let (dir, input) = fixture();
        // solve with each algorithm, dump TSVs, compare
        let mut outputs = Vec::new();
        for algo in ["fw", "blocked", "dc", "sparse", "johnson"] {
            let out = dir.join(format!("{algo}.tsv"));
            let cmd = format!(
                "--input {} --algo {algo} --block 4 --out {}",
                input.display(),
                out.display()
            );
            run(&toks(&cmd)).unwrap();
            outputs.push(std::fs::read_to_string(&out).unwrap());
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_algo_is_an_error() {
        let (dir, input) = fixture();
        let cmd = format!("--input {} --algo magic", input.display());
        assert!(run(&toks(&cmd)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
