//! Fig. 5 — out-of-GPU SRGEMM throughput vs block size `k`, for tile
//! buffers m_x ∈ {512, 1k, 2k, 4k} (paper §5.3.1), on the simulated V100.
//!
//! Expected shape: throughput climbs with the block size and saturates near
//! the 6.8 TF/s SRGEMM rate once `k` crosses the Eq. 5 floor (624 predicted,
//! 768 observed); tiny blocks are transfer/host-update bound.

use apsp_bench::{arg, Table};
use gpu_sim::cost::min_block_size;
use gpu_sim::{oog_srgemm_model, GpuSpec, OogConfig, SimGpu};

fn main() {
    let n: usize = arg("--n", 32_768);
    let spec = GpuSpec::summit_v100();
    let gpu = SimGpu::new(spec);
    println!("== Fig. 5: ooGSrGemm Gflop/s vs block size (m = n = {n}, 4 streams) ==\n");
    println!(
        "Eq. 5 predicted minimum block size: {:.0}; theoretical SRGEMM peak {:.0} Gflop/s\n",
        min_block_size(&spec, 4),
        spec.srgemm_flops / 1e9
    );

    let buffers = [512usize, 1024, 2048, 4096];
    let mut headers = vec![("block", 6)];
    headers.extend(buffers.iter().map(|_| ("", 0)));
    let table = Table::new(&[
        ("block", 6),
        ("mx=512", 9),
        ("mx=1k", 9),
        ("mx=2k", 9),
        ("mx=4k", 9),
        ("%peak@2k", 9),
    ]);
    let _ = headers;

    for k in [128usize, 256, 512, 768, 1024, 2048] {
        let mut cells = vec![k.to_string()];
        let mut at2k = 0.0;
        for &mx in &buffers {
            let cfg = OogConfig::new(mx, mx, 4);
            let out = oog_srgemm_model(&gpu, &cfg, n, n, k, 4).expect("fits on device");
            let gf = out.gflops();
            if mx == 2048 {
                at2k = gf;
            }
            cells.push(format!("{gf:.0}"));
        }
        cells.push(format!("{:.0}%", 100.0 * at2k * 1e9 / spec.srgemm_flops));
        table.row(&cells);
    }
    println!("\npaper: \"for block size > 768 ooGSrGemm performs very close to the peak for all m_x\"");
}
