//! Distributed shortest-*path* generation — the paper's §7 future work
//! ("we plan to extend this work to support distributed shortest path
//! generation"), implemented with zero new communication machinery.
//!
//! The trick is algebraic: pair every distance with a *witness* — the
//! predecessor of the destination on the best path found so far — and
//! define a semiring on the pairs:
//!
//! * `(d₁, p₁) ⊕ (d₂, p₂)` keeps the pair with the smaller distance;
//! * `(d₁, p₁) ⊗ (d₂, p₂) = (d₁ + d₂, p₂ or p₁)` — concatenating paths
//!   keeps the *right* operand's predecessor (the vertex before the final
//!   destination), falling back to the left one when the right segment is
//!   empty (the multiplicative identity).
//!
//! [`MinPlusPred`] satisfies the semiring laws (identity, distributivity —
//! see the tests), so **every** solver in this workspace — blocked FW, and
//! all four distributed variants over real message passing — computes
//! predecessor-annotated APSP just by switching the type parameter. Ties
//! may pick different (equally shortest) witnesses than the sequential
//! reference; tests therefore validate realizability and length, not
//! witness identity.

use srgemm::matrix::Matrix;
use srgemm::semiring::Semiring;

use crate::fw_seq::NO_PRED;

/// Distance + predecessor witness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistPred {
    /// Path length.
    pub d: f32,
    /// Vertex preceding the destination on the path (`NO_PRED` if none).
    pub pred: u32,
}

/// The witness-carrying tropical semiring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinPlusPred;

impl Semiring for MinPlusPred {
    type Elem = DistPred;
    const NAME: &'static str = "min-plus-pred";
    const IDEMPOTENT_ADD: bool = true;

    #[inline(always)]
    fn zero() -> DistPred {
        DistPred { d: f32::INFINITY, pred: NO_PRED }
    }

    #[inline(always)]
    fn one() -> DistPred {
        DistPred { d: 0.0, pred: NO_PRED }
    }

    #[inline(always)]
    fn add(a: DistPred, b: DistPred) -> DistPred {
        // strict <: on ties keep the left (already-held) witness, which
        // makes ⊕ idempotent and deterministic
        if b.d < a.d {
            b
        } else {
            a
        }
    }

    #[inline(always)]
    fn mul(a: DistPred, b: DistPred) -> DistPred {
        DistPred {
            d: a.d + b.d,
            pred: if b.pred == NO_PRED { a.pred } else { b.pred },
        }
    }
}

/// Annotated initial matrix: `(w(i,j), i)` for edges, `(0, NO_PRED)` on the
/// diagonal, `(∞, NO_PRED)` elsewhere.
pub fn annotate(dist: &Matrix<f32>) -> Matrix<DistPred> {
    let n = dist.rows();
    Matrix::from_fn(n, n, |i, j| {
        let d = dist[(i, j)];
        if i == j {
            DistPred { d: d.min(0.0), pred: NO_PRED }
        } else if d.is_finite() {
            DistPred { d, pred: i as u32 }
        } else {
            DistPred { d: f32::INFINITY, pred: NO_PRED }
        }
    })
}

/// Split an annotated result into the distance and predecessor matrices
/// (`pred` is directly consumable by [`crate::fw_seq::reconstruct_path`]).
pub fn split(annotated: &Matrix<DistPred>) -> (Matrix<f32>, Matrix<u32>) {
    let n = annotated.rows();
    let d = Matrix::from_fn(n, n, |i, j| annotated[(i, j)].d);
    let p = Matrix::from_fn(n, n, |i, j| annotated[(i, j)].pred);
    (d, p)
}

/// Inverse of [`split`]: zip a solved distance matrix and its predecessor
/// matrix (e.g. from [`crate::fw_seq::fw_seq_with_paths`]) back into the
/// annotated form that the witness-carrying incremental updater and the
/// [`crate::serve`] engine operate on.
pub fn combine(dist: &Matrix<f32>, pred: &Matrix<u32>) -> Matrix<DistPred> {
    let n = dist.rows();
    assert_eq!((n, n), (pred.rows(), pred.cols()), "dist/pred shape mismatch");
    Matrix::from_fn(n, n, |i, j| DistPred { d: dist[(i, j)], pred: pred[(i, j)] })
}

/// The annotated element for a raw edge `u → v` of weight `w`: the witness
/// is `u`, the vertex preceding `v` when a path uses this edge.
pub fn edge_elem(u: usize, w: f32) -> DistPred {
    DistPred { d: w, pred: u as u32 }
}

/// Walk witnesses back from `dst` on an annotated closure, producing the
/// vertex sequence `src … dst` (`None` if unreachable). Equivalent to
/// [`crate::fw_seq::reconstruct_path`] on the [`split`] predecessor matrix,
/// without materializing it — the serve layer answers path queries on a
/// shared annotated snapshot directly.
pub fn reconstruct_path_annotated(
    m: &Matrix<DistPred>,
    src: usize,
    dst: usize,
) -> Option<Vec<usize>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while m[(src, cur)].pred != crate::fw_seq::NO_PRED {
        cur = m[(src, cur)].pred as usize;
        path.push(cur);
        if cur == src {
            path.reverse();
            return Some(path);
        }
        if path.len() > m.rows() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{distributed_apsp, FwConfig, Variant};
    use crate::fw_blocked::{fw_blocked, DiagMethod};
    use crate::fw_seq::{fw_seq, reconstruct_path};
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::paths::validate_path;

    type S = MinPlusPred;

    fn dp(d: f32, pred: u32) -> DistPred {
        DistPred { d, pred }
    }

    #[test]
    fn semiring_laws_hold_with_witnesses() {
        let a = dp(3.0, 7);
        let b = dp(5.0, 9);
        let c = dp(1.0, 2);
        // identity on both sides, witness preserved
        assert_eq!(S::mul(a, S::one()), a);
        assert_eq!(S::mul(S::one(), a), a);
        assert_eq!(S::add(S::zero(), a), a);
        // annihilation
        assert_eq!(S::mul(S::zero(), a).d, f32::INFINITY);
        // distributivity (left): a ⊗ (b ⊕ c) = (a⊗b) ⊕ (a⊗c)
        assert_eq!(S::mul(a, S::add(b, c)), S::add(S::mul(a, b), S::mul(a, c)));
        // distributivity (right)
        assert_eq!(S::mul(S::add(b, c), a), S::add(S::mul(b, a), S::mul(c, a)));
        // ⊕ idempotent
        assert_eq!(S::add(a, a), a);
    }

    #[test]
    fn mul_concatenation_keeps_rightmost_witness() {
        // path i→k (pred of k is 7) followed by k→j (pred of j is 9)
        assert_eq!(S::mul(dp(3.0, 7), dp(5.0, 9)), dp(8.0, 9));
        // …but an empty right segment keeps the left witness
        assert_eq!(S::mul(dp(3.0, 7), S::one()), dp(3.0, 7));
    }

    #[test]
    fn blocked_fw_generates_valid_paths() {
        let g = generators::erdos_renyi(28, 0.25, WeightKind::small_ints(), 19);
        let mut annotated = annotate(&g.to_dense());
        fw_blocked::<S>(&mut annotated, 8, DiagMethod::FwClosure, false);
        let (d, pred) = split(&annotated);

        // distances equal plain FW
        let mut want = g.to_dense();
        fw_seq::<srgemm::MinPlusF32>(&mut want);
        assert!(want.eq_exact(&d));

        // every finite pair has a realizable path of exactly that length
        for s in 0..28 {
            for t in 0..28 {
                if s != t && d[(s, t)].is_finite() {
                    let p = reconstruct_path(&pred, s, t).expect("path exists");
                    assert!(validate_path(&g, &p, s, t, d[(s, t)], 1e-3), "{s}->{t}");
                }
            }
        }
    }

    #[test]
    fn distributed_path_generation_end_to_end() {
        // the §7 extension: predecessor-annotated APSP through the real
        // message-passing pipeline, every variant
        let g = generators::uniform_dense(20, WeightKind::small_ints(), 5);
        let input = annotate(&g.to_dense());
        let mut want = g.to_dense();
        fw_seq::<srgemm::MinPlusF32>(&mut want);

        for variant in Variant::all() {
            let cfg = FwConfig::new(5, variant);
            let (annotated, _) = distributed_apsp::<S>(2, 2, &cfg, &input, None).expect("run");
            let (d, pred) = split(&annotated);
            assert!(want.eq_exact(&d), "{variant:?} distances");
            for s in 0..20 {
                for t in 0..20 {
                    if s != t {
                        let p = reconstruct_path(&pred, s, t).expect("dense graph");
                        assert!(validate_path(&g, &p, s, t, d[(s, t)], 1e-3));
                    }
                }
            }
        }
    }

    #[test]
    fn combine_round_trips_and_annotated_walk_matches_split_walk() {
        let g = generators::erdos_renyi(18, 0.3, WeightKind::small_ints(), 23);
        let mut annotated = annotate(&g.to_dense());
        fw_blocked::<S>(&mut annotated, 6, DiagMethod::FwClosure, false);
        let (d, pred) = split(&annotated);
        let back = combine(&d, &pred);
        assert_eq!(annotated, back);
        for s in 0..18 {
            for t in 0..18 {
                assert_eq!(
                    reconstruct_path_annotated(&annotated, s, t),
                    reconstruct_path(&pred, s, t),
                    "{s}->{t}"
                );
            }
        }
    }

    #[test]
    fn unreachable_pairs_have_no_witness() {
        let g = generators::multi_component(12, 2, WeightKind::small_ints(), 3);
        let mut annotated = annotate(&g.to_dense());
        fw_blocked::<S>(&mut annotated, 4, DiagMethod::FwClosure, false);
        let (d, pred) = split(&annotated);
        assert_eq!(d[(0, 11)], f32::INFINITY);
        assert_eq!(pred[(0, 11)], crate::fw_seq::NO_PRED);
        assert_eq!(reconstruct_path(&pred, 0, 11), None);
    }
}
