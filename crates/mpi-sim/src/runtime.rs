//! Runtime: spawn a thread per rank and run an SPMD closure.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::comm::{Comm, Shared};
use crate::counters::TrafficReport;
use crate::placement::Placement;
use crate::trace::{RunTrace, TraceState};

/// Configures and launches an SPMD job. Each rank runs the user closure on
/// its own OS thread with a [`Comm`] world communicator.
pub struct Runtime {
    p: usize,
    placement: Placement,
    recv_timeout: Duration,
}

impl Runtime {
    /// A runtime with `p` ranks, one rank per node (every message is
    /// inter-node), and a 30 s deadlock-detection timeout.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        Runtime {
            p,
            placement: Placement::one_rank_per_node(p),
            recv_timeout: Duration::from_secs(30),
        }
    }

    /// Use an explicit rank→node placement (paper §3.4).
    ///
    /// # Panics
    /// Panics if the placement's rank count differs from the runtime's.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        assert_eq!(placement.num_ranks(), self.p, "placement rank count mismatch");
        self.placement = placement;
        self
    }

    /// Override the receive timeout (tests of deadlock behaviour shorten it).
    pub fn with_recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// Run the SPMD closure; returns per-rank results in rank order.
    pub fn run<R: Send>(&self, f: impl Fn(Comm) -> R + Send + Sync) -> Vec<R> {
        self.run_traced(f).0
    }

    /// Like [`Runtime::run`] but also returns the traffic report.
    pub fn run_traced<R: Send>(
        &self,
        f: impl Fn(Comm) -> R + Send + Sync,
    ) -> (Vec<R>, TrafficReport) {
        let (out, traffic, _) = self.run_inner(f, None);
        (out, traffic)
    }

    /// Like [`Runtime::run_traced`] but additionally records a full
    /// [`RunTrace`]: per-rank phase spans (opened via [`Comm::phase`]) and
    /// per-message events, on a shared monotonic clock. Export it with
    /// [`RunTrace::to_chrome_json`] / [`RunTrace::phase_summary`].
    pub fn run_with_trace<R: Send>(
        &self,
        f: impl Fn(Comm) -> R + Send + Sync,
    ) -> (Vec<R>, TrafficReport, RunTrace) {
        let state = Arc::new(TraceState::new(self.p));
        let (out, traffic, trace) = self.run_inner(f, Some(state));
        (out, traffic, trace.expect("trace state was attached"))
    }

    fn run_inner<R: Send>(
        &self,
        f: impl Fn(Comm) -> R + Send + Sync,
        trace: Option<Arc<TraceState>>,
    ) -> (Vec<R>, TrafficReport, Option<RunTrace>) {
        let shared = Arc::new(Shared::new(
            self.p,
            self.placement.clone(),
            self.recv_timeout,
            trace.clone(),
        ));
        let results: Vec<Mutex<Option<R>>> = (0..self.p).map(|_| Mutex::new(None)).collect();
        let f = &f;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.p);
            for (rank, slot) in results.iter().enumerate() {
                let shared = shared.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            let comm = Comm::world(shared, rank);
                            *slot.lock() = Some(f(comm));
                        })
                        .expect("spawn rank thread"),
                );
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });

        let out = results
            .into_iter()
            .map(|m| m.into_inner().expect("rank finished without a result"))
            .collect();
        (out, shared.counters.snapshot(), trace.map(|t| t.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let out = Runtime::new(5).run(|comm| (comm.rank(), comm.size()));
        for (i, &(r, s)) in out.iter().enumerate() {
            assert_eq!(r, i);
            assert_eq!(s, 5);
        }
    }

    #[test]
    fn traced_run_counts_internode_bytes() {
        let rt = Runtime::new(2);
        let (_, report) = rt.run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 128]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
        });
        assert_eq!(report.total_nic_bytes(), 128);
        assert_eq!(report.total_msgs, 1);
    }

    #[test]
    fn single_node_placement_reports_zero_nic_traffic() {
        let rt = Runtime::new(2).with_placement(Placement::single_node(2));
        let (_, report) = rt.run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 128]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
        });
        assert_eq!(report.total_nic_bytes(), 0);
        assert_eq!(report.total_intra_bytes(), 128);
    }

    #[test]
    fn traced_run_records_spans_and_messages() {
        let rt = Runtime::new(2);
        let (_, report, trace) = rt.run_with_trace(|comm| {
            let _p = comm.phase("DiagBcast");
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 64]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
        });
        assert_eq!(trace.num_ranks(), 2);
        for tl in &trace.per_rank {
            assert_eq!(tl.spans.len(), 1);
            assert_eq!(tl.spans[0].name, "DiagBcast");
        }
        // only rank 0 sent anything
        assert_eq!(trace.per_rank[0].events.len(), 1);
        let e = trace.per_rank[0].events[0];
        assert_eq!((e.dst_world, e.bytes, e.nic, e.phase), (1, 64, true, Some("DiagBcast")));
        assert!(trace.per_rank[1].events.is_empty());
        assert_eq!(report.phase_nic_bytes("DiagBcast"), 64);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn deadlock_is_converted_to_panic() {
        Runtime::new(1)
            .with_recv_timeout(Duration::from_millis(20))
            .run(|comm| {
                let _: u8 = comm.recv(0, 9); // nobody ever sends
            });
    }
}
