//! Machine model: calibrated constants and the cluster resource facade.

use crate::engine::{EngineError, ResourceFault, Schedule};
use crate::task::{ResourceId, TaskGraph, TaskId};

/// Hardware constants of one homogeneous cluster (per-node values).
///
/// [`MachineSpec::summit`] is calibrated from the paper's §5.1.1/§4.1:
/// 6 V100s per node at 6.8 TF/s sustained SRGEMM each, 25 GB/s effective NIC
/// bandwidth per node, NVLink 50 GB/s per direction per GPU, and a few-µs
/// message latency typical of Spectrum MPI on fat-tree InfiniBand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Sustained semiring-GEMM rate per GPU, flop/s.
    pub gpu_flops: f64,
    /// Device memory per GPU, bytes.
    pub gpu_mem_bytes: u64,
    /// Host memory per node, bytes.
    pub host_mem_bytes: u64,
    /// NIC bandwidth per node (each direction), bytes/s.
    pub nic_bw: f64,
    /// Per-message latency on the interconnect, seconds.
    pub nic_latency: f64,
    /// Intra-node transfer bandwidth (shared-memory MPI / NVLink), bytes/s.
    pub intra_bw: f64,
    /// Host↔device bandwidth per GPU (one NVLink direction), bytes/s.
    pub hd_bw: f64,
    /// Host CPU↔DRAM bandwidth per node, bytes/s.
    pub host_mem_bw: f64,
}

impl MachineSpec {
    /// `nodes` Summit nodes.
    pub fn summit(nodes: usize) -> Self {
        MachineSpec {
            nodes,
            gpus_per_node: 6,
            gpu_flops: 6.8e12,
            gpu_mem_bytes: 16 * (1 << 30),
            host_mem_bytes: 512 * (1 << 30),
            nic_bw: 25e9,
            nic_latency: 2e-6,
            intra_bw: 50e9,
            hd_bw: 50e9,
            host_mem_bw: 6.0 * 75e9, // per-node: 6 GPUs' worth of host shares
        }
    }

    /// Aggregate sustained flop/s of the whole machine.
    pub fn total_flops(&self) -> f64 {
        self.nodes as f64 * self.gpus_per_node as f64 * self.gpu_flops
    }

    /// Aggregate GPU memory in bytes.
    pub fn total_gpu_mem(&self) -> u64 {
        self.nodes as u64 * self.gpus_per_node as u64 * self.gpu_mem_bytes
    }
}

/// Per-node resources of a cluster, layered over a [`TaskGraph`].
///
/// Granularity is one task-resource per node per engine kind:
///
/// * `gpu[i]` — node *i*'s aggregated GPU pool (durations are divided by the
///   per-node GPU count by [`Cluster::gpu_task`]);
/// * `nic[i]` — node *i*'s NIC egress; a transfer occupies the *sender's*
///   NIC (paper §3.4.1 models exactly the data sent out of a node);
/// * `intra[i]` — node *i*'s intra-node fabric;
/// * `host[i]` — node *i*'s host-memory engine (offload hostUpdate).
pub struct Cluster {
    /// The machine constants used for durations.
    pub spec: MachineSpec,
    /// The DAG being built.
    pub dag: TaskGraph,
    gpu: Vec<ResourceId>,
    nic: Vec<ResourceId>,
    intra: Vec<ResourceId>,
    host: Vec<ResourceId>,
}

impl Cluster {
    /// Create resources for every node of `spec`.
    pub fn new(spec: MachineSpec) -> Self {
        let mut dag = TaskGraph::new();
        let gpu = (0..spec.nodes).map(|_| dag.resource()).collect();
        let nic = (0..spec.nodes).map(|_| dag.resource()).collect();
        let intra = (0..spec.nodes).map(|_| dag.resource()).collect();
        let host = (0..spec.nodes).map(|_| dag.resource()).collect();
        Cluster { spec, dag, gpu, nic, intra, host }
    }

    /// GPU resource of `node` (exposed for utilization reporting).
    pub fn gpu_resource(&self, node: usize) -> ResourceId {
        self.gpu[node]
    }

    /// Label every subsequently-created task with `name` (see
    /// [`TaskGraph::set_phase`]). Schedule builders call this at each of the
    /// paper's phase boundaries so trace exports carry phase attribution.
    pub fn set_phase(&mut self, name: &'static str) {
        self.dag.set_phase(name);
    }

    /// Human-readable name of every resource, indexed by
    /// [`ResourceId::index`] — `gpu{i}`, `nic{i}`, `intra{i}`, `host{i}`
    /// for each node `i`, matching the creation order in [`Cluster::new`].
    pub fn resource_names(&self) -> Vec<String> {
        let mut names = vec![String::new(); self.dag.num_resources() as usize];
        for (kind, ids) in [
            ("gpu", &self.gpu),
            ("nic", &self.nic),
            ("intra", &self.intra),
            ("host", &self.host),
        ] {
            for (i, r) in ids.iter().enumerate() {
                names[r.index()] = format!("{kind}{i}");
            }
        }
        names
    }

    /// NIC resource of `node`.
    pub fn nic_resource(&self, node: usize) -> ResourceId {
        self.nic[node]
    }

    /// A compute task of `flops` on node `node`'s GPU pool.
    pub fn gpu_task(&mut self, node: usize, flops: f64, priority: u32, deps: &[TaskId]) -> TaskId {
        let rate = self.spec.gpu_flops * self.spec.gpus_per_node as f64;
        self.dag.task(self.gpu[node], flops / rate, priority, deps)
    }

    /// A message of `bytes` from `src` to `dst` node. Inter-node messages
    /// occupy the sender's NIC for `latency + bytes/nic_bw`; intra-node
    /// messages the intra fabric for `bytes/intra_bw`. Returns the task whose
    /// completion means "delivered".
    pub fn send_task(&mut self, src: usize, dst: usize, bytes: f64, priority: u32, deps: &[TaskId]) -> TaskId {
        if src == dst {
            let dur = bytes / self.spec.intra_bw;
            self.dag.task(self.intra[src], dur, priority, deps)
        } else {
            let dur = self.spec.nic_latency + bytes / self.spec.nic_bw;
            self.dag.task(self.nic[src], dur, priority, deps)
        }
    }

    /// A host-memory task touching `bytes` on `node` (hostUpdate et al.).
    pub fn host_task(&mut self, node: usize, bytes: f64, priority: u32, deps: &[TaskId]) -> TaskId {
        let dur = bytes / self.spec.host_mem_bw;
        self.dag.task(self.host[node], dur, priority, deps)
    }

    /// A host↔device transfer of `bytes` on `node`; modeled on the intra
    /// fabric at NVLink rate, aggregated across the node's GPUs.
    pub fn hd_task(&mut self, node: usize, bytes: f64, priority: u32, deps: &[TaskId]) -> TaskId {
        let rate = self.spec.hd_bw * self.spec.gpus_per_node as f64;
        self.dag.task(self.intra[node], bytes / rate, priority, deps)
    }

    /// Execute the DAG.
    pub fn run(&self) -> Schedule {
        crate::engine::run(&self.dag)
    }

    /// Every engine resource of `node` — GPU pool, NIC, intra fabric, and
    /// host-memory engine — dying at simulated second `at`: a whole-node
    /// failure for [`Cluster::try_run_with_faults`].
    pub fn node_fault(&self, node: usize, at: f64) -> Vec<ResourceFault> {
        [self.gpu[node], self.nic[node], self.intra[node], self.host[node]]
            .into_iter()
            .map(|resource| ResourceFault { resource, at })
            .collect()
    }

    /// Execute the DAG under a fault plan; a stalled schedule comes back as
    /// the typed [`EngineError`] instead of a panic.
    pub fn try_run_with_faults(&self, faults: &[ResourceFault]) -> Result<Schedule, EngineError> {
        crate::engine::try_run_with_faults(&self.dag, faults)
    }

    /// Aggregate GPU busy-seconds across nodes for a finished schedule.
    pub fn gpu_busy(&self, sched: &crate::engine::Schedule) -> f64 {
        self.gpu.iter().map(|r| sched.busy[r.0 as usize]).sum()
    }

    /// Aggregate NIC busy-seconds across nodes.
    pub fn nic_busy(&self, sched: &crate::engine::Schedule) -> f64 {
        self.nic.iter().map(|r| sched.busy[r.0 as usize]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_aggregates() {
        let s = MachineSpec::summit(256);
        // 256 nodes × 6 GPUs × 6.8 TF = 10.44 PF sustained SRGEMM
        assert!((s.total_flops() - 256.0 * 6.0 * 6.8e12).abs() < 1.0);
        assert_eq!(s.total_gpu_mem(), 256 * 6 * 16 * (1 << 30) as u64);
    }

    #[test]
    fn gpu_task_duration_uses_node_aggregate_rate() {
        let mut c = Cluster::new(MachineSpec::summit(2));
        let t = c.gpu_task(0, 6.0 * 6.8e12, 0, &[]);
        let s = c.run();
        assert!((s.finish_of(t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn internode_send_charges_sender_nic() {
        let mut c = Cluster::new(MachineSpec::summit(2));
        let t = c.send_task(0, 1, 25e9, 0, &[]);
        let s = c.run();
        assert!((s.finish_of(t) - (1.0 + 2e-6)).abs() < 1e-9);
        assert!(s.busy[c.nic_resource(0).0 as usize] > 0.0);
        assert_eq!(s.busy[c.nic_resource(1).0 as usize], 0.0);
    }

    #[test]
    fn intranode_send_uses_fast_fabric() {
        let mut c = Cluster::new(MachineSpec::summit(1));
        let t = c.send_task(0, 0, 50e9, 0, &[]);
        let s = c.run();
        assert!((s.finish_of(t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_sends_from_one_node_serialize_on_its_nic() {
        let mut c = Cluster::new(MachineSpec::summit(3));
        c.send_task(0, 1, 25e9, 0, &[]);
        c.send_task(0, 2, 25e9, 0, &[]);
        let s = c.run();
        assert!(s.makespan > 2.0); // serialized on node 0's NIC
    }

    #[test]
    fn node_fault_stalls_a_cross_node_pipeline() {
        let mut c = Cluster::new(MachineSpec::summit(2));
        let a = c.gpu_task(0, 6.8e12, 0, &[]);
        let x = c.send_task(0, 1, 25e9, 0, &[a]);
        let _b = c.gpu_task(1, 6.8e12, 0, &[x]);
        let err = c.try_run_with_faults(&c.node_fault(1, 0.0)).expect_err("node 1 is dead");
        let EngineError::Stalled { completed, total, .. } = err;
        assert_eq!((completed, total), (2, 3));
        // a fault that fires after the schedule is done never bites
        let clean = c.run();
        let late = c.try_run_with_faults(&c.node_fault(1, 1e9)).expect("fault after the end");
        assert_eq!(late.makespan, clean.makespan);
    }

    #[test]
    fn sends_from_different_nodes_overlap() {
        let mut c = Cluster::new(MachineSpec::summit(4));
        c.send_task(0, 1, 25e9, 0, &[]);
        c.send_task(2, 3, 25e9, 0, &[]);
        let s = c.run();
        assert!(s.makespan < 1.1);
    }
}
