//! Block-size ablation at Summit scale — the tuning knob behind Eq. 1 and
//! Eq. 5 (DESIGN.md §7). Small blocks raise the latency term `2(n/b)·t_l`
//! and starve the offload pipeline (Eq. 5 floor at 624); huge blocks
//! coarsen the pipeline and inflate the diagonal/panel critical path. The
//! paper settles on b = 768.

use apsp_bench::{arg, Table};
use apsp_core::dist::Variant;
use apsp_core::schedule::{optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;

fn main() {
    let nodes: usize = arg("--nodes", 64);
    let n: usize = arg("--n", 131_072);
    let spec = MachineSpec::summit(nodes);
    let (kr, kc) = optimal_node_grid(nodes);

    println!("== block-size ablation: n = {n}, {nodes} nodes, K = {kr}x{kc} ==\n");
    let table = Table::new(&[
        ("block", 6),
        ("+Async s", 10),
        ("Offload s", 10),
        ("+Async PF/s", 12),
        ("Offload PF/s", 13),
    ]);

    for b in [128usize, 256, 512, 768, 1024, 2048, 4096] {
        let mut cfg_a = ScheduleConfig::new(n, Variant::AsyncRing, kr, kc);
        cfg_a.block = b;
        let mut cfg_o = ScheduleConfig::new(n, Variant::Offload, kr, kc);
        cfg_o.block = b;
        let a = simulate(&spec, &cfg_a).expect("feasible");
        let o = simulate(&spec, &cfg_o).expect("feasible");
        table.row(&[
            b.to_string(),
            format!("{:.2}", a.seconds),
            format!("{:.2}", o.seconds),
            format!("{:.3}", a.pflops),
            format!("{:.3}", o.pflops),
        ]);
    }
    println!("\npaper tuning: b = 768 — above the Eq. 5 offload floor (624), small enough to pipeline");
}
