//! Cross-solver oracle: every generator family × every eligible solver
//! must agree with sequential Floyd-Warshall (the §5.1 baseline).
//!
//! Tolerance policy: on small-integer weights every f32 path sum is exact,
//! so **every** eligible solver must match `fw_seq` bit for bit. On
//! real-valued weights each algorithm associates the per-path additions
//! differently (blocked closure order, Dijkstra relaxation order, Johnson's
//! potential shift), so all solvers are held to a `1e-3` max-abs-diff
//! tolerance instead — the same bound the repo's distributed suites use.

use apsp_core::verify::max_abs_diff;
use apsp_core::{Registry, SolveError, SolveOpts};
use apsp_graph::generators::{self, WeightKind};
use apsp_graph::{Graph, GraphBuilder};

/// Connected, undirected, unit-weight graph (tree + chords): the one
/// family every solver — including seidel — is eligible for.
fn unit_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state
    };
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_undirected((next() % v as u64) as usize, v, 1.0);
    }
    for _ in 0..extra {
        let (u, v) = ((next() % n as u64) as usize, (next() % n as u64) as usize);
        if u != v {
            b.add_undirected(u, v, 1.0);
        }
    }
    b.build()
}

/// Every generator family the workspace ships, at test-friendly sizes.
/// The bool marks integer weights (exact f32 arithmetic end to end).
fn families() -> Vec<(&'static str, Graph, bool)> {
    vec![
        ("uniform_dense", generators::uniform_dense(40, WeightKind::small_ints(), 1), true),
        ("erdos_renyi", generators::erdos_renyi(45, 0.15, WeightKind::small_ints(), 2), true),
        ("grid", generators::grid(7, 6, WeightKind::small_ints(), 3), true),
        ("ring_with_chords", generators::ring_with_chords(40, WeightKind::small_ints(), 4), true),
        ("multi_component", generators::multi_component(36, 3, WeightKind::small_ints(), 5), true),
        ("unit_undirected", unit_connected(30, 12, 6), true),
        ("geometric", generators::geometric(40, 0.35, 7).0, false),
        (
            "er_real_weights",
            generators::erdos_renyi(32, 0.3, WeightKind::Real { lo: 0.1, hi: 10.0 }, 8),
            false,
        ),
    ]
}

#[test]
fn every_family_times_every_eligible_solver_agrees_with_fw_seq() {
    let reg = Registry::with_all();
    let opts = SolveOpts { block: 8, ..Default::default() };
    for (family, g, integer_weights) in families() {
        let want = reg.solve("fw", &g, &opts).expect("fw is always eligible").dist;
        let mut eligible = 0;
        for name in reg.names() {
            match reg.solve(name, &g, &opts) {
                Ok(sol) => {
                    eligible += 1;
                    if integer_weights {
                        assert!(
                            sol.dist.eq_exact(&want),
                            "{family}/{name}: not bit-identical to fw_seq \
                             (max diff {})",
                            max_abs_diff(&sol.dist, &want)
                        );
                    } else {
                        let diff = max_abs_diff(&sol.dist, &want);
                        assert!(diff <= 1e-3, "{family}/{name}: max diff {diff} > 1e-3");
                    }
                }
                Err(SolveError::Ineligible { solver, reason }) => {
                    assert_eq!(solver, name, "{family}: error names the wrong solver");
                    // the refusal must be explainable, not a debug dump
                    assert!(!reason.to_string().is_empty());
                }
                Err(other) => panic!("{family}/{name}: unexpected error {other}"),
            }
        }
        // the FW family is eligible everywhere: at least fw/blocked/dc/sparse/dist
        assert!(eligible >= 5, "{family}: only {eligible} solvers eligible");
    }
}

#[test]
fn auto_is_correct_on_every_family() {
    let reg = Registry::with_all();
    let opts = SolveOpts { block: 8, ..Default::default() };
    for (family, g, _) in families() {
        let want = reg.solve("fw", &g, &opts).unwrap().dist;
        let (plan, sol) = reg.solve_auto(&g, &opts).unwrap_or_else(|e| panic!("{family}: {e}"));
        assert_eq!(Some(sol.solver), plan.chosen, "{family}");
        let diff = max_abs_diff(&sol.dist, &want);
        assert!(diff <= 1e-3, "{family}/auto={}: max diff {diff}", sol.solver);
        // the planner must never auto-pick the simulated distributed driver
        assert_ne!(sol.solver, "dist", "{family}");
    }
}

/// The quantized solver against the f32 oracle on every generator family:
/// bit-exact on integral weights, within its *own reported* `±eps` (not
/// just the requested tolerance) on real weights.
#[test]
fn quant_stays_within_its_documented_eps_on_every_family() {
    let reg = Registry::with_all();
    let opts = SolveOpts { block: 8, error_tolerance: Some(1e-3), ..Default::default() };
    for (family, g, integer_weights) in families() {
        let want = reg.solve("fw", &g, &opts).expect("fw is always eligible").dist;
        let sol = reg.solve("quant", &g, &opts).unwrap_or_else(|e| panic!("{family}: {e}"));
        let metric = |k: &str| {
            sol.stats
                .metrics
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{family}: metric {k} missing"))
        };
        let eps = metric("quant_eps");
        assert!(eps <= 1e-3, "{family}: plan eps {eps} exceeds the requested tolerance");
        if integer_weights {
            assert_eq!(metric("quant_exact"), 1.0, "{family}: integral weights must be exact");
            assert!(
                sol.dist.eq_exact(&want),
                "{family}: exact quantized solve diverged (max diff {})",
                max_abs_diff(&sol.dist, &want)
            );
        } else {
            let diff = max_abs_diff(&sol.dist, &want);
            assert!(diff as f64 <= eps + 1e-6, "{family}: max diff {diff} > documented eps {eps}");
        }
    }
}

#[test]
fn unit_family_includes_seidel_and_it_is_exact() {
    let reg = Registry::with_all();
    let opts = SolveOpts::default();
    let g = unit_connected(24, 10, 42);
    let want = reg.solve("fw", &g, &opts).unwrap().dist;
    let got = reg.solve("seidel", &g, &opts).unwrap().dist;
    assert!(got.eq_exact(&want), "seidel hop counts must equal FW on unit weights");
}
