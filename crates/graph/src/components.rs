//! Connected components and component-wise APSP.
//!
//! The paper (§2.1, §6): "On graphs with multiple components one may use
//! graph connected-components algorithm \[30\], and perform Apsp on each
//! connected component of the graph." No directed path crosses a *weak*
//! component boundary, so solving each component independently and leaving
//! `∞` across components is exact — and on a graph with `c` equal
//! components it cuts the `O(n³)` dense cost by `c²`.

use crate::graph::{Graph, GraphBuilder, INF};

/// Union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Weakly connected components: component id per vertex (ids are dense,
/// `0..count`, in order of first appearance).
pub fn weak_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    for (u, v, _) in g.edges() {
        uf.union(u as u32, v as u32);
    }
    let mut ids = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut comp = vec![0usize; n];
    for (v, c) in comp.iter_mut().enumerate() {
        let root = uf.find(v as u32) as usize;
        if ids[root] == usize::MAX {
            ids[root] = next;
            next += 1;
        }
        *c = ids[root];
    }
    (comp, next)
}

/// Vertices per component, in ascending vertex order.
pub fn component_members(comp: &[usize], count: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); count];
    for (v, &c) in comp.iter().enumerate() {
        out[c].push(v);
    }
    out
}

/// The induced subgraph on `members`, plus the local→global vertex map.
pub fn induced_subgraph(g: &Graph, members: &[usize]) -> Graph {
    let mut local_of = std::collections::HashMap::new();
    for (li, &v) in members.iter().enumerate() {
        local_of.insert(v, li);
    }
    let mut b = GraphBuilder::new(members.len());
    for &u in members {
        let (ts, ws) = g.out_edges(u);
        for (&v, &w) in ts.iter().zip(ws) {
            if let Some(&lv) = local_of.get(&(v as usize)) {
                b.add_edge(local_of[&u], lv, w);
            }
        }
    }
    b.build()
}

/// Component-wise APSP: decompose into weak components, solve each with
/// `solver` (a dense in-place APSP like blocked FW), and assemble the full
/// matrix with `∞` across components. Returns the matrix and the component
/// count.
pub fn componentwise_apsp(
    g: &Graph,
    mut solver: impl FnMut(&mut srgemm::Matrix<f32>),
) -> (srgemm::Matrix<f32>, usize) {
    let n = g.n();
    let (comp, count) = weak_components(g);
    let members = component_members(&comp, count);
    let mut out = srgemm::Matrix::filled(n, n, INF);
    for i in 0..n {
        out[(i, i)] = 0.0;
    }
    for m in &members {
        let sub = induced_subgraph(g, m);
        let mut d = sub.to_dense();
        solver(&mut d);
        for (li, &gi) in m.iter().enumerate() {
            for (lj, &gj) in m.iter().enumerate() {
                out[(gi, gj)] = d[(li, lj)];
            }
        }
    }
    (out, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::apsp_by_dijkstra;
    use crate::generators::{self, WeightKind};

    #[test]
    fn single_component_is_one_blob() {
        let g = generators::uniform_dense(12, WeightKind::small_ints(), 1);
        let (comp, count) = weak_components(&g);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == 0));
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = crate::graph::GraphBuilder::new(5).build();
        let (comp, count) = weak_components(&g);
        assert_eq!(count, 5);
        assert_eq!(comp, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn directed_edges_still_merge_weakly() {
        let mut b = crate::graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).add_edge(2, 1, 1.0); // 0→1←2 weakly joined
        let (comp, count) = weak_components(&b.build());
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[0]);
    }

    #[test]
    fn componentwise_apsp_matches_global_solve() {
        let g = generators::multi_component(30, 3, WeightKind::small_ints(), 9);
        let want = apsp_by_dijkstra(&g);
        let (got, count) = componentwise_apsp(&g, |d| {
            srgemm::closure::fw_closure::<srgemm::MinPlusF32>(&mut d.view_mut());
        });
        assert_eq!(count, 3);
        assert!(want.eq_exact(&got));
    }

    #[test]
    fn induced_subgraph_preserves_weights() {
        let g = generators::multi_component(9, 3, WeightKind::small_ints(), 2);
        let (comp, count) = weak_components(&g);
        let members = component_members(&comp, count);
        for m in &members {
            let sub = induced_subgraph(&g, m);
            assert_eq!(sub.n(), m.len());
            for (li, &gu) in m.iter().enumerate() {
                for (lj, &gv) in m.iter().enumerate() {
                    assert_eq!(sub.weight(li, lj), g.weight(gu, gv));
                }
            }
        }
    }
}
