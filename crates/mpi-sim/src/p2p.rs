//! Tag-matched point-to-point mailboxes.
//!
//! Sends are buffered (never block), like MPI eager-protocol sends of the
//! message sizes the FW algorithms use between pipeline stages. Receives
//! block until a message with the requested `(context, source, tag)` key is
//! present, with a configurable timeout that converts distributed deadlocks
//! into immediate test failures instead of hangs.

use std::any::Any;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Matching key: (communicator context, source rank in that communicator, tag).
pub(crate) type MatchKey = (u64, usize, u64);

struct Envelope {
    key: MatchKey,
    bytes: usize,
    payload: Box<dyn Any + Send>,
}

/// One rank's incoming-message queue.
#[derive(Default)]
pub(crate) struct Mailbox {
    queue: Mutex<Vec<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Deposit a message (called by the *sender's* thread).
    pub(crate) fn deliver(&self, key: MatchKey, bytes: usize, payload: Box<dyn Any + Send>) {
        let mut q = self.queue.lock();
        q.push(Envelope { key, bytes, payload });
        self.cv.notify_all();
    }

    /// Blocking receive of the first message matching `key`.
    ///
    /// # Panics
    /// Panics after `timeout` (suspected deadlock) or if the payload type
    /// does not match `T` (mismatched send/recv pair — a program bug).
    pub(crate) fn recv<T: Send + 'static>(&self, key: MatchKey, timeout: Duration) -> (T, usize) {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.key == key) {
                let env = q.remove(pos);
                let bytes = env.bytes;
                let payload = env
                    .payload
                    .downcast::<T>()
                    .unwrap_or_else(|_| {
                        panic!(
                            "type mismatch on recv: ctx={} src={} tag={} expected {}",
                            key.0,
                            key.1,
                            key.2,
                            std::any::type_name::<T>()
                        )
                    });
                return (*payload, bytes);
            }
            if self.cv.wait_for(&mut q, timeout).timed_out() {
                let pending: Vec<MatchKey> = q.iter().map(|e| e.key).collect();
                panic!(
                    "recv timed out after {timeout:?} waiting for ctx={} src={} tag={}; \
                     mailbox holds {} message(s): {pending:?} — distributed deadlock?",
                    key.0,
                    key.1,
                    key.2,
                    pending.len()
                );
            }
        }
    }

    /// Non-blocking probe: is a matching message queued?
    pub(crate) fn probe(&self, key: MatchKey) -> bool {
        self.queue.lock().iter().any(|e| e.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delivers_in_fifo_order_per_key() {
        let mb = Mailbox::new();
        let key = (0, 1, 7);
        mb.deliver(key, 4, Box::new(10u32));
        mb.deliver(key, 4, Box::new(20u32));
        let (a, _) = mb.recv::<u32>(key, Duration::from_secs(1));
        let (b, _) = mb.recv::<u32>(key, Duration::from_secs(1));
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn matches_only_requested_key() {
        let mb = Mailbox::new();
        mb.deliver((0, 2, 1), 4, Box::new(99u32));
        mb.deliver((0, 1, 1), 4, Box::new(42u32));
        let (got, _) = mb.recv::<u32>((0, 1, 1), Duration::from_secs(1));
        assert_eq!(got, 42);
        assert!(mb.probe((0, 2, 1)));
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || mb2.recv::<u64>((1, 0, 0), Duration::from_secs(5)).0);
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver((1, 0, 0), 8, Box::new(7u64));
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn recv_times_out_on_deadlock() {
        let mb = Mailbox::new();
        let _ = mb.recv::<u32>((0, 0, 0), Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mb = Mailbox::new();
        mb.deliver((0, 0, 0), 4, Box::new(1u32));
        let _ = mb.recv::<f32>((0, 0, 0), Duration::from_secs(1));
    }
}
