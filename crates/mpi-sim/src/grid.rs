//! 2-D process grids and block-cyclic ownership (paper §2.5.1).

use crate::comm::Comm;
use crate::error::CommError;

/// A `P_r × P_c` process grid layered over a communicator, with row and
/// column sub-communicators. Grid coordinates are row-major:
/// `rank = r · P_c + c`.
pub struct ProcessGrid {
    /// The full grid communicator.
    pub grid: Comm,
    /// This rank's row communicator (all ranks sharing `my_row`), ordered by
    /// column.
    pub row: Comm,
    /// This rank's column communicator, ordered by row.
    pub col: Comm,
    pr: usize,
    pc: usize,
}

impl ProcessGrid {
    /// Build the grid collectively. Every member of `comm` must call this
    /// with the same `(pr, pc)`. Fails if either underlying `split` fails
    /// (peer failure or split timeout).
    ///
    /// # Panics
    /// Panics if `pr · pc != comm.size()`.
    pub fn new(comm: Comm, pr: usize, pc: usize) -> Result<Self, CommError> {
        assert_eq!(pr * pc, comm.size(), "grid dims must cover the communicator");
        let my_r = comm.rank() / pc;
        let my_c = comm.rank() % pc;
        let row = comm.split(my_r as u64, my_c as u64)?;
        let col = comm.split((pr as u64) + my_c as u64, my_r as u64)?;
        Ok(ProcessGrid { grid: comm, row, col, pr, pc })
    }

    /// `(P_r, P_c)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.pr, self.pc)
    }

    /// This rank's `(row, col)` coordinates.
    pub fn coords(&self) -> (usize, usize) {
        (self.grid.rank() / self.pc, self.grid.rank() % self.pc)
    }

    /// Grid rank of coordinates `(r, c)`.
    pub fn rank_of(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.pr && c < self.pc);
        r * self.pc + c
    }

    /// Block-cyclic owner of block `(i, j)`: grid coordinates
    /// `(i mod P_r, j mod P_c)` (paper §2.5.1).
    pub fn block_owner(&self, i: usize, j: usize) -> usize {
        self.rank_of(i % self.pr, j % self.pc)
    }

    /// Does this rank own block `(i, j)`?
    pub fn owns_block(&self, i: usize, j: usize) -> bool {
        self.block_owner(i, j) == self.grid.rank()
    }

    /// Process-row index that owns block-row `k` (`P_r(k)` in the paper).
    pub fn prow_of(&self, k: usize) -> usize {
        k % self.pr
    }

    /// Process-column index that owns block-column `k` (`P_c(k)`).
    pub fn pcol_of(&self, k: usize) -> usize {
        k % self.pc
    }

    /// Block-rows of a `nb × nb` block matrix owned by process-row `r`:
    /// `r, r+P_r, r+2P_r, …`.
    pub fn my_block_rows(&self, nb: usize) -> Vec<usize> {
        let (r, _) = self.coords();
        (r..nb).step_by(self.pr).collect()
    }

    /// Block-columns owned by this rank's process-column.
    pub fn my_block_cols(&self, nb: usize) -> Vec<usize> {
        let (_, c) = self.coords();
        (c..nb).step_by(self.pc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn coordinates_and_subcomms_line_up() {
        let out = Runtime::new(6).run(|comm| {
            let g = ProcessGrid::new(comm, 2, 3).unwrap();
            let (r, c) = g.coords();
            (r, c, g.row.rank(), g.row.size(), g.col.rank(), g.col.size())
        });
        // rank 4 → (1, 1): row rank = col coord, col rank = row coord
        assert_eq!(out[4], (1, 1, 1, 3, 1, 2));
        assert_eq!(out[0], (0, 0, 0, 3, 0, 2));
        assert_eq!(out[5], (1, 2, 2, 3, 1, 2));
    }

    #[test]
    fn block_cyclic_ownership() {
        let out = Runtime::new(4).run(|comm| {
            let g = ProcessGrid::new(comm, 2, 2).unwrap();
            (g.block_owner(0, 0), g.block_owner(3, 2), g.block_owner(5, 5))
        });
        for &(a, b, c) in &out {
            assert_eq!(a, 0); // (0,0)
            assert_eq!(b, 2); // (1,0) → rank 1*2+0
            assert_eq!(c, 3); // (1,1)
        }
    }

    #[test]
    fn my_block_rows_stride_by_pr() {
        let out = Runtime::new(6).run(|comm| {
            let g = ProcessGrid::new(comm, 2, 3).unwrap();
            g.my_block_rows(7)
        });
        assert_eq!(out[0], vec![0, 2, 4, 6]); // grid row 0
        assert_eq!(out[3], vec![1, 3, 5]); // grid row 1
    }

    #[test]
    fn row_comm_exchanges_stay_in_row() {
        let out = Runtime::new(4).run(|comm| {
            let g = ProcessGrid::new(comm, 2, 2).unwrap();
            // row broadcast: column 0 member broadcasts its grid rank
            let data = (g.row.rank() == 0).then(|| g.grid.rank() as u64);
            g.row.bcast(0, data).unwrap()
        });
        assert_eq!(out, vec![0, 0, 2, 2]);
    }
}
