//! ASCII Gantt rendering of a finished [`crate::engine::Schedule`] — the
//! debugging view used when tuning the variant schedules (which task
//! blocked which resource, where the pipeline bubbles are).

use crate::engine::Schedule;
use crate::task::TaskGraph;

/// Render up to `max_resources` resource timelines as `width`-column ASCII
/// bars. Each `#` is busy time, `.` idle; the header shows the makespan.
pub fn gantt(graph: &TaskGraph, sched: &Schedule, width: usize, max_resources: usize) -> String {
    let width = width.max(10);
    let mut out = String::new();
    let span = sched.makespan.max(1e-12);
    out.push_str(&format!("makespan: {:.6e} s\n", sched.makespan));

    let nres = graph.num_resources() as usize;
    for r in 0..nres.min(max_resources) {
        let mut cols = vec!['.'; width];
        for (i, t) in graph.tasks().enumerate() {
            if t == r {
                let (s, f) = (sched.start[i], sched.finish[i]);
                let lo = ((s / span) * width as f64).floor() as usize;
                let hi = (((f / span) * width as f64).ceil() as usize).min(width);
                for c in cols.iter_mut().take(hi).skip(lo.min(width)) {
                    *c = '#';
                }
            }
        }
        let busy = sched.busy[r];
        out.push_str(&format!(
            "r{r:<3} |{}| {:5.1}%\n",
            cols.iter().collect::<String>(),
            100.0 * busy / span
        ));
    }
    if nres > max_resources {
        out.push_str(&format!("… {} more resources\n", nres - max_resources));
    }
    out
}

impl TaskGraph {
    /// Resource index of each task, in task order (for trace rendering).
    pub fn tasks(&self) -> impl Iterator<Item = usize> + '_ {
        self.tasks.iter().map(|t| t.resource.0 as usize)
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> u32 {
        self.num_resources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;

    #[test]
    fn gantt_shows_busy_and_idle() {
        let mut g = TaskGraph::new();
        let r1 = g.resource();
        let r2 = g.resource();
        let a = g.task(r1, 1.0, 0, &[]);
        g.task(r2, 1.0, 0, &[a]); // r2 idles the first half
        let s = run(&g);
        let txt = gantt(&g, &s, 20, 8);
        assert!(txt.contains("makespan"));
        assert!(txt.contains("r0"));
        assert!(txt.contains("r1"));
        // r1 is ~50% busy, r0 ~50% too (each one of two seconds)
        assert!(txt.matches('#').count() >= 20);
        assert!(txt.contains('.'));
    }

    #[test]
    fn gantt_truncates_resource_list() {
        let mut g = TaskGraph::new();
        for _ in 0..5 {
            let r = g.resource();
            g.task(r, 1.0, 0, &[]);
        }
        let s = run(&g);
        let txt = gantt(&g, &s, 10, 2);
        assert!(txt.contains("3 more resources"));
    }
}
