//! Block closure kernels — the paper's *DiagUpdate* (§2.4, §4.2).
//!
//! The diagonal update of blocked Floyd-Warshall computes the semiring
//! closure `A* = I ⊕ A ⊕ A² ⊕ …` of a single `b × b` block. Two forms:
//!
//! * [`fw_closure`] — the classic in-place k-i-j Floyd-Warshall triple loop,
//!   `O(b³)` semiring FMAs. This is the "CPU" form.
//! * [`fw_closure_squaring`] — Eq. (4) of the paper: the Neumann-series form
//!   `(I ⊕ A)^(2^t)` computed by `⌈log₂ b⌉` repeated squarings, each a dense
//!   SRGEMM. Asymptotically `O(b³ log b)`, but every flop is a GEMM flop —
//!   which is why the paper runs it on the GPU. We reproduce it so the
//!   ablation (`closure_kernels` bench) can compare both.
//!
//! Requires an idempotent ⊕ (min/max-style semirings); the squaring form also
//! assumes no negative cycles, same as Floyd-Warshall itself.

use crate::gemm::{gemm_blocked, gemm_parallel};
use crate::matrix::{Matrix, ViewMut};
use crate::semiring::Semiring;

/// In-place Floyd-Warshall closure of a square block: after the call,
/// `a[i][j]` is the shortest `i → j` distance using only intermediate
/// vertices local to the block. The diagonal is first ⊕-ed with `1̄`
/// (distance 0 to self), matching `Dist[i,i] = 0` initialization.
///
/// # Panics
/// Panics if the view is not square.
pub fn fw_closure<S: Semiring>(a: &mut ViewMut<'_, S::Elem>) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "fw_closure requires a square block");
    for i in 0..n {
        let d = S::add(a.at(i, i), S::one());
        a.set(i, i, d);
    }
    for k in 0..n {
        for i in 0..n {
            let a_ik = a.at(i, k);
            let (k_row, i_row_mut): (Vec<S::Elem>, &mut [S::Elem]) = {
                // copy row k (it may alias row i when i == k)
                (a.row(k).to_vec(), a.row_mut(i))
            };
            for (j, &a_kj) in k_row.iter().enumerate() {
                i_row_mut[j] = S::fma(i_row_mut[j], a_ik, a_kj);
            }
        }
    }
}

/// Closure by repeated squaring (paper Eq. 4): `B ← I ⊕ A`, then
/// `B ← B ⊗ B` for `⌈log₂ n⌉` rounds. Returns nothing; `a` is replaced by
/// its closure. `parallel` selects the rayon GEMM (the "GPU" path) or the
/// serial blocked GEMM.
pub fn fw_closure_squaring<S: Semiring>(a: &mut ViewMut<'_, S::Elem>, parallel: bool) {
    assert!(
        S::IDEMPOTENT_ADD,
        "closure-by-squaring needs an idempotent ⊕ ({} is not)",
        S::NAME
    );
    let n = a.rows();
    assert_eq!(n, a.cols(), "closure requires a square block");
    if n == 0 {
        return;
    }
    for i in 0..n {
        let d = S::add(a.at(i, i), S::one());
        a.set(i, i, d);
    }
    let rounds = usize::BITS - (n - 1).leading_zeros(); // ⌈log₂ n⌉
    let mut cur = a.to_matrix();
    for _ in 0..rounds.max(1) {
        let mut next = Matrix::filled(n, n, S::zero());
        if parallel {
            gemm_parallel::<S>(&mut next.view_mut(), &cur.view(), &cur.view());
        } else {
            gemm_blocked::<S>(&mut next.view_mut(), &cur.view(), &cur.view());
        }
        cur = next;
    }
    a.copy_from(&cur.view());
}

/// Number of GEMM flops the squaring form spends on a `b × b` block —
/// `⌈log₂ b⌉ · 2b³`. Used by the cost models and the `closure_kernels` bench.
pub fn closure_squaring_flops(b: usize) -> f64 {
    if b <= 1 {
        return 2.0 * (b as f64).powi(3);
    }
    let rounds = (usize::BITS - (b - 1).leading_zeros()) as f64;
    rounds * 2.0 * (b as f64).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolOr, MinPlus};

    type MP = MinPlus<f64>;

    fn lcg_dist(n: usize, seed: u64, density_mod: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(11);
        Matrix::from_fn(n, n, |i, j| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if i == j {
                0.0
            } else if (state >> 33).is_multiple_of(density_mod) {
                ((state >> 13) % 100) as f64 + 1.0
            } else {
                f64::INFINITY
            }
        })
    }

    #[test]
    fn closure_of_line_graph() {
        // 0 -1-> 1 -1-> 2: dist(0,2) must become 2.
        let inf = f64::INFINITY;
        let mut a = Matrix::from_rows(&[&[0.0, 1.0, inf], &[inf, 0.0, 1.0], &[inf, inf, 0.0]]);
        fw_closure::<MP>(&mut a.view_mut());
        assert_eq!(a[(0, 2)], 2.0);
        assert_eq!(a[(2, 0)], inf);
        assert_eq!(a[(1, 1)], 0.0);
    }

    #[test]
    fn closure_finds_shortcut() {
        let inf = f64::INFINITY;
        // direct 0->1 is 10, via 2 it's 3.
        let mut a = Matrix::from_rows(&[
            &[0.0, 10.0, 1.0],
            &[inf, 0.0, inf],
            &[inf, 2.0, 0.0],
        ]);
        fw_closure::<MP>(&mut a.view_mut());
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    fn squaring_matches_fw_closure_dense() {
        for n in [1usize, 2, 3, 5, 8, 17, 32] {
            let base = lcg_dist(n, n as u64, 2);
            let mut by_fw = base.clone();
            let mut by_sq = base.clone();
            fw_closure::<MP>(&mut by_fw.view_mut());
            fw_closure_squaring::<MP>(&mut by_sq.view_mut(), false);
            assert!(by_fw.eq_exact(&by_sq), "n={n}");
        }
    }

    #[test]
    fn squaring_matches_fw_closure_sparse_and_parallel() {
        let base = lcg_dist(33, 7, 5);
        let mut by_fw = base.clone();
        let mut by_sq = base.clone();
        fw_closure::<MP>(&mut by_fw.view_mut());
        fw_closure_squaring::<MP>(&mut by_sq.view_mut(), true);
        assert!(by_fw.eq_exact(&by_sq));
    }

    #[test]
    fn bool_closure_is_reachability() {
        // 0 -> 1 -> 2, plus 3 isolated.
        let mut a = Matrix::from_fn(4, 4, |i, j| (i == 0 && j == 1) || (i == 1 && j == 2));
        fw_closure::<BoolOr>(&mut a.view_mut());
        assert!(a[(0, 2)]);
        assert!(a[(0, 0)]); // self-reachability via I ⊕ …
        assert!(!a[(0, 3)]);
        assert!(!a[(3, 0)]);
    }

    #[test]
    fn closure_is_idempotent() {
        let mut a = lcg_dist(16, 99, 3);
        fw_closure::<MP>(&mut a.view_mut());
        let once = a.clone();
        fw_closure::<MP>(&mut a.view_mut());
        assert!(a.eq_exact(&once));
    }

    #[test]
    fn closure_on_subview_leaves_parent_rest() {
        let inf = f64::INFINITY;
        let mut parent = Matrix::filled(5, 5, 42.0);
        {
            let mut blk = parent.subview_mut(1, 1, 3, 3);
            blk.fill(inf);
            blk.set(0, 0, 0.0);
            blk.set(1, 1, 0.0);
            blk.set(2, 2, 0.0);
            blk.set(0, 1, 1.0);
            blk.set(1, 2, 1.0);
            fw_closure::<MP>(&mut blk);
        }
        assert_eq!(parent[(1, 3)], 2.0); // (0,2) of the block
        assert_eq!(parent[(0, 0)], 42.0); // outside untouched
        assert_eq!(parent[(4, 4)], 42.0);
    }

    #[test]
    fn squaring_flop_model() {
        assert_eq!(closure_squaring_flops(1), 2.0);
        // b=8: 3 rounds of 2·8³
        assert_eq!(closure_squaring_flops(8), 3.0 * 2.0 * 512.0);
        // b=9: 4 rounds
        assert_eq!(closure_squaring_flops(9), 4.0 * 2.0 * 729.0);
    }
}
