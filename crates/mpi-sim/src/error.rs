//! Typed communication errors — the fail-fast fault model.
//!
//! Every way a rank can fail to communicate is a variant of [`CommError`]
//! instead of a panic, so distributed algorithms can propagate failure as a
//! value (`Result` all the way up to the CLI's exit code) and blocked peers
//! can be woken *immediately* when another rank dies, rather than burning
//! the full receive timeout. The structured deadlock report that used to be
//! a panic string lives on as [`DeadlockReport`].

use std::fmt;
use std::time::Duration;

use crate::p2p::MatchKey;

/// Everything known about a receive that gave up waiting: who blocked, on
/// whom, on which communicator/tag, in which trace phase, and what *did*
/// arrive while the expected message never did.
#[derive(Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The timeout that expired.
    pub timeout: Duration,
    /// Blocked rank, relative to its communicator.
    pub rank: usize,
    /// Blocked rank's world rank.
    pub world_rank: usize,
    /// The peer the blocked rank was waiting on (communicator rank).
    pub src: usize,
    /// The peer's world rank (`usize::MAX` if out of range).
    pub src_world: usize,
    /// Communicator context id.
    pub ctx: u64,
    /// The tag waited on (internal collective bit stripped).
    pub tag: u64,
    /// Innermost open trace phase at the time of the timeout.
    pub phase: Option<&'static str>,
    /// Match keys of every unrelated message pending in the mailbox.
    pub pending: Vec<MatchKey>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recv timed out after {:?}: rank {} (world {}) blocked waiting for a message \
             from rank {} (world {}) on ctx={} tag={} during phase {}; mailbox holds {} \
             unrelated message(s): {:?} — distributed deadlock?",
            self.timeout,
            self.rank,
            self.world_rank,
            self.src,
            self.src_world,
            self.ctx,
            self.tag,
            self.phase.unwrap_or("(none)"),
            self.pending.len(),
            self.pending,
        )
    }
}

impl fmt::Debug for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A typed, fail-fast communication failure.
///
/// `Debug` delegates to `Display` so `.unwrap()` in tests panics with the
/// human-readable report rather than a struct dump.
#[derive(Clone, PartialEq, Eq)]
pub enum CommError {
    /// A receive expired without its message arriving — the structured
    /// distributed-deadlock report.
    RecvTimeout(Box<DeadlockReport>),
    /// Another rank failed (returned an error or panicked) and the runtime
    /// poisoned every mailbox; this rank was woken instead of timing out.
    PeerFailed {
        /// World rank of the first rank that failed.
        rank: usize,
    },
    /// Not every member of the communicator reached a `split` call before
    /// the timeout.
    SplitTimeout {
        /// Context id of the parent communicator.
        ctx: u64,
        /// Collective-operation sequence number of the split.
        op: u64,
        /// How many ranks had arrived when the timeout expired.
        arrived: usize,
        /// How many were expected (the parent communicator's size).
        expected: usize,
    },
    /// A message arrived on the right `(ctx, src, tag)` but its payload was
    /// a different Rust type than the receiver asked for — a mismatched
    /// send/recv pair (a program bug, not a deadlock).
    PayloadTypeMismatch {
        /// Context id.
        ctx: u64,
        /// Source rank within the communicator.
        src: usize,
        /// Tag (internal collective bit stripped).
        tag: u64,
        /// The type the receiver expected.
        expected: &'static str,
    },
    /// This rank was killed by the fault-injection plan (see
    /// [`crate::FaultPlan`]) before one of its sends.
    Killed {
        /// World rank of the killed rank (this rank).
        rank: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RecvTimeout(report) => fmt::Display::fmt(report, f),
            CommError::PeerFailed { rank } => write!(
                f,
                "peer failure: world rank {rank} failed first; the runtime poisoned all \
                 mailboxes so this rank fails fast instead of waiting out its recv timeout"
            ),
            CommError::SplitTimeout { ctx, op, arrived, expected } => write!(
                f,
                "split timed out: not all ranks reached the split call \
                 (ctx={ctx} op={op}: {arrived}/{expected} arrived) — distributed deadlock?"
            ),
            CommError::PayloadTypeMismatch { ctx, src, tag, expected } => write!(
                f,
                "type mismatch on recv: ctx={ctx} src={src} tag={tag} expected {expected}"
            ),
            CommError::Killed { rank } => {
                write!(f, "fault injection killed rank {rank} before a send")
            }
        }
    }
}

impl fmt::Debug for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_report_display_matches_legacy_panic_wording() {
        let r = DeadlockReport {
            timeout: Duration::from_millis(30),
            rank: 1,
            world_rank: 1,
            src: 0,
            src_world: 0,
            ctx: 0,
            tag: 42,
            phase: Some("OuterUpdate"),
            pending: vec![],
        };
        let msg = CommError::RecvTimeout(Box::new(r)).to_string();
        assert!(msg.contains("recv timed out after 30ms"), "{msg}");
        assert!(msg.contains("rank 1 (world 1)"), "{msg}");
        assert!(msg.contains("from rank 0 (world 0)"), "{msg}");
        assert!(msg.contains("tag=42"), "{msg}");
        assert!(msg.contains("during phase OuterUpdate"), "{msg}");
        assert!(msg.contains("distributed deadlock"), "{msg}");
    }

    #[test]
    fn debug_is_display() {
        let e = CommError::PeerFailed { rank: 3 };
        assert_eq!(format!("{e:?}"), e.to_string());
    }
}
