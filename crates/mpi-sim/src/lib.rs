#![warn(missing_docs)]

//! # mpi-sim — an event-driven message-passing runtime
//!
//! Stand-in for MPI (the paper runs IBM Spectrum MPI on Summit): every rank
//! is a cooperatively-scheduled task multiplexed over a bounded worker pool
//! (see [`exec`]), point-to-point messages are tag-matched through per-rank
//! mailboxes, and collectives (binomial-tree broadcast, **pipelined ring
//! broadcast**, barriers, gathers) are built on top of p2p exactly as MPI
//! implementations build theirs. A rank that blocks parks its task and
//! yields its worker slot, so one development box can simulate the paper's
//! 1024+ rank configurations — concurrency is bounded by the pool size
//! ([`Runtime::with_workers`]), not by the rank count.
//!
//! Two features matter for reproducing the paper:
//!
//! * **Ring broadcast (§3.3)** — [`collectives`] implements both the
//!   latency-optimal binomial tree (the "library broadcast") and the
//!   bandwidth-optimal pipelined ring used for `PanelBcast`.
//! * **Traffic accounting (§3.4, §5.1.3)** — a [`placement::Placement`]
//!   assigns ranks to *nodes*; [`counters`] splits every byte sent into
//!   intra-node and inter-node (NIC) traffic, so the communication-volume
//!   lower bound `t_w · (n²·Q_r/P_r + n²·Q_c/P_c)` can be *measured* on real
//!   runs instead of asserted.
//!
//! Failure is fail-fast and typed: receives and collectives return
//! [`error::CommError`] (structured deadlock reports, peer-failure
//! notifications) instead of panicking, [`Runtime::try_run`] reports
//! per-rank outcomes as a [`runtime::RunError`], and the moment one rank
//! fails every blocked peer is woken by mailbox poisoning. A deterministic
//! [`fault::FaultPlan`] can kill a rank or drop/delay one message to
//! exercise exactly those paths.
//!
//! ## Example
//!
//! ```
//! use mpi_sim::Runtime;
//!
//! // 4 ranks: everybody learns rank 0's payload via binomial broadcast.
//! let results = Runtime::new(4).run(|comm| {
//!     let data = if comm.rank() == 0 { Some(vec![1.0f32, 2.0, 3.0]) } else { None };
//!     comm.bcast(0, data).unwrap()
//! });
//! assert!(results.iter().all(|v| v == &[1.0, 2.0, 3.0]));
//! ```

pub mod collectives;
pub mod comm;
pub mod counters;
pub mod error;
pub mod exec;
pub mod fault;
pub mod grid;
pub mod p2p;
pub mod payload;
pub mod placement;
pub mod runtime;
pub mod trace;

pub use comm::{Comm, PhaseGuard};
pub use counters::{PhaseTraffic, TrafficReport};
pub use error::{CommError, DeadlockReport};
pub use exec::ExecStats;
pub use fault::{FaultAction, FaultPlan};
pub use grid::ProcessGrid;
pub use p2p::MatchKey;
pub use payload::Payload;
pub use placement::Placement;
pub use runtime::{FailureKind, RankFailure, RunError, Runtime};
pub use trace::{MsgEvent, RankTimeline, RunTrace, Span, PHASES};
