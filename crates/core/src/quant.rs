//! Quantized-integer APSP: scale-and-round a weighted [`Graph`] into `u16`
//! or `i32` weights, run blocked FW over the saturating integer min-plus
//! semirings ([`MinPlusSatU16`] / [`MinPlusSatI32`]), and dequantize back to
//! `f32` with a provable error bound.
//!
//! Why bother: the packed SRGEMM kernel is lane-bound, and `u16` doubles
//! (vs `f32`) the elements per SIMD register — 32 lanes per AVX-512
//! register instead of 16 — so a quantized solve trades a bounded, explicit
//! amount of precision for roughly twice the dense-FW throughput. This is
//! the CPU analogue of the low-precision tensor-core SRGEMM variants of the
//! paper's GPU engine.
//!
//! ## Contract
//!
//! Quantization maps weight `w` to `round(w · scale)` with a power-of-two
//! `scale ≥ 1`. The integer semiring's `zero()` is the type's `MAX`
//! sentinel (= "no edge" = `+∞`); saturating `⊗` guarantees sums through
//! the sentinel stick at the sentinel. The plan ([`plan`]) proves, before
//! any work happens, that no *finite* path can reach the sentinel:
//!
//! > `hops · round(max_weight · scale) ≤ sentinel − 1`, `hops = n − 1`.
//!
//! Every shortest path in a non-negative graph is simple (≤ `n − 1` edges),
//! so under that precondition the solve is *exact over the quantized
//! weights*: saturation only ever caps dominated path sums, never a
//! minimum. The remaining error is pure rounding — each edge contributes at
//! most `0.5 / scale`, so the dequantized distance `d̂` satisfies
//!
//! > `|d̂ − d*| ≤ eps = hops · 0.5 / scale`
//!
//! (see DESIGN.md §16 for the derivation). When every weight is a whole
//! number and `hops · max_weight < 2²⁴` (so the `f32` dequantization is
//! itself exact), rounding vanishes and the solve is bit-exact: `eps = 0`.
//!
//! Graphs that cannot meet the precondition even in `i32` at `scale = 1`
//! are rejected up front with the typed [`QuantError::Overflow`]; requested
//! tolerances the achievable `eps` cannot meet are
//! [`QuantError::Tolerance`]. Negative weights are outside the saturating
//! semiring's domain (the annihilator law breaks) and are typed
//! [`QuantError::NegativeWeights`].

use apsp_graph::Graph;
use srgemm::{Matrix, MinPlusSatI32, MinPlusSatU16};

use crate::fw_blocked::{fw_blocked, DiagMethod};

/// Distances below this stay exactly representable in `f32`, so an
/// integral-weight quantization round-trips bit-exactly.
const F32_EXACT_LIMIT: f64 = (1u64 << 24) as f64;

/// Largest power-of-two exponent [`plan`] will consider for the scale.
/// `2⁴⁰` already pushes `eps` below `1e-9` for any graph small enough to
/// solve densely; beyond that `w · scale` risks `f64` rounding in the
/// overflow proof itself.
const MAX_SCALE_EXP: i32 = 40;

/// Integer element type a quantized solve runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantDtype {
    /// 16-bit unsigned lanes — 32 per AVX-512 register, the fast path.
    U16,
    /// 32-bit signed lanes — same width as `f32`, but ~30× the headroom
    /// of `u16` before the sentinel.
    I32,
}

impl QuantDtype {
    /// Type name as printed in notes and errors.
    pub fn name(self) -> &'static str {
        match self {
            QuantDtype::U16 => "u16",
            QuantDtype::I32 => "i32",
        }
    }

    /// The `+∞` sentinel (the semiring's `zero()`), as a `u64`.
    pub fn sentinel(self) -> u64 {
        match self {
            QuantDtype::U16 => u16::MAX as u64,
            QuantDtype::I32 => i32::MAX as u64,
        }
    }

    /// Bytes per element (the SIMD lane width driver).
    pub fn bytes(self) -> usize {
        match self {
            QuantDtype::U16 => 2,
            QuantDtype::I32 => 4,
        }
    }
}

/// A proven-safe quantization: dtype, scale, and the error bound the
/// dequantized distances are guaranteed to satisfy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantPlan {
    /// Integer element type the solve will run in.
    pub dtype: QuantDtype,
    /// Power-of-two weight multiplier (`≥ 1`).
    pub scale: f64,
    /// Worst-case `|dequantized − true|` over all finite distances;
    /// `0.0` when the solve is provably bit-exact.
    pub eps: f64,
    /// Whether the solve is provably bit-exact (integral weights,
    /// `f32`-representable distances).
    pub exact: bool,
    /// Maximum edges on a simple path (`max(n − 1, 1)`), the factor in
    /// both the overflow proof and the error bound.
    pub hops: u64,
}

/// Why a graph cannot be quantized (all variants are decided *before* any
/// quantization work happens).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuantError {
    /// Saturating integer min-plus is only a semiring on non-negative
    /// values (`MAX.saturating_add(-5) ≠ MAX` breaks the annihilator).
    NegativeWeights {
        /// The most negative weight seen.
        min: f32,
    },
    /// `hops × max_weight` cannot fit below the `i32` sentinel even at
    /// `scale = 1`: a finite shortest path could saturate, which would
    /// silently turn a reachable pair into `+∞`.
    Overflow {
        /// `n − 1`, the simple-path hop bound.
        hops: u64,
        /// Largest edge weight in the graph.
        max_weight: f32,
        /// The `i32` sentinel the product must stay below.
        sentinel: u64,
    },
    /// The best achievable error bound still exceeds the requested
    /// `--error-tolerance`.
    Tolerance {
        /// Smallest `eps` any fitting (dtype, scale) pair achieves.
        eps: f64,
        /// What the caller asked for.
        tolerance: f64,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::NegativeWeights { min } => {
                write!(f, "quantization requires non-negative weights (min {min})")
            }
            QuantError::Overflow { hops, max_weight, sentinel } => write!(
                f,
                "quantization overflow: {hops} hops x max weight {max_weight} cannot fit \
                 below the i32 sentinel {sentinel} at any scale >= 1"
            ),
            QuantError::Tolerance { eps, tolerance } => write!(
                f,
                "achievable quantization error +-{eps:.3e} exceeds the requested \
                 tolerance {tolerance:.3e}"
            ),
        }
    }
}

impl std::error::Error for QuantError {}

/// Does `scale` keep every finite simple-path sum strictly below
/// `sentinel` (so saturation can never cap a minimum)?
fn fits(hops: u64, max_weight: f64, scale: f64, sentinel: u64) -> bool {
    let q_max = (max_weight * scale).round();
    q_max.is_finite() && hops as f64 * q_max <= (sentinel - 1) as f64
}

/// Pick a dtype and power-of-two scale for a graph with the given shape,
/// proving the overflow precondition and the `eps` bound up front.
///
/// `integral` asserts every weight is a whole number (the profile's
/// one-pass sweep computes it); it unlocks the bit-exact `scale = 1` path.
/// `tolerance` is the largest acceptable `eps` — pass `f64::INFINITY` to
/// ask "what is the best you can do", e.g. to report an achievable bound.
///
/// Preference order: exact `u16`, exact `i32`, then the narrowest dtype
/// whose best (largest) fitting scale meets the tolerance — `u16` halves
/// the solve time, so it wins whenever its headroom suffices.
pub fn plan(
    n: usize,
    min_weight: f32,
    max_weight: f32,
    integral: bool,
    tolerance: f64,
) -> Result<QuantPlan, QuantError> {
    if min_weight < 0.0 {
        return Err(QuantError::NegativeWeights { min: min_weight });
    }
    let hops = (n.saturating_sub(1)).max(1) as u64;
    let w_max = max_weight.max(0.0) as f64;

    // Bit-exact path: integral weights at scale 1 round-trip exactly as
    // long as no finite distance leaves f32's integer-exact range.
    if integral && (hops as f64) * w_max < F32_EXACT_LIMIT {
        for dtype in [QuantDtype::U16, QuantDtype::I32] {
            if fits(hops, w_max, 1.0, dtype.sentinel()) {
                return Ok(QuantPlan { dtype, scale: 1.0, eps: 0.0, exact: true, hops });
            }
        }
        return Err(QuantError::Overflow {
            hops,
            max_weight,
            sentinel: QuantDtype::I32.sentinel(),
        });
    }

    // Rounding path: per dtype, the largest power-of-two scale that still
    // fits gives the smallest achievable eps = hops / (2 * scale).
    let best_scale = |dtype: QuantDtype| -> Option<f64> {
        (0..=MAX_SCALE_EXP)
            .rev()
            .map(|e| (2.0f64).powi(e))
            .find(|&s| fits(hops, w_max, s, dtype.sentinel()))
    };
    let candidate = |dtype: QuantDtype| -> Option<QuantPlan> {
        best_scale(dtype).map(|scale| QuantPlan {
            dtype,
            scale,
            eps: hops as f64 * 0.5 / scale,
            exact: false,
            hops,
        })
    };

    let u16_plan = candidate(QuantDtype::U16);
    let i32_plan = candidate(QuantDtype::I32);
    if let Some(p) = u16_plan.filter(|p| p.eps <= tolerance) {
        return Ok(p);
    }
    if let Some(p) = i32_plan.filter(|p| p.eps <= tolerance) {
        return Ok(p);
    }
    match i32_plan.or(u16_plan) {
        Some(best) => Err(QuantError::Tolerance { eps: best.eps, tolerance }),
        None => Err(QuantError::Overflow {
            hops,
            max_weight,
            sentinel: QuantDtype::I32.sentinel(),
        }),
    }
}

/// [`plan`] with the shape features read off a graph directly (one `O(m)`
/// sweep); the solver layer passes its [`GraphProfile`] fields instead.
///
/// [`GraphProfile`]: crate::solver::GraphProfile
pub fn plan_for_graph(g: &Graph, tolerance: f64) -> Result<QuantPlan, QuantError> {
    let mut min_w = 0.0f32;
    let mut max_w = 0.0f32;
    let mut integral = true;
    for (_, _, w) in g.edges() {
        min_w = min_w.min(w);
        max_w = max_w.max(w);
        if w.fract() != 0.0 {
            integral = false;
        }
    }
    plan(g.n(), min_w, max_w, integral, tolerance)
}

fn quantize_as<T: Copy + Ord>(
    g: &Graph,
    zero: T,
    one: T,
    mut conv: impl FnMut(f32) -> T,
) -> Matrix<T> {
    let n = g.n();
    let mut d = Matrix::filled(n, n, zero);
    for i in 0..n {
        d[(i, i)] = one;
    }
    for (u, v, w) in g.edges() {
        let q = conv(w);
        if q < d[(u, v)] {
            d[(u, v)] = q;
        }
    }
    d
}

/// Dense `u16` distance seed: `round(w · scale)` per edge, `0` diagonal,
/// `u16::MAX` sentinel elsewhere. Caller must hold a fitting [`QuantPlan`].
pub fn quantize_u16(g: &Graph, scale: f64) -> Matrix<u16> {
    quantize_as(g, u16::MAX, 0, |w| (w as f64 * scale).round() as u16)
}

/// Dense `i32` distance seed (see [`quantize_u16`]).
pub fn quantize_i32(g: &Graph, scale: f64) -> Matrix<i32> {
    quantize_as(g, i32::MAX, 0, |w| (w as f64 * scale).round() as i32)
}

/// Map solved `u16` distances back to `f32`: sentinel → `+∞`, otherwise
/// `q / scale`.
pub fn dequantize_u16(d: &Matrix<u16>, scale: f64) -> Matrix<f32> {
    Matrix::from_fn(d.rows(), d.cols(), |i, j| {
        let q = d[(i, j)];
        if q == u16::MAX {
            f32::INFINITY
        } else {
            (q as f64 / scale) as f32
        }
    })
}

/// Map solved `i32` distances back to `f32` (see [`dequantize_u16`]).
pub fn dequantize_i32(d: &Matrix<i32>, scale: f64) -> Matrix<f32> {
    Matrix::from_fn(d.rows(), d.cols(), |i, j| {
        let q = d[(i, j)];
        if q == i32::MAX {
            f32::INFINITY
        } else {
            (q as f64 / scale) as f32
        }
    })
}

/// Quantize per `plan`, run blocked FW over the matching saturating
/// semiring, and dequantize. The caller is responsible for having obtained
/// `plan` from [`plan`] / [`plan_for_graph`] on this graph — that is what
/// makes the saturation-free and `eps` guarantees hold.
pub fn solve_quantized(g: &Graph, plan: &QuantPlan, block: usize, parallel: bool) -> Matrix<f32> {
    let b = block.max(1);
    match plan.dtype {
        QuantDtype::U16 => {
            let mut d = quantize_u16(g, plan.scale);
            fw_blocked::<MinPlusSatU16>(&mut d, b, DiagMethod::FwClosure, parallel);
            dequantize_u16(&d, plan.scale)
        }
        QuantDtype::I32 => {
            let mut d = quantize_i32(g, plan.scale);
            fw_blocked::<MinPlusSatI32>(&mut d, b, DiagMethod::FwClosure, parallel);
            dequantize_i32(&d, plan.scale)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fw_seq::fw_seq;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::GraphBuilder;
    use srgemm::MinPlusF32;

    fn oracle(g: &Graph) -> Matrix<f32> {
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        d
    }

    #[test]
    fn integral_weights_plan_exactly_into_u16() {
        let p = plan(64, 1.0, 9.0, true, 0.0).unwrap();
        assert_eq!(p.dtype, QuantDtype::U16);
        assert_eq!(p.scale, 1.0);
        assert_eq!(p.eps, 0.0);
        assert!(p.exact);
        assert_eq!(p.hops, 63);
    }

    #[test]
    fn integral_weights_too_wide_for_u16_fall_back_to_i32() {
        // 1023 hops x 1000 = 1_023_000 > 65534 but well under i32::MAX
        let p = plan(1024, 1.0, 1000.0, true, 0.0).unwrap();
        assert_eq!(p.dtype, QuantDtype::I32);
        assert!(p.exact);
    }

    #[test]
    fn fractional_weights_need_a_tolerance_and_get_a_scaled_plan() {
        let p = plan(128, 0.1, 1.0, false, 1e-3).unwrap();
        assert!(!p.exact);
        assert!(p.eps <= 1e-3, "eps {}", p.eps);
        assert!(p.scale >= 1.0 && p.scale.log2().fract() == 0.0, "scale {}", p.scale);
        // the bound is hops/(2*scale)
        assert_eq!(p.eps, 127.0 * 0.5 / p.scale);
        // an impossible tolerance is a typed error carrying the best bound
        match plan(128, 0.1, 1.0, false, 0.0) {
            Err(QuantError::Tolerance { eps, tolerance }) => {
                assert!(eps > 0.0);
                assert_eq!(tolerance, 0.0);
            }
            other => panic!("expected Tolerance, got {other:?}"),
        }
    }

    #[test]
    fn overflow_and_negative_weights_are_typed_up_front() {
        // 3e9 > i32::MAX: even scale 1 cannot represent one edge
        match plan(4, 1.0, 3.0e9, true, f64::INFINITY) {
            Err(QuantError::Overflow { hops: 3, sentinel, .. }) => {
                assert_eq!(sentinel, i32::MAX as u64)
            }
            other => panic!("expected Overflow, got {other:?}"),
        }
        assert!(format!("{}", plan(4, 1.0, 3.0e9, true, 1.0).unwrap_err()).contains("overflow"));
        match plan(4, -2.5, 3.0, false, 1.0) {
            Err(QuantError::NegativeWeights { min }) => assert_eq!(min, -2.5),
            other => panic!("expected NegativeWeights, got {other:?}"),
        }
    }

    #[test]
    fn exact_solve_is_bit_identical_to_the_f32_oracle() {
        for (g, label) in [
            (generators::uniform_dense(48, WeightKind::small_ints(), 7), "dense"),
            (generators::grid(7, 9, WeightKind::small_ints(), 3), "grid"),
            (generators::multi_component(40, 3, WeightKind::small_ints(), 11), "multi"),
        ] {
            let p = plan_for_graph(&g, 0.0).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(p.exact, "{label}");
            let got = solve_quantized(&g, &p, 8, false);
            assert!(got.eq_exact(&oracle(&g)), "{label} diverged from fw_seq");
        }
    }

    #[test]
    fn fractional_solve_stays_within_the_documented_eps() {
        let g = generators::uniform_dense(40, WeightKind::Real { lo: 0.0, hi: 1.0 }, 13);
        let p = plan_for_graph(&g, 1e-3).unwrap();
        assert!(!p.exact);
        let got = solve_quantized(&g, &p, 8, false);
        let want = oracle(&g);
        for i in 0..g.n() {
            for j in 0..g.n() {
                let (a, b) = (got[(i, j)], want[(i, j)]);
                assert_eq!(a.is_finite(), b.is_finite(), "({i},{j})");
                if a.is_finite() {
                    assert!(
                        (a - b).abs() as f64 <= p.eps + 1e-6,
                        "({i},{j}): |{a} - {b}| > eps {}",
                        p.eps
                    );
                }
            }
        }
    }

    #[test]
    fn unreachable_pairs_survive_quantization_as_infinity() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2.0).add_edge(2, 3, 4.0);
        let g = b.build();
        let p = plan_for_graph(&g, 0.0).unwrap();
        let got = solve_quantized(&g, &p, 2, false);
        assert!(got.eq_exact(&oracle(&g)));
        assert_eq!(got[(0, 2)], f32::INFINITY);
        assert_eq!(got[(1, 0)], f32::INFINITY);
    }

    #[test]
    fn u16_and_i32_paths_agree_when_both_fit() {
        let g = generators::grid(6, 6, WeightKind::small_ints(), 5);
        let pu = plan_for_graph(&g, 0.0).unwrap();
        assert_eq!(pu.dtype, QuantDtype::U16);
        let pi = QuantPlan { dtype: QuantDtype::I32, ..pu };
        let du = solve_quantized(&g, &pu, 4, false);
        let di = solve_quantized(&g, &pi, 4, false);
        assert!(du.eq_exact(&di));
    }

    #[test]
    fn empty_and_trivial_graphs_do_not_panic() {
        let g = GraphBuilder::new(0).build();
        let p = plan_for_graph(&g, 0.0).unwrap();
        assert_eq!(solve_quantized(&g, &p, 4, false).rows(), 0);
        let g = GraphBuilder::new(1).build();
        let p = plan_for_graph(&g, 0.0).unwrap();
        let d = solve_quantized(&g, &p, 4, false);
        assert_eq!(d[(0, 0)], 0.0);
    }
}
