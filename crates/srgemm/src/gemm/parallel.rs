//! Rayon-parallel semiring GEMM.
//!
//! `C` is partitioned into disjoint row slabs, each slab updated by the
//! serial blocked kernel on a rayon worker. Row-slab partitioning means no
//! two workers ever touch the same element of `C`, so no synchronization is
//! needed inside the kernel — the rayon analogue of assigning threadblocks
//! to output tiles on the GPU.

use rayon::prelude::*;

use crate::gemm::blocked::gemm_blocked;
use crate::matrix::{View, ViewMut};
use crate::semiring::Semiring;

/// Minimum rows per parallel slab; below this the serial kernel is used
/// outright (spawn overhead would dominate).
const MIN_ROWS_PER_SLAB: usize = 16;

/// `C ← C ⊕ A ⊗ B`, parallel over row slabs of `C`.
pub fn gemm_parallel<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) {
    super::check_shapes(c, a, b);
    let m = c.rows();
    let threads = rayon::current_num_threads().max(1);
    let slab = (m.div_ceil(threads)).max(MIN_ROWS_PER_SLAB);
    if m <= MIN_ROWS_PER_SLAB || threads == 1 {
        gemm_blocked::<S>(c, a, b);
        return;
    }

    // Reborrow to a local lifetime, then split into disjoint slabs.
    let c_local = c.subview_mut(0, 0, m, c.cols());
    let slabs = c_local.chunk_rows_mut(slab);
    // Pair each C slab with the matching row range of A.
    let jobs: Vec<(usize, ViewMut<'_, S::Elem>)> = {
        let mut off = 0;
        slabs
            .into_iter()
            .map(|s| {
                let here = off;
                off += s.rows();
                (here, s)
            })
            .collect()
    };
    jobs.into_par_iter().for_each(|(row0, mut c_slab)| {
        let a_slab = a.subview(row0, 0, c_slab.rows(), a.cols());
        gemm_blocked::<S>(&mut c_slab, &a_slab, b);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use crate::matrix::Matrix;
    use crate::semiring::{MinPlus, RealArith};

    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 35) % 512) as f32
        })
    }

    #[test]
    fn parallel_matches_naive_minplus() {
        let (m, n, k) = (97, 63, 41);
        let a = lcg_matrix(m, k, 1);
        let b = lcg_matrix(k, n, 2);
        let mut c1 = Matrix::filled(m, n, f32::INFINITY);
        let mut c2 = c1.clone();
        gemm_naive::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_parallel::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn parallel_matches_naive_small_fallback() {
        // m below MIN_ROWS_PER_SLAB exercises the serial fallback
        let a = lcg_matrix(4, 9, 3);
        let b = lcg_matrix(9, 5, 4);
        let mut c1 = Matrix::filled(4, 5, f32::INFINITY);
        let mut c2 = c1.clone();
        gemm_naive::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_parallel::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn parallel_real_arith_exact_on_integers() {
        // integer-valued f32s: + and * are exact, so thread order is irrelevant
        let a = lcg_matrix(64, 32, 5);
        let b = lcg_matrix(32, 48, 6);
        let mut c1 = Matrix::filled(64, 48, 0.0f32);
        let mut c2 = c1.clone();
        gemm_naive::<RealArith<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_parallel::<RealArith<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
        // values can exceed f32 integer range? max 512*512*32 ≈ 8.4e6 < 2^24, exact.
        assert!(c1.eq_exact(&c2));
    }
}
