//! Tag-matched point-to-point mailboxes.
//!
//! Sends are buffered (never block), like MPI eager-protocol sends of the
//! message sizes the FW algorithms use between pipeline stages. Receives
//! block until a message with the requested `(context, source, tag)` key is
//! present, with a configurable timeout that converts distributed deadlocks
//! into immediate test failures instead of hangs.

use std::any::Any;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Matching key: (communicator context, source rank in that communicator, tag).
pub(crate) type MatchKey = (u64, usize, u64);

/// A receive gave up waiting (suspected distributed deadlock). Carries the
/// keys still queued in the mailbox so the caller's report can show what
/// *did* arrive while the expected message never did.
#[derive(Clone, Debug)]
pub(crate) struct RecvTimeout {
    /// Match keys of every message pending in the mailbox at timeout.
    pub(crate) pending: Vec<MatchKey>,
}

struct Envelope {
    key: MatchKey,
    bytes: usize,
    payload: Box<dyn Any + Send>,
}

/// One rank's incoming-message queue.
#[derive(Default)]
pub(crate) struct Mailbox {
    queue: Mutex<Vec<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Deposit a message (called by the *sender's* thread).
    pub(crate) fn deliver(&self, key: MatchKey, bytes: usize, payload: Box<dyn Any + Send>) {
        let mut q = self.queue.lock();
        q.push(Envelope { key, bytes, payload });
        self.cv.notify_all();
    }

    /// Blocking receive of the first message matching `key`. Returns
    /// [`RecvTimeout`] after `timeout` (suspected deadlock); the caller —
    /// [`crate::Comm::recv`] — turns that into a structured report naming
    /// the blocked rank, its peer and the open trace phase, which this
    /// layer cannot know.
    ///
    /// # Panics
    /// Panics if the payload type does not match `T` (mismatched send/recv
    /// pair — a program bug, not a deadlock).
    pub(crate) fn recv<T: Send + 'static>(
        &self,
        key: MatchKey,
        timeout: Duration,
    ) -> Result<(T, usize), RecvTimeout> {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.key == key) {
                let env = q.remove(pos);
                let bytes = env.bytes;
                let payload = env
                    .payload
                    .downcast::<T>()
                    .unwrap_or_else(|_| {
                        panic!(
                            "type mismatch on recv: ctx={} src={} tag={} expected {}",
                            key.0,
                            key.1,
                            key.2,
                            std::any::type_name::<T>()
                        )
                    });
                return Ok((*payload, bytes));
            }
            if self.cv.wait_for(&mut q, timeout).timed_out() {
                return Err(RecvTimeout { pending: q.iter().map(|e| e.key).collect() });
            }
        }
    }

    /// Non-blocking probe: is a matching message queued?
    pub(crate) fn probe(&self, key: MatchKey) -> bool {
        self.queue.lock().iter().any(|e| e.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delivers_in_fifo_order_per_key() {
        let mb = Mailbox::new();
        let key = (0, 1, 7);
        mb.deliver(key, 4, Box::new(10u32));
        mb.deliver(key, 4, Box::new(20u32));
        let (a, _) = mb.recv::<u32>(key, Duration::from_secs(1)).unwrap();
        let (b, _) = mb.recv::<u32>(key, Duration::from_secs(1)).unwrap();
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn matches_only_requested_key() {
        let mb = Mailbox::new();
        mb.deliver((0, 2, 1), 4, Box::new(99u32));
        mb.deliver((0, 1, 1), 4, Box::new(42u32));
        let (got, _) = mb.recv::<u32>((0, 1, 1), Duration::from_secs(1)).unwrap();
        assert_eq!(got, 42);
        assert!(mb.probe((0, 2, 1)));
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || {
            mb2.recv::<u64>((1, 0, 0), Duration::from_secs(5)).unwrap().0
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver((1, 0, 0), 8, Box::new(7u64));
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn recv_times_out_on_deadlock() {
        let mb = Mailbox::new();
        mb.deliver((0, 3, 9), 4, Box::new(1u32)); // unrelated message
        let err = mb
            .recv::<u32>((0, 0, 0), Duration::from_millis(10))
            .expect_err("nothing matching ever arrives");
        assert_eq!(err.pending, vec![(0, 3, 9)]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mb = Mailbox::new();
        mb.deliver((0, 0, 0), 4, Box::new(1u32));
        let _ = mb.recv::<f32>((0, 0, 0), Duration::from_secs(1));
    }
}
