//! The cooperative rank scheduler — the event-driven executor behind
//! [`crate::Runtime`].
//!
//! Every rank of an SPMD job is a *task*. A task owns a dedicated (cheap,
//! almost-always-parked) call stack, but its **execution** is multiplexed
//! over a small worker pool: the scheduler hands out `workers` *run slots*,
//! and only a task holding a slot makes progress. A task that blocks in
//! `recv`/`split`/`bcast`/`barrier` parks itself and releases its slot, so
//! the slot immediately goes to the next runnable rank; message delivery
//! re-enqueues the waiter. That is what lets one box simulate 1024+ ranks:
//! the cost of a blocked rank is a parked stack, not a schedulable OS
//! thread, and the number of ranks *executing* concurrently never exceeds
//! the pool size regardless of `p`.
//!
//! Timeouts are **scheduler deadlines**, not per-thread `Condvar::wait_for`
//! calls: every blocking operation registers an entry in one shared
//! deadline wheel (a min-heap ordered by expiry), and a single runtime-owned
//! timekeeper thread sleeps until the earliest expiry, waking expired tasks
//! with a timed-out verdict. Delayed fault-injected messages ride the same
//! wheel as `TimerEvent::Deliver` entries — there is no longer any
//! fire-and-forget helper thread in the communication layer, so nothing can
//! outlive the runtime scope or bypass poisoning (DESIGN.md §12).
//!
//! Scheduling states of a task:
//!
//! ```text
//! Init ──register──▶ Runnable ──slot──▶ Running ──park──▶ Blocked
//!                        ▲                 │ ▲               │
//!                        └──wake/deadline──┘ └──────slot─────┘ (→ Done)
//! ```
//!
//! Wakeups never get lost: waking a task that has not parked yet (it is
//! between its mailbox poll and its park) just sets a `notified` flag that
//! the next `park` consumes without ever giving up the slot.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::thread::Thread;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::p2p::MatchKey;

/// Why [`Scheduler::park`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wake {
    /// Something happened (delivery, poison, split completion, or a spurious
    /// neighbour event) — re-poll the condition.
    Notified,
    /// The operation's deadline expired on the scheduler wheel. The caller
    /// must do one final poll (a delivery can race the deadline) before
    /// reporting a timeout.
    TimedOut,
}

/// Executor counters of one finished run (see
/// [`crate::Runtime::try_run_with_stats`]). The invariant the scale suite
/// pins: `peak_running <= workers` no matter how large the rank count is —
/// the worker pool, not `p`, bounds concurrently-executing rank tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of rank tasks the run was configured with.
    pub ranks: usize,
    /// Run-slot count of the worker pool.
    pub workers: usize,
    /// Highest number of tasks that ever held run slots simultaneously.
    pub peak_running: usize,
    /// Total park operations (a task releasing its slot to block).
    pub parks: u64,
    /// Total wake notifications (deliveries, poisons, split completions).
    pub wakes: u64,
    /// Deadline-wheel entries that fired as timeouts.
    pub expired_deadlines: u64,
    /// Delayed (fault-injected) messages the timekeeper delivered.
    pub timer_deliveries: u64,
}

/// One entry on the deadline wheel.
pub(crate) enum TimerEvent {
    /// A blocking operation's timeout: wake `task` with a timed-out verdict
    /// if it is still parked in the same blocking operation (`gen` guards
    /// against firing into a *later* park of the same task).
    Deadline { task: usize, gen: u64 },
    /// A fault-delayed message: deliver to `dst_world`'s mailbox and wake
    /// it. Cancelled (dropped undelivered) if the run ends first — delayed
    /// delivery must never outlive the runtime scope.
    Deliver {
        /// Destination world rank.
        dst_world: usize,
        /// Mailbox match key.
        key: MatchKey,
        /// The payload itself (wire bytes were charged at send time).
        payload: Box<dyn Any + Send>,
    },
}

struct TimerEntry {
    at: Instant,
    /// Tie-breaker so the heap never compares `TimerEvent`s.
    seq: u64,
    event: TimerEvent,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    /// Spawned but not yet registered with the scheduler.
    Init,
    /// Holds a run slot and is executing.
    Running,
    /// Ready to run, waiting for a slot.
    Runnable,
    /// Parked in a blocking operation; holds no slot.
    Blocked,
    /// Finished (result recorded or failure reported).
    Done,
}

struct Task {
    state: TaskState,
    /// Handle used to unpark the task's stack when it is granted a slot.
    thread: Option<Thread>,
    /// A wake arrived while the task was not parked; the next `park`
    /// consumes it without blocking (lost-wakeup prevention).
    notified: bool,
    /// The wake that granted the slot was a deadline expiry.
    timed_out: bool,
    /// Blocking-operation generation; stale deadline entries (from an
    /// operation that already completed) are ignored by comparing this.
    gen: u64,
}

struct Inner {
    workers: usize,
    running: usize,
    runnable: VecDeque<usize>,
    tasks: Vec<Task>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    shutdown: bool,
    // stats
    peak_running: usize,
    parks: u64,
    wakes: u64,
    expired_deadlines: u64,
    timer_deliveries: u64,
}

/// The run-slot scheduler plus deadline wheel shared by all ranks of one
/// [`crate::Runtime`] execution.
pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    /// Wakes the timekeeper when the earliest wheel entry moves forward or
    /// the run shuts down.
    timer_cv: Condvar,
}

impl Scheduler {
    pub(crate) fn new(ranks: usize, workers: usize) -> Self {
        assert!(workers >= 1, "the worker pool needs at least one slot");
        Scheduler {
            inner: Mutex::new(Inner {
                workers,
                running: 0,
                runnable: VecDeque::new(),
                tasks: (0..ranks)
                    .map(|_| Task {
                        state: TaskState::Init,
                        thread: None,
                        notified: false,
                        timed_out: false,
                        gen: 0,
                    })
                    .collect(),
                timers: BinaryHeap::new(),
                timer_seq: 0,
                shutdown: false,
                peak_running: 0,
                parks: 0,
                wakes: 0,
                expired_deadlines: 0,
                timer_deliveries: 0,
            }),
            timer_cv: Condvar::new(),
        }
    }

    /// Hand out free slots to runnable tasks, FIFO.
    fn grant(inner: &mut Inner) {
        while inner.running < inner.workers {
            let Some(t) = inner.runnable.pop_front() else { break };
            let task = &mut inner.tasks[t];
            debug_assert_eq!(task.state, TaskState::Runnable);
            task.state = TaskState::Running;
            inner.running += 1;
            inner.peak_running = inner.peak_running.max(inner.running);
            if let Some(th) = &task.thread {
                th.unpark();
            }
        }
    }

    /// Called once by each rank task on its own stack before running user
    /// code; blocks until the task is granted its first run slot.
    pub(crate) fn register_current(&self, t: usize) {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.tasks[t].state, TaskState::Init);
        inner.tasks[t].thread = Some(std::thread::current());
        if inner.running < inner.workers {
            inner.tasks[t].state = TaskState::Running;
            inner.running += 1;
            inner.peak_running = inner.peak_running.max(inner.running);
            return;
        }
        inner.tasks[t].state = TaskState::Runnable;
        inner.runnable.push_back(t);
        loop {
            drop(inner);
            std::thread::park();
            inner = self.inner.lock();
            if inner.tasks[t].state == TaskState::Running {
                return;
            }
        }
    }

    /// The task is done (result or failure recorded); release its slot.
    pub(crate) fn finish(&self, t: usize) {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.tasks[t].state, TaskState::Running);
        inner.tasks[t].state = TaskState::Done;
        inner.running -= 1;
        Self::grant(&mut inner);
    }

    /// Block the calling task (which must hold a slot) until it is woken or
    /// `deadline` expires on the wheel. Releases the slot while parked and
    /// holds it again on return. A wake that raced ahead of the park (the
    /// `notified` flag) returns immediately *without* releasing the slot.
    pub(crate) fn park(&self, t: usize, deadline: Option<Instant>) -> Wake {
        let mut inner = self.inner.lock();
        inner.parks += 1;
        if inner.tasks[t].notified {
            inner.tasks[t].notified = false;
            return Wake::Notified;
        }
        debug_assert_eq!(inner.tasks[t].state, TaskState::Running);
        inner.tasks[t].gen += 1;
        let gen = inner.tasks[t].gen;
        inner.tasks[t].timed_out = false;
        inner.tasks[t].state = TaskState::Blocked;
        inner.running -= 1;
        Self::grant(&mut inner);
        if let Some(at) = deadline {
            Self::push_timer(&mut inner, &self.timer_cv, at, TimerEvent::Deadline { task: t, gen });
        }
        loop {
            drop(inner);
            std::thread::park();
            inner = self.inner.lock();
            if inner.tasks[t].state == TaskState::Running {
                let wake = if inner.tasks[t].timed_out { Wake::TimedOut } else { Wake::Notified };
                inner.tasks[t].timed_out = false;
                return wake;
            }
        }
    }

    /// Cooperatively hand the slot to the next runnable task, if any. A
    /// no-op when nobody is waiting. Lets long-polling loops (e.g. over
    /// [`crate::Comm::probe`]) coexist with a saturated pool.
    pub(crate) fn yield_now(&self, t: usize) {
        let mut inner = self.inner.lock();
        if inner.runnable.is_empty() {
            return;
        }
        debug_assert_eq!(inner.tasks[t].state, TaskState::Running);
        inner.tasks[t].state = TaskState::Runnable;
        inner.runnable.push_back(t);
        inner.running -= 1;
        Self::grant(&mut inner);
        loop {
            if inner.tasks[t].state == TaskState::Running {
                return;
            }
            drop(inner);
            std::thread::park();
            inner = self.inner.lock();
        }
    }

    /// Make `t` runnable (or remember the wake if it is not parked).
    pub(crate) fn wake(&self, t: usize) {
        let mut inner = self.inner.lock();
        Self::wake_locked(&mut inner, t);
    }

    fn wake_locked(inner: &mut Inner, t: usize) {
        inner.wakes += 1;
        match inner.tasks[t].state {
            TaskState::Blocked => {
                inner.tasks[t].notified = false;
                inner.tasks[t].state = TaskState::Runnable;
                inner.runnable.push_back(t);
                Self::grant(inner);
            }
            TaskState::Done => {}
            TaskState::Running | TaskState::Runnable | TaskState::Init => {
                inner.tasks[t].notified = true;
            }
        }
    }

    /// Wake every task — the poison fan-out after a rank failure.
    pub(crate) fn wake_all(&self) {
        let mut inner = self.inner.lock();
        for t in 0..inner.tasks.len() {
            Self::wake_locked(&mut inner, t);
        }
    }

    /// Schedule a fault-delayed message on the wheel.
    pub(crate) fn schedule_delivery(
        &self,
        at: Instant,
        dst_world: usize,
        key: MatchKey,
        payload: Box<dyn Any + Send>,
    ) {
        let mut inner = self.inner.lock();
        Self::push_timer(
            &mut inner,
            &self.timer_cv,
            at,
            TimerEvent::Deliver { dst_world, key, payload },
        );
    }

    fn push_timer(inner: &mut Inner, cv: &Condvar, at: Instant, event: TimerEvent) {
        // only prod the timekeeper when the earliest expiry moved forward —
        // at high p almost every park pushes a far-future deadline and must
        // not thundering-herd the timer thread
        let earlier = inner.timers.peek().is_none_or(|Reverse(top)| at < top.at);
        let seq = inner.timer_seq;
        inner.timer_seq += 1;
        inner.timers.push(Reverse(TimerEntry { at, seq, event }));
        if earlier {
            cv.notify_all();
        }
    }

    /// End the run: the timekeeper exits and pending wheel entries (stale
    /// deadlines, undelivered delayed messages) are dropped.
    pub(crate) fn shutdown(&self) {
        let mut inner = self.inner.lock();
        inner.shutdown = true;
        inner.timers.clear();
        self.timer_cv.notify_all();
    }

    /// Body of the runtime's timekeeper thread: sleep until the earliest
    /// wheel entry, fire expired deadlines, and hand expired
    /// [`TimerEvent::Deliver`] entries to `deliver` (which must deposit the
    /// message and wake the receiver) outside the scheduler lock.
    pub(crate) fn timekeeper_loop(&self, deliver: impl Fn(usize, MatchKey, Box<dyn Any + Send>)) {
        let mut inner = self.inner.lock();
        loop {
            if inner.shutdown {
                return;
            }
            let now = Instant::now();
            let mut deliveries = Vec::new();
            while let Some(Reverse(top)) = inner.timers.peek() {
                if top.at > now {
                    break;
                }
                let Reverse(entry) = inner.timers.pop().expect("peeked entry");
                match entry.event {
                    TimerEvent::Deadline { task, gen } => {
                        // fire only into the same blocking operation; a
                        // stale entry whose op already completed is ignored
                        if inner.tasks[task].state == TaskState::Blocked
                            && inner.tasks[task].gen == gen
                        {
                            inner.expired_deadlines += 1;
                            inner.tasks[task].timed_out = true;
                            inner.tasks[task].state = TaskState::Runnable;
                            inner.runnable.push_back(task);
                            Self::grant(&mut inner);
                        }
                    }
                    TimerEvent::Deliver { dst_world, key, payload } => {
                        inner.timer_deliveries += 1;
                        deliveries.push((dst_world, key, payload));
                    }
                }
            }
            if !deliveries.is_empty() {
                // mailbox locks are taken outside the scheduler lock, same
                // as the ordinary send path (no nested lock orders exist)
                drop(inner);
                for (dst, key, payload) in deliveries {
                    deliver(dst, key, payload);
                }
                inner = self.inner.lock();
                continue;
            }
            match inner.timers.peek() {
                None => self.timer_cv.wait(&mut inner),
                Some(Reverse(top)) => {
                    let dur = top.at.saturating_duration_since(now);
                    self.timer_cv.wait_for(&mut inner, dur);
                }
            }
        }
    }

    pub(crate) fn stats(&self) -> ExecStats {
        let inner = self.inner.lock();
        ExecStats {
            ranks: inner.tasks.len(),
            workers: inner.workers,
            peak_running: inner.peak_running,
            parks: inner.parks,
            wakes: inner.wakes,
            expired_deadlines: inner.expired_deadlines,
            timer_deliveries: inner.timer_deliveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Drive S tasks over a 1-slot pool; each parks once and is woken by
    /// its successor — execution must interleave without ever exceeding
    /// one concurrent runner.
    #[test]
    fn slots_bound_concurrency_and_wakes_chain() {
        let n = 8;
        let sched = Arc::new(Scheduler::new(n, 1));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..n {
            let sched = sched.clone();
            let in_flight = in_flight.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                sched.register_current(t);
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                in_flight.fetch_sub(1, Ordering::SeqCst);
                // wake the previous task (it may not have parked yet — the
                // notified flag absorbs that), then park once ourselves
                if t > 0 {
                    sched.wake(t - 1);
                }
                if t < n - 1 {
                    assert_eq!(sched.park(t, None), Wake::Notified);
                } else {
                    // the last task wakes everyone still parked
                    sched.wake_all();
                }
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                in_flight.fetch_sub(1, Ordering::SeqCst);
                sched.finish(t);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "1-slot pool ran two tasks at once");
        let stats = sched.stats();
        assert_eq!(stats.peak_running, 1);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn deadline_fires_through_the_wheel() {
        let sched = Arc::new(Scheduler::new(1, 1));
        let sched_tk = sched.clone();
        let tk = std::thread::spawn(move || {
            sched_tk.timekeeper_loop(|_, _, _| panic!("no deliveries scheduled"));
        });
        let sched_task = sched.clone();
        let task = std::thread::spawn(move || {
            sched_task.register_current(0);
            let w = sched_task.park(0, Some(Instant::now() + Duration::from_millis(20)));
            sched_task.finish(0);
            w
        });
        assert_eq!(task.join().unwrap(), Wake::TimedOut);
        sched.shutdown();
        tk.join().unwrap();
        assert_eq!(sched.stats().expired_deadlines, 1);
    }

    #[test]
    fn stale_deadlines_do_not_fire_into_later_ops() {
        let sched = Arc::new(Scheduler::new(1, 1));
        let sched_tk = sched.clone();
        let tk = std::thread::spawn(move || sched_tk.timekeeper_loop(|_, _, _| {}));
        let sched_task = sched.clone();
        let waker = sched.clone();
        let task = std::thread::spawn(move || {
            sched_task.register_current(0);
            // first op: short deadline, but woken normally before it expires
            let w1 = sched_task.park(0, Some(Instant::now() + Duration::from_millis(30)));
            // second op: long deadline; the first op's stale entry expires
            // during it and must NOT produce a timeout
            let w2 = sched_task.park(0, Some(Instant::now() + Duration::from_millis(200)));
            sched_task.finish(0);
            (w1, w2)
        });
        std::thread::sleep(Duration::from_millis(5));
        waker.wake(0); // completes op 1 before its deadline
        std::thread::sleep(Duration::from_millis(60)); // op-1 deadline expires, stale
        waker.wake(0); // completes op 2 normally
        let (w1, w2) = task.join().unwrap();
        assert_eq!(w1, Wake::Notified);
        assert_eq!(w2, Wake::Notified);
        sched.shutdown();
        tk.join().unwrap();
        assert_eq!(sched.stats().expired_deadlines, 0);
    }

    #[test]
    fn wake_before_park_is_not_lost() {
        let sched = Arc::new(Scheduler::new(1, 1));
        let sched_task = sched.clone();
        let task = std::thread::spawn(move || {
            sched_task.register_current(0);
            // the wake below lands while we are Running; the park must
            // consume it instead of blocking forever (no timekeeper here)
            std::thread::sleep(Duration::from_millis(30));
            let w = sched_task.park(0, None);
            sched_task.finish(0);
            w
        });
        std::thread::sleep(Duration::from_millis(5));
        sched.wake(0);
        assert_eq!(task.join().unwrap(), Wake::Notified);
    }
}
