//! Message payloads with a byte-size accounting hook.

/// A value that can travel between ranks. `size_bytes` feeds the traffic
/// counters; it should reflect the wire size an MPI implementation would
/// move (payload only — envelope overhead is modeled on the cluster-sim
/// side as the latency term).
pub trait Payload: Send + 'static {
    /// Serialized size in bytes.
    fn size_bytes(&self) -> usize;
}

impl<T: Copy + Send + 'static> Payload for Vec<T> {
    fn size_bytes(&self) -> usize {
        std::mem::size_of::<T>() * self.len()
    }
}

/// Shared buffers move by reference count — a forwarding rank in
/// [`crate::Comm::ring_bcast`] re-sends the chunk it received, and every
/// hop of the binomial tree in [`crate::Comm::bcast_shared`] passes the
/// root's allocation on, without copying the bytes. The *wire* size is
/// still the full inner payload: sharing is a host-memory optimization,
/// not a traffic one, and the counters must keep telling the truth about
/// what a real network would carry.
impl<T: Payload + Sync> Payload for std::sync::Arc<T> {
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
}

macro_rules! impl_payload_scalar {
    ($($t:ty),*) => {
        $(impl Payload for $t {
            fn size_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_payload_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, ());

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_payload_size() {
        assert_eq!(vec![0f32; 10].size_bytes(), 40);
        assert_eq!(vec![0f64; 10].size_bytes(), 80);
        assert_eq!(Vec::<u8>::new().size_bytes(), 0);
    }

    #[test]
    fn arc_vec_counts_inner_bytes() {
        assert_eq!(std::sync::Arc::new(vec![0f32; 10]).size_bytes(), 40);
        assert_eq!(std::sync::Arc::new(Vec::<u64>::new()).size_bytes(), 0);
    }

    #[test]
    fn scalar_and_tuple_sizes() {
        assert_eq!(3u32.size_bytes(), 4);
        assert_eq!((1u32, vec![0f32; 2]).size_bytes(), 12);
        assert_eq!((1u8, 2u8, vec![0u64; 1]).size_bytes(), 10);
    }
}
