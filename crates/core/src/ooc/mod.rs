//! Host-level out-of-core blocked Floyd-Warshall (§4.3–4.5, one tier down).
//!
//! The paper's `Me-ParallelFw` keeps the matrix in host RAM and streams
//! tiles through the GPU; this module replays the same three-engine
//! pipeline one level down the hierarchy — **{disk, DRAM, cores}** instead
//! of {host RAM, PCIe, device} — so graphs whose dense closure exceeds host
//! RAM still solve on one node:
//!
//! * the matrix lives in a [`TileStore`] as serialized [`PackedB`] blobs —
//!   tiles are packed into the GEMM kernel's layout **once at ingest** and
//!   the stored row tile is handed to `gemm_packed_with_b` directly, never
//!   re-packed per iteration;
//! * [`ooc_fw`] walks the blocked-FW schedule (Algorithm 2: DiagUpdate →
//!   PanelUpdate → per-tile MinPlus outer product) under an explicit
//!   host-RAM budget, caching hot packed tiles in an LRU working set and
//!   spilling dirty ones back to the store;
//! * the [`FileStore`] overlaps its slot reads (prefetch) and write-backs
//!   with the packed GEMM via a background I/O thread — the disk-tier
//!   double buffer. The matching cost term is `gpu_sim::cost`'s fourth
//!   engine `t3`, and [`gpu_sim::min_block_size_disk`] is the Eq. 5
//!   analysis that predicts the tile size where the run turns
//!   compute-bound.
//!
//! Budget semantics: `peak resident = cache + scratch tiles + in-flight
//! I/O buffers (+ every blob, for the in-memory store)` never exceeds
//! [`OocConfig::budget_bytes`]; a budget below the floor fails up front
//! with [`OocError::BudgetTooSmall`] — the same `{required, budget}` shape
//! as the device tier's `Oom {requested, available}`.

pub mod store;

use std::collections::HashMap;
use std::time::Instant;

use gpu_sim::OogConfig;
use srgemm::gemm::pack::{PackDecodeError, PackElem, PackedB};
use srgemm::gemm::{budget_threads, gemm_packed_with_b, gemm_parallel_threads_with_b, KC, NC};
use srgemm::matrix::{Matrix, View, ViewMut};
use srgemm::panel::{panel_update_left, panel_update_right};
use srgemm::prelude::fw_closure;
use srgemm::semiring::Semiring;

pub use store::{tile_blob_capacity, FileStore, MemStore, StoreError, TileStore};

/// Out-of-core driver configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OocConfig {
    /// Host-RAM ceiling for the solve (cache + scratch + I/O buffers).
    pub budget_bytes: u64,
    /// Double-buffer depth: outstanding prefetch reads and queued writes.
    pub depth: usize,
    /// Use the rayon GEMM for the outer-product updates.
    pub parallel: bool,
}

impl OocConfig {
    /// A budget-limited config with double buffering (`depth = 2`).
    pub fn with_budget(budget_bytes: u64) -> Self {
        OocConfig { budget_bytes, depth: 2, parallel: true }
    }

    /// No effective budget — for in-memory baselines.
    pub fn unbounded() -> Self {
        OocConfig { budget_bytes: u64::MAX, depth: 2, parallel: true }
    }
}

/// Typed failures of the out-of-core driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OocError {
    /// Zero tile size or buffer depth — rejected by the same validation the
    /// GPU offload tier applies to its `OogConfig` (mx/nx/streams).
    InvalidConfig {
        /// Tile side length.
        tile: usize,
        /// Double-buffer depth.
        depth: usize,
    },
    /// The budget cannot hold even the minimal working set. Mirrors the
    /// device tier's `Oom { requested, available }`: `required` is the full
    /// up-front floor (scratch + I/O reserve + two cache slots + resident
    /// store blobs), not the increment that happened to overflow.
    BudgetTooSmall {
        /// Minimum bytes the solve needs resident.
        required: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The tile store failed (I/O error, bad file, missing tile).
    Store(StoreError),
    /// A stored blob failed to decode (corruption, wrong element type).
    Decode(PackDecodeError),
}

impl std::fmt::Display for OocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OocError::InvalidConfig { tile, depth } => {
                write!(f, "invalid ooc config: tile={tile}, depth={depth} (all must be positive)")
            }
            OocError::BudgetTooSmall { required, budget } => write!(
                f,
                "memory budget too small: solve needs {required} bytes resident, budget is {budget}"
            ),
            OocError::Store(e) => write!(f, "{e}"),
            OocError::Decode(e) => write!(f, "tile blob decode failed: {e}"),
        }
    }
}

impl std::error::Error for OocError {}

impl From<StoreError> for OocError {
    fn from(e: StoreError) -> Self {
        OocError::Store(e)
    }
}

impl From<PackDecodeError> for OocError {
    fn from(e: PackDecodeError) -> Self {
        OocError::Decode(e)
    }
}

/// Counters from one out-of-core solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OocStats {
    /// Matrix dimension.
    pub n: usize,
    /// Tile side length.
    pub tile: usize,
    /// Tiles per side (`⌈n/t⌉`).
    pub tiles_per_side: usize,
    /// Whether the store was file-backed (true) or in-memory.
    pub staged: bool,
    /// Tile blobs fetched from the store.
    pub tiles_read: u64,
    /// Tile blobs spilled or flushed back.
    pub tiles_written: u64,
    /// Bytes fetched.
    pub bytes_read: u64,
    /// Bytes written back.
    pub bytes_written: u64,
    /// Peak host-RAM residency observed (cache + scratch + store buffers).
    pub peak_resident_bytes: u64,
    /// The configured budget.
    pub budget_bytes: u64,
    /// Time in GEMM / panel / closure kernels.
    pub compute_seconds: f64,
    /// Time blocked on the store (reads that missed prefetch, full queues).
    pub io_seconds: f64,
    /// End-to-end driver time.
    pub wall_seconds: f64,
}

/// Minimum [`OocConfig::budget_bytes`] a staged solve with `tile × tile`
/// blobs and `depth`-deep buffering can run under: three dense scratch
/// tiles, the bounded in-flight I/O buffers, and two cache slots (the tile
/// being updated plus the packed row tile feeding the GEMM).
pub fn staged_budget_floor<E: PackElem>(tile: usize, depth: usize) -> u64 {
    let slot = tile_blob_capacity::<E>(tile) as u64;
    let dense = (tile * tile * E::BYTES) as u64;
    // I/O reserve: `depth` prefetch buffers + `depth` queued writes + one
    // demand-read buffer in flight while the cache is at capacity.
    3 * dense + (2 * depth as u64 + 1) * slot + 2 * slot
}

/// Largest tile size (from a fixed candidate ladder, clamped to `n`) whose
/// staged working set fits `budget`. `None` if even the smallest tile
/// doesn't fit — the graph is unsolvable under that budget.
pub fn choose_tile<E: PackElem>(n: usize, budget: u64, depth: usize) -> Option<usize> {
    const LADDER: &[usize] =
        &[1024, 768, 512, 384, 256, 192, 128, 96, 64, 48, 32, 24, 16, 8];
    let n = n.max(1);
    LADDER
        .iter()
        .map(|&t| t.min(n))
        .find(|&t| staged_budget_floor::<E>(t, depth) <= budget)
}

// ---------------------------------------------------------------------------
// LRU packed-tile cache
// ---------------------------------------------------------------------------

struct CacheEntry<E> {
    pb: PackedB<E>,
    bytes: u64,
    dirty: bool,
    stamp: u64,
}

/// Budget-bounded LRU over decoded packed tiles. All sizes are the tiles'
/// serialized lengths — a faithful proxy for their heap footprint.
struct TileCache<E> {
    map: HashMap<(usize, usize), CacheEntry<E>>,
    resident: u64,
    cap: u64,
    scratch_bytes: u64,
    clock: u64,
}

impl<E: PackElem> TileCache<E> {
    fn new(cap: u64, scratch_bytes: u64) -> Self {
        TileCache { map: HashMap::new(), resident: 0, cap, scratch_bytes, clock: 0 }
    }

    fn note_peak(&self, store: &dyn TileStore, stats: &mut OocStats) {
        let total = self.resident + self.scratch_bytes + store.resident_bytes();
        stats.peak_resident_bytes = stats.peak_resident_bytes.max(total);
    }

    fn contains(&self, key: (usize, usize)) -> bool {
        self.map.contains_key(&key)
    }

    fn peek(&self, key: (usize, usize)) -> &PackedB<E> {
        &self.map[&key].pb
    }

    /// Evict least-recently-used entries (never `keep`) until `need` more
    /// bytes fit, spilling dirty tiles back to the store.
    fn make_room(
        &mut self,
        store: &mut dyn TileStore,
        stats: &mut OocStats,
        need: u64,
        keep: Option<(usize, usize)>,
    ) -> Result<(), OocError> {
        while self.resident + need > self.cap {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| Some(**k) != keep)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let Some(victim) = victim else {
                // Nothing evictable and still over: the floor check should
                // make this unreachable, but report it honestly if not.
                return Err(OocError::BudgetTooSmall {
                    required: self.resident + need + self.scratch_bytes,
                    budget: self.cap + self.scratch_bytes,
                });
            };
            let entry = self.map.remove(&victim).expect("victim exists");
            self.resident -= entry.bytes;
            if entry.dirty {
                let blob = entry.pb.to_bytes();
                stats.tiles_written += 1;
                stats.bytes_written += blob.len() as u64;
                let t0 = Instant::now();
                store.write(victim.0, victim.1, blob)?;
                stats.io_seconds += t0.elapsed().as_secs_f64();
            }
        }
        Ok(())
    }

    /// Make `key` resident, loading and decoding its blob on a miss.
    fn ensure(
        &mut self,
        store: &mut dyn TileStore,
        stats: &mut OocStats,
        key: (usize, usize),
    ) -> Result<(), OocError> {
        self.clock += 1;
        if let Some(e) = self.map.get_mut(&key) {
            e.stamp = self.clock;
            return Ok(());
        }
        let t0 = Instant::now();
        let blob = store.read(key.0, key.1)?;
        stats.io_seconds += t0.elapsed().as_secs_f64();
        stats.tiles_read += 1;
        stats.bytes_read += blob.len() as u64;
        let pb = PackedB::<E>::from_bytes(&blob)?;
        let bytes = blob.len() as u64;
        self.make_room(store, stats, bytes, None)?;
        self.resident += bytes;
        self.map
            .insert(key, CacheEntry { pb, bytes, dirty: false, stamp: self.clock });
        self.note_peak(store, stats);
        Ok(())
    }

    /// Replace `key`'s contents by repacking `src`, marking it dirty.
    fn put_dense<S: Semiring<Elem = E>>(
        &mut self,
        store: &mut dyn TileStore,
        stats: &mut OocStats,
        key: (usize, usize),
        src: &View<'_, E>,
    ) -> Result<(), OocError> {
        self.clock += 1;
        if let Some(e) = self.map.get_mut(&key) {
            e.pb.repack::<S>(src);
            e.dirty = true;
            e.stamp = self.clock;
            return Ok(());
        }
        let bytes = PackedB::<E>::serialized_len(src.rows(), src.cols(), KC, NC) as u64;
        self.make_room(store, stats, bytes, None)?;
        let pb = PackedB::pack::<S>(src);
        self.resident += bytes;
        self.map
            .insert(key, CacheEntry { pb, bytes, dirty: true, stamp: self.clock });
        self.note_peak(store, stats);
        Ok(())
    }

    /// Spill every dirty tile and drop the cache contents.
    fn flush(
        &mut self,
        store: &mut dyn TileStore,
        stats: &mut OocStats,
    ) -> Result<(), OocError> {
        let mut keys: Vec<_> = self.map.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let entry = self.map.remove(&key).expect("key exists");
            self.resident -= entry.bytes;
            if entry.dirty {
                let blob = entry.pb.to_bytes();
                stats.tiles_written += 1;
                stats.bytes_written += blob.len() as u64;
                let t0 = Instant::now();
                store.write(key.0, key.1, blob)?;
                stats.io_seconds += t0.elapsed().as_secs_f64();
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Ingest / export
// ---------------------------------------------------------------------------

/// Pack `d` tile by tile into `store` — the one and only packing pass.
///
/// # Panics
/// Panics if `d` is not `store.n() × store.n()`.
pub fn ingest<S: Semiring>(store: &mut dyn TileStore, d: &View<'_, S::Elem>) -> Result<(), OocError>
where
    S::Elem: PackElem,
{
    let (n, t) = (store.n(), store.tile());
    assert_eq!(d.rows(), n, "ingest: matrix rows != store dimension");
    assert_eq!(d.cols(), n, "ingest: matrix cols != store dimension");
    let nb = store.tiles_per_side();
    for ti in 0..nb {
        let (r0, rb) = (ti * t, t.min(n - ti * t));
        for tj in 0..nb {
            let (c0, cb) = (tj * t, t.min(n - tj * t));
            let pb = PackedB::pack::<S>(&d.subview(r0, c0, rb, cb));
            store.write(ti, tj, pb.to_bytes())?;
        }
    }
    store.flush()?;
    Ok(())
}

/// Read every tile back out of `store` into the dense `out`.
///
/// # Panics
/// Panics if `out` is not `store.n() × store.n()`.
pub fn export_into<S: Semiring>(
    store: &mut dyn TileStore,
    out: &mut ViewMut<'_, S::Elem>,
) -> Result<(), OocError>
where
    S::Elem: PackElem,
{
    let (n, t) = (store.n(), store.tile());
    assert_eq!(out.rows(), n, "export: matrix rows != store dimension");
    assert_eq!(out.cols(), n, "export: matrix cols != store dimension");
    let nb = store.tiles_per_side();
    for ti in 0..nb {
        let (r0, rb) = (ti * t, t.min(n - ti * t));
        for tj in 0..nb {
            let (c0, cb) = (tj * t, t.min(n - tj * t));
            let pb = PackedB::<S::Elem>::from_bytes(&store.read(ti, tj)?)?;
            pb.unpack_into(&mut out.subview_mut(r0, c0, rb, cb));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// Out-of-core blocked Floyd-Warshall over the tiles in `store`, in place.
///
/// Per block-iteration `k`: DiagUpdate closes tile `(k,k)`; PanelUpdate
/// fixes block row and column `k`; then every remaining tile folds
/// `C(i,j) ⊕= A(i,k) ⊗ B(k,j)` with the **stored packed row tile** as the
/// GEMM's `B` operand. Same kernels, same per-element ⊕ fold order as
/// [`crate::fw_blocked::fw_blocked`], hence bit-identical results.
///
/// # Panics
/// Panics if `S` is not ⊕-idempotent (same precondition as blocked FW).
pub fn ooc_fw<S: Semiring>(
    store: &mut dyn TileStore,
    cfg: &OocConfig,
) -> Result<OocStats, OocError>
where
    S::Elem: PackElem,
{
    assert!(
        S::IDEMPOTENT_ADD,
        "out-of-core FW relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    let (n, t) = (store.n(), store.tile());
    // Same validation the GPU offload tier runs on its OogConfig: positive
    // tile extents, positive buffer count.
    OogConfig { mx: t, nx: t, streams: cfg.depth }
        .validate()
        .map_err(|_| OocError::InvalidConfig { tile: t, depth: cfg.depth })?;

    let wall = Instant::now();
    let nb = store.tiles_per_side();
    let s = t.min(n);
    let scratch_bytes = 3 * (s * s * S::Elem::BYTES) as u64;
    let slot = store.max_blob_bytes() as u64;
    let io_reserve = (2 * cfg.depth as u64 + 1) * slot;
    let baseline = store.resident_bytes();
    let floor = baseline + scratch_bytes + io_reserve + 2 * slot;
    if cfg.budget_bytes < floor {
        return Err(OocError::BudgetTooSmall { required: floor, budget: cfg.budget_bytes });
    }
    let cap = cfg.budget_bytes - scratch_bytes - io_reserve - baseline;

    let mut stats = OocStats {
        n,
        tile: t,
        tiles_per_side: nb,
        staged: store.kind() == "file",
        budget_bytes: cfg.budget_bytes,
        ..OocStats::default()
    };
    let mut cache = TileCache::<S::Elem>::new(cap, scratch_bytes);
    // Three dense scratch tiles: the closed diagonal, the A operand, and
    // the tile being updated. Ragged tiles use subviews of these.
    let mut diag = Matrix::filled(s, s, S::zero());
    let mut a_buf = Matrix::filled(s, s, S::zero());
    let mut c_buf = Matrix::filled(s, s, S::zero());
    let dim = |b: usize| t.min(n - b * t);

    for k in 0..nb {
        let bk = dim(k);
        let others = || (0..nb).filter(move |&x| x != k);

        // ----- DiagUpdate -----
        cache.ensure(store, &mut stats, (k, k))?;
        let t0 = Instant::now();
        {
            let mut dv = diag.subview_mut(0, 0, bk, bk);
            cache.peek((k, k)).unpack_into(&mut dv);
            fw_closure::<S>(&mut dv);
        }
        stats.compute_seconds += t0.elapsed().as_secs_f64();
        cache.put_dense::<S>(store, &mut stats, (k, k), &diag.subview(0, 0, bk, bk))?;

        // ----- PanelUpdate: block row k -----
        let js: Vec<usize> = others().collect();
        for (idx, &j) in js.iter().enumerate() {
            if let Some(&jn) = js.get(idx + 1) {
                if !cache.contains((k, jn)) {
                    store.prefetch(k, jn);
                }
            }
            let bj = dim(j);
            cache.ensure(store, &mut stats, (k, j))?;
            let t0 = Instant::now();
            {
                let mut cv = c_buf.subview_mut(0, 0, bk, bj);
                cache.peek((k, j)).unpack_into(&mut cv);
                panel_update_left::<S>(&mut cv, &diag.subview(0, 0, bk, bk));
            }
            stats.compute_seconds += t0.elapsed().as_secs_f64();
            cache.put_dense::<S>(store, &mut stats, (k, j), &c_buf.subview(0, 0, bk, bj))?;
        }

        // ----- PanelUpdate: block column k -----
        let is: Vec<usize> = others().collect();
        for (idx, &i) in is.iter().enumerate() {
            if let Some(&inx) = is.get(idx + 1) {
                if !cache.contains((inx, k)) {
                    store.prefetch(inx, k);
                }
            }
            let bi = dim(i);
            cache.ensure(store, &mut stats, (i, k))?;
            let t0 = Instant::now();
            {
                let mut cv = c_buf.subview_mut(0, 0, bi, bk);
                cache.peek((i, k)).unpack_into(&mut cv);
                panel_update_right::<S>(&mut cv, &diag.subview(0, 0, bk, bk));
            }
            stats.compute_seconds += t0.elapsed().as_secs_f64();
            cache.put_dense::<S>(store, &mut stats, (i, k), &c_buf.subview(0, 0, bi, bk))?;
        }

        // ----- MinPlus outer product -----
        for (ii, &i) in is.iter().enumerate() {
            let bi = dim(i);
            cache.ensure(store, &mut stats, (i, k))?;
            let t0 = Instant::now();
            {
                let mut av = a_buf.subview_mut(0, 0, bi, bk);
                cache.peek((i, k)).unpack_into(&mut av);
            }
            stats.compute_seconds += t0.elapsed().as_secs_f64();
            for (jj, &j) in js.iter().enumerate() {
                // Double buffer: ask the store for the next C tile of the
                // sweep while this one multiplies.
                let next = js
                    .get(jj + 1)
                    .map(|&jn| (i, jn))
                    .or_else(|| is.get(ii + 1).map(|&inx| (inx, k)));
                if let Some((pi, pj)) = next {
                    if !cache.contains((pi, pj)) {
                        store.prefetch(pi, pj);
                    }
                }
                let bj = dim(j);
                cache.ensure(store, &mut stats, (i, j))?;
                let t0 = Instant::now();
                {
                    let mut cv = c_buf.subview_mut(0, 0, bi, bj);
                    cache.peek((i, j)).unpack_into(&mut cv);
                }
                stats.compute_seconds += t0.elapsed().as_secs_f64();
                cache.ensure(store, &mut stats, (k, j))?;
                let t0 = Instant::now();
                {
                    let mut cv = c_buf.subview_mut(0, 0, bi, bj);
                    let av = a_buf.subview(0, 0, bi, bk);
                    let pb = cache.peek((k, j));
                    if cfg.parallel {
                        gemm_parallel_threads_with_b::<S>(&mut cv, &av, pb, budget_threads(1));
                    } else {
                        gemm_packed_with_b::<S>(&mut cv, &av, pb);
                    }
                }
                stats.compute_seconds += t0.elapsed().as_secs_f64();
                cache.put_dense::<S>(store, &mut stats, (i, j), &c_buf.subview(0, 0, bi, bj))?;
            }
        }
    }

    cache.flush(store, &mut stats)?;
    let t0 = Instant::now();
    store.flush()?;
    stats.io_seconds += t0.elapsed().as_secs_f64();
    cache.note_peak(store, &mut stats);
    stats.wall_seconds = wall.elapsed().as_secs_f64();
    Ok(stats)
}

/// Ingest `d`, run [`ooc_fw`], and export the closure back into `d`.
pub fn solve_in_store<S: Semiring>(
    d: &mut Matrix<S::Elem>,
    store: &mut dyn TileStore,
    cfg: &OocConfig,
) -> Result<OocStats, OocError>
where
    S::Elem: PackElem,
{
    ingest::<S>(store, &d.view())?;
    let stats = ooc_fw::<S>(store, cfg)?;
    export_into::<S>(store, &mut d.view_mut())?;
    Ok(stats)
}
