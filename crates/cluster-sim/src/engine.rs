//! The list-scheduling discrete-event engine.
//!
//! Semantics: a task becomes *ready* when its last dependency finishes; each
//! resource executes one task at a time, non-preemptively and without
//! voluntary idling — when free, it starts the best already-ready task
//! (lowest `priority`, then insertion order), or sleeps until one is ready.
//! Complexity `O(T log T)` in the number of tasks, so 256-node × thousands
//! of FW iterations fit comfortably.
//!
//! Failure is typed here too: [`try_run_with_faults`] accepts a list of
//! [`ResourceFault`]s (a resource dies at a simulated time and never starts
//! another task) and a DAG that stops making progress comes back as
//! [`EngineError::Stalled`] — with the completed-task count, the time
//! progress stopped, and the dead resources — instead of an assert.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::task::{ResourceId, TaskGraph, TaskId};

/// A deterministic engine fault: `resource` stops starting new tasks at
/// simulated second `at`. A task already running when the fault fires
/// completes (the engine is non-preemptive); everything queued on the dead
/// resource — and, transitively, everything depending on it — never runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceFault {
    /// The resource that dies.
    pub resource: ResourceId,
    /// Simulated second at which it stops accepting work.
    pub at: f64,
}

/// Why the engine could not complete the DAG.
#[derive(Clone, PartialEq)]
pub enum EngineError {
    /// The DAG stopped making progress before every task ran.
    Stalled {
        /// Tasks that finished before the stall.
        completed: usize,
        /// Total tasks in the graph.
        total: usize,
        /// Simulated time of the last completed event — when progress stopped.
        stalled_at: f64,
        /// Resources that were dead at the stall (empty for a structural
        /// stall, which a well-formed acyclic graph cannot produce).
        dead: Vec<ResourceId>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stalled { completed, total, stalled_at, dead } => {
                write!(
                    f,
                    "schedule stalled at {stalled_at:.3} s with unscheduled tasks: \
                     {completed}/{total} complete"
                )?;
                if !dead.is_empty() {
                    let ids: Vec<String> =
                        dead.iter().map(|r| r.index().to_string()).collect();
                    write!(f, " (dead resource(s): {})", ids.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for EngineError {}

/// Result of executing a [`TaskGraph`].
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Start time of each task, indexed by `TaskId`.
    pub start: Vec<f64>,
    /// Finish time of each task.
    pub finish: Vec<f64>,
    /// Busy seconds accumulated per resource.
    pub busy: Vec<f64>,
    /// Completion time of the whole DAG.
    pub makespan: f64,
}

impl Schedule {
    /// Finish time of `t`.
    pub fn finish_of(&self, t: TaskId) -> f64 {
        self.finish[t.0 as usize]
    }

    /// Start time of `t`.
    pub fn start_of(&self, t: TaskId) -> f64 {
        self.start[t.0 as usize]
    }

    /// Fraction of the makespan each resource was busy.
    pub fn utilization(&self) -> Vec<f64> {
        if self.makespan == 0.0 {
            return vec![0.0; self.busy.len()];
        }
        self.busy.iter().map(|b| b / self.makespan).collect()
    }
}

/// Per-resource scheduling state.
struct ResState {
    free_at: f64,
    busy: f64,
    running: bool,
    /// tasks whose deps are satisfied but whose ready time may be in the future
    waiting: BinaryHeap<Reverse<(OrdF64, u32, u32)>>, // (ready_time, priority, id)
    /// tasks ready to start now, ordered by (priority, id)
    ready: BinaryHeap<Reverse<(u32, u32)>>,
}

/// Total-ordered f64 wrapper (no NaNs by construction).
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN times")
    }
}

/// Execute the DAG; deterministic for a given graph.
///
/// # Panics
/// Panics with the [`EngineError`] report if the DAG stalls (impossible for
/// the structurally-acyclic graphs [`TaskGraph`] builds, without faults).
pub fn run(graph: &TaskGraph) -> Schedule {
    match try_run(graph) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible execution without faults: [`try_run_with_faults`] on an empty
/// fault list.
pub fn try_run(graph: &TaskGraph) -> Result<Schedule, EngineError> {
    try_run_with_faults(graph, &[])
}

/// Execute the DAG under a fault plan; deterministic for a given graph and
/// plan. Returns [`EngineError::Stalled`] when a dead resource strands part
/// of the DAG.
pub fn try_run_with_faults(
    graph: &TaskGraph,
    faults: &[ResourceFault],
) -> Result<Schedule, EngineError> {
    let n = graph.tasks.len();
    let nr = graph.num_resources as usize;
    let mut start = vec![f64::NAN; n];
    let mut finish = vec![f64::NAN; n];
    let mut remaining: Vec<u32> = graph.tasks.iter().map(|t| t.deps.len() as u32).collect();
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, t) in graph.tasks.iter().enumerate() {
        for d in &t.deps {
            dependents[d.0 as usize].push(i as u32);
        }
    }
    let mut res: Vec<ResState> = (0..nr)
        .map(|_| ResState {
            free_at: 0.0,
            busy: 0.0,
            running: false,
            waiting: BinaryHeap::new(),
            ready: BinaryHeap::new(),
        })
        .collect();

    // event queue ordered by (time, kind discriminant, id) for determinism
    let mut events: BinaryHeap<Reverse<(OrdF64, u8, u32)>> = BinaryHeap::new();

    // seed: tasks with no deps are ready at t=0
    for (i, t) in graph.tasks.iter().enumerate() {
        if t.deps.is_empty() {
            res[t.resource.0 as usize]
                .waiting
                .push(Reverse((OrdF64(0.0), t.priority, i as u32)));
        }
    }
    for r in 0..nr {
        try_start(graph, &mut res, r, 0.0, &mut start, &mut events, faults);
    }

    let mut done_count = 0usize;
    let mut makespan = 0.0f64;
    while let Some(Reverse((OrdF64(t), kind, id))) = events.pop() {
        match kind {
            0 => {
                // task `id` done
                let task = &graph.tasks[id as usize];
                let r = task.resource.0 as usize;
                finish[id as usize] = t;
                makespan = makespan.max(t);
                done_count += 1;
                res[r].running = false;
                // wake dependents
                for &dep in &dependents[id as usize] {
                    remaining[dep as usize] -= 1;
                    if remaining[dep as usize] == 0 {
                        let dt = &graph.tasks[dep as usize];
                        let dr = dt.resource.0 as usize;
                        res[dr]
                            .waiting
                            .push(Reverse((OrdF64(t), dt.priority, dep)));
                        try_start(graph, &mut res, dr, t, &mut start, &mut events, faults);
                    }
                }
                try_start(graph, &mut res, r, t, &mut start, &mut events, faults);
            }
            _ => {
                // wake resource `id`
                try_start(graph, &mut res, id as usize, t, &mut start, &mut events, faults);
            }
        }
    }

    if done_count != n {
        let mut dead: Vec<ResourceId> = faults
            .iter()
            .filter(|f| f.at <= makespan)
            .map(|f| f.resource)
            .collect();
        dead.sort();
        dead.dedup();
        return Err(EngineError::Stalled {
            completed: done_count,
            total: n,
            stalled_at: makespan,
            dead,
        });
    }
    let busy = res.iter().map(|r| r.busy).collect();
    Ok(Schedule { start, finish, busy, makespan })
}

fn try_start(
    graph: &TaskGraph,
    res: &mut [ResState],
    r: usize,
    now: f64,
    start: &mut [f64],
    events: &mut BinaryHeap<Reverse<(OrdF64, u8, u32)>>,
    faults: &[ResourceFault],
) {
    // a dead resource never starts another task (non-preemptive: whatever
    // was already running when the fault fired has its completion event)
    if faults.iter().any(|f| f.resource.index() == r && now >= f.at) {
        return;
    }
    let state = &mut res[r];
    if state.running || state.free_at > now {
        return;
    }
    // mature waiting tasks whose ready time has passed
    while let Some(&Reverse((OrdF64(rt), pri, id))) = state.waiting.peek() {
        if rt <= now {
            state.waiting.pop();
            state.ready.push(Reverse((pri, id)));
        } else {
            break;
        }
    }
    if let Some(Reverse((_, id))) = state.ready.pop() {
        let dur = graph.tasks[id as usize].duration;
        start[id as usize] = now;
        state.running = true;
        state.free_at = now + dur;
        state.busy += dur;
        events.push(Reverse((OrdF64(now + dur), 0, id)));
    } else if let Some(&Reverse((OrdF64(rt), _, _))) = state.waiting.peek() {
        events.push(Reverse((OrdF64(rt), 1, r as u32)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskGraph;

    #[test]
    fn chain_on_one_resource_sums_durations() {
        let mut g = TaskGraph::new();
        let r = g.resource();
        let a = g.task(r, 1.0, 0, &[]);
        let b = g.task(r, 2.0, 0, &[a]);
        let c = g.task(r, 3.0, 0, &[b]);
        let s = run(&g);
        assert_eq!(s.finish_of(c), 6.0);
        assert_eq!(s.makespan, 6.0);
        assert_eq!(s.busy[0], 6.0);
    }

    #[test]
    fn independent_tasks_on_two_resources_overlap() {
        let mut g = TaskGraph::new();
        let r1 = g.resource();
        let r2 = g.resource();
        g.task(r1, 5.0, 0, &[]);
        g.task(r2, 4.0, 0, &[]);
        let s = run(&g);
        assert_eq!(s.makespan, 5.0);
        assert_eq!(s.utilization(), vec![1.0, 0.8]);
    }

    #[test]
    fn fork_join_waits_for_slowest_branch() {
        let mut g = TaskGraph::new();
        let (r1, r2, r3) = (g.resource(), g.resource(), g.resource());
        let src = g.task(r1, 1.0, 0, &[]);
        let fast = g.task(r2, 1.0, 0, &[src]);
        let slow = g.task(r3, 10.0, 0, &[src]);
        let join = g.task(r1, 1.0, 0, &[fast, slow]);
        let s = run(&g);
        assert_eq!(s.start_of(join), 11.0);
        assert_eq!(s.makespan, 12.0);
    }

    #[test]
    fn resource_contention_serializes() {
        let mut g = TaskGraph::new();
        let r = g.resource();
        g.task(r, 2.0, 0, &[]);
        g.task(r, 2.0, 0, &[]);
        g.task(r, 2.0, 0, &[]);
        let s = run(&g);
        assert_eq!(s.makespan, 6.0);
    }

    #[test]
    fn priority_breaks_simultaneous_ready_ties() {
        let mut g = TaskGraph::new();
        let r = g.resource();
        // both ready at 0; the priority-1 task must run first
        let low = g.task(r, 1.0, 5, &[]);
        let high = g.task(r, 1.0, 1, &[]);
        let s = run(&g);
        assert_eq!(s.start_of(high), 0.0);
        assert_eq!(s.start_of(low), 1.0);
    }

    #[test]
    fn no_voluntary_idling_ready_task_preempts_priority_order() {
        let mut g = TaskGraph::new();
        let (r1, r2) = (g.resource(), g.resource());
        // high-priority task becomes ready at t=2 (after `gate`), low-priority
        // is ready at 0 on the same resource. Non-idling: low starts at 0.
        let gate = g.task(r2, 2.0, 0, &[]);
        let low = g.task(r1, 10.0, 9, &[]);
        let high = g.task(r1, 1.0, 0, &[gate]);
        let s = run(&g);
        assert_eq!(s.start_of(low), 0.0);
        assert_eq!(s.start_of(high), 10.0);
    }

    #[test]
    fn pipeline_overlap_shortens_makespan() {
        // two-stage pipeline over 4 items: stage A on r1 (1s), stage B on r2 (1s)
        // ideal: 1 + 4 = 5s, not 8s
        let mut g = TaskGraph::new();
        let (r1, r2) = (g.resource(), g.resource());
        let mut prev_b: Option<crate::task::TaskId> = None;
        let mut last = None;
        for _ in 0..4 {
            let a = g.task(r1, 1.0, 0, &[]);
            let deps: Vec<_> = Some(a).into_iter().chain(prev_b).collect();
            let b = g.task(r2, 1.0, 0, &deps);
            prev_b = Some(b);
            last = Some(b);
        }
        let s = run(&g);
        assert_eq!(s.finish_of(last.unwrap()), 5.0);
    }

    #[test]
    fn empty_graph_has_zero_makespan() {
        let g = TaskGraph::new();
        let s = run(&g);
        assert_eq!(s.makespan, 0.0);
        assert!(s.finish.is_empty());
    }

    #[test]
    fn zero_duration_tasks_propagate_instantly() {
        let mut g = TaskGraph::new();
        let r = g.resource();
        let a = g.task(r, 0.0, 0, &[]);
        let b = g.task(r, 0.0, 0, &[a]);
        let s = run(&g);
        assert_eq!(s.finish_of(b), 0.0);
    }

    #[test]
    fn dead_resource_stalls_with_a_typed_report() {
        // a → b → c with b on the faulted resource: a completes, b never
        // starts, c is stranded behind it
        let mut g = TaskGraph::new();
        let (r1, r2) = (g.resource(), g.resource());
        let a = g.task(r1, 1.0, 0, &[]);
        let b = g.task(r2, 1.0, 0, &[a]);
        let _c = g.task(r1, 1.0, 0, &[b]);
        let err = try_run_with_faults(&g, &[ResourceFault { resource: r2, at: 0.5 }])
            .expect_err("r2 dies before its task becomes ready");
        let EngineError::Stalled { completed, total, stalled_at, dead } = err.clone();
        assert_eq!((completed, total), (1, 3));
        assert_eq!(stalled_at, 1.0);
        assert_eq!(dead, vec![r2]);
        let report = format!("{err}");
        assert!(report.contains("1/3") && report.contains("dead resource"), "{report}");
    }

    #[test]
    fn task_already_running_at_fault_time_completes() {
        // non-preemptive: the fault at t=1 cannot abort the task started at 0
        let mut g = TaskGraph::new();
        let r = g.resource();
        let a = g.task(r, 5.0, 0, &[]);
        let s = try_run_with_faults(&g, &[ResourceFault { resource: r, at: 1.0 }])
            .expect("the running task still finishes");
        assert_eq!(s.finish_of(a), 5.0);
    }

    #[test]
    fn fault_after_completion_changes_nothing() {
        let mut g = TaskGraph::new();
        let r = g.resource();
        let a = g.task(r, 1.0, 0, &[]);
        let b = g.task(r, 2.0, 0, &[a]);
        let faulted = try_run_with_faults(&g, &[ResourceFault { resource: r, at: 100.0 }])
            .expect("fault fires after the schedule is done");
        let clean = run(&g);
        assert_eq!(faulted.finish_of(b), clean.finish_of(b));
        assert_eq!(faulted.makespan, clean.makespan);
    }

    #[test]
    fn diamond_dag_critical_path() {
        let mut g = TaskGraph::new();
        let rs: Vec<_> = (0..4).map(|_| g.resource()).collect();
        let top = g.task(rs[0], 1.0, 0, &[]);
        let left = g.task(rs[1], 3.0, 0, &[top]);
        let right = g.task(rs[2], 5.0, 0, &[top]);
        let _bottom = g.task(rs[3], 1.0, 0, &[left, right]);
        let s = run(&g);
        assert_eq!(s.makespan, 1.0 + 5.0 + 1.0);
    }
}
