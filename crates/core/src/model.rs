//! The paper's performance models and reporting metrics.
//!
//! * Eq. 1 — total ParallelFw cost `2n³/P·t_f + 2(n/b)·t_l + t_w·(n²/P_r + n²/P_c)`.
//! * §3.4.1 — per-node NIC volume lower bound `t_w·(n²·Q_r/P_r + n²·Q_c/P_c)`.
//! * §5.1.3 — the effective-bandwidth metric `W_min / t_FW` and flop-rate
//!   normalizations used by every figure harness.

use cluster_sim::MachineSpec;

/// Total semiring flops of Floyd-Warshall on `n` vertices (the paper's
/// `2n³` convention: one ⊕ and one ⊗ per relaxation).
pub fn fw_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// Eq. 1: predicted ParallelFw seconds on `spec` with an `P_r×P_c` grid of
/// `P` ranks, `elem_bytes`-sized elements and block size `b`, **without**
/// overlap (the baseline's bulk-synchronous bound).
pub fn eq1_total_time(
    spec: &MachineSpec,
    n: usize,
    b: usize,
    kr: usize,
    kc: usize,
    elem_bytes: usize,
) -> f64 {
    let t_f = 1.0 / spec.total_flops();
    let t_w = elem_bytes as f64 / spec.nic_bw;
    let t_l = spec.nic_latency;
    let n_f = n as f64;
    let comp = fw_flops(n) * t_f;
    let lat = 2.0 * (n_f / b as f64) * t_l * ((kr.max(kc)) as f64).log2().max(1.0);
    let bw = t_w * (n_f * n_f / kr as f64 + n_f * n_f / kc as f64);
    comp + lat + bw
}

/// §3.4.1: minimum bytes leaving any single node's NIC over the whole run,
/// for a `K_r×K_c` node grid: `elem_bytes · (n²/K_r + n²/K_c)`.
pub fn comm_lower_bound_bytes(n: usize, kr: usize, kc: usize, elem_bytes: usize) -> f64 {
    let n2 = (n as f64) * (n as f64);
    elem_bytes as f64 * (n2 / kr as f64 + n2 / kc as f64)
}

/// §5.1.3 effective bandwidth: `W_min / t_FW`, where `W_min` is the minimum
/// per-node volume **among all placements** for this node count — i.e. the
/// square-node-grid bound — and `t_fw` the measured/simulated total seconds.
/// Bytes/second.
pub fn effective_bandwidth(n: usize, nodes: usize, elem_bytes: usize, t_fw: f64) -> f64 {
    let (kr, kc) = best_node_grid(nodes);
    comm_lower_bound_bytes(n, kr, kc, elem_bytes) / t_fw
}

/// The most-square factorization `K_r × K_c = nodes` with `K_r ≤ K_c`.
pub fn best_node_grid(nodes: usize) -> (usize, usize) {
    assert!(nodes > 0);
    let mut best = (1, nodes);
    let mut r = 1;
    while r * r <= nodes {
        if nodes.is_multiple_of(r) {
            best = (r, nodes / r);
        }
        r += 1;
    }
    best
}

/// Problem-size feasibility for the *in-GPU-memory* variants: every rank's
/// local share (`n²/P` elements) plus the two panels must fit in one GPU.
/// Offload only needs panels + tiles. Returns the largest n (in vertices).
pub fn max_vertices_in_gpu_memory(spec: &MachineSpec, elem_bytes: usize) -> usize {
    // P = nodes × gpus_per_node ranks (1 rank/GPU); local share n²/P bytes
    // must fit alongside panel double-buffers, broadcast staging, and GEMM
    // workspace. The usable fraction is calibrated to the paper's observed
    // feasibility frontier: 300k vertices fit on 16 nodes (Figs. 8-9,
    // 3.75 GB/GPU) but 660k do not fit on 64 (Fig. 7, 4.54 GB/GPU) while
    // 524k do (2.86 GB/GPU). 0.25 · 16 GB = 4 GB/GPU puts the 64-node wall
    // at ≈642k, inside the paper's bracket, and keeps 300k/16-node runs
    // feasible.
    let p = (spec.nodes * spec.gpus_per_node) as f64;
    let usable = 0.25 * spec.gpu_mem_bytes as f64;
    ((usable * p / elem_bytes as f64).sqrt()) as usize
}

/// Flop rate (flop/s) → fraction of the machine's sustained SRGEMM peak.
pub fn fraction_of_peak(spec: &MachineSpec, flops_per_sec: f64) -> f64 {
    flops_per_sec / spec.total_flops()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fw_flop_convention() {
        assert_eq!(fw_flops(100), 2e6);
    }

    #[test]
    fn best_node_grid_prefers_square() {
        assert_eq!(best_node_grid(64), (8, 8));
        assert_eq!(best_node_grid(16), (4, 4));
        assert_eq!(best_node_grid(12), (3, 4));
        assert_eq!(best_node_grid(7), (1, 7));
        assert_eq!(best_node_grid(1), (1, 1));
    }

    #[test]
    fn lower_bound_scales_with_grid_shape() {
        // square grid halves the volume of a 16x1 grid at 16 nodes
        let sq = comm_lower_bound_bytes(1000, 4, 4, 4);
        let skinny = comm_lower_bound_bytes(1000, 16, 1, 4);
        assert!(sq < skinny);
        assert_eq!(sq, 4.0 * (1e6 / 4.0 + 1e6 / 4.0));
    }

    #[test]
    fn eq1_compute_term_dominates_large_n() {
        let spec = MachineSpec::summit(64);
        let small = eq1_total_time(&spec, 30_000, 768, 8, 8, 4);
        let large = eq1_total_time(&spec, 500_000, 768, 8, 8, 4);
        let comp_small = fw_flops(30_000) / spec.total_flops();
        let comp_large = fw_flops(500_000) / spec.total_flops();
        // at large n, the total approaches the compute term
        assert!(large / comp_large < 1.2);
        assert!(small / comp_small > 1.5); // bandwidth-dominated
    }

    #[test]
    fn summit_64_nodes_gpu_memory_wall_near_524k() {
        // paper Fig. 7: non-offload variants stop at 524,288 vertices on 64
        // nodes; the capacity model must land in that neighborhood
        let spec = MachineSpec::summit(64);
        let max_n = max_vertices_in_gpu_memory(&spec, 4);
        assert!(
            (400_000..700_000).contains(&max_n),
            "GPU-memory wall at {max_n}, expected ≈524k"
        );
    }

    #[test]
    fn effective_bandwidth_metric_matches_hand_computation() {
        // 4 nodes → K=2x2, W_min = eb·(n²/2+n²/2) = eb·n²
        let bw = effective_bandwidth(1000, 4, 4, 2.0);
        assert_eq!(bw, 4.0 * 1e6 / 2.0);
    }
}
