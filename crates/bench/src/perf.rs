//! Wall-clock perf suite with a stable JSON schema and a regression
//! comparator.
//!
//! Unlike the figure binaries (which report *simulated* Summit time), this
//! module measures the real kernels of the reproduction on the machine it
//! runs on: the four GEMM kernels × element widths, a headline GEMM entry
//! recording the packed kernel against the blocked one at a larger size
//! (`baseline_wall_s`/`speedup` carried in the artifact), blocked
//! Floyd-Warshall, end-to-end `distributed_apsp` at every corner of the
//! 2×2×2 policy cube, and a headline distributed run recorded twice — once
//! with the pre-PR serial OuterUpdate (`baseline_wall_s`) and once with the
//! thread-budgeted kernel (`wall_s`) — so the speedup claims are carried
//! *in* the artifact rather than asserted in prose. The `solver/*` entries
//! do the same for the planner: each generator family records the
//! planner-chosen solver against forced dense-blocked.
//!
//! The `gemm/packed/minplus_u16` / `gemm/packed/minplus_i32` entries run
//! the same packed kernel over the saturating integer semirings at the
//! f32 headline size (baseline = packed f32), and `quant/solve_vs_f32`
//! records the quantized end-to-end solve against f32 blocked FW.
//!
//! Schema (`apsp-bench-perf/1`): a top-level object with `schema`, `mode`,
//! `reps`, `available_parallelism`, and `entries`; each entry has `name`
//! (stable across runs — sizes live in `params`), `group`, `params`
//! (numeric), `wall_s` (minimum over `reps`), and optionally `dtype`
//! (element type; the comparator refuses cross-dtype joins), `gflops`,
//! `baseline_wall_s`, `speedup`. Entry names are the comparator's join key.

use std::time::Instant;

use apsp_core::{distributed_apsp, fw_blocked, DiagMethod, Exec, FwConfig, PanelBcastAlgo, Schedule};
use apsp_graph::generators::{self, WeightKind};
use srgemm::gemm::{gemm_blocked, gemm_flops, gemm_naive, gemm_packed, gemm_parallel};
use srgemm::{Matrix, MinPlus, MinPlusSatI32, MinPlusSatU16, Semiring};

use crate::json::Json;

/// Schema identifier written into (and required from) every suite file.
pub const SCHEMA: &str = "apsp-bench-perf/1";

/// Default regression threshold for the comparator: a benchmark slower by
/// more than this fraction of its old time is flagged.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// One measured benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Stable identity (comparator join key); sizes go in `params`.
    pub name: String,
    /// Coarse grouping: `gemm`, `fw`, `dist`, `dist_e2e`, `solver`, `quant`,
    /// `ooc`, `serve`.
    pub group: String,
    /// Numeric parameters of the run (n, block, grid, …).
    pub params: Vec<(String, f64)>,
    /// Best (minimum) wall-clock seconds over the suite's repetitions.
    pub wall_s: f64,
    /// Element dtype the kernel ran over (`f32`, `f64`, `u16`, `i32`),
    /// when one is defined. The comparator refuses to join two entries
    /// whose dtypes differ: a quantized `u16` run is 2–4× wider in SIMD
    /// lanes than the `f32` baseline and must never silently diff
    /// against it.
    pub dtype: Option<String>,
    /// Throughput at `wall_s`, when a flop count is defined.
    pub gflops: Option<f64>,
    /// Wall-clock of the pre-PR configuration, for entries that carry
    /// their own baseline (the headline distributed run).
    pub baseline_wall_s: Option<f64>,
    /// `baseline_wall_s / wall_s`, when a baseline exists.
    pub speedup: Option<f64>,
}

/// A full suite result.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// `full` or `quick` (CI smoke); comparing across modes is refused.
    pub mode: String,
    /// Repetitions per entry (`wall_s` is the minimum).
    pub reps: usize,
    /// `std::thread::available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    /// The measurements, in suite order.
    pub entries: Vec<Entry>,
}

impl Report {
    /// Serialize to the stable JSON schema.
    pub fn to_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(e.name.clone())),
                    ("group".to_string(), Json::Str(e.group.clone())),
                    (
                        "params".to_string(),
                        Json::Obj(
                            e.params.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect(),
                        ),
                    ),
                    ("wall_s".to_string(), Json::Num(e.wall_s)),
                ];
                if let Some(d) = &e.dtype {
                    fields.push(("dtype".to_string(), Json::Str(d.clone())));
                }
                if let Some(g) = e.gflops {
                    fields.push(("gflops".to_string(), Json::Num(g)));
                }
                if let Some(b) = e.baseline_wall_s {
                    fields.push(("baseline_wall_s".to_string(), Json::Num(b)));
                }
                if let Some(s) = e.speedup {
                    fields.push(("speedup".to_string(), Json::Num(s)));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(self.schema.clone())),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            ("reps".to_string(), Json::Num(self.reps as f64)),
            (
                "available_parallelism".to_string(),
                Json::Num(self.available_parallelism as f64),
            ),
            ("entries".to_string(), Json::Arr(entries)),
        ])
    }

    /// Parse and validate a suite file. Rejects unknown schemas and entries
    /// missing required fields, with a field-level message.
    pub fn from_json(doc: &Json) -> Result<Report, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema`")?
            .to_string();
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (expected `{SCHEMA}`)"));
        }
        let mode = doc.get("mode").and_then(Json::as_str).ok_or("missing `mode`")?.to_string();
        let reps = doc.get("reps").and_then(Json::as_f64).ok_or("missing `reps`")? as usize;
        let available_parallelism = doc
            .get("available_parallelism")
            .and_then(Json::as_f64)
            .ok_or("missing `available_parallelism`")? as usize;
        let raw = doc.get("entries").and_then(Json::as_arr).ok_or("missing `entries`")?;
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i}: missing `name`"))?
                .to_string();
            let group = e
                .get("group")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry `{name}`: missing `group`"))?
                .to_string();
            let wall_s = e
                .get("wall_s")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry `{name}`: missing `wall_s`"))?;
            let params = match e.get("params") {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|x| (k.clone(), x))
                            .ok_or_else(|| format!("entry `{name}`: param `{k}` not a number"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(_) => return Err(format!("entry `{name}`: `params` not an object")),
                None => Vec::new(),
            };
            entries.push(Entry {
                name,
                group,
                params,
                wall_s,
                dtype: e.get("dtype").and_then(Json::as_str).map(String::from),
                gflops: e.get("gflops").and_then(Json::as_f64),
                baseline_wall_s: e.get("baseline_wall_s").and_then(Json::as_f64),
                speedup: e.get("speedup").and_then(Json::as_f64),
            });
        }
        Ok(Report { schema, mode, reps, available_parallelism, entries })
    }
}

/// How one benchmark moved between two suite files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Slower by more than the threshold.
    Regression,
    /// Faster by more than the threshold.
    Improvement,
    /// Within the threshold either way.
    Unchanged,
}

/// Old-vs-new comparison for one shared entry name.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Entry name (present in both files).
    pub name: String,
    /// `wall_s` in the old file.
    pub old_wall_s: f64,
    /// `wall_s` in the new file.
    pub new_wall_s: f64,
    /// `new / old`; > 1 means slower.
    pub ratio: f64,
    /// Classification at the comparator's threshold.
    pub kind: DeltaKind,
}

/// Result of comparing two suite files.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Entries present in both files, in new-file order.
    pub deltas: Vec<Delta>,
    /// Names only in the new file.
    pub added: Vec<String>,
    /// Names only in the old file.
    pub removed: Vec<String>,
    /// Threshold the deltas were classified at.
    pub threshold: f64,
}

impl CompareReport {
    /// Any regression beyond the threshold?
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.kind == DeltaKind::Regression)
    }

    /// Human-readable summary, one line per delta plus added/removed names.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let tag = match d.kind {
                DeltaKind::Regression => "REGRESSION",
                DeltaKind::Improvement => "improved",
                DeltaKind::Unchanged => "ok",
            };
            out.push_str(&format!(
                "{:<52} {:>10.6}s -> {:>10.6}s  x{:.3}  {}\n",
                d.name, d.old_wall_s, d.new_wall_s, d.ratio, tag
            ));
        }
        for name in &self.added {
            out.push_str(&format!("{name:<52} (new benchmark)\n"));
        }
        for name in &self.removed {
            out.push_str(&format!("{name:<52} (removed benchmark)\n"));
        }
        out
    }
}

/// Compare two suite reports by entry name. Refuses to compare different
/// modes (quick-vs-full timings are not commensurable) and refuses any
/// per-entry join across element dtypes (a u16 run must never silently
/// diff against an f32 baseline).
pub fn compare(old: &Report, new: &Report, threshold: f64) -> Result<CompareReport, String> {
    if old.mode != new.mode {
        return Err(format!(
            "refusing to compare `{}` against `{}` suites (sizes differ)",
            old.mode, new.mode
        ));
    }
    let mut deltas = Vec::new();
    let mut added = Vec::new();
    for e in &new.entries {
        match old.entries.iter().find(|o| o.name == e.name) {
            Some(o) => {
                if o.dtype != e.dtype {
                    let show = |d: &Option<String>| d.clone().unwrap_or_else(|| "none".into());
                    return Err(format!(
                        "refusing to compare `{}`: element dtype `{}` vs `{}` \
                         (lane widths differ; timings are not commensurable)",
                        e.name,
                        show(&o.dtype),
                        show(&e.dtype)
                    ));
                }
                let ratio = if o.wall_s > 0.0 { e.wall_s / o.wall_s } else { f64::INFINITY };
                let kind = if ratio > 1.0 + threshold {
                    DeltaKind::Regression
                } else if ratio < 1.0 / (1.0 + threshold) {
                    DeltaKind::Improvement
                } else {
                    DeltaKind::Unchanged
                };
                deltas.push(Delta {
                    name: e.name.clone(),
                    old_wall_s: o.wall_s,
                    new_wall_s: e.wall_s,
                    ratio,
                    kind,
                });
            }
            None => added.push(e.name.clone()),
        }
    }
    let removed = old
        .entries
        .iter()
        .filter(|o| !new.entries.iter().any(|e| e.name == o.name))
        .map(|o| o.name.clone())
        .collect();
    Ok(CompareReport { deltas, added, removed, threshold })
}

/// Suite sizing: `full` produces the committed `BENCH_PR10.json`; `quick`
/// is the CI smoke (seconds, not minutes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Committed-artifact sizes.
    Full,
    /// CI smoke sizes.
    Quick,
}

impl Mode {
    fn name(&self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Quick => "quick",
        }
    }
}

struct Sizes {
    gemm_n: usize,
    gemm_headline_n: usize,
    fw_n: usize,
    fw_b: usize,
    dist_n: usize,
    dist_b: usize,
    headline_n: usize,
    headline_b: usize,
    solver_grid_side: usize,
    solver_ring_n: usize,
    solver_dense_n: usize,
    solver_b: usize,
    serve_n: usize,
    serve_batches: usize,
    ooc_n: usize,
    ooc_tile: usize,
}

fn sizes(mode: Mode) -> Sizes {
    match mode {
        Mode::Full => Sizes {
            gemm_n: 256,
            gemm_headline_n: 512,
            fw_n: 256,
            fw_b: 64,
            dist_n: 192,
            dist_b: 48,
            headline_n: 1024,
            headline_b: 128,
            solver_grid_side: 64,
            solver_ring_n: 4096,
            solver_dense_n: 512,
            solver_b: 64,
            serve_n: 256,
            serve_batches: 5000,
            ooc_n: 768,
            ooc_tile: 128,
        },
        Mode::Quick => Sizes {
            gemm_n: 64,
            gemm_headline_n: 128,
            fw_n: 64,
            fw_b: 16,
            dist_n: 48,
            dist_b: 16,
            headline_n: 96,
            headline_b: 32,
            solver_grid_side: 16,
            solver_ring_n: 256,
            solver_dense_n: 128,
            solver_b: 16,
            serve_n: 64,
            serve_batches: 40,
            ooc_n: 192,
            ooc_tile: 48,
        },
    }
}

/// Minimum wall-clock over `reps` runs of `f` (each run gets fresh state
/// from `setup`).
fn time_min<T>(reps: usize, mut setup: impl FnMut() -> T, mut f: impl FnMut(T)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let state = setup();
        let t0 = Instant::now();
        f(state);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn lcg_matrix_f32(n: usize, seed: u64) -> Matrix<f32> {
    let mut state = seed | 1;
    Matrix::from_fn(n, n, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % 1000) as f32 / 8.0
    })
}

/// A serial-signature GEMM kernel over element type `E`.
type GemmFn<E> = fn(&mut srgemm::ViewMut<'_, E>, &srgemm::View<'_, E>, &srgemm::View<'_, E>);

fn gemm_suite<S>(elem: &str, n: usize, reps: usize, mk: impl Fn(u64) -> Matrix<S::Elem>) -> Vec<Entry>
where
    S: Semiring,
{
    let a = mk(11);
    let b = mk(22);
    let c0 = mk(33);
    let flops = gemm_flops(n, n, n);
    let algos: [(&str, GemmFn<S::Elem>); 4] = [
        ("naive", gemm_naive::<S>),
        ("blocked", gemm_blocked::<S>),
        ("packed", gemm_packed::<S>),
        ("parallel", gemm_parallel::<S>),
    ];
    algos
        .iter()
        .map(|(algo, kernel)| {
            let wall_s = time_min(
                reps,
                || c0.clone(),
                |mut c| kernel(&mut c.view_mut(), &a.view(), &b.view()),
            );
            eprintln!("  gemm/{algo}/minplus_{elem}: {wall_s:.6}s");
            Entry {
                name: format!("gemm/{algo}/minplus_{elem}"),
                group: "gemm".to_string(),
                params: vec![("n".to_string(), n as f64)],
                wall_s,
                dtype: Some(elem.to_string()),
                gflops: Some(flops / wall_s / 1e9),
                baseline_wall_s: None,
                speedup: None,
            }
        })
        .collect()
}

/// Run the whole suite and return the report (also logged to stderr as it
/// goes; stdout stays clean for the JSON).
pub fn run_suite(mode: Mode, reps: usize) -> Report {
    let sz = sizes(mode);
    let mut entries = Vec::new();

    // --- GEMM kernels: naive/blocked/parallel × MinPlus f32/f64 ----------
    eprintln!("[perf] gemm kernels, n = {}", sz.gemm_n);
    let n = sz.gemm_n;
    entries.extend(gemm_suite::<MinPlus<f32>>("f32", n, reps, |seed| {
        lcg_matrix_f32(n, seed)
    }));
    entries.extend(gemm_suite::<MinPlus<f64>>("f64", n, reps, |seed| {
        let mut state = seed | 1;
        Matrix::from_fn(n, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 8.0
        })
    }));

    // --- headline GEMM: packed vs blocked at a larger size ----------------
    // The per-kernel entries above share one (small) n; this entry records
    // the packed kernel's win over the blocked one at a size where the
    // register-tiled micro-kernel's arithmetic density dominates, carrying
    // the speedup in the artifact like the distributed headline below.
    eprintln!("[perf] gemm headline (packed vs blocked), n = {}", sz.gemm_headline_n);
    let packed_f32_wall_s = {
        let n = sz.gemm_headline_n;
        let a = lcg_matrix_f32(n, 55);
        let b = lcg_matrix_f32(n, 66);
        let c0 = lcg_matrix_f32(n, 77);
        let baseline_wall_s = time_min(
            reps,
            || c0.clone(),
            |mut c| gemm_blocked::<MinPlus<f32>>(&mut c.view_mut(), &a.view(), &b.view()),
        );
        let wall_s = time_min(
            reps,
            || c0.clone(),
            |mut c| gemm_packed::<MinPlus<f32>>(&mut c.view_mut(), &a.view(), &b.view()),
        );
        let flops = gemm_flops(n, n, n);
        eprintln!(
            "  gemm/packed/headline_minplus_f32: blocked {baseline_wall_s:.6}s, packed {wall_s:.6}s, x{:.3}",
            baseline_wall_s / wall_s
        );
        entries.push(Entry {
            name: "gemm/packed/headline_minplus_f32".to_string(),
            group: "gemm".to_string(),
            params: vec![("n".to_string(), n as f64)],
            wall_s,
            dtype: Some("f32".to_string()),
            gflops: Some(flops / wall_s / 1e9),
            baseline_wall_s: Some(baseline_wall_s),
            speedup: Some(baseline_wall_s / wall_s),
        });
        wall_s
    };

    // --- quantized packed kernels: u16/i32 saturating lanes vs packed f32 --
    // Same packed kernel, same n as the f32 headline above; the only change
    // is the element width, so `speedup` here is exactly the lane-width win
    // (elements retired per second relative to the f32 datapath). u16 packs
    // 2× the lanes of f32 per vector register, i32 the same count but with
    // integer min/add ports; the acceptance bar for u16 is ≥ 1.8× on
    // AVX-512 (≥ 1.4× on AVX2).
    eprintln!("[perf] gemm quantized lanes (u16/i32 vs packed f32), n = {}", sz.gemm_headline_n);
    {
        let n = sz.gemm_headline_n;
        let flops = gemm_flops(n, n, n);
        let mk_u16 = |seed: u64| {
            let mut state = seed | 1;
            Matrix::from_fn(n, n, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 1000) as u16
            })
        };
        let mk_i32 = |seed: u64| {
            let mut state = seed | 1;
            Matrix::from_fn(n, n, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 1000) as i32
            })
        };
        {
            let (a, b, c0) = (mk_u16(55), mk_u16(66), mk_u16(77));
            let wall_s = time_min(
                reps,
                || c0.clone(),
                |mut c| gemm_packed::<MinPlusSatU16>(&mut c.view_mut(), &a.view(), &b.view()),
            );
            eprintln!(
                "  gemm/packed/minplus_u16: {wall_s:.6}s, x{:.3} vs packed f32",
                packed_f32_wall_s / wall_s
            );
            entries.push(Entry {
                name: "gemm/packed/minplus_u16".to_string(),
                group: "gemm".to_string(),
                params: vec![("n".to_string(), n as f64)],
                wall_s,
                dtype: Some("u16".to_string()),
                gflops: Some(flops / wall_s / 1e9),
                baseline_wall_s: Some(packed_f32_wall_s),
                speedup: Some(packed_f32_wall_s / wall_s),
            });
        }
        {
            let (a, b, c0) = (mk_i32(55), mk_i32(66), mk_i32(77));
            let wall_s = time_min(
                reps,
                || c0.clone(),
                |mut c| gemm_packed::<MinPlusSatI32>(&mut c.view_mut(), &a.view(), &b.view()),
            );
            eprintln!(
                "  gemm/packed/minplus_i32: {wall_s:.6}s, x{:.3} vs packed f32",
                packed_f32_wall_s / wall_s
            );
            entries.push(Entry {
                name: "gemm/packed/minplus_i32".to_string(),
                group: "gemm".to_string(),
                params: vec![("n".to_string(), n as f64)],
                wall_s,
                dtype: Some("i32".to_string()),
                gflops: Some(flops / wall_s / 1e9),
                baseline_wall_s: Some(packed_f32_wall_s),
                speedup: Some(packed_f32_wall_s / wall_s),
            });
        }
    }

    // --- Blocked Floyd-Warshall ------------------------------------------
    eprintln!("[perf] fw_blocked, n = {}, b = {}", sz.fw_n, sz.fw_b);
    {
        let d0 = lcg_matrix_f32(sz.fw_n, 44);
        let wall_s = time_min(
            reps,
            || d0.clone(),
            |mut d| fw_blocked::<MinPlus<f32>>(&mut d, sz.fw_b, DiagMethod::FwClosure, true),
        );
        let flops = 2.0 * (sz.fw_n as f64).powi(3);
        eprintln!("  fw/blocked/minplus_f32: {wall_s:.6}s");
        entries.push(Entry {
            name: "fw/blocked/minplus_f32".to_string(),
            group: "fw".to_string(),
            params: vec![
                ("n".to_string(), sz.fw_n as f64),
                ("block".to_string(), sz.fw_b as f64),
            ],
            wall_s,
            dtype: Some("f32".to_string()),
            gflops: Some(flops / wall_s / 1e9),
            baseline_wall_s: None,
            speedup: None,
        });
    }

    // --- distributed_apsp across the 2×2×2 policy cube --------------------
    eprintln!("[perf] distributed_apsp cube, n = {}, b = {}, 2x2 grid", sz.dist_n, sz.dist_b);
    {
        let g = generators::erdos_renyi(sz.dist_n, 0.05, WeightKind::small_ints(), 7);
        let input = g.to_dense();
        for schedule in Schedule::all() {
            for bcast in [PanelBcastAlgo::Tree, PanelBcastAlgo::Ring { chunks: 4 }] {
                for exec in Exec::all() {
                    let mut cfg = FwConfig::from_axes(sz.dist_b, schedule, bcast, exec);
                    cfg.oog = gpu_sim::OogConfig::new(32, 32, 3);
                    let name = format!(
                        "dist/{}/{}/{}",
                        schedule.name().to_lowercase(),
                        bcast.name().to_lowercase(),
                        exec.name().to_lowercase()
                    );
                    let wall_s = time_min(
                        reps,
                        || input.clone(),
                        |m| {
                            distributed_apsp::<MinPlus<f32>>(2, 2, &cfg, &m, None)
                                .expect("suite dist run");
                        },
                    );
                    eprintln!("  {name}: {wall_s:.6}s");
                    entries.push(Entry {
                        name,
                        group: "dist".to_string(),
                        params: vec![
                            ("n".to_string(), sz.dist_n as f64),
                            ("block".to_string(), sz.dist_b as f64),
                            ("pr".to_string(), 2.0),
                            ("pc".to_string(), 2.0),
                        ],
                        wall_s,
                        dtype: Some("f32".to_string()),
                        gflops: None,
                        baseline_wall_s: None,
                        speedup: None,
                    });
                }
            }
        }
    }

    // --- headline: serial-OuterUpdate baseline vs thread-budgeted ---------
    eprintln!(
        "[perf] headline dist run, n = {}, b = {}, 2x2 grid (baseline vs budgeted)",
        sz.headline_n, sz.headline_b
    );
    {
        let g = generators::erdos_renyi(sz.headline_n, 0.02, WeightKind::small_ints(), 9);
        let input = g.to_dense();
        let mut cfg =
            FwConfig::from_axes(sz.headline_b, Schedule::BulkSync, PanelBcastAlgo::Tree, Exec::InCoreGemm);

        cfg.kernel_threads = Some(1); // pre-PR behavior: serial OuterUpdate
        let baseline_wall_s = time_min(
            reps,
            || input.clone(),
            |m| {
                distributed_apsp::<MinPlus<f32>>(2, 2, &cfg, &m, None).expect("headline baseline");
            },
        );

        cfg.kernel_threads = None; // budgeted: cores / (pr*pc), floor 1
        let wall_s = time_min(
            reps,
            || input.clone(),
            |m| {
                distributed_apsp::<MinPlus<f32>>(2, 2, &cfg, &m, None).expect("headline budgeted");
            },
        );

        let flops = 2.0 * (sz.headline_n as f64).powi(3);
        eprintln!(
            "  dist/headline/bulksync_tree_incore: baseline {baseline_wall_s:.6}s, budgeted {wall_s:.6}s, x{:.3}",
            baseline_wall_s / wall_s
        );
        entries.push(Entry {
            name: "dist/headline/bulksync_tree_incore".to_string(),
            group: "dist_e2e".to_string(),
            params: vec![
                ("n".to_string(), sz.headline_n as f64),
                ("block".to_string(), sz.headline_b as f64),
                ("pr".to_string(), 2.0),
                ("pc".to_string(), 2.0),
            ],
            wall_s,
            dtype: Some("f32".to_string()),
            gflops: Some(flops / wall_s / 1e9),
            baseline_wall_s: Some(baseline_wall_s),
            speedup: Some(baseline_wall_s / wall_s),
        });
    }

    // --- solver layer: planner's pick vs forced dense-blocked -------------
    // Three generator families spanning the density crossover. Each entry
    // records the planner-chosen solver (`wall_s`, planning cost included)
    // against the always-dense blocked engine (`baseline_wall_s`), so the
    // claim "the planner beats always-dense on sparse inputs" is carried in
    // the artifact. On dense families auto re-picks blocked, paying only the
    // one-time O(m) profile pass — visible at bench sizes, noise at real ones.
    eprintln!(
        "[perf] solver planner picks: grid {0}x{0}, ring {1}, dense {2}",
        sz.solver_grid_side, sz.solver_ring_n, sz.solver_dense_n
    );
    {
        use apsp_core::{Registry, SolveOpts};
        let reg = Registry::with_all();
        let families = [
            (
                "grid",
                generators::grid(sz.solver_grid_side, sz.solver_grid_side, WeightKind::small_ints(), 31),
            ),
            ("ring_chords", generators::ring_with_chords(sz.solver_ring_n, WeightKind::small_ints(), 32)),
            ("uniform_dense", generators::uniform_dense(sz.solver_dense_n, WeightKind::small_ints(), 33)),
        ];
        for (family, g) in families {
            let opts = SolveOpts::with_block(sz.solver_b);
            let chosen = reg.plan(&g, &opts).chosen.expect("an eligible solver");
            let baseline_wall_s = time_min(
                reps,
                || (),
                |()| {
                    reg.solve("blocked", &g, &opts).expect("forced dense-blocked");
                },
            );
            let wall_s = time_min(
                reps,
                || (),
                |()| {
                    // plan + solve, so the planner's own cost is charged
                    reg.solve("auto", &g, &opts).expect("planner pick");
                },
            );
            eprintln!(
                "  solver/auto/{family}: picked '{chosen}' {wall_s:.6}s, forced blocked {baseline_wall_s:.6}s, x{:.3}",
                baseline_wall_s / wall_s
            );
            entries.push(Entry {
                name: format!("solver/auto/{family}"),
                group: "solver".to_string(),
                params: vec![
                    ("n".to_string(), g.n() as f64),
                    ("m".to_string(), g.m() as f64),
                    ("block".to_string(), sz.solver_b as f64),
                ],
                wall_s,
                dtype: Some("f32".to_string()),
                gflops: None,
                baseline_wall_s: Some(baseline_wall_s),
                speedup: Some(baseline_wall_s / wall_s),
            });
        }
    }

    // --- quantized end-to-end solve vs f32 blocked FW ---------------------
    // The headline for the low-precision path: quantize → integer blocked
    // FW in saturating u16/i32 lanes → dequantize, measured end to end
    // (quantize and dequantize passes charged to `wall_s`), against the
    // same blocked FW over f32 on the same graph. Integral small-int
    // weights make the quantized result bit-exact here, so the speedup is
    // pure lane-width win, not an accuracy trade.
    eprintln!(
        "[perf] quant solve vs f32 blocked, n = {}, b = {}",
        sz.headline_n, sz.headline_b
    );
    {
        use apsp_core::quant;
        let g = generators::erdos_renyi(sz.headline_n, 0.02, WeightKind::small_ints(), 9);
        let plan = quant::plan_for_graph(&g, 1e-3).expect("small-int weights quantize");
        let input = g.to_dense();
        let baseline_wall_s = time_min(
            reps,
            || input.clone(),
            |mut d| fw_blocked::<MinPlus<f32>>(&mut d, sz.headline_b, DiagMethod::FwClosure, true),
        );
        let wall_s = time_min(
            reps,
            || (),
            |()| {
                quant::solve_quantized(&g, &plan, sz.headline_b, true);
            },
        );
        let flops = 2.0 * (sz.headline_n as f64).powi(3);
        eprintln!(
            "  quant/solve_vs_f32: f32 {baseline_wall_s:.6}s, {} {wall_s:.6}s, x{:.3}",
            plan.dtype.name(),
            baseline_wall_s / wall_s
        );
        entries.push(Entry {
            name: "quant/solve_vs_f32".to_string(),
            group: "quant".to_string(),
            params: vec![
                ("n".to_string(), sz.headline_n as f64),
                ("block".to_string(), sz.headline_b as f64),
                ("scale".to_string(), plan.scale),
                ("eps".to_string(), plan.eps),
            ],
            wall_s,
            dtype: Some(plan.dtype.name().to_string()),
            gflops: Some(flops / wall_s / 1e9),
            baseline_wall_s: Some(baseline_wall_s),
            speedup: Some(baseline_wall_s / wall_s),
        });
    }

    // --- out-of-core: staged (file store, tight budget) vs in-memory ------
    // Same driver, same tile size, same packed-blob format; the only
    // difference is whether the store is a Vec of blobs or a file behind the
    // background I/O thread, with the budget sized to force spilling. The
    // speedup field records the staging cost (expected < 1; the acceptance
    // bar is staying within 2x of in-memory).
    eprintln!("[perf] ooc staged vs in-memory, n = {}, tile = {}", sz.ooc_n, sz.ooc_tile);
    {
        use apsp_core::ooc::{
            solve_in_store, staged_budget_floor, tile_blob_capacity, FileStore, MemStore,
            OocConfig,
        };
        let (n, tile) = (sz.ooc_n, sz.ooc_tile);
        let input = generators::uniform_dense(n, WeightKind::small_ints(), 34).to_dense();
        // floor + one row of tiles of cache: heavy eviction traffic without
        // being degenerate
        let budget = staged_budget_floor::<f32>(tile, 2)
            + (n.div_ceil(tile) as u64 + 2) * tile_blob_capacity::<f32>(tile) as u64;
        let baseline_wall_s = time_min(
            reps,
            || input.clone(),
            |mut m| {
                let mut store = MemStore::new::<f32>(n, tile);
                solve_in_store::<MinPlus<f32>>(&mut m, &mut store, &OocConfig::unbounded())
                    .expect("in-memory ooc solve");
            },
        );
        let path = std::env::temp_dir()
            .join(format!("apsp-bench-ooc-{}-{n}.tiles", std::process::id()));
        let wall_s = time_min(
            reps,
            || input.clone(),
            |mut m| {
                let mut store =
                    FileStore::create::<f32>(&path, n, tile, 2).expect("create tile store");
                solve_in_store::<MinPlus<f32>>(&mut m, &mut store, &OocConfig::with_budget(budget))
                    .expect("staged ooc solve");
            },
        );
        let _ = std::fs::remove_file(&path);
        eprintln!(
            "  ooc/staged_vs_inmem/f32: staged {wall_s:.6}s, in-memory {baseline_wall_s:.6}s, x{:.3}",
            baseline_wall_s / wall_s
        );
        entries.push(Entry {
            name: "ooc/staged_vs_inmem/f32".to_string(),
            group: "ooc".to_string(),
            params: vec![
                ("n".to_string(), n as f64),
                ("tile".to_string(), tile as f64),
                ("budget".to_string(), budget as f64),
            ],
            wall_s,
            dtype: Some("f32".to_string()),
            gflops: Some(2.0 * (n as f64).powi(3) / wall_s / 1e9),
            baseline_wall_s: Some(baseline_wall_s),
            speedup: Some(baseline_wall_s / wall_s),
        });
    }

    // --- serve layer: batched-query latency under update pressure ---------
    // The load generator drives its own reader/writer threads and asserts
    // epoch consistency while measuring, so these entries come from one run
    // (reps would re-randomize the traffic, not re-time the same work).
    eprintln!("[perf] serve load, n = {}, {} batches/reader", sz.serve_n, sz.serve_batches);
    {
        let cfg = crate::serve_load::LoadCfg {
            n: sz.serve_n,
            readers: 4,
            batch: 32,
            batches_per_reader: sz.serve_batches,
            update_batch: 4,
            bad_input: false,
            seed: 42,
        };
        let r = crate::serve_load::run_inproc(&cfg);
        eprintln!(
            "  serve/load: p50 {:.1}us p99 {:.1}us, {} q/s, {} epochs, lag max {}",
            r.p50_us, r.p99_us, r.qps as u64, r.epochs_published, r.epoch_lag_max
        );
        entries.extend(r.to_entries(""));
    }

    Report {
        schema: SCHEMA.to_string(),
        mode: mode.name().to_string(),
        reps,
        available_parallelism: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, wall_s: f64) -> Entry {
        Entry {
            name: name.to_string(),
            group: "gemm".to_string(),
            params: vec![("n".to_string(), 64.0)],
            wall_s,
            dtype: Some("f32".to_string()),
            gflops: Some(1.0),
            baseline_wall_s: None,
            speedup: None,
        }
    }

    fn report(entries: Vec<Entry>) -> Report {
        Report {
            schema: SCHEMA.to_string(),
            mode: "full".to_string(),
            reps: 3,
            available_parallelism: 8,
            entries,
        }
    }

    #[test]
    fn schema_round_trips_through_text() {
        // serialize → pretty-print → parse → deserialize → identical
        let mut headline = entry("dist/headline/x", 2.0);
        headline.baseline_wall_s = Some(3.5);
        headline.speedup = Some(1.75);
        headline.group = "dist_e2e".to_string();
        let r = report(vec![entry("gemm/naive/minplus_f32", 0.25), headline]);
        let text = r.to_json().pretty();
        let back = Report::from_json(&Json::parse(&text).expect("parses")).expect("validates");
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_missing_fields() {
        let mut doc = report(vec![]).to_json();
        // wrong schema string
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Str("somebody-else/9".to_string());
        }
        assert!(Report::from_json(&doc).unwrap_err().contains("unsupported schema"));
        // entry without wall_s
        let doc = Json::parse(
            r#"{"schema":"apsp-bench-perf/1","mode":"full","reps":1,
                "available_parallelism":1,
                "entries":[{"name":"x","group":"gemm"}]}"#,
        )
        .unwrap();
        assert!(Report::from_json(&doc).unwrap_err().contains("wall_s"));
    }

    #[test]
    fn comparator_classifies_improvement_regression_unchanged() {
        let old = report(vec![entry("a", 1.0), entry("b", 1.0), entry("c", 1.0)]);
        let new = report(vec![entry("a", 0.5), entry("b", 1.5), entry("c", 1.05)]);
        let cmp = compare(&old, &new, 0.15).expect("same mode");
        assert_eq!(cmp.deltas.len(), 3);
        assert_eq!(cmp.deltas[0].kind, DeltaKind::Improvement);
        assert_eq!(cmp.deltas[1].kind, DeltaKind::Regression);
        assert_eq!(cmp.deltas[2].kind, DeltaKind::Unchanged);
        assert!(cmp.has_regressions());
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn comparator_reports_added_and_removed_keys() {
        let old = report(vec![entry("kept", 1.0), entry("dropped", 1.0)]);
        let new = report(vec![entry("kept", 1.0), entry("fresh", 1.0)]);
        let cmp = compare(&old, &new, 0.15).unwrap();
        assert_eq!(cmp.added, vec!["fresh".to_string()]);
        assert_eq!(cmp.removed, vec!["dropped".to_string()]);
        assert!(!cmp.has_regressions());
    }

    #[test]
    fn comparator_refuses_cross_mode_comparison() {
        let old = report(vec![]);
        let mut new = report(vec![]);
        new.mode = "quick".to_string();
        assert!(compare(&old, &new, 0.15).is_err());
    }

    #[test]
    fn comparator_refuses_cross_dtype_joins() {
        // same entry name, different element dtype: a u16 run must never
        // silently diff against an f32 baseline
        let old = report(vec![entry("gemm/packed/minplus", 1.0)]);
        let mut quant = entry("gemm/packed/minplus", 0.4);
        quant.dtype = Some("u16".to_string());
        let new = report(vec![quant]);
        let err = compare(&old, &new, 0.15).unwrap_err();
        assert!(err.contains("dtype"), "err: {err}");
        assert!(err.contains("f32") && err.contains("u16"), "err: {err}");
        // a missing dtype is also not joinable against a recorded one
        let mut untyped = entry("gemm/packed/minplus", 1.0);
        untyped.dtype = None;
        let old = report(vec![untyped]);
        assert!(compare(&old, &new, 0.15).is_err());
        // matching dtypes (both None, both Some) still join fine
        let both_none = |w| {
            let mut e = entry("x", w);
            e.dtype = None;
            report(vec![e])
        };
        assert!(compare(&both_none(1.0), &both_none(1.1), 0.15).is_ok());
    }

    #[test]
    fn dtype_survives_the_json_round_trip_and_stays_optional() {
        let mut typed = entry("gemm/packed/minplus_u16", 0.5);
        typed.dtype = Some("u16".to_string());
        let mut untyped = entry("serve/load", 1.0);
        untyped.dtype = None;
        let r = report(vec![typed, untyped]);
        let text = r.to_json().pretty();
        assert!(text.contains("\"dtype\""));
        let back = Report::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        // pre-dtype artifacts (no `dtype` key anywhere) still parse
        let legacy = Json::parse(
            r#"{"schema":"apsp-bench-perf/1","mode":"full","reps":1,
                "available_parallelism":1,
                "entries":[{"name":"x","group":"gemm","wall_s":1.0}]}"#,
        )
        .unwrap();
        let legacy = Report::from_json(&legacy).unwrap();
        assert_eq!(legacy.entries[0].dtype, None);
    }

    #[test]
    fn threshold_is_symmetric_in_ratio_space() {
        // 15% threshold: ratio 1.15 exactly is NOT a regression; 1/1.15 is
        // NOT an improvement — strict inequalities both ways.
        let old = report(vec![entry("edge_up", 1.0), entry("edge_down", 1.0)]);
        let new = report(vec![entry("edge_up", 1.15), entry("edge_down", 1.0 / 1.15)]);
        let cmp = compare(&old, &new, 0.15).unwrap();
        assert_eq!(cmp.deltas[0].kind, DeltaKind::Unchanged);
        assert_eq!(cmp.deltas[1].kind, DeltaKind::Unchanged);
    }
}
