//! Summit-at-scale prediction: replay the paper's headline configurations
//! on the calibrated discrete-event model and print paper-vs-simulated
//! numbers — a one-screen summary of what the full figure harnesses
//! (`apsp-bench`) regenerate.
//!
//! ```text
//! cargo run --release --example summit_predict
//! ```

use apsp_core::dist::Variant;
use apsp_core::model::max_vertices_in_gpu_memory;
use apsp_core::schedule::{default_node_grid, optimal_node_grid, simulate, ScheduleConfig};
use cluster_sim::MachineSpec;

fn main() {
    println!("== Summit model: headline configurations ==\n");

    // 1. the 8.1 PF/s claim: Co-ParallelFw, 256 nodes, n = 300k (Fig. 8)
    {
        let spec = MachineSpec::summit(256);
        let (kr, kc) = optimal_node_grid(256);
        let co = simulate(&spec, &ScheduleConfig::new(300_000, Variant::AsyncRing, kr, kc)).expect("feasible");
        let (dkr, dkc) = default_node_grid(256);
        let base = simulate(&spec, &ScheduleConfig::new(300_000, Variant::Baseline, dkr, dkc)).expect("feasible");
        println!("256 nodes, n=300,000 (Fig. 8):");
        println!("  Co-ParallelFw : {:7.2} s  {:5.2} PF/s  ({:.0}% of sustained peak)",
            co.seconds, co.pflops, 100.0 * co.pflops * 1e15 / spec.total_flops());
        println!("  Baseline      : {:7.2} s  {:5.2} PF/s", base.seconds, base.pflops);
        println!("  speedup       : {:.1}x   (paper: 4.6x, 8.1 PF/s ≈ 70% of peak)\n", base.seconds / co.seconds);
    }

    // 2. the GPU memory wall and the offload escape (Fig. 7)
    {
        let spec = MachineSpec::summit(64);
        let wall = max_vertices_in_gpu_memory(&spec, 4);
        println!("64 nodes (Fig. 7):");
        println!("  in-GPU-memory limit : {wall} vertices (paper: between 524,288 and 660,562)");
        let (kr, kc) = optimal_node_grid(64);
        let big = simulate(&spec, &ScheduleConfig::new(1_664_511, Variant::Offload, kr, kc)).expect("offload feasible");
        let footprint = 1_664_511f64 * 1_664_511f64 * 4.0 / 1e12;
        println!(
            "  offload at n=1,664,511: {:6.0} s at {:4.2} PF/s  (output footprint {footprint:.1} TB; paper: ~10 TB, 50% of peak)",
            big.seconds, big.pflops
        );
        let at_wall = simulate(&spec, &ScheduleConfig::new(524_288, Variant::AsyncRing, kr, kc)).expect("feasible");
        let off_wall = simulate(&spec, &ScheduleConfig::new(524_288, Variant::Offload, kr, kc)).expect("feasible");
        println!(
            "  offload overhead at n=524,288: {:+.0}%  (paper: ~20%)\n",
            100.0 * (off_wall.seconds / at_wall.seconds - 1.0)
        );
    }

    // 3. Eq. 5 block-size floor
    {
        let spec = gpu_sim::GpuSpec::summit_v100();
        let k = gpu_sim::cost::min_block_size(&spec, 4);
        println!("Eq. 5 minimum offload block size: {k:.0} (paper's estimate: 624; observed knee at 768)");
    }
}
