//! Reference triple-loop semiring GEMM. Slow, obviously correct; every other
//! kernel in the workspace is tested against it.

use crate::matrix::{View, ViewMut};
use crate::semiring::Semiring;

/// `C ← C ⊕ A ⊗ B`, straight i-j-k loops with no tiling.
pub fn gemm_naive<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) {
    super::check_shapes(c, a, b);
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    for i in 0..m {
        for j in 0..n {
            let mut acc = c.at(i, j);
            for l in 0..k {
                acc = S::fma(acc, a.at(i, l), b.at(l, j));
            }
            c.set(i, j, acc);
        }
    }
    let _ = n;
}
