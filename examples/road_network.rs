//! Road-network routing: APSP with path reconstruction on a random
//! geometric graph (the "traffic routing and simulation" application the
//! paper's introduction motivates).
//!
//! ```text
//! cargo run --release --example road_network -- [n]
//! ```
//!
//! Generates `n` intersections on the unit square, connects nearby ones,
//! runs predecessor-tracking Floyd-Warshall, and prints turn-by-turn routes
//! plus network statistics (diameter, mean distance, unreachable pairs).

use apsp_core::fw_seq::{fw_seq_with_paths, reconstruct_path};
use apsp_graph::generators::geometric;
use apsp_graph::paths::validate_path;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    println!("== road network: {n} intersections on the unit square ==\n");

    let (graph, points) = geometric(n, 0.12, 7);
    println!("road segments (directed): {}", graph.m());

    let mut dist = graph.to_dense();
    let pred = fw_seq_with_paths(&mut dist);

    // network statistics
    let mut finite = 0u64;
    let mut total = 0.0f64;
    let mut diameter = 0.0f32;
    let mut far_pair = (0, 0);
    for i in 0..n {
        for j in 0..n {
            let d = dist[(i, j)];
            if i != j && d < f32::INFINITY {
                finite += 1;
                total += d as f64;
                if d > diameter {
                    diameter = d;
                    far_pair = (i, j);
                }
            }
        }
    }
    let pairs = (n * n - n) as u64;
    println!("reachable pairs : {finite} / {pairs} ({:.1}%)", 100.0 * finite as f64 / pairs as f64);
    println!("mean distance   : {:.4}", total / finite.max(1) as f64);
    println!("diameter        : {:.4}  (between {} and {})", diameter, far_pair.0, far_pair.1);

    // the longest shortest route, turn by turn
    let (s, t) = far_pair;
    if let Some(route) = reconstruct_path(&pred, s, t) {
        assert!(validate_path(&graph, &route, s, t, dist[(s, t)], 1e-3));
        println!("\nlongest route ({} hops, length {:.4}):", route.len() - 1, dist[(s, t)]);
        for leg in route.windows(2) {
            let (a, b) = (leg[0], leg[1]);
            println!(
                "  {:3} ({:.3},{:.3}) → {:3} ({:.3},{:.3})   {:.4}",
                a, points[a].0, points[a].1, b, points[b].0, points[b].1,
                graph.weight(a, b)
            );
        }
    }

    // closest facility query: nearest of 5 "depots" from every intersection
    let depots: Vec<usize> = (0..5).map(|i| i * n / 5).collect();
    let mut worst: (usize, f32) = (0, 0.0);
    for v in 0..n {
        let best = depots
            .iter()
            .map(|&d| dist[(d, v)])
            .fold(f32::INFINITY, f32::min);
        if best < f32::INFINITY && best > worst.1 {
            worst = (v, best);
        }
    }
    println!(
        "\nfacility coverage: the worst-served reachable intersection is {} at distance {:.4}",
        worst.0, worst.1
    );
}
