//! Panel-update kernels — the paper's *PanelUpdate* (§2.4).
//!
//! Given the closed diagonal block `D = A(k,k)*`:
//!
//! * row panel:    `A(k, j) ← A(k, j) ⊕ D ⊗ A(k, j)` — [`panel_update_left`];
//! * column panel: `A(i, k) ← A(i, k) ⊕ A(i, k) ⊗ D` — [`panel_update_right`].
//!
//! Both update a panel in place. Because the product reads the same panel it
//! writes, the kernel stages a snapshot of the panel and accumulates the
//! product of `D` with the snapshot — exactly what the GPU implementation
//! does by reading the panel out of global memory into a fresh output tile.

use crate::gemm::gemm;
use crate::matrix::ViewMut;
use crate::semiring::Semiring;

/// `P ← P ⊕ D ⊗ P` where `D` is `b×b` and `P` is `b×w` (a block of the k-th
/// block *row*).
///
/// # Panics
/// Panics if `d` is not square or its order differs from `p.rows()`.
pub fn panel_update_left<S: Semiring>(p: &mut ViewMut<'_, S::Elem>, d: &crate::matrix::View<'_, S::Elem>) {
    assert_eq!(d.rows(), d.cols(), "diagonal block must be square");
    assert_eq!(d.cols(), p.rows(), "diagonal order must match panel rows");
    let snapshot = p.to_matrix();
    gemm::<S>(p, d, &snapshot.view());
}

/// `P ← P ⊕ P ⊗ D` where `P` is `h×b` (a block of the k-th block *column*)
/// and `D` is `b×b`.
///
/// # Panics
/// Panics if `d` is not square or its order differs from `p.cols()`.
pub fn panel_update_right<S: Semiring>(p: &mut ViewMut<'_, S::Elem>, d: &crate::matrix::View<'_, S::Elem>) {
    assert_eq!(d.rows(), d.cols(), "diagonal block must be square");
    assert_eq!(d.rows(), p.cols(), "diagonal order must match panel cols");
    let snapshot = p.to_matrix();
    gemm::<S>(p, &snapshot.view(), d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::fw_closure;
    use crate::matrix::Matrix;
    use crate::semiring::MinPlus;

    type MP = MinPlus<f32>;
    const INF: f32 = f32::INFINITY;

    #[test]
    fn left_update_routes_through_diag_block() {
        // Diagonal block: 2 vertices {0,1} with 0->1 cost 1 (closed).
        let mut d = Matrix::from_rows(&[&[0.0, 1.0], &[INF, 0.0]]);
        fw_closure::<MP>(&mut d.view_mut());
        // Panel: edges from {0,1} to outside vertex 2: only 1->2 exists (cost 1).
        let mut p = Matrix::from_rows(&[&[INF], &[1.0]]);
        panel_update_left::<MP>(&mut p.view_mut(), &d.view());
        // Now 0->2 must be discovered via 0->1->2 = 2.
        assert_eq!(p[(0, 0)], 2.0);
        assert_eq!(p[(1, 0)], 1.0);
    }

    #[test]
    fn right_update_routes_through_diag_block() {
        let mut d = Matrix::from_rows(&[&[0.0, 1.0], &[INF, 0.0]]);
        fw_closure::<MP>(&mut d.view_mut());
        // Column panel: edges from outside vertex 2 into {0,1}: only 2->0 (cost 3).
        let mut p = Matrix::from_rows(&[&[3.0, INF]]);
        panel_update_right::<MP>(&mut p.view_mut(), &d.view());
        // 2->1 via 2->0->1 = 4.
        assert_eq!(p[(0, 1)], 4.0);
        assert_eq!(p[(0, 0)], 3.0);
    }

    #[test]
    fn update_never_worsens_entries() {
        // with D closed (D ⊇ I), P ⊕ D⊗P ≤ P pointwise
        let mut d = Matrix::from_rows(&[&[0.0, 5.0], &[5.0, 0.0]]);
        fw_closure::<MP>(&mut d.view_mut());
        let orig = Matrix::from_rows(&[&[7.0, 2.0, INF], &[1.0, INF, 4.0]]);
        let mut p = orig.clone();
        panel_update_left::<MP>(&mut p.view_mut(), &d.view());
        for i in 0..2 {
            for j in 0..3 {
                assert!(p[(i, j)] <= orig[(i, j)]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must match panel rows")]
    fn left_update_shape_check() {
        let d = Matrix::filled(3, 3, 0.0f32);
        let mut p = Matrix::filled(2, 4, 0.0f32);
        panel_update_left::<MP>(&mut p.view_mut(), &d.view());
    }
}
