//! APSP-as-a-service: an epoch-snapshot query engine over a solved
//! closure, with safe streaming updates.
//!
//! The ROADMAP's "millions of users" story: the workspace can *compute*
//! full distance matrices nine different ways, and this module *serves*
//! them. Three pieces:
//!
//! * [`Engine`] — the concurrency core. The current [`Snapshot`] (a
//!   witness-annotated closure plus an epoch number) sits behind an
//!   `Arc`-swap; readers grab it with one refcount bump and answer whole
//!   query batches lock-free against immutable data, while a single
//!   writer absorbs [`crate::incremental`] decrease batches into a copy
//!   and publishes the next epoch with a pointer swap. Readers never
//!   block the writer, the writer never blocks readers, and a batch can
//!   never observe two epochs.
//! * [`proto`] — the line-oriented request/response protocol spoken by
//!   `apsp serve` (stdin or TCP) and the `apsp bench serve-load`
//!   generator. Batch-aware (`dist` takes many pairs per line), and every
//!   failure is a typed response — malformed client input can not kill
//!   the server.
//! * the incremental fixes underneath ([`crate::incremental`]): typed
//!   rejection of negative self-loops / negative cycles / NaN weights /
//!   bad vertices, and witness-carrying updates so path reconstruction
//!   stays correct across epochs.
//!
//! Decrease-only today, matching the incremental updater; increase-type
//! updates (affected-source recompute) are the declared follow-on in the
//! ROADMAP.
//!
//! ```
//! use apsp_core::serve::Engine;
//! use apsp_graph::generators::{uniform_dense, WeightKind};
//!
//! let g = uniform_dense(32, WeightKind::small_ints(), 7);
//! let engine = Engine::solve_from_graph(&g, 16);
//! let snap = engine.snapshot();               // epoch 0
//! let d = snap.dist(0, 31).unwrap();
//! engine.apply(&[(0, 31, 0.5)]);              // writer publishes epoch 1
//! assert_eq!(snap.dist(0, 31).unwrap(), d);   // old snapshot: consistent
//! assert!(engine.snapshot().dist(0, 31).unwrap() <= 0.5);
//! ```

pub mod engine;
pub mod proto;

pub use engine::{Engine, QueryError, Snapshot, UpdateOutcome};
pub use proto::{handle_line, Reply, Request};
