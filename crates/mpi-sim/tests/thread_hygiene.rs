//! OS-thread hygiene: nothing the runtime creates may outlive a run.
//!
//! The old communication layer spawned a fire-and-forget helper thread per
//! fault-delayed message; a delayed delivery whose receiver failed fast
//! would keep sleeping past the end of the run, outliving the runtime scope
//! and bypassing poisoning entirely. Delayed deliveries now ride the
//! scheduler's deadline wheel inside the runtime-scoped timekeeper, so
//! ending the run cancels them. This file is a single test on purpose: it
//! counts the process's OS threads via `/proc/self/status`, which only
//! stays deterministic when no sibling test runs concurrently.

#![cfg(target_os = "linux")]

use std::time::{Duration, Instant};

use mpi_sim::{CommError, FaultPlan, Runtime};

fn os_threads_now() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

#[test]
fn delayed_deliveries_and_timekeeper_die_with_the_runtime() {
    let before = os_threads_now();
    let start = Instant::now();
    // rank 0's only send is delayed by 2 s, but nobody waits for it — the
    // run finishes immediately and the pending delivery must be cancelled
    // with the runtime, not serviced by a leaked sleeper thread
    let rt = Runtime::new(2).with_faults(FaultPlan::delay_nth(0, 0, Duration::from_secs(2)));
    let out = rt.try_run(|comm| -> Result<(), CommError> {
        if comm.rank() == 0 {
            comm.send(1, 1, 7u64)?;
        }
        Ok(())
    });
    assert!(out.is_ok(), "nothing here fails: {out:?}");
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "the run must not wait out the 2 s delayed delivery"
    );
    // scope exit waits for every task to signal completion, but the OS
    // thread needs a moment to fully unwind — poll briefly. The deadline is
    // far below the 2 s delay, so a leaked sleeper thread (the old helper-
    // thread behavior) still fails this check.
    let deadline = Instant::now() + Duration::from_secs(1);
    loop {
        let now = os_threads_now();
        if now <= before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{} threads outlive the runtime (baseline {before}): rank tasks, \
             the timekeeper, and pending delayed deliveries must all be gone",
            now - before
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
