#![warn(missing_docs)]

//! # srgemm — semiring algebra and semiring matrix multiplication
//!
//! This crate is the compute substrate of the APSP-FW workspace. It stands in
//! for the cuASR/Cutlass GPU SRGEMM kernels used by the HPDC'21 paper
//! *Scalable All-pairs Shortest Paths for Huge Graphs on Multi-GPU Clusters*:
//! the same algebra (the tropical **min-plus** semiring), the same kernel
//! contract (`C ← C ⊕ A ⊗ B`), and the same blocked data-access structure,
//! executed on the CPU with cache tiling and [rayon] data parallelism.
//!
//! ## Layout
//!
//! * [`semiring`] — the [`Semiring`] trait and instances ([`MinPlus`],
//!   [`MaxMin`], [`BoolOr`], [`MaxPlus`], [`RealArith`], and the quantized
//!   integer tropical semirings [`MinPlusSatU16`]/[`MinPlusSatI32`] that
//!   run 2–4× more SIMD lanes per vector).
//! * [`matrix`] — dense row-major [`Matrix`] plus borrowed strided
//!   [`View`]/[`ViewMut`] blocks.
//! * [`gemm`](mod@gemm) — `C ← C ⊕ A ⊗ B` kernels: naive, cache-blocked,
//!   BLIS-style packed/register-tiled, and rayon-parallel (the parallel
//!   kernel shares one packed `B` across all row slabs).
//! * [`closure`] — in-place Floyd-Warshall closure of a block (the paper's
//!   *DiagUpdate*) and the repeated-squaring Neumann-series form (Eq. 4).
//! * [`panel`] — the paper's *PanelUpdate* kernels (left/right multiply by a
//!   closed diagonal block).
//!
//! ## Quick example
//!
//! ```
//! use srgemm::prelude::*;
//!
//! // 2x2 min-plus multiply: C = C ⊕ A ⊗ B.
//! let a = Matrix::<f32>::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
//! let b = Matrix::<f32>::from_rows(&[&[0.0, 5.0], &[1.0, 0.0]]);
//! let mut c = Matrix::filled(2, 2, MinPlusF32::zero());
//! gemm::<MinPlusF32>(&mut c.view_mut(), &a.view(), &b.view());
//! assert_eq!(c[(0, 0)], 1.0); // min(1+0, 2+1)
//! ```

pub mod block_sparse;
pub mod closure;
pub mod gemm;
pub mod matrix;
pub mod panel;
pub mod semiring;

pub use gemm::{
    gemm, gemm_blocked, gemm_naive, gemm_packed, gemm_parallel, GemmAlgo, PackDecodeError,
    PackElem, PackedB,
};
pub use matrix::{Matrix, View, ViewMut};
pub use semiring::{
    BoolOr, MaxMin, MaxPlus, MinPlus, MinPlusSatI32, MinPlusSatU16, RealArith, Semiring,
};

/// The paper's semiring: single-precision tropical (min, +).
pub type MinPlusF32 = MinPlus<f32>;
/// Double-precision tropical (min, +).
pub type MinPlusF64 = MinPlus<f64>;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::closure::{fw_closure, fw_closure_squaring};
    pub use crate::gemm::{gemm, gemm_blocked, gemm_naive, gemm_packed, gemm_parallel, PackedB};
    pub use crate::matrix::{Matrix, View, ViewMut};
    pub use crate::panel::{panel_update_left, panel_update_right};
    pub use crate::semiring::{
        BoolOr, MaxMin, MaxPlus, MinPlus, MinPlusSatI32, MinPlusSatU16, RealArith, Semiring,
    };
    pub use crate::{MinPlusF32, MinPlusF64};
}
