//! Distributed Floyd-Warshall over the `mpi-sim` runtime.
//!
//! All four variants share the block-cyclic layout ([`layout::DistMatrix`])
//! and the broadcast plumbing in this module; they differ exactly where the
//! paper says they do:
//!
//! | Variant | Schedule | PanelBcast | OuterUpdate |
//! |---|---|---|---|
//! | [`Variant::Baseline`] | bulk-synchronous (Alg. 3) | binomial tree | in-core GEMM |
//! | [`Variant::Pipelined`] | look-ahead (Alg. 4) | binomial tree | in-core GEMM |
//! | [`Variant::AsyncRing`] | look-ahead | pipelined ring (§3.3) | in-core GEMM |
//! | [`Variant::Offload`] | bulk-synchronous | binomial tree | `ooGSrGemm` through the simulated GPU (§4.3) |
//!
//! Every variant produces bit-identical results to sequential
//! Floyd-Warshall; the differences are purely in communication structure and
//! memory residency, which the `cluster-sim` schedules turn into time.

pub mod baseline;
pub mod incremental_dist;
pub mod layout;
pub mod offload;
pub mod oned;
pub mod pipelined;

pub use layout::DistMatrix;

use gpu_sim::{GpuSpec, OogConfig};
use mpi_sim::{Comm, Placement, ProcessGrid, RunTrace, Runtime, TrafficReport};
use srgemm::matrix::Matrix;
use srgemm::semiring::Semiring;

use crate::fw_blocked::DiagMethod;

/// Which distributed algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Algorithm 3: bulk-synchronous ParallelFw.
    Baseline,
    /// Algorithm 4: pipelined ParallelFw (look-ahead update).
    Pipelined,
    /// Pipelined + ring PanelBcast (`Co-ParallelFw`'s `+Async` legend).
    AsyncRing,
    /// `Me-ParallelFw`: host-resident matrix, GPU offload outer product.
    Offload,
}

impl Variant {
    /// All variants, in the paper's legend order.
    pub fn all() -> [Variant; 4] {
        [Variant::Baseline, Variant::Pipelined, Variant::AsyncRing, Variant::Offload]
    }

    /// Legend string used in the figure harnesses.
    pub fn legend(&self) -> &'static str {
        match self {
            Variant::Baseline => "Baseline",
            Variant::Pipelined => "Pipelined",
            Variant::AsyncRing => "+Async",
            Variant::Offload => "Offload",
        }
    }
}

/// Configuration for a distributed APSP run.
#[derive(Clone, Copy, Debug)]
pub struct FwConfig {
    /// Block size `b` of the block-cyclic distribution.
    pub block: usize,
    /// Algorithm variant.
    pub variant: Variant,
    /// Ring-broadcast chunk count (AsyncRing only).
    pub ring_chunks: usize,
    /// How diagonal blocks are closed.
    pub diag: DiagMethod,
    /// Device spec for the Offload variant (each rank gets one GPU).
    pub gpu_spec: GpuSpec,
    /// ooGSrGemm tiling for the Offload variant.
    pub oog: OogConfig,
}

impl FwConfig {
    /// Defaults: 4-chunk ring, FW-closure diagonals, and a tiny test GPU
    /// with 64×64 tile buffers on 3 streams (sized to fit
    /// [`GpuSpec::test_tiny`]; production harnesses override both).
    pub fn new(block: usize, variant: Variant) -> Self {
        FwConfig {
            block,
            variant,
            ring_chunks: 4,
            diag: DiagMethod::FwClosure,
            gpu_spec: GpuSpec::test_tiny(),
            oog: OogConfig::new(64, 64, 3),
        }
    }
}

/// How panels travel (tree vs ring), resolved from the variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PanelBcast {
    Tree,
    Ring { chunks: usize },
}

impl FwConfig {
    pub(crate) fn panel_bcast(&self) -> PanelBcast {
        match self.variant {
            Variant::AsyncRing => PanelBcast::Ring { chunks: self.ring_chunks },
            _ => PanelBcast::Tree,
        }
    }
}

/// Broadcast a matrix (flattened) over `comm` from `root`; `mine` is
/// `Some(matrix)` at the root. Returns the matrix on every rank.
pub(crate) fn bcast_matrix<S: Semiring>(
    comm: &Comm,
    root: usize,
    mine: Option<Matrix<S::Elem>>,
    rows: usize,
    cols: usize,
    how: PanelBcast,
) -> Matrix<S::Elem> {
    let payload = mine.map(|m| {
        debug_assert_eq!((m.rows(), m.cols()), (rows, cols));
        m.as_slice().to_vec()
    });
    let data = match how {
        PanelBcast::Tree => comm.bcast(root, payload),
        PanelBcast::Ring { chunks } => comm.ring_bcast(root, payload, chunks),
    };
    assert_eq!(data.len(), rows * cols, "broadcast panel size mismatch");
    Matrix::from_vec(rows, cols, data)
}

/// Per-iteration context shared by the variant loops: the closed diagonal
/// broadcast to the k-th process row/column, then the panels to everyone.
pub(crate) struct PanelSet<T> {
    /// `local_rows × b_k` column panel (`A(:,k)` restricted to my rows).
    pub col_panel: Matrix<T>,
    /// `b_k × local_cols` row panel (`A(k,:)` restricted to my cols).
    pub row_panel: Matrix<T>,
}

/// DiagUpdate + DiagBcast + PanelUpdate + PanelBcast for iteration `k` —
/// identical in all variants (only the panel broadcast algorithm differs).
/// On return the k-th strips of `a` are updated in place and every rank
/// holds the broadcast panels.
pub(crate) fn diag_and_panels<S: Semiring>(
    grid: &ProcessGrid,
    a: &mut DistMatrix<S::Elem>,
    k: usize,
    diag_method: DiagMethod,
    how: PanelBcast,
) -> PanelSet<S::Elem> {
    use srgemm::closure::{fw_closure, fw_closure_squaring};
    use srgemm::panel::{panel_update_left, panel_update_right};

    let bk = a.block_dim(k);
    let kr = k % a.pr;
    let kc = k % a.pc;

    // Phase guards open unconditionally on every rank (even ranks with no
    // work in the phase), so every rank's timeline shows the full five-phase
    // iteration structure and idle time is visible as near-zero spans.

    // DiagUpdate at the owner
    {
        let _p = grid.grid.phase("DiagUpdate");
        if a.owns_row(k) && a.owns_col(k) {
            let mut d = a.diag_block_mut(k);
            match diag_method {
                DiagMethod::FwClosure => fw_closure::<S>(&mut d),
                DiagMethod::Squaring => fw_closure_squaring::<S>(&mut d, false),
            }
        }
    }

    // DiagBcast along the k-th process row and column (tree: small, latency-
    // critical — the paper keeps the library broadcast here even in +Async)
    let mut diag_row: Option<Matrix<S::Elem>> = None;
    let mut diag_col: Option<Matrix<S::Elem>> = None;
    {
        let _p = grid.grid.phase("DiagBcast");
        if a.owns_row(k) {
            let mine = a.owns_col(k).then(|| a.diag_block(k));
            diag_row = Some(bcast_matrix::<S>(&grid.row, kc, mine, bk, bk, PanelBcast::Tree));
        }
        if a.owns_col(k) {
            let mine = a.owns_row(k).then(|| a.diag_block(k));
            diag_col = Some(bcast_matrix::<S>(&grid.col, kr, mine, bk, bk, PanelBcast::Tree));
        }
    }

    // PanelUpdate on the owning strips (includes the diagonal block itself,
    // where D ⊕ D⊗D = D is a no-op)
    {
        let _p = grid.grid.phase("PanelUpdate");
        if let Some(d) = &diag_row {
            let mut strip = a.row_strip_mut(k);
            panel_update_left::<S>(&mut strip, &d.view());
        }
        if let Some(d) = &diag_col {
            let mut strip = a.col_strip_mut(k);
            panel_update_right::<S>(&mut strip, &d.view());
        }
    }

    // PanelBcast: row panel down each process column, column panel across
    // each process row
    let _p = grid.grid.phase("PanelBcast");
    let lcols = a.local.cols();
    let lrows = a.local.rows();
    let row_panel = bcast_matrix::<S>(
        &grid.col,
        kr,
        a.owns_row(k).then(|| a.row_strip(k).to_matrix()),
        bk,
        lcols,
        how,
    );
    let col_panel = bcast_matrix::<S>(
        &grid.row,
        kc,
        a.owns_col(k).then(|| a.col_strip(k).to_matrix()),
        lrows,
        bk,
        how,
    );
    PanelSet { col_panel, row_panel }
}

/// Run distributed APSP on an existing communicator (one call per rank,
/// SPMD). `global` must be identical on every rank; each rank slices its
/// own share. The result is gathered to grid rank 0.
pub fn distributed_apsp_on<S: Semiring>(
    comm: Comm,
    pr: usize,
    pc: usize,
    cfg: &FwConfig,
    global: &Matrix<S::Elem>,
) -> Option<Matrix<S::Elem>> {
    let grid = ProcessGrid::new(comm, pr, pc);
    let (my_r, my_c) = grid.coords();
    let mut a = DistMatrix::from_global(global, cfg.block, pr, pc, my_r, my_c);
    match cfg.variant {
        Variant::Baseline => baseline::run::<S>(&grid, &mut a, cfg),
        Variant::Pipelined | Variant::AsyncRing => pipelined::run::<S>(&grid, &mut a, cfg),
        Variant::Offload => {
            offload::run::<S>(&grid, &mut a, cfg);
        }
    }
    a.gather(&grid)
}

/// Convenience driver: spin up `pr·pc` ranks, run
/// [`distributed_apsp_on`], and return the gathered matrix plus the traffic
/// report (for the §5.1.3 effective-bandwidth metric).
pub fn distributed_apsp<S: Semiring>(
    pr: usize,
    pc: usize,
    cfg: &FwConfig,
    global: &Matrix<S::Elem>,
    placement: Option<Placement>,
) -> (Matrix<S::Elem>, TrafficReport) {
    let mut rt = Runtime::new(pr * pc);
    if let Some(p) = placement {
        rt = rt.with_placement(p);
    }
    let cfg = *cfg;
    let (results, traffic) = rt.run_traced(move |comm| {
        distributed_apsp_on::<S>(comm, pr, pc, &cfg, global)
    });
    let gathered = results
        .into_iter()
        .flatten()
        .next()
        .expect("grid rank 0 gathers the result");
    (gathered, traffic)
}

/// Like [`distributed_apsp`] but additionally records the per-rank,
/// per-phase [`RunTrace`] (Chrome-exportable; see
/// [`mpi_sim::Runtime::run_with_trace`]). The five paper phase names appear
/// on every rank's timeline, one set per iteration.
pub fn distributed_apsp_traced<S: Semiring>(
    pr: usize,
    pc: usize,
    cfg: &FwConfig,
    global: &Matrix<S::Elem>,
    placement: Option<Placement>,
) -> (Matrix<S::Elem>, TrafficReport, RunTrace) {
    let mut rt = Runtime::new(pr * pc);
    if let Some(p) = placement {
        rt = rt.with_placement(p);
    }
    let cfg = *cfg;
    let (results, traffic, trace) = rt.run_with_trace(move |comm| {
        distributed_apsp_on::<S>(comm, pr, pc, &cfg, global)
    });
    let gathered = results
        .into_iter()
        .flatten()
        .next()
        .expect("grid rank 0 gathers the result");
    (gathered, traffic, trace)
}
