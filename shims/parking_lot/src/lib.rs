//! Std-only shim for the `parking_lot` API subset used by this workspace:
//! non-poisoning [`Mutex`] / [`Condvar`] with `wait_for`.
//!
//! The build environment cannot reach crates.io, so the real crate is
//! replaced by this wrapper over `std::sync`. Semantics match what the
//! workspace relies on: `lock()` returns a guard directly (poison is
//! swallowed, as parking_lot never poisons), and `Condvar::wait_for` takes
//! the guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Non-poisoning mutex mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait_for`] can move it through `std`'s by-value wait API.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable mirroring `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wait with a timeout; returns whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }

    #[test]
    fn wait_for_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                assert!(!cv.wait_for(&mut ready, Duration::from_secs(5)).timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7); // parking_lot never poisons
    }
}
